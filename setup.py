"""Setup shim.

The offline environment ships setuptools 65 without the ``wheel`` package,
so PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``.
Keeping a classic setup.py (and no [build-system] table in pyproject.toml)
lets ``pip install -e .`` fall back to the legacy ``setup.py develop`` path
that works offline.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy", "networkx"],
)
