#!/usr/bin/env python3
"""Run the complete Figure-4 sweep at the paper's problem sizes.

Writes ``results/figure4_full.json`` (consumed by
``python3 -m repro.bench.report``) and prints progress.  On a single CPU
the full sweep takes on the order of an hour; the largest problem sizes
switch to 1-block sampling to bound simulation cost (accuracy of that
mode is covered by tests/test_cuda_driver.py).

Usage:
    python3 scripts/run_full_figure4.py [results/figure4_full.json]
"""

import json
import os
import sys
import time

from repro.bench.figure4 import panel
from repro.bench.suite import ALL_APPS, get_app

#: problem sizes at which to drop to single-block sampling
LEAN_THRESHOLD = {"atax": 4096, "mvt": 4096, "bicg": 4096,
                  "gramschmidt": 2048, "gemm": 4096, "3dconv": 512}


def main() -> None:
    out_path = sys.argv[1] if len(sys.argv) > 1 else "results/figure4_full.json"
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    data: dict[str, list] = {}
    if os.path.exists(out_path):
        data = json.load(open(out_path))
    t0 = time.time()

    def progress(app, n, cuda_s, ompi_s):
        print(f"[{time.time() - t0:7.1f}s] {app} n={n}: "
              f"cuda={cuda_s:.4f}s ompi={ompi_s:.4f}s", flush=True)

    for name in ALL_APPS:
        app = get_app(name)
        have = {row[0] for row in data.get(name, [])}
        for size in app.sizes:
            if size in have:
                continue
            lean = size >= LEAN_THRESHOLD.get(name, 1 << 30)
            os.environ["REPRO_SAMPLE_BLOCKS"] = "1" if lean else "3"
            p = panel(name, (size,), progress=progress)
            merged = {row[0]: list(row) for row in data.get(name, [])}
            merged.update({pt.size: [pt.size, pt.cuda_s, pt.ompi_s]
                           for pt in p.points})
            data[name] = sorted(merged.values(), key=lambda r: r[0])
            json.dump(data, open(out_path, "w"), indent=1)
    print(f"sweep complete in {time.time() - t0:.1f}s -> {out_path}")


if __name__ == "__main__":
    main()
