"""CI gate: a second ``ompicc`` *process* must skip codegen entirely.

Runs the same compilation twice in separate interpreter processes with
one shared ``REPRO_CACHE_DIR``.  The first run compiles and persists;
the second must be served from the disk tier — its ``--cache-stats``
counters have to show ``compiles=0`` and one disk hit, and both runs
must print identical program output.

Usage::

    PYTHONPATH=src python scripts/check_cache_warm.py

Exits non-zero on any miss, recompile or output divergence.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

SOURCE = r"""
#include <stdio.h>
float a[128], b[128];
int main(void)
{
    int i;
    float s = 0.0f;
    for (i = 0; i < 128; i++) { a[i] = (i % 32) * 0.25f; b[i] = 0.0f; }
    #pragma omp target teams distribute parallel for \
        map(to: a[0:128]) map(tofrom: b[0:128])
    for (i = 0; i < 128; i++)
        b[i] = a[i] * 2.0f + 0.5f;
    for (i = 0; i < 128; i++) s += b[i];
    printf("%f\n", s);
    return 0;
}
"""


def run_ompicc(src_path: Path, env: dict) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro.ompi.cli", str(src_path),
         "--cache-stats"],
        capture_output=True, text=True, env=env, timeout=600)


def counters(stderr: str) -> dict:
    """Parse the --cache-stats counter lines into one flat dict."""
    out: dict[str, int] = {}
    for line in stderr.splitlines():
        m = re.match(r"ompicc: (compile|disk) cache: (.*)", line)
        if not m:
            continue
        prefix = "mem" if m.group(1) == "compile" else "disk"
        for key, val in re.findall(r"(\w+)=(\d+)", m.group(2)):
            out[f"{prefix}_{key}"] = int(val)
    return out


def main() -> int:
    repo = Path(__file__).resolve().parent.parent
    failures: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-cache-warm-") as tmp:
        src_path = Path(tmp) / "warmcheck.c"
        src_path.write_text(SOURCE)
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(Path(tmp) / "cache")
        env.setdefault("PYTHONPATH", str(repo / "src"))

        cold = run_ompicc(src_path, env)
        warm = run_ompicc(src_path, env)
        for label, proc in (("cold", cold), ("warm", warm)):
            print(f"--- {label} run (exit {proc.returncode}) ---")
            print(proc.stderr, end="")
            if proc.returncode != 0:
                failures.append(f"{label} run exited {proc.returncode}")

        c, w = counters(cold.stderr), counters(warm.stderr)
        if c.get("mem_compiles") != 1:
            failures.append(f"cold run should compile exactly once: {c}")
        if c.get("disk_stores") != 1:
            failures.append(f"cold run should persist one entry: {c}")
        if w.get("mem_compiles") != 0:
            failures.append(f"warm run recompiled: {w}")
        if w.get("disk_hits") != 1:
            failures.append(f"warm run missed the disk cache: {w}")
        if "[from disk cache]" not in warm.stderr:
            failures.append("warm run did not report the disk-cache source")
        if cold.stdout != warm.stdout or not cold.stdout.strip():
            failures.append(
                f"output divergence: cold={cold.stdout!r} warm={warm.stdout!r}")

    for msg in failures:
        print(f"FAIL {msg}", file=sys.stderr)
    if not failures:
        print("cache-warm check passed: second process served from disk")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
