"""Figure 4c reproduction: atax — execution time vs problem size,
pure CUDA vs OMPi cudadev (paper §5).

Run with `pytest benchmarks/bench_fig4_atax.py --benchmark-only`.
The simulated times land in `extra_info.simulated_seconds`.
"""

import pytest

from conftest import bench_sizes, run_panel_point


@pytest.mark.parametrize("size", bench_sizes("atax"))
@pytest.mark.parametrize("version", ["cuda", "ompi"])
def test_atax(benchmark, size, version):
    benchmark.group = f"atax n={size}"
    run_panel_point(benchmark, "atax", size, version)
