"""Shared fixtures for the benchmark harnesses.

Benchmark semantics: each bench target regenerates one panel/point of the
paper's evaluation on the *simulated* Jetson Nano.  The quantity of
interest is the modelled time (attached to ``benchmark.extra_info``);
pytest-benchmark's wall-clock column measures only how long the simulator
takes and has no meaning for the paper comparison.  Every benchmark runs
``pedantic(rounds=1, iterations=1)`` because simulated results are exactly
deterministic.

Problem sizes default to a reduced sweep so ``pytest benchmarks/
--benchmark-only`` completes in minutes; set ``REPRO_BENCH_FULL=1`` to run
the paper's full Fig. 4 axes (tens of minutes; EXPERIMENTS.md records the
full-sweep results).
"""

import os

import pytest

#: reduced sweeps (subset of the paper's axes) used by default
REDUCED_SIZES = {
    "3dconv": (32, 64, 128),
    "bicg": (512, 1024, 2048),
    "atax": (512, 1024, 2048),
    "mvt": (512, 1024, 2048),
    "gemm": (128, 256, 512),
    "gramschmidt": (128, 256),
}


def bench_sizes(app_name: str):
    from repro.bench.suite import get_app
    if os.environ.get("REPRO_BENCH_FULL"):
        return get_app(app_name).sizes
    return REDUCED_SIZES[app_name]


def run_panel_point(benchmark, app_name: str, size: int, version: str):
    from repro.bench.harness import run_app
    from repro.bench.suite import get_app

    app = get_app(app_name)
    result = {}

    def once():
        result["r"] = run_app(app, size, version, launch_mode="sample")

    benchmark.pedantic(once, rounds=1, iterations=1)
    r = result["r"]
    benchmark.extra_info["simulated_seconds"] = round(r.mean_s, 6)
    benchmark.extra_info["kernel_seconds"] = round(r.kernel_s, 6)
    benchmark.extra_info["memory_seconds"] = round(r.memory_s, 6)
    benchmark.extra_info["launches"] = r.launches
    benchmark.extra_info["version"] = version
    benchmark.extra_info["size"] = size
    return r
