"""Figure 4f reproduction: gramschmidt — execution time vs problem size,
pure CUDA vs OMPi cudadev (paper §5).

Run with `pytest benchmarks/bench_fig4_gramschmidt.py --benchmark-only`.
The simulated times land in `extra_info.simulated_seconds`.
"""

import pytest

from conftest import bench_sizes, run_panel_point


@pytest.mark.parametrize("size", bench_sizes("gramschmidt"))
@pytest.mark.parametrize("version", ["cuda", "ompi"])
def test_gramschmidt(benchmark, size, version):
    benchmark.group = f"gramschmidt n={size}"
    run_panel_point(benchmark, "gramschmidt", size, version)
