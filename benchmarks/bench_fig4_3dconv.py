"""Figure 4a reproduction: 3dconv — execution time vs problem size,
pure CUDA vs OMPi cudadev (paper §5).

Run with `pytest benchmarks/bench_fig4_3dconv.py --benchmark-only`.
The simulated times land in `extra_info.simulated_seconds`.
"""

import pytest

from conftest import bench_sizes, run_panel_point


@pytest.mark.parametrize("size", bench_sizes("3dconv"))
@pytest.mark.parametrize("version", ["cuda", "ompi"])
def test_conv3d(benchmark, size, version):
    benchmark.group = f"3dconv n={size}"
    run_panel_point(benchmark, "3dconv", size, version)
