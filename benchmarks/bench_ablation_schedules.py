"""Ablation: loop schedules on the device (paper §4.2.2: "all schedules
are supported (static, dynamic, and guided)").

Static chunking is arithmetic per thread; dynamic and guided serialise on
the team-shared counter, costing runtime-call traffic per chunk.
"""

import numpy as np
import pytest

from repro.ompi import OmpiCompiler, OmpiConfig

_SRC = r'''
float x[{N}], y[{N}];
int main(void)
{{
    int i, n = {N};
    #pragma omp target teams distribute parallel for {SCHED} \
        map(to: x[0:n], n) map(tofrom: y[0:n]) \
        num_teams(4) num_threads(256)
    for (i = 0; i < n; i++)
        y[i] = x[i] * x[i] + y[i];
    return 0;
}}
'''

SCHEDULES = {
    "static": "schedule(static)",
    "static-chunk8": "schedule(static, 8)",
    "dynamic": "schedule(dynamic, 8)",
    "guided": "schedule(guided)",
}


@pytest.mark.parametrize("sched", list(SCHEDULES))
def test_device_schedule(benchmark, sched):
    n = 16384
    benchmark.group = f"schedule kind (n={n})"
    src = _SRC.format(N=n, SCHED=SCHEDULES[sched])
    prog = OmpiCompiler(OmpiConfig()).compile(src, f"sched_{sched.replace('-', '_')}")
    seed = {"x": np.arange(n, dtype=np.float32) % 32,
            "y": np.ones(n, dtype=np.float32)}
    result = {}

    def once():
        result["r"] = prog.run(launch_mode="full", seed_arrays=seed)

    benchmark.pedantic(once, rounds=1, iterations=1)
    run = result["r"]
    x = np.arange(n, dtype=np.float32) % 32
    assert np.allclose(run.machine.global_array("y"), x * x + 1)
    benchmark.extra_info["simulated_seconds"] = round(run.measured_time, 6)
    stats = run.ort.cudadev.driver.last_kernel_stats
    benchmark.extra_info["instructions"] = stats.instructions
    benchmark.extra_info["loop_iterations"] = stats.loop_iterations
