"""Ablation: ``target data`` enclosing vs per-target mapping (paper §2:
"enclose multiple target constructs that can rely on a single data
environment, substantially reducing unnecessary data movements").
"""

import numpy as np
import pytest

from repro.ompi import OmpiCompiler, OmpiConfig

_KERNELS = r'''
        #pragma omp target teams distribute parallel for \
            map(tofrom: v[0:n]) map(to: n) num_teams({TEAMS}) num_threads(256)
        for (i = 0; i < n; i++) v[i] = v[i] + 1.0f;
'''

_WITH = r'''
float v[{N}];
int main(void)
{{
    int i, n = {N}, rep;
    #pragma omp target data map(tofrom: v[0:n])
    {{
        for (rep = 0; rep < {REPS}; rep++)
        {{
{KERNELS}
        }}
    }}
    return 0;
}}
'''

_WITHOUT = r'''
float v[{N}];
int main(void)
{{
    int i, n = {N}, rep;
    for (rep = 0; rep < {REPS}; rep++)
    {{
{KERNELS}
    }}
    return 0;
}}
'''

REPS = 16
N = 1 << 18


@pytest.mark.parametrize("variant", ["enclosing-target-data", "per-target-maps"])
def test_target_data_transfer_savings(benchmark, variant):
    benchmark.group = "target data enclosure"
    template = _WITH if variant == "enclosing-target-data" else _WITHOUT
    src = template.format(N=N, REPS=REPS,
                          KERNELS=_KERNELS.format(TEAMS=N // 256))
    prog = OmpiCompiler(OmpiConfig()).compile(
        src, f"td_{variant.replace('-', '_')}")
    result = {}

    def once():
        result["r"] = prog.run(launch_mode="sample",
                               seed_arrays={"v": np.zeros(N, dtype=np.float32)})

    benchmark.pedantic(once, rounds=1, iterations=1)
    run = result["r"]
    log = run.log
    big_h2d = sum(1 for e in log.events
                  if e.kind == "memcpy_h2d" and e.bytes >= N)
    big_d2h = sum(1 for e in log.events
                  if e.kind == "memcpy_d2h" and e.bytes >= N)
    benchmark.extra_info["simulated_seconds"] = round(log.measured_time, 6)
    benchmark.extra_info["array_h2d"] = big_h2d
    benchmark.extra_info["array_d2h"] = big_d2h
    if variant == "enclosing-target-data":
        assert big_h2d == 1 and big_d2h == 1
    else:
        assert big_h2d == REPS and big_d2h == REPS
