"""Serving load test: many concurrent sessions over a shared registry.

Simulates an open-loop multi-tenant workload against the persistent
:class:`repro.serving.OffloadServer`: sessions arrive in bursts on the
virtual clock, submit small offload programs (several distinct kernels,
so the compile cache and the batcher both see a mix), and run multiple
rounds so warm-state reuse and quota-driven eviction are exercised.

Reported into ``BENCH_serving.json``:

* request latency p50/p95/p99 (simulated seconds — deterministic),
* throughput (completed requests per simulated second),
* batch-size histogram, eviction/reuse counters, compile-cache stats,
* cold vs warm time-to-first-launch (host wall-clock; the compile-cache
  payoff), and
* a bit-identity verdict: every session's results must equal a
  standalone ``CompiledProgram.run`` of the same program and seed.

Usage:
    PYTHONPATH=src python benchmarks/bench_serving.py             # full load
    PYTHONPATH=src python benchmarks/bench_serving.py --check     # CI smoke
    PYTHONPATH=src python benchmarks/bench_serving.py --sessions 512

``--check`` (also reachable as ``bench_runner.py --serving-check``) runs
64 sessions over 4 devices and fails on: any failed request, output
divergence, p99 above the checked-in budget
(``benchmarks/serving_budget.json``), warm TTFL speedup below 5x, no
multi-request batches, or an idle device.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.ompi.cache import CompileCache
from repro.ompi.config import OmpiConfig
from repro.serving import OffloadServer, TenantQuota, percentile

#: simulated seconds between arrival bursts
BURST_GAP_S = 0.0005
#: sessions arriving in one burst (same arrival instant — the
#: deterministic session-id tie-break orders them)
BURST_SIZE = 8


def _vadd_src(n: int) -> str:
    return f"""
float a[{n}], b[{n}], c[{n}];
int main(void) {{
  #pragma omp target teams distribute parallel for map(to: a, b) map(from: c)
  for (int i = 0; i < {n}; i++) c[i] = a[i] * 2.0f + b[i];
  return 0;
}}
"""


def _scale_src(n: int) -> str:
    return f"""
float x[{n}], y[{n}];
int main(void) {{
  #pragma omp target teams distribute parallel for map(to: x) map(tofrom: y)
  for (int i = 0; i < {n}; i++) y[i] = 2.5f * x[i] + y[i];
  return 0;
}}
"""


def _gemm_src(n: int) -> str:
    return f"""
float A[{n}][{n}], B[{n}][{n}], C[{n}][{n}];
int main(void) {{
  #pragma omp target teams distribute parallel for collapse(2) \\
      map(to: A, B) map(tofrom: C)
  for (int i = 0; i < {n}; i++)
    for (int j = 0; j < {n}; j++) {{
      float acc = 0.0f;
      for (int k = 0; k < {n}; k++) acc = acc + A[i][k] * B[k][j];
      C[i][j] = acc;
    }}
  return 0;
}}
"""


def _seeded(shape, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).random(shape, dtype=np.float32)


class ProgramDef:
    def __init__(self, name: str, source: str, seed_arrays: dict,
                 outputs: tuple):
        self.name = name
        self.source = source
        self.seed_arrays = seed_arrays
        self.outputs = outputs


def program_mix() -> list[ProgramDef]:
    n = 64
    g = 8
    return [
        ProgramDef("vadd", _vadd_src(n),
                   {"a": _seeded(n, 1), "b": _seeded(n, 2)}, ("c",)),
        ProgramDef("scale", _scale_src(n),
                   {"x": _seeded(n, 3), "y": _seeded(n, 4)}, ("y",)),
        ProgramDef("gemm", _gemm_src(g),
                   {"A": _seeded((g, g), 5), "B": _seeded((g, g), 6),
                    "C": np.zeros((g, g), dtype=np.float32)}, ("C",)),
    ]


def standalone_reference(progdef: ProgramDef, cache: CompileCache,
                         config: OmpiConfig) -> dict[str, bytes]:
    """One classic (non-serving) run of the program — the bytes every
    session's result must match exactly."""
    prog = cache.get(progdef.source, progdef.name, config)
    run = prog.run(seed_arrays=progdef.seed_arrays, num_devices=1)
    return {out: np.asarray(run.machine.global_array(out)).tobytes()
            for out in progdef.outputs}


def load_test(num_sessions: int, num_devices: int, rounds: int = 2,
              tenants: int = 8, max_batch: int = 8,
              resident_quota: int = 512,
              cache: CompileCache | None = None,
              trace_path: str | None = None) -> dict:
    """Run the workload; returns the BENCH entry (see module docstring)."""
    config = OmpiConfig()
    cache = cache if cache is not None else CompileCache()
    programs = program_mix()
    wall0 = time.perf_counter()
    server = OffloadServer(
        num_devices=num_devices, config=config, compile_cache=cache,
        max_batch=max_batch,
        default_quota=TenantQuota(max_resident_bytes=resident_quota),
        profile=trace_path if trace_path else True,
    )
    sessions = [server.open_session(f"tenant{i % tenants}")
                for i in range(num_sessions)]
    requests = []
    t = 0.0
    for r in range(rounds):
        # after the first round the first burst of sessions goes idle —
        # their warm state is what quota pressure then evicts
        active = sessions if r == 0 else sessions[BURST_SIZE:]
        for start in range(0, len(active), BURST_SIZE):
            burst = active[start:start + BURST_SIZE]
            for s in burst:
                # one program per session, stable across rounds, so the
                # second round hits the session's parked buffers
                p = programs[s.sid % len(programs)]
                requests.append(server.submit(
                    s, p.source, name=p.name, seed_arrays=p.seed_arrays,
                    outputs=p.outputs, arrival=t))
            t += BURST_GAP_S
        done = server.drain()
        t = max(t, server.clock.now())
    assert len(done) <= len(requests)

    # bit-identity: every completed request against the standalone run
    refs = {p.name: standalone_reference(p, cache, config)
            for p in programs}
    mismatches = 0
    for req in requests:
        if req.status != "done":
            continue
        ref = refs[req.name]
        for out, arr in req.result.items():
            if np.asarray(arr).tobytes() != ref[out]:
                mismatches += 1
    devices_used = sorted({r.session.device for r in requests})
    stats = server.stats
    latencies = stats.latencies
    done_times = [r.done_time for r in requests if r.status == "done"]
    arrivals = [r.arrival for r in requests]
    makespan = (max(done_times) - min(arrivals)) if done_times else 0.0
    server.close()
    return {
        "sessions": num_sessions,
        "devices": num_devices,
        "tenants": tenants,
        "rounds": rounds,
        "requests": len(requests),
        "completed": stats.completed,
        "failed": stats.failed,
        "rejected": stats.rejections,
        "latency_p50_s": percentile(latencies, 50),
        "latency_p95_s": percentile(latencies, 95),
        "latency_p99_s": percentile(latencies, 99),
        "throughput_rps": (stats.completed / makespan) if makespan else 0.0,
        "batch_histogram": {str(k): v
                            for k, v in sorted(stats.batches.items())},
        "evictions": stats.evictions,
        "evicted_bytes": stats.evicted_bytes,
        "reuse_hits": stats.reuse_hits,
        "reuse_bytes": stats.reuse_bytes,
        "compile_cache": cache.stats,
        "devices_used": devices_used,
        "output_mismatches": mismatches,
        "wall_s": round(time.perf_counter() - wall0, 3),
    }


def ttfl_experiment() -> dict:
    """Cold vs warm time-to-first-launch: two servers sharing one compile
    cache — the second server's first requests skip the whole OMPi+nvcc
    pipeline and should reach their first kernel submission >= 5x
    faster."""
    cache = CompileCache()
    programs = program_mix()
    ttfl = {}
    for phase in ("cold", "warm"):
        server = OffloadServer(num_devices=1, compile_cache=cache)
        sess = server.open_session("ttfl")
        for p in programs:
            server.submit(sess, p.source, name=p.name,
                          seed_arrays=p.seed_arrays, outputs=p.outputs)
        done = server.drain()
        ttfl[phase] = [r.ttfl for r in done if r.ttfl is not None]
        server.close()
    cold = float(np.mean(ttfl["cold"])) if ttfl["cold"] else 0.0
    warm = float(np.mean(ttfl["warm"])) if ttfl["warm"] else 0.0
    return {
        "ttfl_cold_s": round(cold, 6),
        "ttfl_warm_s": round(warm, 6),
        "ttfl_speedup": round(cold / warm, 2) if warm else 0.0,
    }


def _budget_path() -> Path:
    return Path(__file__).resolve().parent / "serving_budget.json"


def check_failures(entry: dict, budget: dict) -> list[str]:
    failures = []
    if entry["failed"]:
        failures.append(f"{entry['failed']} requests failed")
    if entry["output_mismatches"]:
        failures.append(f"{entry['output_mismatches']} outputs diverged "
                        "from the standalone run")
    if entry["completed"] != entry["requests"]:
        failures.append(f"only {entry['completed']}/{entry['requests']} "
                        "requests completed")
    p99_budget = budget.get("p99_latency_s")
    if p99_budget is not None and entry["latency_p99_s"] > p99_budget:
        failures.append(f"p99 latency {entry['latency_p99_s']:.6f}s exceeds "
                        f"budget {p99_budget:.6f}s")
    if entry["ttfl"]["ttfl_speedup"] < 5.0:
        failures.append(f"warm TTFL speedup {entry['ttfl']['ttfl_speedup']}x "
                        "below 5x")
    if not any(int(k) > 1 for k in entry["batch_histogram"]):
        failures.append("no multi-request batches were formed")
    if entry["devices_used"] != list(range(entry["devices"])):
        failures.append(f"expected sessions on devices "
                        f"{list(range(entry['devices']))}, "
                        f"got {entry['devices_used']}")
    if entry["evictions"] == 0:
        failures.append("quota pressure produced no evictions")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--check", action="store_true",
                    help="CI smoke: 64 sessions x 4 devices; fail on p99 "
                         "budget regression, divergence, or missing "
                         "batching/eviction/TTFL wins")
    ap.add_argument("--sessions", type=int, default=None)
    ap.add_argument("--devices", type=int, default=None)
    ap.add_argument("--rounds", type=int, default=3)
    ap.add_argument("--trace", default=None,
                    help="write the serving chrome trace here")
    ap.add_argument("--output", default=None,
                    help="output JSON path (default: BENCH_serving.json at "
                         "the repo root)")
    ap.add_argument("--update-budget", action="store_true",
                    help="rewrite serving_budget.json from this run "
                         "(p99 x 1.5 headroom)")
    args = ap.parse_args(argv)

    sessions = args.sessions or (64 if args.check else 256)
    devices = args.devices or 4
    print(f"[bench] serving load test: {sessions} sessions, "
          f"{devices} devices, {args.rounds} rounds ...", flush=True)
    entry = load_test(sessions, devices, rounds=args.rounds,
                      trace_path=args.trace)
    print(f"[bench]   {entry['completed']}/{entry['requests']} done  "
          f"p50 {entry['latency_p50_s'] * 1e3:.3f}ms  "
          f"p99 {entry['latency_p99_s'] * 1e3:.3f}ms  "
          f"{entry['throughput_rps']:.0f} req/s  "
          f"evictions {entry['evictions']}  "
          f"reuse {entry['reuse_hits']}  wall {entry['wall_s']}s")
    print("[bench] cold/warm time-to-first-launch ...", flush=True)
    entry["ttfl"] = ttfl_experiment()
    print(f"[bench]   cold {entry['ttfl']['ttfl_cold_s'] * 1e3:.1f}ms  "
          f"warm {entry['ttfl']['ttfl_warm_s'] * 1e3:.1f}ms  "
          f"speedup {entry['ttfl']['ttfl_speedup']}x")

    out_path = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_serving.json")
    out_path.write_text(json.dumps(entry, indent=2) + "\n")
    print(f"[bench] wrote {out_path}")

    if args.update_budget:
        budget = {"p99_latency_s": round(entry["latency_p99_s"] * 1.5, 6),
                  "source": f"{sessions} sessions x {devices} devices"}
        _budget_path().write_text(json.dumps(budget, indent=2) + "\n")
        print(f"[bench] wrote {_budget_path()}")

    budget = {}
    if _budget_path().exists():
        budget = json.loads(_budget_path().read_text())
    failures = check_failures(entry, budget) if args.check else []
    for msg in failures:
        print(f"[bench] FAIL {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
