"""The rest of the Unibench suite (paper §5: "We get similar results with
the rest of the applications in the suite"): 2dconv, gesummv, syrk, 2mm.

One small/medium point per app, both versions — enough to confirm that
OMPi keeps tracking CUDA outside the six Figure-4 panels.
"""

import pytest

from conftest import run_panel_point

POINTS = {
    "2dconv": 512,
    "gesummv": 1024,
    "syrk": 256,
    "2mm": 256,
}


@pytest.mark.parametrize("app_name", sorted(POINTS))
@pytest.mark.parametrize("version", ["cuda", "ompi"])
def test_extended_app(benchmark, app_name, version):
    size = POINTS[app_name]
    benchmark.group = f"{app_name} n={size}"
    run_panel_point(benchmark, app_name, size, version)
