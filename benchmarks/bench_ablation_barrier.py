"""Ablation: named-barrier cost vs participating-thread count (paper
§4.2.2's W*ceil(N/W) round-up rule).

A master/worker parallel region of N threads executes a barrier-heavy
loop; the barrier synchronises X = 32*ceil(N/32) threads, so cost steps at
warp-size boundaries rather than rising per thread.
"""

import numpy as np
import pytest

from repro.ompi import OmpiCompiler, OmpiConfig

_SRC = r'''
int out[97];
int main(void)
{{
    #pragma omp target map(tofrom: out)
    {{
        #pragma omp parallel num_threads({NTHR})
        {{
            int r;
            for (r = 0; r < 16; r++)
            {{
                out[omp_get_thread_num()] += 1;
                #pragma omp barrier
            }}
        }}
    }}
    return 0;
}}
'''


@pytest.mark.parametrize("nthr", [16, 32, 40, 64, 96])
def test_barrier_roundup_cost(benchmark, nthr):
    benchmark.group = "barrier round-up"
    prog = OmpiCompiler(OmpiConfig()).compile(_SRC.format(NTHR=nthr),
                                              f"barr{nthr}")
    result = {}

    def once():
        result["r"] = prog.run(launch_mode="full")

    benchmark.pedantic(once, rounds=1, iterations=1)
    run = result["r"]
    out = run.machine.global_array("out")
    assert (out[:nthr] == 16).all()
    assert (out[nthr:96] == 0).all()
    stats = run.ort.cudadev.driver.last_kernel_stats
    from repro.devrt.barriers import round_up_threads
    benchmark.extra_info["participants"] = nthr
    benchmark.extra_info["rounded"] = round_up_threads(nthr)
    benchmark.extra_info["barrier_arrivals"] = stats.barriers
    benchmark.extra_info["simulated_seconds"] = round(run.measured_time, 6)
