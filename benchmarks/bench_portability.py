#!/usr/bin/env python3
"""Portability matrix: the Figure-4 kernel suite on every device backend.

The paper's central claim is that one OpenMP source runs unchanged on any
CUDA device OMPi carries a transformation set for.  This benchmark makes
that measurable for the reproduction's heterogeneous registry
(``repro.devices``):

* **matrix** — every Figure-4 kernel runs on every named backend
  (``nano``, ``tx2``, ``v100``); outputs must be *bit-identical* to the
  single-Nano baseline (the kernels are compiled once for the primary
  arch and retargeted per device), while the modelled times reflect each
  device's timing model;
* **mixed shard** — a ``shard(2)`` GEMM on a ``nano,v100`` registry under
  equal-split vs throughput-balanced planning: both must stay
  bit-identical to the single-Nano run, and the throughput plan must
  lower both the total modelled time and the per-device imbalance
  (max/min shard kernel time over devices that received work);
* **txn memo** — wall-clock of one matrix point with the per-warp
  memory-transaction memo (``repro.cuda.sim.engine``) off vs on, plus
  the memo's hit/miss counters.

Writes ``BENCH_portability.json``.  ``--check`` runs the smoke sizes and
exits non-zero if any invariant fails (used by CI's portability job).
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import get_app  # noqa: E402
from repro.bench.harness import _heap_capacity, _prog_name  # noqa: E402
from repro.ompi.compiler import OmpiCompiler  # noqa: E402
from repro.ompi.config import OmpiConfig  # noqa: E402

#: the Fig. 4 suite at bit-identity-friendly sizes (full functional runs)
MATRIX_POINTS = (("3dconv", 20), ("bicg", 96), ("atax", 96),
                 ("mvt", 64), ("gemm", 64), ("gramschmidt", 24))
CHECK_POINTS = (("atax", 96), ("gemm", 64))

BACKENDS = ("nano", "tx2", "v100")

SHARD_APP, SHARD_N = "gemm", 64


def _digest(machine, outputs) -> str:
    h = hashlib.sha256()
    for name in outputs:
        h.update(np.asarray(machine.global_array(name)).tobytes())
    return h.hexdigest()[:16]


def _run_on(app, n: int, backends=None, num_devices=None, source=None,
            profile: bool = False):
    """One full functional run of ``app`` at size ``n`` on the given
    registry; compiled fresh so per-arch image maps never leak between
    configurations."""
    config = OmpiConfig(block_shape=app.block_shape, profile=profile)
    prog = OmpiCompiler(config).compile(source or app.omp_source(n),
                                        _prog_name(app, n))
    return prog.run(launch_mode="full", seed_arrays=app.seed(n),
                    heap_capacity=_heap_capacity(app, n),
                    devices=backends, num_devices=num_devices)


def matrix_point(name: str, n: int) -> dict:
    app = get_app(name)
    entry: dict = {"benchmark": name, "size": n, "backends": {}}
    baseline = None
    for backend in BACKENDS:
        t0 = time.perf_counter()
        run = _run_on(app, n, backends=[backend])
        wall = time.perf_counter() - t0
        digest = _digest(run.machine, app.outputs)
        if baseline is None:
            baseline = digest
        entry["backends"][backend] = {
            "arch": run.ort.cudadev.backend.arch,
            "digest": digest,
            "bit_identical_to_nano": digest == baseline,
            "modelled_s": run.measured_time,
            "wall_s": round(wall, 3),
        }
    entry["bit_identical"] = all(b["bit_identical_to_nano"]
                                 for b in entry["backends"].values())
    return entry


def _per_device_kernel_s(run) -> dict[int, float]:
    per: dict[int, float] = {}
    for rec in run.profile.records():
        if rec.kind == "kernel":
            per[rec.device] = per.get(rec.device, 0.0) \
                + (rec.t_end - rec.t_start)
    return per


def _imbalance(per_device: dict[int, float]) -> float:
    busy = [t for t in per_device.values() if t > 0.0]
    return max(busy) / min(busy) if busy else float("inf")


def shard_point() -> dict:
    app = get_app(SHARD_APP)
    src = app.omp_source(SHARD_N)
    marker = "target teams distribute parallel for"
    sharded = src.replace(marker, f"{marker} shard(2)", 1)
    assert sharded != src, f"{SHARD_APP} has no shardable construct"

    single = _run_on(app, SHARD_N, num_devices=1)
    baseline = _digest(single.machine, app.outputs)
    entry: dict = {
        "benchmark": SHARD_APP, "size": SHARD_N,
        "registry": "nano,v100",
        "single_nano": {"digest": baseline,
                        "modelled_s": single.measured_time},
        "modes": {},
    }
    for mode in ("equal", "throughput"):
        os.environ["REPRO_SHARD_BALANCE"] = mode
        try:
            run = _run_on(app, SHARD_N, backends="nano,v100",
                          source=sharded, profile=True)
        finally:
            del os.environ["REPRO_SHARD_BALANCE"]
        per = _per_device_kernel_s(run)
        entry["modes"][mode] = {
            "digest": _digest(run.machine, app.outputs),
            "bit_identical_to_nano":
                _digest(run.machine, app.outputs) == baseline,
            "modelled_s": run.measured_time,
            "per_device_kernel_s": {str(k): v for k, v in sorted(per.items())},
            "imbalance": _imbalance(per),
        }
    eq, tp = entry["modes"]["equal"], entry["modes"]["throughput"]
    entry["bit_identical"] = (eq["bit_identical_to_nano"]
                              and tp["bit_identical_to_nano"])
    entry["throughput_beats_equal"] = (
        tp["modelled_s"] < eq["modelled_s"]
        and tp["imbalance"] <= eq["imbalance"])
    return entry


def txn_memo_point(name: str, n: int) -> dict:
    from repro.cuda.sim import engine

    app = get_app(name)
    entry: dict = {"benchmark": name, "size": n, "modes": {}}
    digests = {}
    saved = engine._TXN_MEMO_ENABLED
    try:
        for mode, enabled in (("off", False), ("on", True)):
            engine._TXN_MEMO.clear()
            engine._TXN_MEMO_STATS.update(hits=0, misses=0)
            engine._TXN_MEMO_ENABLED = enabled
            t0 = time.perf_counter()
            run = _run_on(app, n, num_devices=1)
            wall = time.perf_counter() - t0
            digests[mode] = _digest(run.machine, app.outputs)
            entry["modes"][mode] = {
                "wall_s": round(wall, 3),
                "modelled_s": run.measured_time,
                "memo": dict(engine._TXN_MEMO_STATS),
            }
    finally:
        engine._TXN_MEMO_ENABLED = saved
    entry["identical_output"] = digests["off"] == digests["on"]
    entry["identical_modelled_time"] = (
        entry["modes"]["off"]["modelled_s"]
        == entry["modes"]["on"]["modelled_s"])
    entry["speedup"] = round(
        entry["modes"]["off"]["wall_s"]
        / max(entry["modes"]["on"]["wall_s"], 1e-9), 2)
    return entry


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", action="store_true",
                        help="smoke subset + invariant enforcement (CI)")
    parser.add_argument("--output", default="BENCH_portability.json")
    args = parser.parse_args(argv)

    points = CHECK_POINTS if args.check else MATRIX_POINTS
    report: dict = {"matrix": [], "backends": list(BACKENDS)}
    ok = True
    for name, n in points:
        print(f"[bench] portability {name} n={n} ...", flush=True)
        entry = matrix_point(name, n)
        report["matrix"].append(entry)
        ok &= entry["bit_identical"]

    print(f"[bench] mixed shard {SHARD_APP} n={SHARD_N} ...", flush=True)
    report["mixed_shard"] = shard_point()
    ok &= report["mixed_shard"]["bit_identical"]
    ok &= report["mixed_shard"]["throughput_beats_equal"]

    memo_name, memo_n = "gemm", 64
    print(f"[bench] txn memo {memo_name} n={memo_n} ...", flush=True)
    report["txn_memo"] = txn_memo_point(memo_name, memo_n)
    ok &= report["txn_memo"]["identical_output"]
    ok &= report["txn_memo"]["identical_modelled_time"]

    report["ok"] = bool(ok)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
    print(f"[bench] wrote {args.output}")

    for entry in report["matrix"]:
        times = "  ".join(
            f"{b}={v['modelled_s'] * 1e3:.3f}ms"
            for b, v in entry["backends"].items())
        print(f"  {entry['benchmark']:12s} n={entry['size']:<4d} "
              f"bit-identical={entry['bit_identical']}  {times}")
    ms = report["mixed_shard"]
    print(f"  shard {ms['benchmark']} on {ms['registry']}: "
          f"equal {ms['modes']['equal']['modelled_s'] * 1e3:.3f}ms "
          f"(imb {ms['modes']['equal']['imbalance']:.2f}) -> throughput "
          f"{ms['modes']['throughput']['modelled_s'] * 1e3:.3f}ms "
          f"(imb {ms['modes']['throughput']['imbalance']:.2f}), "
          f"bit-identical={ms['bit_identical']}")
    tm = report["txn_memo"]
    print(f"  txn memo {tm['benchmark']}: off {tm['modes']['off']['wall_s']}s "
          f"-> on {tm['modes']['on']['wall_s']}s (x{tm['speedup']}), "
          f"memo hits={tm['modes']['on']['memo']['hits']} "
          f"misses={tm['modes']['on']['memo']['misses']}")

    if not ok:
        print("[bench] PORTABILITY CHECK FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
