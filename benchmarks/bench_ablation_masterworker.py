"""Ablation: master/worker scheme vs combined construct (paper §§3.1-3.2).

The same SAXPY computation written (a) as a standalone ``parallel for``
inside a ``target`` region — forcing the master/worker scheme with its
B1/B2 barrier protocol — and (b) as the recommended combined ``target
teams distribute parallel for``.  The combined form avoids the
master/worker machinery entirely ("Combined parallel directives do not
utilize the master/worker scheme at all", §4.2.2) and scales past one
block.
"""

import numpy as np
import pytest

from repro.ompi import OmpiCompiler, OmpiConfig

_MW = r'''
float x[{N}], y[{N}];
int main(void)
{{
    int i, n = {N};
    #pragma omp target map(to: x[0:n], n) map(tofrom: y[0:n])
    {{
        int i2;
        #pragma omp parallel for
        for (i2 = 0; i2 < n; i2++)
            y[i2] = 2.5f * x[i2] + y[i2];
    }}
    return 0;
}}
'''

_COMBINED = r'''
float x[{N}], y[{N}];
int main(void)
{{
    int i, n = {N};
    #pragma omp target teams distribute parallel for \
        map(to: x[0:n], n) map(tofrom: y[0:n]) \
        num_teams({TEAMS}) num_threads(128)
    for (i = 0; i < n; i++)
        y[i] = 2.5f * x[i] + y[i];
    return 0;
}}
'''


@pytest.mark.parametrize("n", [4096, 16384])
@pytest.mark.parametrize("scheme", ["masterworker", "combined"])
def test_parallel_region_scheme(benchmark, scheme, n):
    benchmark.group = f"saxpy scheme n={n}"
    src = (_MW if scheme == "masterworker" else _COMBINED).format(
        N=n, TEAMS=(n + 127) // 128)
    prog = OmpiCompiler(OmpiConfig()).compile(src, f"mw_{scheme}_{n}")
    seed = {"x": np.arange(n, dtype=np.float32),
            "y": np.ones(n, dtype=np.float32)}
    result = {}

    def once():
        result["r"] = prog.run(launch_mode="full", seed_arrays=seed)

    benchmark.pedantic(once, rounds=1, iterations=1)
    run = result["r"]
    got = run.machine.global_array("y")
    assert np.allclose(got, 2.5 * np.arange(n) + 1)
    benchmark.extra_info["simulated_seconds"] = round(run.measured_time, 6)
    benchmark.extra_info["scheme"] = scheme
    stats = run.ort.cudadev.driver.last_kernel_stats
    benchmark.extra_info["block"] = stats.block
    benchmark.extra_info["grid"] = stats.grid
    benchmark.extra_info["barriers"] = stats.barriers
    if scheme == "masterworker":
        # the paper's fixed 128-thread launch with barrier traffic
        assert stats.block == (128, 1, 1)
        assert stats.barriers > 0
    else:
        assert stats.barriers == 0
