"""Asynchronous offload benchmark: serialized vs overlapped execution of
two independent Figure-4-style kernels (the mvt decomposition: x1 = A*y1
and x2 = At*y2 have no mutual dependence).

The "serial" variant offloads both kernels synchronously; the "nowait"
variant marks them ``target nowait`` with disjoint ``depend`` sets so the
runtime places them on separate CUDA streams and the copy engine overlaps
the other stream's compute.  The quantity of interest is the modelled
time in ``extra_info``: ``serialized_seconds`` (sum of device ops),
``wall_seconds`` (union of busy intervals) and their ratio.

Run with `pytest benchmarks/bench_async_overlap.py --benchmark-only`.
"""

import os

import pytest

SIZES = (128, 256) if not os.environ.get("REPRO_BENCH_FULL") else (128, 256, 512)

TEMPLATE = r'''
double A[{nn}], y1[{n}], y2[{n}], x1[{n}], x2[{n}];

int main(void)
{{
    int i, j;
    for (i = 0; i < {n}; i++) {{
        x1[i] = 0.0; x2[i] = 0.0;
        y1[i] = i * 0.5; y2[i] = i * 0.25;
        for (j = 0; j < {n}; j++)
            A[i * {n} + j] = (i + j) * 0.01;
    }}

    #pragma omp target teams distribute parallel for {async1} \
            map(to: A[0:{nn}], y1[0:{n}]) map(tofrom: x1[0:{n}])
    for (i = 0; i < {n}; i++) {{
        int j;
        for (j = 0; j < {n}; j++)
            x1[i] = x1[i] + A[i * {n} + j] * y1[j];
    }}

    #pragma omp target teams distribute parallel for {async2} \
            map(to: A[0:{nn}], y2[0:{n}]) map(tofrom: x2[0:{n}])
    for (i = 0; i < {n}; i++) {{
        int j;
        for (j = 0; j < {n}; j++)
            x2[i] = x2[i] + A[j * {n} + i] * y2[j];
    }}

    #pragma omp taskwait
    return 0;
}}
'''


def make_source(n: int, overlapped: bool) -> str:
    return TEMPLATE.format(
        n=n, nn=n * n,
        async1="nowait depend(out: x1)" if overlapped else "",
        async2="nowait depend(out: x2)" if overlapped else "",
    )


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("version", ["serial", "nowait"])
def test_mvt_overlap(benchmark, size, version):
    from repro.ompi import OmpiCompiler

    benchmark.group = f"mvt-async n={size}"
    source = make_source(size, overlapped=(version == "nowait"))
    program = OmpiCompiler().compile(source, f"mvt_async_{version}_{size}")
    result = {}

    def once():
        result["r"] = program.run(launch_mode="sample")

    benchmark.pedantic(once, rounds=1, iterations=1)
    log = result["r"].ort.cudadev.driver.log
    serialized = log.measured_time
    wall = log.overlapped_time()
    benchmark.extra_info["serialized_seconds"] = round(serialized, 6)
    benchmark.extra_info["wall_seconds"] = round(wall, 6)
    benchmark.extra_info["overlap_ratio"] = round(log.overlap_ratio, 3)
    benchmark.extra_info["version"] = version
    benchmark.extra_info["size"] = size
    if version == "nowait":
        assert wall < serialized  # streams actually overlapped
    else:
        assert abs(wall - serialized) < 1e-12  # fully serialized timeline
