"""Chaos serving load test: the resilience layer under injected faults.

Runs the 64-session x 4-device serving workload twice — once fault-free
and once under a probabilistic mid-run device-loss plan
(``devlost:p=0.02,seed=42``: each launch may stickily kill its device,
with per-device decorrelated draws) — and gates on the resilience
contract:

* **bit-identity**: every completed request in both runs matches a
  standalone ``CompiledProgram.run`` of the same program and seed;
* **no silent degradation**: every request in the chaos run either
  completes or carries a *typed* rejection (``DeadlineExceeded`` /
  ``QuotaError``) — zero untyped failures while healthy devices exist;
* **bounded inflation**: the chaos run's p99 latency stays within the
  checked-in multiple of the fault-free p99
  (``benchmarks/resilience_budget.json``).

Reported into ``BENCH_resilience.json``: p50/p99 with and without
faults, the inflation ratio, retry/migration/breaker/deadline counters,
and the per-device health scores at the end of the chaos run.

Usage:
    PYTHONPATH=src python benchmarks/bench_resilience.py           # full run
    PYTHONPATH=src python benchmarks/bench_resilience.py --check   # CI gate
    PYTHONPATH=src python benchmarks/bench_resilience.py --update-budget
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))
from bench_serving import (  # noqa: E402
    BURST_GAP_S, BURST_SIZE, program_mix, standalone_reference,
)

from repro.ompi.cache import CompileCache  # noqa: E402
from repro.ompi.config import OmpiConfig  # noqa: E402
from repro.serving import OffloadServer, percentile  # noqa: E402

#: the chaos plan: every kernel launch may stickily lose its device
FAULT_SPEC = "devlost:p=0.02,seed=42"
#: generous per-request deadline budget (simulated seconds) — active so
#: late completions become typed rejections, loose enough that the
#: fault-free run never hits it
DEADLINE_S = 0.25
#: rejection prefixes that count as *typed* (everything else is silent
#: degradation and fails the gate)
TYPED = ("DeadlineExceeded", "QuotaError")


def load_test(num_sessions: int, num_devices: int, rounds: int = 2,
              tenants: int = 8, faults=None,
              cache: CompileCache | None = None) -> dict:
    """One serving run; returns metrics plus the raw request outcomes."""
    config = OmpiConfig()
    cache = cache if cache is not None else CompileCache()
    programs = program_mix()
    wall0 = time.perf_counter()
    server = OffloadServer(num_devices=num_devices, config=config,
                           compile_cache=cache, faults=faults,
                           deadline=DEADLINE_S)
    sessions = [server.open_session(f"tenant{i % tenants}")
                for i in range(num_sessions)]
    requests = []
    t = 0.0
    for _ in range(rounds):
        for start in range(0, len(sessions), BURST_SIZE):
            for s in sessions[start:start + BURST_SIZE]:
                if s.closed:
                    continue
                p = programs[s.sid % len(programs)]
                requests.append(server.submit(
                    s, p.source, name=p.name, seed_arrays=p.seed_arrays,
                    outputs=p.outputs, arrival=t))
            t += BURST_GAP_S
        server.drain()
        t = max(t, server.clock.now())

    refs = {p.name: standalone_reference(p, cache, config)
            for p in programs}
    mismatches = 0
    untyped = 0
    for req in requests:
        if req.status == "done":
            ref = refs[req.name]
            for out, arr in req.result.items():
                if np.asarray(arr).tobytes() != ref[out]:
                    mismatches += 1
        elif not (req.status == "rejected"
                  and (req.error or "").startswith(TYPED)):
            untyped += 1
    summary = server.summary()
    latencies = server.stats.latencies
    entry = {
        "sessions": num_sessions,
        "devices": num_devices,
        "rounds": rounds,
        "requests": len(requests),
        "completed": summary["completed"],
        "rejected_typed": sum(
            1 for r in requests if r.status == "rejected"),
        "untyped_failures": untyped,
        "output_mismatches": mismatches,
        "latency_p50_s": percentile(latencies, 50),
        "latency_p99_s": percentile(latencies, 99),
        "retries": summary["retries"],
        "migrations": summary["migrations"],
        "migrated_bytes": summary["migrated_bytes"],
        "deadline_rejections": summary["deadline_rejections"],
        "fault_recovery": summary["fault_recovery"],
        "device_health": summary["device_health"],
        "breakers": summary.get("breakers", {}),
        "lost_devices": [k for k, m in enumerate(server.devices) if m.lost],
        "wall_s": round(time.perf_counter() - wall0, 3),
    }
    server.close()
    return entry


def _budget_path() -> Path:
    return Path(__file__).resolve().parent / "resilience_budget.json"


def check_failures(entry: dict, budget: dict) -> list[str]:
    failures = []
    base, chaos = entry["baseline"], entry["chaos"]
    for label, run in (("baseline", base), ("chaos", chaos)):
        if run["output_mismatches"]:
            failures.append(f"{label}: {run['output_mismatches']} outputs "
                            "diverged from the standalone run")
        if run["untyped_failures"]:
            failures.append(f"{label}: {run['untyped_failures']} requests "
                            "neither completed nor typed-rejected")
    if base["completed"] != base["requests"]:
        failures.append(f"baseline: only {base['completed']}/"
                        f"{base['requests']} requests completed")
    if not chaos["lost_devices"]:
        failures.append("chaos: the fault plan lost no device — the run "
                        "exercised nothing")
    if chaos["retries"] == 0 and chaos["migrations"] == 0:
        failures.append("chaos: device loss triggered no failover "
                        "(no retries, no migrations)")
    factor = budget.get("p99_inflation_max")
    if factor is not None and base["latency_p99_s"] > 0:
        inflation = chaos["latency_p99_s"] / base["latency_p99_s"]
        if inflation > factor:
            failures.append(f"chaos p99 inflation {inflation:.2f}x exceeds "
                            f"budget {factor:.2f}x")
    return failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--check", action="store_true",
                    help="CI gate: fail on divergence, untyped failures, "
                         "missing failover, or p99 inflation over budget")
    ap.add_argument("--sessions", type=int, default=64)
    ap.add_argument("--devices", type=int, default=4)
    ap.add_argument("--rounds", type=int, default=2)
    ap.add_argument("--output", default=None,
                    help="output JSON path (default: BENCH_resilience.json "
                         "at the repo root)")
    ap.add_argument("--update-budget", action="store_true",
                    help="rewrite resilience_budget.json from this run "
                         "(measured inflation x 1.5 headroom)")
    args = ap.parse_args(argv)

    cache = CompileCache()   # shared: both runs see identical compiles
    print(f"[bench] resilience: {args.sessions} sessions x "
          f"{args.devices} devices, fault-free baseline ...", flush=True)
    base = load_test(args.sessions, args.devices, rounds=args.rounds,
                     cache=cache)
    print(f"[bench]   {base['completed']}/{base['requests']} done  "
          f"p99 {base['latency_p99_s'] * 1e3:.3f}ms  "
          f"wall {base['wall_s']}s")
    print(f"[bench] chaos run under {FAULT_SPEC} ...", flush=True)
    chaos = load_test(args.sessions, args.devices, rounds=args.rounds,
                      faults=FAULT_SPEC, cache=cache)
    inflation = (chaos["latency_p99_s"] / base["latency_p99_s"]
                 if base["latency_p99_s"] else 0.0)
    print(f"[bench]   {chaos['completed']}/{chaos['requests']} done, "
          f"{chaos['rejected_typed']} typed rejections, "
          f"{chaos['untyped_failures']} untyped  "
          f"lost {chaos['lost_devices']}  retries {chaos['retries']}  "
          f"migrations {chaos['migrations']}")
    print(f"[bench]   p99 {chaos['latency_p99_s'] * 1e3:.3f}ms "
          f"({inflation:.2f}x fault-free)  wall {chaos['wall_s']}s")

    entry = {"fault_spec": FAULT_SPEC, "deadline_s": DEADLINE_S,
             "p99_inflation": round(inflation, 4),
             "baseline": base, "chaos": chaos}
    out_path = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_resilience.json")
    out_path.write_text(json.dumps(entry, indent=2) + "\n")
    print(f"[bench] wrote {out_path}")

    if args.update_budget:
        budget = {"p99_inflation_max": round(max(inflation, 1.0) * 1.5, 2),
                  "source": f"{args.sessions} sessions x "
                            f"{args.devices} devices, {FAULT_SPEC}"}
        _budget_path().write_text(json.dumps(budget, indent=2) + "\n")
        print(f"[bench] wrote {_budget_path()}")

    budget = {}
    if _budget_path().exists():
        budget = json.loads(_budget_path().read_text())
    failures = check_failures(entry, budget) if args.check else []
    for msg in failures:
        print(f"[bench] FAIL {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
