"""Deterministic-reduction benchmark gate (DESIGN.md §16).

Three reduction-heavy Polybench workloads — ``correlation``,
``covariance`` and ``doitgen`` — run through the OMPi pipeline with the
tree reduction lowering, and a 2048x2048 sum-reduction headline point
compares the tree lowering against the legacy atomic-merge baseline
(``reduction_mode='atomic'``).

The gate asserts, per workload:

* outputs match the numpy reference (float32 tolerance — the matrix
  arithmetic itself is ordinary float work);
* the ``reduction(+: checksum)`` scalar is **bit-identical** to folding
  the device-produced matrix sequentially in iteration order (the §16
  fixed-order combine contract, checked on real float data);
* a ``shard(2)`` run on two devices is **bit-identical** to the
  single-device run — outputs and checksum (`==`, not `approx`).

The headline point must show the tree combine strictly beating the
atomic-merge baseline on modelled time (per-thread atomics serialise in
the timing model; the tree replaces them with shuffles, shared memory
and one barrier).  Results land in ``BENCH_reductions.json``.

Usage:
    PYTHONPATH=src python benchmarks/bench_reductions.py [--check] [--output P]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.ompi import OmpiCompiler, OmpiConfig

HEAP = 256 << 20

# ------------------------------------------------------------------ correlation

_CORRELATION = r'''
float data[{N}][{M}];
float corr[{M}][{M}], mean[{M}], stddev[{M}];
double checksum;

int main(void)
{
    int i, j, j1, j2;
    #pragma omp target teams distribute parallel for \
        map(tofrom: data) map(from: mean, stddev) num_teams({MTEAMS})
    for (j = 0; j < {M}; j++)
    {
        float m, s, d;
        m = 0.0f;
        for (i = 0; i < {N}; i++)
            m += data[i][j];
        m = m / (float){N};
        s = 0.0f;
        for (i = 0; i < {N}; i++)
        {
            d = data[i][j] - m;
            s += d * d;
        }
        s = sqrtf(s / (float){N});
        if (s <= 0.005f)
            s = 1.0f;
        mean[j] = m;
        stddev[j] = s;
    }
    #pragma omp target teams distribute parallel for collapse(2) \
        map(tofrom: data) map(to: mean, stddev) num_teams({NMTEAMS})
    for (i = 0; i < {N}; i++)
        for (j = 0; j < {M}; j++)
            data[i][j] = (data[i][j] - mean[j]) / stddev[j];
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: data) map(from: corr) num_teams({MMTEAMS})
    for (j1 = 0; j1 < {M}; j1++)
        for (j2 = 0; j2 < {M}; j2++)
        {
            float acc;
            acc = 0.0f;
            for (i = 0; i < {N}; i++)
                acc += data[i][j1] * data[i][j2];
            corr[j1][j2] = acc / (float){N};
        }
    checksum = 0.0;
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: corr) map(tofrom: checksum) reduction(+: checksum) \
        num_teams({MMTEAMS}) {SHARD}
    for (j1 = 0; j1 < {M}; j1++)
        for (j2 = 0; j2 < {M}; j2++)
            checksum += (double) corr[j1][j2];
    return 0;
}
'''


def correlation_seed(n: int, m: int) -> dict[str, np.ndarray]:
    i, j = np.meshgrid(np.arange(n), np.arange(m), indexing="ij")
    return {"data": (((i * 13 + j * 7) % 29) / np.float32(29))
            .astype(np.float32)}


def correlation_ref(n: int, m: int, data: np.ndarray) -> np.ndarray:
    d = data.astype(np.float64)
    mean = d.mean(axis=0)
    std = np.sqrt(((d - mean) ** 2).mean(axis=0))
    std = np.where(std <= 0.005, 1.0, std)
    norm = (d - mean) / std
    return ((norm.T @ norm) / n).astype(np.float32)


# ------------------------------------------------------------------- covariance

_COVARIANCE = r'''
float data[{N}][{M}];
float cov[{M}][{M}], mean[{M}];
double checksum;

int main(void)
{
    int i, j, j1, j2;
    #pragma omp target teams distribute parallel for \
        map(to: data) map(from: mean) num_teams({MTEAMS})
    for (j = 0; j < {M}; j++)
    {
        float m;
        m = 0.0f;
        for (i = 0; i < {N}; i++)
            m += data[i][j];
        mean[j] = m / (float){N};
    }
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: data, mean) map(from: cov) num_teams({MMTEAMS})
    for (j1 = 0; j1 < {M}; j1++)
        for (j2 = 0; j2 < {M}; j2++)
        {
            float acc;
            acc = 0.0f;
            for (i = 0; i < {N}; i++)
                acc += (data[i][j1] - mean[j1]) * (data[i][j2] - mean[j2]);
            cov[j1][j2] = acc / (float)({N} - 1);
        }
    checksum = 0.0;
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: cov) map(tofrom: checksum) reduction(+: checksum) \
        num_teams({MMTEAMS}) {SHARD}
    for (j1 = 0; j1 < {M}; j1++)
        for (j2 = 0; j2 < {M}; j2++)
            checksum += (double) cov[j1][j2];
    return 0;
}
'''


def covariance_seed(n: int, m: int) -> dict[str, np.ndarray]:
    i, j = np.meshgrid(np.arange(n), np.arange(m), indexing="ij")
    return {"data": (((i * 11 + j * 5) % 23) / np.float32(23))
            .astype(np.float32)}


def covariance_ref(n: int, m: int, data: np.ndarray) -> np.ndarray:
    d = data.astype(np.float64)
    c = d - d.mean(axis=0)
    return ((c.T @ c) / (n - 1)).astype(np.float32)


# --------------------------------------------------------------------- doitgen

_DOITGEN = r'''
float A[{NR}][{NQ}][{NP}], C4[{NP}][{NP}], S[{NR}][{NQ}][{NP}];
double checksum;

int main(void)
{
    int r, q, p, s;
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: A, C4) map(from: S) num_teams({RQTEAMS})
    for (r = 0; r < {NR}; r++)
        for (q = 0; q < {NQ}; q++)
            for (p = 0; p < {NP}; p++)
            {
                float acc;
                acc = 0.0f;
                for (s = 0; s < {NP}; s++)
                    acc += A[r][q][s] * C4[s][p];
                S[r][q][p] = acc;
            }
    checksum = 0.0;
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: S) map(tofrom: checksum) reduction(+: checksum) \
        num_teams({RQTEAMS}) {SHARD}
    for (r = 0; r < {NR}; r++)
        for (q = 0; q < {NQ}; q++)
            for (p = 0; p < {NP}; p++)
                checksum += (double) S[r][q][p];
    return 0;
}
'''


def doitgen_seed(n: int) -> dict[str, np.ndarray]:
    r, q, p = np.meshgrid(np.arange(n), np.arange(n), np.arange(n),
                          indexing="ij")
    s, t = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    return {
        "A": (((r * q + p) % 19) / np.float32(19)).astype(np.float32),
        "C4": (((s * t) % 13) / np.float32(13)).astype(np.float32),
    }


def doitgen_ref(n: int, A: np.ndarray, C4: np.ndarray) -> np.ndarray:
    return np.einsum("rqs,sp->rqp", A.astype(np.float64),
                     C4.astype(np.float64)).astype(np.float32)


# -------------------------------------------------------------------- plumbing

def _fmt(template: str, **kw) -> str:
    out = template
    for key, value in kw.items():
        out = out.replace("{" + key + "}", str(value))
    return out


def _teams(total: int, threads: int = 128) -> int:
    return max(1, (total + threads - 1) // threads)


def _run(source: str, name: str, seed: dict[str, np.ndarray],
         num_devices: int = 1, reduction_mode: str = "tree",
         launch_mode: str = "full"):
    config = OmpiConfig(num_devices=num_devices,
                        reduction_mode=reduction_mode)
    prog = OmpiCompiler(config).compile(source, name)
    return prog.run(launch_mode=launch_mode, seed_arrays=seed,
                    heap_capacity=HEAP)


def _sources(workload: str, n: int) -> tuple[dict[str, str], dict, str]:
    """(single/sharded sources, seed arrays, checksum source array name)."""
    if workload == "correlation":
        kw = dict(N=n, M=n, MTEAMS=_teams(n), NMTEAMS=_teams(n * n),
                  MMTEAMS=_teams(n * n))
        template, seed, arr = _CORRELATION, correlation_seed(n, n), "corr"
    elif workload == "covariance":
        kw = dict(N=n, M=n, MTEAMS=_teams(n), MMTEAMS=_teams(n * n))
        template, seed, arr = _COVARIANCE, covariance_seed(n, n), "cov"
    elif workload == "doitgen":
        kw = dict(NR=n, NQ=n, NP=n, RQTEAMS=_teams(n * n))
        template, seed, arr = _DOITGEN, doitgen_seed(n), "S"
    else:
        raise ValueError(workload)
    return ({"single": _fmt(template, SHARD="", **kw),
             "sharded": _fmt(template, SHARD="shard(2)", **kw)},
            seed, arr)


def run_workload(workload: str, n: int) -> dict:
    sources, seed, arr = _sources(workload, n)
    entry: dict = {"benchmark": workload, "size": n}
    results: dict[str, dict] = {}
    for key, ndev in (("single", 1), ("sharded", 2)):
        t0 = time.perf_counter()
        run = _run(sources[key], f"{workload}_{key}", seed,
                   num_devices=ndev)
        results[key] = {
            "array": np.asarray(run.machine.global_array(arr)).copy(),
            "checksum": float(run.machine.global_array("checksum").item()),
            "simulated_s": run.log.measured_time,
            "wall_s": round(time.perf_counter() - t0, 4),
        }
    single, sharded = results["single"], results["sharded"]

    if workload == "correlation":
        ref = correlation_ref(n, n, seed["data"])
    elif workload == "covariance":
        ref = covariance_ref(n, n, seed["data"])
    else:
        ref = doitgen_ref(n, seed["A"], seed["C4"])
    entry["reference_ok"] = bool(np.allclose(
        single["array"], ref, rtol=2e-3, atol=1e-5))

    # §16 contract on real float data: the reduction scalar equals the
    # sequential fold of the device-produced matrix in iteration order
    seq = np.float64(0.0)
    for v in single["array"].ravel():
        seq = np.float64(seq + np.float64(v))
    entry["checksum"] = single["checksum"]
    entry["checksum_matches_sequential_fold"] = (
        single["checksum"] == float(seq))
    entry["shard_bit_identical"] = bool(
        single["array"].tobytes() == sharded["array"].tobytes()
        and single["checksum"] == sharded["checksum"])
    entry["modes"] = {k: {kk: v[kk] for kk in ("checksum", "simulated_s",
                                               "wall_s")}
                      for k, v in results.items()}
    return entry


# -------------------------------------------------------- tree vs atomic merge

_REDUCE2D = r'''
float A[{N}][{N}];
double total;

int main(void)
{
    int i, j;
    total = 0.0;
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: A) map(tofrom: total) reduction(+: total) \
        num_teams({TEAMS}) num_threads(256)
    for (i = 0; i < {N}; i++)
        for (j = 0; j < {N}; j++)
            total += (double) A[i][j];
    return 0;
}
'''


def headline_point(n: int = 2048) -> dict:
    """Tree vs atomic-merge on the n*n sum: the tree must be faster on
    modelled time (the acceptance bar) with both lowerings agreeing on
    the value within float tolerance (the atomic merge is order-
    dependent, that is the point of replacing it)."""
    i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    seed = {"A": (((i + j) % 17) / np.float32(17)).astype(np.float32)}
    src = _fmt(_REDUCE2D, N=n, TEAMS=_teams(n * n, 256))
    entry: dict = {"benchmark": "reduce2d", "size": n, "modes": {}}
    totals: dict[str, float] = {}
    for mode in ("tree", "atomic"):
        t0 = time.perf_counter()
        run = _run(src, f"reduce2d_{mode}", seed, reduction_mode=mode,
                   launch_mode="sample")
        totals[mode] = float(run.machine.global_array("total").item())
        entry["modes"][mode] = {
            "simulated_s": run.log.measured_time,
            "wall_s": round(time.perf_counter() - t0, 4),
        }
    tree_s = entry["modes"]["tree"]["simulated_s"]
    atomic_s = entry["modes"]["atomic"]["simulated_s"]
    entry["tree_speedup"] = round(atomic_s / max(tree_s, 1e-30), 3)
    entry["tree_beats_atomic"] = tree_s < atomic_s
    entry["values_close"] = bool(np.isclose(
        totals["tree"], totals["atomic"], rtol=1e-9))
    return entry


WORKLOADS = ("correlation", "covariance", "doitgen")
DEFAULT_SIZES = {"correlation": 48, "covariance": 48, "doitgen": 20}
CHECK_SIZES = {"correlation": 32, "covariance": 32, "doitgen": 12}


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--check", action="store_true",
                    help="CI smoke: smaller workload sizes (the 2048x2048 "
                         "headline point always runs)")
    ap.add_argument("--output", default=None,
                    help="output JSON path (default: BENCH_reductions.json "
                         "next to the repo root)")
    args = ap.parse_args(argv)

    sizes = CHECK_SIZES if args.check else DEFAULT_SIZES
    results = []
    for workload in WORKLOADS:
        n = sizes[workload]
        print(f"[bench] {workload} n={n} (tree, single vs shard(2)) ...",
              flush=True)
        entry = run_workload(workload, n)
        print(f"[bench]   checksum {entry['checksum']:.6g}  "
              f"ref_ok={entry['reference_ok']}  "
              f"seq_fold={entry['checksum_matches_sequential_fold']}  "
              f"shard_identical={entry['shard_bit_identical']}")
        results.append(entry)

    print("[bench] reduce2d n=2048 (tree vs atomic merge) ...", flush=True)
    headline = headline_point()
    print(f"[bench]   tree {headline['modes']['tree']['simulated_s']:.6g}s  "
          f"atomic {headline['modes']['atomic']['simulated_s']:.6g}s  "
          f"speedup {headline['tree_speedup']}x")
    results.append(headline)

    out = {
        "metric": "modelled seconds per reduction lowering; bit-identity "
                  "of the fixed-order combine across shard layouts",
        "results": results,
    }
    out_path = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_reductions.json")
    out_path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"[bench] wrote {out_path}")

    failures = []
    for entry in results[:-1]:
        label = f"{entry['benchmark']}:{entry['size']}"
        if not entry["reference_ok"]:
            failures.append(f"{label}: outputs diverge from the numpy "
                            f"reference")
        if not entry["checksum_matches_sequential_fold"]:
            failures.append(f"{label}: reduction checksum is not the "
                            f"sequential fold of the result matrix")
        if not entry["shard_bit_identical"]:
            failures.append(f"{label}: shard(2) run differs from the "
                            f"single-device run")
    if not headline["tree_beats_atomic"]:
        failures.append(
            f"reduce2d:2048: tree lowering "
            f"({headline['modes']['tree']['simulated_s']:.6g}s) does not "
            f"beat the atomic-merge baseline "
            f"({headline['modes']['atomic']['simulated_s']:.6g}s)")
    if not headline["values_close"]:
        failures.append("reduce2d:2048: tree and atomic totals diverge "
                        "beyond float tolerance")
    for msg in failures:
        print(f"[bench] FAIL {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
