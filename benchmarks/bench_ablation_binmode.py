"""Ablation: kernel binary modes (paper §3.3).

ptx mode JIT-compiles at first launch (disk cache eliminates repeat
compilations across runs); cubin mode compiles everything ahead of time —
the OMPi default precisely because it removes the runtime JIT cost.
"""

import pytest

from repro.bench.harness import run_ompi
from repro.bench.suite import get_app
from repro.cuda.ptx.jit import JitCache
from repro.ompi import OmpiCompiler, OmpiConfig


SRC = None


def _prog(binary_mode):
    app = get_app("gemm")
    config = OmpiConfig(block_shape=app.block_shape, binary_mode=binary_mode)
    return OmpiCompiler(config).compile(app.omp_source(128), "bm"), app


@pytest.mark.parametrize("mode", ["cubin", "ptx-cold", "ptx-warm"])
def test_binary_mode_first_launch_cost(benchmark, mode, tmp_path):
    benchmark.group = "binary mode (gemm n=128, first launch)"
    binary_mode = "cubin" if mode == "cubin" else "ptx"
    prog, app = _prog(binary_mode)
    cache = JitCache(tmp_path / "cc") if mode != "cubin" else None
    if mode == "ptx-warm":
        prog.run(jit_cache=cache, launch_mode="sample",
                 seed_arrays=app.seed(128))   # populate the disk cache
    result = {}

    def once():
        result["r"] = prog.run(jit_cache=cache, launch_mode="sample",
                               seed_arrays=app.seed(128))

    benchmark.pedantic(once, rounds=1, iterations=1)
    log = result["r"].log
    benchmark.extra_info["simulated_seconds"] = round(log.measured_time, 6)
    benchmark.extra_info["jit_seconds"] = round(log.total("jit"), 6)
    benchmark.extra_info["jit_events"] = [e.detail for e in log.events
                                          if e.kind == "jit"]
    if mode == "cubin":
        assert log.count("jit") == 0
    else:
        assert log.count("jit") == 1
