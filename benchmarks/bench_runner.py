"""Fast-path benchmark runner.

Times the simulated-kernel benchmarks under ``kernel_fastpath='off'``
(tree-walk reference) and ``'on'`` (closure-compiled warp execution) and
writes ``BENCH_kernel_fastpath.json`` with per-benchmark wall-clock,
speedup and a functional-equivalence verdict (output arrays and the
paper-metric simulated time must match bitwise between modes).

Usage:
    PYTHONPATH=src python benchmarks/bench_runner.py
    PYTHONPATH=src python benchmarks/bench_runner.py --check   # CI smoke
    PYTHONPATH=src python benchmarks/bench_runner.py --points gemm:128
    PYTHONPATH=src python benchmarks/bench_runner.py --profile-overhead

``--check`` runs a single small point and exits non-zero if the fast
path is slower than the reference or produces different results.
``--profile-overhead`` times the gemm smoke case with activity profiling
off vs on (best of 3) and exits non-zero if enabling the profiler costs
more than 10% wall-clock.
``--shard-check`` runs the gemm smoke case once on a single device and
once sharded across 4 simulated devices (``shard(4)`` on the target
construct, ``num_devices=4``) and exits non-zero unless the sharded
output is bit-identical and every device launched a shard.
``--host-fastpath`` times the host-heavy gemm/mvt/atax variants
(``repro.bench.hostinit``) under ``REPRO_HOST_FASTPATH=off`` vs ``on``
and writes ``BENCH_host_fastpath.json``; each workload must be
bit-identical across modes (outputs, stdout and simulated time) and at
least two of the three must clear a 10x wall-clock speedup.  The
artifact also records the persistent compile cache serving the second
compilation of every source from disk (no cfront parse, no codegen).
``--host-fastpath-check`` is the CI smoke variant: smaller sizes, one
shared speedup floor of 3x.
``--serving-check`` delegates to ``bench_serving.py --check``: a 64
session x 4 device load test against the persistent offload server,
failing on p99 latency above the checked-in budget, output divergence
from standalone runs, or missing batching/eviction/warm-TTFL wins.
``--resilience-check`` delegates to ``bench_resilience.py --check``: the
same load shape fault-free vs under ``devlost:p=0.02``, failing on
output divergence, requests that neither complete nor carry a typed
rejection, missing failover, or chaos p99 inflation over the checked-in
budget.
``--reduction-check`` delegates to ``bench_reductions.py --check``: the
correlation/covariance/doitgen reduction workloads plus the 2048x2048
tree-vs-atomic headline sum, failing on reference divergence, a
reduction checksum that is not the sequential fold, shard(2) output
drift, or the tree lowering not beating the atomic-merge baseline
(writes ``BENCH_reductions.json``).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.bench import get_app
from repro.bench.harness import run_ompi

#: the paper's kernel-heavy applications used for the headline numbers
DEFAULT_POINTS = (("gemm", 256), ("mvt", 2048), ("atax", 2048))
CHECK_POINTS = (("gemm", 128),)


def run_point(app_name: str, n: int) -> dict:
    app = get_app(app_name)
    entry: dict = {"benchmark": app_name, "size": n, "modes": {}}
    outputs: dict = {}
    for mode in ("off", "on"):
        t0 = time.perf_counter()
        res, machine = run_ompi(app, n, launch_mode="sample", fastpath=mode)
        wall = time.perf_counter() - t0
        entry["modes"][mode] = {
            "wall_s": round(wall, 4),
            "simulated_s": res.measured_s,
        }
        outputs[mode] = {
            name: np.asarray(machine.global_array(name)).copy()
            for name in app.outputs
        }
    entry["identical_output"] = bool(all(
        np.array_equal(outputs["off"][name], outputs["on"][name])
        for name in app.outputs
    ))
    entry["identical_simulated_time"] = (
        entry["modes"]["off"]["simulated_s"]
        == entry["modes"]["on"]["simulated_s"]
    )
    entry["speedup"] = round(
        entry["modes"]["off"]["wall_s"] / entry["modes"]["on"]["wall_s"], 2)
    return entry


#: permitted wall-clock cost of enabling the activity recorder
PROFILE_OVERHEAD_LIMIT = 0.10


def profile_overhead(app_name: str = "gemm", n: int = 128,
                     repeats: int = 3) -> dict:
    """Best-of-N wall-clock with profiling disabled vs enabled."""
    app = get_app(app_name)
    walls: dict[str, float] = {}
    records = 0
    for profile in (None, True):
        key = "on" if profile else "off"
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            res, _machine = run_ompi(app, n, launch_mode="sample",
                                     profile=profile)
            best = min(best, time.perf_counter() - t0)
        walls[key] = best
        if profile:
            # count through a fresh recorder so the number is exact
            from repro.prof.activity import ActivityRecorder
            rec = ActivityRecorder()
            run_ompi(app, n, launch_mode="sample", profile=rec)
            records = rec.emitted
    overhead = walls["on"] / walls["off"] - 1.0
    return {
        "benchmark": app_name, "size": n, "repeats": repeats,
        "wall_s_off": round(walls["off"], 4),
        "wall_s_on": round(walls["on"], 4),
        "records": records,
        "overhead": round(overhead, 4),
        "limit": PROFILE_OVERHEAD_LIMIT,
    }


def shard_check(app_name: str = "gemm", n: int = 128,
                shards: int = 4) -> dict:
    """Single-device vs sharded multi-device run of one benchmark point;
    the sharded output must be bit-identical (full functional execution
    on both sides — sharded launches never sample by construction)."""
    from repro.bench.harness import _heap_capacity
    from repro.ompi.compiler import OmpiCompiler
    from repro.ompi.config import OmpiConfig

    app = get_app(app_name)
    src = app.omp_source(n)
    marker = "target teams distribute parallel for"
    sharded_src = src.replace(marker, f"{marker} shard({shards})", 1)
    assert sharded_src != src, f"{app_name} has no shardable construct"

    outputs: dict[str, dict] = {}
    devices_used: list[int] = []
    for key, (source, ndev) in (("single", (src, 1)),
                                ("sharded", (sharded_src, shards))):
        config = OmpiConfig(block_shape=app.block_shape, num_devices=ndev,
                            profile=(key == "sharded"))
        prog = OmpiCompiler(config).compile(source, f"{app_name}_{key}")
        run = prog.run(launch_mode="full", seed_arrays=app.seed(n),
                       heap_capacity=_heap_capacity(app, n))
        outputs[key] = {
            name: np.asarray(run.machine.global_array(name)).copy()
            for name in app.outputs
        }
        if key == "sharded":
            devices_used = sorted({r.device for r in run.ort.prof
                                   if r.kind == "kernel"})
    identical = all(
        outputs["single"][name].tobytes() == outputs["sharded"][name].tobytes()
        for name in app.outputs
    )
    return {
        "benchmark": app_name, "size": n, "shards": shards,
        "devices_used": devices_used,
        "bit_identical": bool(identical),
    }


#: full-run speedup floor (acceptance: >= 2 of 3 workloads clear it)
HOST_FASTPATH_SPEEDUP = 10.0
#: smoke-run floor: small sizes leave less host work to amortise
HOST_FASTPATH_CHECK_SPEEDUP = 3.0


def host_fastpath_point(name: str, n: int | None, disk_root: str) -> dict:
    """One host-heavy workload under host_fastpath off vs on.

    Both modes compile through one CompileCache backed by a disk tier
    rooted at ``disk_root``; the config fingerprint excludes runtime
    knobs, so the second mode's compilation must be served from cache —
    the artifact records the hit counters as proof that a warm cache
    skips the entire cfront parse/outline/codegen pipeline.
    """
    from repro.bench.hostinit import HOST_WORKLOADS
    from repro.ompi.cache import CompileCache
    from repro.ompi.config import OmpiConfig
    from repro.ompi.diskcache import DiskCompileCache

    w = HOST_WORKLOADS[name]
    n = n or w.default_n
    source = w.source(n)
    entry: dict = {"benchmark": name, "size": n, "modes": {}}
    outputs: dict = {}
    stdout: dict = {}
    # fresh in-memory tier per mode (simulates two processes), shared disk
    for mode in ("off", "on"):
        cache = CompileCache(disk=DiskCompileCache(disk_root))
        prog = cache.get(source, f"{name}_host",
                         OmpiConfig(host_fastpath=mode))
        t0 = time.perf_counter()
        run = prog.run(launch_mode="sample",
                       heap_capacity=w.heap_capacity(n))
        wall = time.perf_counter() - t0
        entry["modes"][mode] = {
            "wall_s": round(wall, 4),
            "simulated_s": run.log.measured_time,
            "compile_cache": {k: cache.stats[k]
                              for k in ("hits", "misses", "compiles",
                                        "disk_hits", "disk_misses")},
        }
        outputs[mode] = {
            o: np.asarray(run.machine.global_array(o)).copy()
            for o in w.outputs
        }
        stdout[mode] = run.stdout
    entry["identical_output"] = bool(all(
        np.array_equal(outputs["off"][o], outputs["on"][o])
        for o in w.outputs))
    entry["identical_stdout"] = stdout["off"] == stdout["on"]
    entry["identical_simulated_time"] = (
        entry["modes"]["off"]["simulated_s"]
        == entry["modes"]["on"]["simulated_s"])
    entry["speedup"] = round(
        entry["modes"]["off"]["wall_s"]
        / max(entry["modes"]["on"]["wall_s"], 1e-9), 2)
    # the second mode's compile must have come from the disk tier
    entry["second_compile_from_disk"] = (
        entry["modes"]["on"]["compile_cache"]["compiles"] == 0
        and entry["modes"]["on"]["compile_cache"]["disk_hits"] == 1)
    return entry


def host_fastpath_run(check: bool, output: str | None) -> int:
    import tempfile

    from repro.bench.hostinit import CHECK_SIZES, HOST_WORKLOADS

    floor = (HOST_FASTPATH_CHECK_SPEEDUP if check
             else HOST_FASTPATH_SPEEDUP)
    results = []
    with tempfile.TemporaryDirectory(prefix="repro-bench-cache-") as root:
        for name in HOST_WORKLOADS:
            n = CHECK_SIZES[name] if check else None
            print(f"[bench] host fastpath {name}"
                  f" n={n or HOST_WORKLOADS[name].default_n} ...", flush=True)
            entry = host_fastpath_point(name, n, root)
            print(f"[bench]   off {entry['modes']['off']['wall_s']:.2f}s  "
                  f"on {entry['modes']['on']['wall_s']:.2f}s  "
                  f"speedup {entry['speedup']}x  "
                  f"identical={entry['identical_output']}  "
                  f"disk_warm={entry['second_compile_from_disk']}")
            results.append(entry)

    out = {
        "metric": "wall-clock of the OMPi pipeline per host_fastpath mode",
        "launch_mode": "sample",
        "speedup_floor": floor,
        "floor_mode": "all" if check else "2-of-3",
        "results": results,
    }
    out_path = Path(output) if output else (
        Path(__file__).resolve().parent.parent / "BENCH_host_fastpath.json")
    out_path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"[bench] wrote {out_path}")

    failures = []
    cleared = 0
    for entry in results:
        label = f"{entry['benchmark']}:{entry['size']}"
        for key in ("identical_output", "identical_stdout",
                    "identical_simulated_time"):
            if not entry[key]:
                failures.append(f"{label}: {key} is False between modes")
        if not entry["second_compile_from_disk"]:
            failures.append(f"{label}: second compile not served from "
                            f"the disk cache")
        if entry["speedup"] >= floor:
            cleared += 1
        elif check:
            failures.append(f"{label}: speedup {entry['speedup']}x below "
                            f"the {floor}x smoke floor")
    if not check and cleared < 2:
        failures.append(f"only {cleared}/3 workloads cleared the "
                        f"{floor}x speedup floor (need 2)")
    for msg in failures:
        print(f"[bench] FAIL {msg}", file=sys.stderr)
    return 1 if failures else 0


def parse_points(specs: list[str]) -> list[tuple[str, int]]:
    points = []
    for spec in specs:
        name, _, size = spec.partition(":")
        points.append((name, int(size or 256)))
    return points


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--check", action="store_true",
                    help="CI smoke: one small point; fail if the fast path "
                         "is slower or diverges")
    ap.add_argument("--points", nargs="*", metavar="APP:SIZE",
                    help="benchmark points to run (default: gemm:256 "
                         "mvt:2048 atax:2048)")
    ap.add_argument("--output", default=None,
                    help="output JSON path (default: BENCH_kernel_fastpath"
                         ".json next to the repo root)")
    ap.add_argument("--profile-overhead", action="store_true",
                    help="measure activity-profiler overhead on the gemm "
                         "smoke case; fail if enabled-vs-disabled wall-clock "
                         "exceeds 10%%")
    ap.add_argument("--shard-check", action="store_true",
                    help="run the gemm smoke case sharded across 4 simulated "
                         "devices; fail unless the output is bit-identical "
                         "to the single-device run")
    ap.add_argument("--serving-check", action="store_true",
                    help="serving load-test smoke: 64 sessions x 4 devices "
                         "on the offload server; fail on p99 budget "
                         "regression or divergence from standalone runs")
    ap.add_argument("--resilience-check", action="store_true",
                    help="chaos serving smoke: the 64x4 load test fault-free "
                         "vs devlost:p=0.02; fail on divergence, untyped "
                         "failures, or p99 inflation over budget")
    ap.add_argument("--reduction-check", action="store_true",
                    help="deterministic-reduction smoke: correlation/"
                         "covariance/doitgen plus the 2048x2048 tree-vs-"
                         "atomic sum; fail on divergence, non-sequential "
                         "combine order, shard drift, or the tree not "
                         "beating the atomic-merge baseline")
    ap.add_argument("--host-fastpath", action="store_true",
                    help="time the host-heavy gemm/mvt/atax variants under "
                         "host_fastpath off vs on and write "
                         "BENCH_host_fastpath.json; fail unless outputs "
                         "are bit-identical and 2 of 3 clear 10x")
    ap.add_argument("--host-fastpath-check", action="store_true",
                    help="CI smoke variant of --host-fastpath: smaller "
                         "sizes, 3x floor on every workload")
    args = ap.parse_args(argv)

    if args.host_fastpath or args.host_fastpath_check:
        return host_fastpath_run(check=args.host_fastpath_check,
                                 output=args.output)

    if args.reduction_check:
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import bench_reductions
        red_args = ["--check"]
        if args.output:
            red_args += ["--output", args.output]
        return bench_reductions.main(red_args)

    if args.resilience_check:
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import bench_resilience
        res_args = ["--check"]
        if args.output:
            res_args += ["--output", args.output]
        return bench_resilience.main(res_args)

    if args.serving_check:
        sys.path.insert(0, str(Path(__file__).resolve().parent))
        import bench_serving
        serving_args = ["--check"]
        if args.output:
            serving_args += ["--output", args.output]
        return bench_serving.main(serving_args)

    if args.shard_check:
        print("[bench] shard check (gemm:128, 1 device vs shard(4)) ...",
              flush=True)
        entry = shard_check()
        print(f"[bench]   devices used: {entry['devices_used']}  "
              f"bit_identical={entry['bit_identical']}")
        out_path = Path(args.output) if args.output else (
            Path(__file__).resolve().parent.parent / "BENCH_shard.json")
        out_path.write_text(json.dumps(entry, indent=2) + "\n")
        print(f"[bench] wrote {out_path}")
        failures = []
        if not entry["bit_identical"]:
            failures.append("sharded output differs from single-device run")
        if entry["devices_used"] != list(range(entry["shards"])):
            failures.append(f"expected kernels on devices "
                            f"{list(range(entry['shards']))}, "
                            f"got {entry['devices_used']}")
        for msg in failures:
            print(f"[bench] FAIL {msg}", file=sys.stderr)
        return 1 if failures else 0

    if args.profile_overhead:
        print("[bench] profiler overhead (gemm:128, best of 3) ...",
              flush=True)
        entry = profile_overhead()
        print(f"[bench]   off {entry['wall_s_off']:.2f}s  "
              f"on {entry['wall_s_on']:.2f}s  "
              f"overhead {entry['overhead'] * 100:+.1f}%  "
              f"({entry['records']} records)")
        out_path = Path(args.output) if args.output else (
            Path(__file__).resolve().parent.parent
            / "BENCH_profile_overhead.json")
        out_path.write_text(json.dumps(entry, indent=2) + "\n")
        print(f"[bench] wrote {out_path}")
        if entry["overhead"] > PROFILE_OVERHEAD_LIMIT:
            print(f"[bench] FAIL profiler overhead "
                  f"{entry['overhead'] * 100:.1f}% exceeds "
                  f"{PROFILE_OVERHEAD_LIMIT * 100:.0f}%", file=sys.stderr)
            return 1
        return 0

    if args.points:
        points = parse_points(args.points)
    else:
        points = list(CHECK_POINTS if args.check else DEFAULT_POINTS)

    results = []
    for name, n in points:
        print(f"[bench] {name} n={n} ...", flush=True)
        entry = run_point(name, n)
        off, on = entry["modes"]["off"]["wall_s"], entry["modes"]["on"]["wall_s"]
        print(f"[bench]   off {off:.2f}s  on {on:.2f}s  "
              f"speedup {entry['speedup']}x  "
              f"identical={entry['identical_output']}")
        results.append(entry)

    out = {
        "metric": "wall-clock of the OMPi pipeline per kernel_fastpath mode",
        "launch_mode": "sample",
        "results": results,
    }
    out_path = Path(args.output) if args.output else (
        Path(__file__).resolve().parent.parent / "BENCH_kernel_fastpath.json")
    out_path.write_text(json.dumps(out, indent=2) + "\n")
    print(f"[bench] wrote {out_path}")

    failures = []
    for entry in results:
        label = f"{entry['benchmark']}:{entry['size']}"
        if not entry["identical_output"]:
            failures.append(f"{label}: outputs diverged between modes")
        if not entry["identical_simulated_time"]:
            failures.append(f"{label}: simulated time diverged between modes")
        if args.check and entry["speedup"] < 1.0:
            failures.append(f"{label}: fast path slower than reference "
                            f"({entry['speedup']}x)")
    for msg in failures:
        print(f"[bench] FAIL {msg}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
