"""Figure 4b reproduction: bicg — execution time vs problem size,
pure CUDA vs OMPi cudadev (paper §5).

Run with `pytest benchmarks/bench_fig4_bicg.py --benchmark-only`.
The simulated times land in `extra_info.simulated_seconds`.
"""

import pytest

from conftest import bench_sizes, run_panel_point


@pytest.mark.parametrize("size", bench_sizes("bicg"))
@pytest.mark.parametrize("version", ["cuda", "ompi"])
def test_bicg(benchmark, size, version):
    benchmark.group = f"bicg n={size}"
    run_panel_point(benchmark, "bicg", size, version)
