"""Tokenizer for the C subset used throughout the reproduction.

Design notes
------------
* Sources are Python strings (OMPi-style in-memory buffers); there is no
  preprocessor.  ``#include`` lines are skipped (headers are provided as
  builtin declarations by :mod:`repro.cfront.builtins`), ``#pragma`` lines
  become :class:`Token` objects of kind :data:`TokenKind.PRAGMA` whose text
  is the pragma payload (continuation backslashes folded, comments
  stripped), and any other ``#`` directive is a :class:`LexError`.
* The CUDA kernel-launch punctuators ``<<<`` / ``>>>`` are lexed as single
  tokens.  Valid C never juxtaposes three of those characters, so this is
  safe for plain C input too, mirroring what nvcc's frontend does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cfront.errors import LexError, SourceLoc
from repro.cfront.tokens import KEYWORDS, PUNCTUATORS, TokenKind

_IDENT_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_IDENT_CONT = _IDENT_START | frozenset("0123456789")
_DIGITS = frozenset("0123456789")
_HEX_DIGITS = frozenset("0123456789abcdefABCDEF")

_SIMPLE_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\",
    "'": "'", '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


@dataclass(frozen=True, slots=True)
class Token:
    kind: TokenKind
    text: str
    loc: SourceLoc
    value: object | None = None  # decoded literal value where applicable

    def is_punct(self, spelling: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == spelling

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.value}, {self.text!r} @ {self.loc})"


class Lexer:
    """Single-pass tokenizer.  Call :meth:`tokens` to exhaust the input."""

    def __init__(self, source: str, filename: str = "<memory>"):
        self.src = source
        self.filename = filename
        self.pos = 0
        self.line = 1
        self.col = 1
        self._at_line_start = True

    # -- low-level helpers -------------------------------------------------
    def _loc(self) -> SourceLoc:
        return SourceLoc(self.filename, self.line, self.col)

    def _peek(self, offset: int = 0) -> str:
        i = self.pos + offset
        return self.src[i] if i < len(self.src) else ""

    def _advance(self, n: int = 1) -> str:
        taken = self.src[self.pos : self.pos + n]
        for ch in taken:
            if ch == "\n":
                self.line += 1
                self.col = 1
                self._at_line_start = True
            else:
                self.col += 1
                if ch not in " \t":
                    self._at_line_start = False
        self.pos += n
        return taken

    # -- whitespace / comments ---------------------------------------------
    def _skip_trivia(self) -> None:
        while self.pos < len(self.src):
            ch = self._peek()
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                loc = self._loc()
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.src):
                        raise LexError("unterminated block comment", loc)
                    self._advance()
                self._advance(2)
            else:
                return

    # -- directive lines ----------------------------------------------------
    def _read_directive_line(self) -> str:
        """Consume to end-of-line honouring backslash continuations; return
        the accumulated text (without the leading ``#``)."""
        parts: list[str] = []
        while self.pos < len(self.src):
            ch = self._peek()
            if ch == "\\" and self._peek(1) in ("\n", "\r"):
                self._advance(1)          # backslash
                if self._peek() == "\r":
                    self._advance(1)
                self._advance(1)          # newline — continuation
                parts.append(" ")
            elif ch == "\n":
                break
            elif ch == "/" and self._peek(1) == "/":
                while self.pos < len(self.src) and self._peek() != "\n":
                    self._advance()
                break
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while not (self._peek() == "*" and self._peek(1) == "/"):
                    if self.pos >= len(self.src):
                        raise LexError("unterminated comment in directive", self._loc())
                    self._advance()
                self._advance(2)
                parts.append(" ")
            else:
                parts.append(self._advance())
        return "".join(parts)

    def _lex_hash(self, loc: SourceLoc) -> Token | None:
        self._advance()  # '#'
        body = self._read_directive_line().strip()
        if body.startswith("pragma"):
            return Token(TokenKind.PRAGMA, body[len("pragma"):].strip(), loc)
        if body.startswith("include"):
            return None  # headers are builtin; ignore
        if body == "":
            return None  # null directive
        raise LexError(f"unsupported preprocessor directive: #{body.split()[0]}", loc)

    # -- literals ------------------------------------------------------------
    def _lex_number(self, loc: SourceLoc) -> Token:
        start = self.pos
        is_float = False
        if self._peek() == "0" and self._peek(1) in ("x", "X"):
            self._advance(2)
            if self._peek() not in _HEX_DIGITS:
                raise LexError("malformed hex literal", loc)
            while self._peek() in _HEX_DIGITS:
                self._advance()
            text = self.src[start : self.pos]
            value = int(text, 16)
        else:
            while self._peek() in _DIGITS:
                self._advance()
            if self._peek() == ".":
                is_float = True
                self._advance()
                while self._peek() in _DIGITS:
                    self._advance()
            if self._peek() in ("e", "E") and (
                self._peek(1) in _DIGITS
                or (self._peek(1) in "+-" and self._peek(2) in _DIGITS)
            ):
                is_float = True
                self._advance()
                if self._peek() in "+-":
                    self._advance()
                while self._peek() in _DIGITS:
                    self._advance()
            text = self.src[start : self.pos]
            value = float(text) if is_float else int(text, 10)
        # suffixes
        suffix_start = self.pos
        while self._peek() in _IDENT_START:
            self._advance()
        suffix = self.src[suffix_start : self.pos].lower()
        if is_float:
            if suffix not in ("", "f", "l"):
                raise LexError(f"bad float suffix {suffix!r}", loc)
            full = self.src[start : self.pos]
            return Token(TokenKind.FLOAT_LIT, full, loc, value)
        if suffix not in ("", "u", "l", "ul", "lu", "ll", "ull", "llu", "f"):
            raise LexError(f"bad integer suffix {suffix!r}", loc)
        full = self.src[start : self.pos]
        if suffix == "f":
            return Token(TokenKind.FLOAT_LIT, full, loc, float(value))
        return Token(TokenKind.INT_LIT, full, loc, value)

    def _lex_escape(self, loc: SourceLoc) -> str:
        self._advance()  # backslash
        ch = self._advance()
        if ch in _SIMPLE_ESCAPES:
            return _SIMPLE_ESCAPES[ch]
        if ch == "x":
            digits = ""
            while self._peek() in _HEX_DIGITS:
                digits += self._advance()
            if not digits:
                raise LexError("\\x with no hex digits", loc)
            return chr(int(digits, 16))
        raise LexError(f"unsupported escape \\{ch}", loc)

    def _lex_char(self, loc: SourceLoc) -> Token:
        self._advance()  # opening quote
        if self._peek() == "\\":
            ch = self._lex_escape(loc)
        else:
            ch = self._advance()
        if self._peek() != "'":
            raise LexError("multi-character char literal", loc)
        self._advance()
        return Token(TokenKind.CHAR_LIT, f"'{ch}'", loc, ord(ch))

    def _lex_string(self, loc: SourceLoc) -> Token:
        self._advance()  # opening quote
        chars: list[str] = []
        while True:
            if self.pos >= len(self.src) or self._peek() == "\n":
                raise LexError("unterminated string literal", loc)
            if self._peek() == '"':
                self._advance()
                break
            if self._peek() == "\\":
                chars.append(self._lex_escape(loc))
            else:
                chars.append(self._advance())
        return Token(TokenKind.STRING_LIT, '"' + "".join(chars) + '"', loc, "".join(chars))

    # -- main loop -------------------------------------------------------------
    def next_token(self) -> Token:
        while True:
            self._skip_trivia()
            loc = self._loc()
            if self.pos >= len(self.src):
                return Token(TokenKind.EOF, "", loc)
            ch = self._peek()
            if ch == "#":
                if not self._at_line_start:
                    raise LexError("'#' must start a line", loc)
                tok = self._lex_hash(loc)
                if tok is not None:
                    return tok
                continue  # skipped directive; keep scanning
            if ch in _IDENT_START:
                start = self.pos
                while self._peek() in _IDENT_CONT:
                    self._advance()
                text = self.src[start : self.pos]
                kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
                return Token(kind, text, loc)
            if ch in _DIGITS or (ch == "." and self._peek(1) in _DIGITS):
                return self._lex_number(loc)
            if ch == "'":
                return self._lex_char(loc)
            if ch == '"':
                return self._lex_string(loc)
            for punct in PUNCTUATORS:
                if self.src.startswith(punct, self.pos):
                    self._advance(len(punct))
                    return Token(TokenKind.PUNCT, punct, loc)
            raise LexError(f"stray character {ch!r}", loc)

    def tokens(self) -> list[Token]:
        out: list[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out


def tokenize(source: str, filename: str = "<memory>") -> list[Token]:
    """Tokenize ``source`` fully (including the trailing EOF token)."""
    return Lexer(source, filename).tokens()
