"""Tree-walking interpreter for the C subset (host side).

The OMPi compilation chain produces a *transformed host program* in which
every OpenMP construct has been replaced by plain C plus runtime calls.  On
the Jetson board that program is compiled with gcc; here it is executed by
this interpreter.  Runtime libraries (the `ort` host runtime, the simulated
CUDA runtime API, libc) plug in as *native functions*.

Memory is real: every variable lives at a byte address in a
:class:`repro.mem.LinearMemory`, pointers are integer addresses, and
pointer values can refer to any registered memory space (host heap or
simulated device global memory — the spaces occupy disjoint address
ranges, mirroring how a CUDA process sees distinct host/device pointers).

Hot affine loops (array initialisation and similar) are executed through
:mod:`repro.cfront.vectorize` with numpy, per the HPC guide's
"vectorize your loops" rule; everything else tree-walks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.cfront import astnodes as A
from repro.cfront.builtins import default_natives
from repro.cfront.ctypes_ import (
    ArrayType, BasicType, CType, DOUBLE, FLOAT, FunctionType, INT,
    PointerType, StructType, LONG,
)
from repro.cfront.errors import InterpError, SourceLoc
from repro.mem import LinearMemory


class ProgramExit(Exception):
    def __init__(self, code: int):
        self.code = code
        super().__init__(f"exit({code})")


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value
        super().__init__("return")


@dataclass
class Ptr:
    """A typed pointer value: ``addr`` within ``mem``, pointing at ``ctype``."""

    mem: LinearMemory
    addr: int
    ctype: CType

    def __add__(self, n: int) -> "Ptr":
        return Ptr(self.mem, self.addr + int(n) * self.ctype.sizeof(), self.ctype)

    def __bool__(self) -> bool:
        return self.addr != 0

    def __repr__(self) -> str:  # pragma: no cover
        return f"Ptr({self.mem.name}+{self.addr:#x} -> {self.ctype})"


@dataclass
class StructInstance:
    """A struct lvalue (or by-value copy) living in memory."""

    mem: LinearMemory
    addr: int
    stype: StructType

    def get(self, field: str):
        offsets, _, _ = self.stype.layout()
        ftype = self.stype.field_type(field)
        assert isinstance(ftype, BasicType)
        return self.mem.load(self.addr + offsets[field], ftype.dtype())


@dataclass
class PyStruct:
    """A struct rvalue built in Python (e.g. ``dim3(4, 2)``)."""

    stype: StructType
    fields: dict

    def get(self, field: str):
        return self.fields[field]


@dataclass
class FuncValue:
    name: str
    defn: Optional[A.FuncDef]
    native: Optional[Callable] = None


@dataclass
class VarBinding:
    addr: int
    ctype: CType
    mem: LinearMemory


#: native signature
NativeFn = Callable[["Machine", list, SourceLoc], object]

_HOST_BASE = 0x10000
_DEVICE_BASE_HINT = 0x2_0000_0000

_UNSEEN_CONST = object()
_NOT_CONST = object()


def _const_foldable(expr: A.Expr) -> bool:
    """True when ``expr`` is built purely from literals (no environment,
    memory, or side effects) — its value can be memoized per AST node."""
    for n in expr.walk():
        if isinstance(n, (A.IntLit, A.FloatLit, A.CharLit, A.Cond, A.Binary)):
            continue
        if isinstance(n, A.Unary):
            if n.op in ("-", "+", "!", "~"):
                continue
            return False
        if isinstance(n, A.Cast):
            if isinstance(n.type, BasicType) and not n.type.is_void:
                continue
            return False
        return False
    return True


class Machine:
    """Executes one translation unit."""

    def __init__(
        self,
        unit: A.TranslationUnit,
        natives: dict[str, NativeFn] | None = None,
        heap_capacity: int = 1 << 30,
        host_fastpath: str | None = None,
    ):
        from repro.cfront.hostcompile import resolve_host_fastpath

        self.unit = unit
        self.heap = LinearMemory(heap_capacity, base=_HOST_BASE, name="host")
        self.spaces: list[LinearMemory] = [self.heap]
        self.natives: dict[str, NativeFn] = default_natives()
        if natives:
            self.natives.update(natives)
        self.stdout: list[str] = []
        self.globals: dict[str, object] = {}
        self._string_pool: dict[str, Ptr] = {}
        self._rand_state = 1
        self.host_fastpath = resolve_host_fastpath(host_fastpath)
        self.host_stats: dict[str, int] = {
            "loop_fast": 0, "loop_fallback": 0,
            "fn_fast": 0, "fn_fallback": 0, "verified_regions": 0,
        }
        self._hc_loop_plans: dict[int, tuple] = {}
        self._hc_fn_plans: dict[int, tuple] = {}
        self._consts: dict[int, object] = {}
        self._load_globals()

    # -- setup -------------------------------------------------------------
    def register_space(self, mem: LinearMemory) -> None:
        """Register an additional memory space (e.g. device global memory)."""
        self.spaces.append(mem)

    def space_of(self, addr: int) -> LinearMemory:
        for mem in self.spaces:
            if mem.base <= addr < mem.base + mem.capacity:
                return mem
        raise InterpError(f"address {addr:#x} is in no registered memory space")

    def make_ptr(self, addr: int, pointee: CType) -> Ptr | int:
        if addr == 0:
            return 0
        return Ptr(self.space_of(addr), addr, pointee)

    def _load_globals(self) -> None:
        for node in self.unit.decls:
            if isinstance(node, A.FuncDef):
                self.globals[node.name] = FuncValue(node.name, node)
            elif isinstance(node, A.FuncProto):
                self.globals.setdefault(node.name, FuncValue(node.name, None))
            elif isinstance(node, A.GlobalDecl):
                for d in node.decls:
                    if d.storage == "extern":
                        continue
                    addr = self.heap.alloc(max(d.type.sizeof(), 1), d.type.alignof())
                    self.heap.view(addr, d.type.sizeof(), "u1")[:] = 0
                    self.globals[d.name] = VarBinding(addr, d.type, self.heap)
                    if d.init is not None:
                        value = self.eval(d.init, [{}])
                        self.store_value(self.heap, addr, d.type, value)

    # -- public API ---------------------------------------------------------
    def run(self, argv: list[str] | None = None) -> int:
        """Execute ``main`` and return the exit code."""
        main = self.globals.get("main")
        if not isinstance(main, FuncValue) or main.defn is None:
            raise InterpError("program has no main()")
        try:
            result = self.call_function(main, [])
        except ProgramExit as exc:
            return exc.code
        return int(result) if result is not None else 0

    def call(self, name: str, *args) -> object:
        fn = self.globals.get(name)
        if not isinstance(fn, FuncValue):
            raise InterpError(f"no such function {name!r}")
        return self.call_function(fn, list(args))

    def global_binding(self, name: str) -> VarBinding:
        binding = self.globals.get(name)
        if not isinstance(binding, VarBinding):
            raise InterpError(f"no such global variable {name!r}")
        return binding

    def global_array(self, name: str) -> np.ndarray:
        """A writable numpy view of a global array (benchmark seeding)."""
        binding = self.global_binding(name)
        ctype = binding.ctype
        dims: list[int] = []
        while isinstance(ctype, ArrayType):
            if ctype.length is None:
                raise InterpError(f"global {name!r} has incomplete array type")
            dims.append(ctype.length)
            ctype = ctype.elem
        if not isinstance(ctype, BasicType):
            raise InterpError(f"global {name!r} is not a numeric array")
        count = int(np.prod(dims)) if dims else 1
        view = binding.mem.view(binding.addr, count, ctype.dtype())
        return view.reshape(dims) if dims else view

    def output(self) -> str:
        return "".join(self.stdout)

    def read_cstring(self, ptr) -> str:
        if isinstance(ptr, str):
            return ptr
        if not isinstance(ptr, Ptr):
            raise InterpError("expected a char* value")
        chars = []
        addr = ptr.addr
        while True:
            b = int(ptr.mem.load(addr, np.uint8))
            if b == 0:
                return "".join(chars)
            chars.append(chr(b))
            addr += 1

    def rand(self) -> int:
        self._rand_state = (self._rand_state * 1103515245 + 12345) & 0x7FFFFFFF
        return self._rand_state >> 16

    def srand(self, seed: int) -> int:
        self._rand_state = seed & 0x7FFFFFFF
        return 0

    # -- values --------------------------------------------------------------
    def store_value(self, mem: LinearMemory, addr: int, ctype: CType, value) -> None:
        if isinstance(ctype, BasicType):
            mem.store(addr, ctype.dtype(), self._as_number(value, ctype))
        elif isinstance(ctype, PointerType):
            a = value.addr if isinstance(value, Ptr) else int(value)
            mem.store(addr, np.uint64, a)
        elif isinstance(ctype, StructType):
            if isinstance(value, PyStruct):
                offsets, _, _ = ctype.layout()
                for fname, ftype in ctype.fields_:
                    if fname in value.fields:
                        self.store_value(mem, addr + offsets[fname], ftype, value.fields[fname])
            elif isinstance(value, StructInstance):
                mem.copy_in(addr, value.mem.copy_out(value.addr, ctype.sizeof()))
            else:
                raise InterpError(f"cannot store {type(value).__name__} into {ctype}")
        elif isinstance(ctype, ArrayType):
            raise InterpError("cannot assign to an array")
        else:
            raise InterpError(f"cannot store into type {ctype}")

    def load_value(self, mem: LinearMemory, addr: int, ctype: CType):
        if isinstance(ctype, BasicType):
            raw = mem.load(addr, ctype.dtype())
            if ctype.is_floating:
                # C99 typed floats: a ``float`` cell loads as np.float32 so
                # float-only expressions round per operation like real
                # hardware (and the simulated GPU); ``double`` stays a
                # Python float.
                return raw if ctype.kind == "float" else float(raw)
            return int(raw)
        if isinstance(ctype, PointerType):
            return self.make_ptr(int(mem.load(addr, np.uint64)), ctype.pointee)
        if isinstance(ctype, ArrayType):
            return Ptr(mem, addr, ctype.elem)
        if isinstance(ctype, StructType):
            return StructInstance(mem, addr, ctype)
        raise InterpError(f"cannot load type {ctype}")

    @staticmethod
    def _as_number(value, ctype: BasicType):
        if isinstance(value, Ptr):
            if ctype.is_integer:
                return value.addr
            raise InterpError("pointer used where arithmetic value expected")
        if isinstance(value, bool):
            return int(value)
        if ctype.is_integer:
            return int(value)
        return float(value)

    # -- environment ------------------------------------------------------------
    def _lookup(self, env: list[dict], name: str):
        for scope in reversed(env):
            if name in scope:
                return scope[name]
        if name in self.globals:
            return self.globals[name]
        if name in self.natives:
            return FuncValue(name, None, self.natives[name])
        raise InterpError(f"undeclared identifier {name!r}")

    # -- function calls ------------------------------------------------------------
    def call_function(self, fn: FuncValue, args: list, loc: SourceLoc | None = None):
        if fn.native is not None:
            return fn.native(self, args, loc)
        if fn.defn is None:
            native = self.natives.get(fn.name)
            if native is not None:
                return native(self, args, loc)
            raise InterpError(f"call to undefined function {fn.name!r}", loc)
        if self.host_fastpath != "off":
            from repro.cfront.hostcompile import maybe_call_compiled

            done, result = maybe_call_compiled(self, fn, args, loc)
            if done:
                return result
        return self._call_interpreted(fn, args, loc)

    def _call_interpreted(self, fn: FuncValue, args: list, loc: SourceLoc | None = None):
        defn = fn.defn
        if len(args) != len(defn.params):
            raise InterpError(
                f"{fn.name}: expected {len(defn.params)} arguments, got {len(args)}", loc
            )
        frame: dict[str, object] = {}
        allocs: list[int] = []
        for param, arg in zip(defn.params, args):
            ctype = param.type.decay()
            addr = self.heap.alloc(max(ctype.sizeof(), 1), ctype.alignof())
            allocs.append(addr)
            self.store_value(self.heap, addr, ctype, arg)
            frame[param.name] = VarBinding(addr, ctype, self.heap)
        env = [frame]
        try:
            self.exec_stmt(defn.body, env)
            result = None
        except _Return as ret:
            result = ret.value
        finally:
            for addr in allocs:
                self.heap.free(addr)
        return result

    # -- statements ------------------------------------------------------------
    def exec_stmt(self, stmt: A.Stmt, env: list[dict]) -> None:
        if isinstance(stmt, A.ExprStmt):
            if stmt.expr is not None:
                self.eval(stmt.expr, env)
        elif isinstance(stmt, A.DeclStmt):
            self._exec_decl(stmt, env)
        elif isinstance(stmt, A.Compound):
            scope: dict[str, object] = {}
            env.append(scope)
            try:
                for inner in stmt.body:
                    self.exec_stmt(inner, env)
            finally:
                env.pop()
                self._free_scope(scope)
        elif isinstance(stmt, A.If):
            if self._truthy(self.eval(stmt.cond, env)):
                self.exec_stmt(stmt.then, env)
            elif stmt.other is not None:
                self.exec_stmt(stmt.other, env)
        elif isinstance(stmt, A.While):
            while self._truthy(self.eval(stmt.cond, env)):
                try:
                    self.exec_stmt(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    continue
        elif isinstance(stmt, A.DoWhile):
            while True:
                try:
                    self.exec_stmt(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                if not self._truthy(self.eval(stmt.cond, env)):
                    break
        elif isinstance(stmt, A.For):
            self._exec_for(stmt, env)
        elif isinstance(stmt, A.Return):
            raise _Return(self.eval(stmt.value, env) if stmt.value is not None else None)
        elif isinstance(stmt, A.Break):
            raise _Break()
        elif isinstance(stmt, A.Continue):
            raise _Continue()
        elif isinstance(stmt, A.PragmaStmt):
            if stmt.text.strip().startswith("omp"):
                raise InterpError(
                    f"untranslated OpenMP directive reached the interpreter: "
                    f"#pragma {stmt.text}", stmt.loc
                )
            if stmt.body is not None:
                self.exec_stmt(stmt.body, env)
        else:
            raise InterpError(f"cannot execute {type(stmt).__name__}", getattr(stmt, "loc", None))

    def _free_scope(self, scope: dict) -> None:
        for binding in scope.values():
            if isinstance(binding, VarBinding) and binding.mem is self.heap:
                self.heap.free(binding.addr)

    def _exec_decl(self, stmt: A.DeclStmt, env: list[dict]) -> None:
        scope = env[-1]
        for d in stmt.decls:
            size = max(d.type.sizeof(), 1)
            addr = self.heap.alloc(size, d.type.alignof())
            self.heap.view(addr, size, "u1")[:] = 0
            if d.name in scope:
                raise InterpError(f"redeclaration of {d.name!r}", d.loc)
            scope[d.name] = VarBinding(addr, d.type, self.heap)
            if d.init is not None:
                value = self.eval(d.init, env)
                self.store_value(self.heap, addr, d.type, value)

    def _exec_for(self, stmt: A.For, env: list[dict]) -> None:
        from repro.cfront.hostcompile import exec_for_fastpath

        scope: dict[str, object] = {}
        env.append(scope)
        try:
            if stmt.init is not None:
                self.exec_stmt(stmt.init, env)
            if self.host_fastpath != "off" and exec_for_fastpath(self, stmt, env):
                return
            while stmt.cond is None or self._truthy(self.eval(stmt.cond, env)):
                try:
                    self.exec_stmt(stmt.body, env)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    self.eval(stmt.step, env)
        finally:
            env.pop()
            self._free_scope(scope)

    @staticmethod
    def _truthy(value) -> bool:
        if isinstance(value, Ptr):
            return value.addr != 0
        return bool(value)

    # -- lvalues ------------------------------------------------------------
    def lvalue(self, expr: A.Expr, env: list[dict]) -> tuple[LinearMemory, int, CType]:
        if isinstance(expr, A.Ident):
            binding = self._lookup(env, expr.name)
            if not isinstance(binding, VarBinding):
                raise InterpError(f"{expr.name!r} is not a variable", expr.loc)
            return binding.mem, binding.addr, binding.ctype
        if isinstance(expr, A.Index):
            base = self.eval(expr.base, env)
            if not isinstance(base, Ptr):
                raise InterpError("subscripted value is not a pointer/array", expr.loc)
            idx = int(self.eval(expr.index, env))
            return base.mem, base.addr + idx * base.ctype.sizeof(), base.ctype
        if isinstance(expr, A.Unary) and expr.op == "*":
            ptr = self.eval(expr.operand, env)
            if not isinstance(ptr, Ptr):
                raise InterpError("dereference of non-pointer", expr.loc)
            return ptr.mem, ptr.addr, ptr.ctype
        if isinstance(expr, A.Member):
            if expr.arrow:
                base = self.eval(expr.base, env)
                if not isinstance(base, Ptr) or not isinstance(base.ctype, StructType):
                    raise InterpError("-> on non-struct-pointer", expr.loc)
                mem, addr, stype = base.mem, base.addr, base.ctype
            else:
                mem, addr, stype = self.lvalue(expr.base, env)
                if not isinstance(stype, StructType):
                    raise InterpError(". on non-struct", expr.loc)
            offsets, _, _ = stype.layout()
            return mem, addr + offsets[expr.name], stype.field_type(expr.name)
        raise InterpError(f"expression is not an lvalue: {type(expr).__name__}", expr.loc)

    # -- expressions ------------------------------------------------------------
    def eval(self, expr: A.Expr, env: list[dict]):
        method = _EVAL_DISPATCH.get(type(expr))
        if method is None:
            raise InterpError(f"cannot evaluate {type(expr).__name__}", getattr(expr, "loc", None))
        return method(self, expr, env)

    def _eval_ident(self, expr: A.Ident, env: list[dict]):
        binding = self._lookup(env, expr.name)
        if isinstance(binding, VarBinding):
            return self.load_value(binding.mem, binding.addr, binding.ctype)
        return binding

    def _eval_const_memo(self, expr: A.Expr, env: list[dict], raw):
        """Memoize literal-only subtrees by node identity (the AST is owned
        by this Machine's unit, so ids are stable for the Machine's life)."""
        memo = self._consts
        key = id(expr)
        cached = memo.get(key, _UNSEEN_CONST)
        if cached is _UNSEEN_CONST:
            if _const_foldable(expr):
                value = raw(expr, env)
                memo[key] = value
                return value
            memo[key] = _NOT_CONST
            return raw(expr, env)
        if cached is _NOT_CONST:
            return raw(expr, env)
        return cached

    def _eval_unary(self, expr: A.Unary, env: list[dict]):
        return self._eval_const_memo(expr, env, self._eval_unary_raw)

    def _eval_unary_raw(self, expr: A.Unary, env: list[dict]):
        op = expr.op
        if op == "&":
            mem, addr, ctype = self.lvalue(expr.operand, env)
            return Ptr(mem, addr, ctype)
        if op == "*":
            mem, addr, ctype = self.lvalue(expr, env)
            return self.load_value(mem, addr, ctype)
        if op in ("++", "--", "p++", "p--"):
            mem, addr, ctype = self.lvalue(expr.operand, env)
            old = self.load_value(mem, addr, ctype)
            delta = 1 if "+" in op else -1
            new = old + delta if not isinstance(old, Ptr) else old + delta
            self.store_value(mem, addr, ctype, new)
            return old if op.startswith("p") else new
        value = self.eval(expr.operand, env)
        if op == "-":
            return -value
        if op == "+":
            return value
        if op == "!":
            return 0 if self._truthy(value) else 1
        if op == "~":
            return ~int(value)
        raise InterpError(f"bad unary operator {op}", expr.loc)

    def _eval_binary(self, expr: A.Binary, env: list[dict]):
        return self._eval_const_memo(expr, env, self._eval_binary_raw)

    def _eval_binary_raw(self, expr: A.Binary, env: list[dict]):
        op = expr.op
        if op == "&&":
            if not self._truthy(self.eval(expr.left, env)):
                return 0
            return 1 if self._truthy(self.eval(expr.right, env)) else 0
        if op == "||":
            if self._truthy(self.eval(expr.left, env)):
                return 1
            return 1 if self._truthy(self.eval(expr.right, env)) else 0
        lhs = self.eval(expr.left, env)
        rhs = self.eval(expr.right, env)
        return self.apply_binop(op, lhs, rhs, expr.loc)

    def apply_binop(self, op: str, lhs, rhs, loc=None):
        if isinstance(lhs, Ptr) or isinstance(rhs, Ptr):
            return self._pointer_binop(op, lhs, rhs, loc)
        # usual arithmetic conversions for typed floats: float op float stays
        # np.float32 (numpy semantics), but anything wider on either side
        # promotes both operands to double
        if isinstance(lhs, np.float32) or isinstance(rhs, np.float32):
            if isinstance(lhs, float) or isinstance(rhs, float):
                lhs = float(lhs)
                rhs = float(rhs)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return int(_COMPARE[op](lhs, rhs))
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            if isinstance(lhs, int) and isinstance(rhs, int):
                if rhs == 0:
                    raise InterpError("integer division by zero", loc)
                q = abs(lhs) // abs(rhs)
                return q if (lhs < 0) == (rhs < 0) else -q
            return lhs / rhs
        if op == "%":
            li, ri = int(lhs), int(rhs)
            if ri == 0:
                raise InterpError("integer modulo by zero", loc)
            r = abs(li) % abs(ri)
            return r if li >= 0 else -r
        if op in ("<<", ">>", "&", "|", "^"):
            li, ri = int(lhs), int(rhs)
            return {"<<": li << ri, ">>": li >> ri, "&": li & ri,
                    "|": li | ri, "^": li ^ ri}[op]
        raise InterpError(f"bad binary operator {op}", loc)

    def _pointer_binop(self, op: str, lhs, rhs, loc):
        if op == "+":
            if isinstance(lhs, Ptr):
                return lhs + int(rhs)
            return rhs + int(lhs)
        if op == "-":
            if isinstance(lhs, Ptr) and isinstance(rhs, Ptr):
                return (lhs.addr - rhs.addr) // lhs.ctype.sizeof()
            if isinstance(lhs, Ptr):
                return lhs + (-int(rhs))
            raise InterpError("cannot subtract pointer from integer", loc)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            la = lhs.addr if isinstance(lhs, Ptr) else int(lhs)
            ra = rhs.addr if isinstance(rhs, Ptr) else int(rhs)
            return int(_COMPARE[op](la, ra))
        raise InterpError(f"invalid pointer operation {op}", loc)

    def _eval_assign(self, expr: A.Assign, env: list[dict]):
        mem, addr, ctype = self.lvalue(expr.target, env)
        value = self.eval(expr.value, env)
        if expr.op is not None:
            old = self.load_value(mem, addr, ctype)
            value = self.apply_binop(expr.op, old, value, expr.loc)
        self.store_value(mem, addr, ctype, value)
        return self.load_value(mem, addr, ctype)

    def _eval_cond(self, expr: A.Cond, env: list[dict]):
        if self._truthy(self.eval(expr.cond, env)):
            return self.eval(expr.then, env)
        return self.eval(expr.other, env)

    def _eval_comma(self, expr: A.Comma, env: list[dict]):
        value = None
        for part in expr.parts:
            value = self.eval(part, env)
        return value

    def _eval_call(self, expr: A.Call, env: list[dict]):
        # dim3(x, y, z) constructor-style rvalue
        if isinstance(expr.func, A.Ident) and expr.func.name == "dim3":
            vals = [int(self.eval(a, env)) for a in expr.args]
            vals += [1] * (3 - len(vals))
            from repro.cfront.ctypes_ import DIM3
            return PyStruct(DIM3, {"x": vals[0], "y": vals[1], "z": vals[2]})
        fn = self.eval(expr.func, env)
        if not isinstance(fn, FuncValue):
            raise InterpError("called object is not a function", expr.loc)
        args = [self.eval(a, env) for a in expr.args]
        return self.call_function(fn, args, expr.loc)

    def _eval_kernel_call(self, expr: A.CudaKernelCall, env: list[dict]):
        launcher = self.natives.get("__cuda_launch__")
        if launcher is None:
            raise InterpError(
                "CUDA kernel launch executed without a CUDA runtime "
                "(register repro.cuda.runtimeapi natives)", expr.loc
            )
        name = expr.func.name if isinstance(expr.func, A.Ident) else None
        if name is None:
            raise InterpError("kernel launch target must be a function name", expr.loc)
        grid = self.eval(expr.grid, env)
        block = self.eval(expr.block, env)
        shmem = int(self.eval(expr.shmem, env)) if expr.shmem is not None else 0
        args = [self.eval(a, env) for a in expr.args]
        return launcher(self, [name, grid, block, shmem, args], expr.loc)

    def _eval_index(self, expr: A.Index, env: list[dict]):
        mem, addr, ctype = self.lvalue(expr, env)
        return self.load_value(mem, addr, ctype)

    def _eval_member(self, expr: A.Member, env: list[dict]):
        if not expr.arrow and isinstance(expr.base, A.Ident):
            # could be a PyStruct rvalue bound to a name? members resolve
            # through memory for VarBindings, via .get for Python structs.
            binding = None
            for scope in reversed(env):
                if expr.base.name in scope:
                    binding = scope[expr.base.name]
                    break
            if binding is None:
                binding = self.globals.get(expr.base.name)
            if isinstance(binding, (PyStruct, StructInstance)):
                return binding.get(expr.name)
        try:
            mem, addr, ctype = self.lvalue(expr, env)
        except InterpError:
            # rvalue struct (e.g. function call result): resolve via .get
            base = self.eval(expr.base, env)
            if isinstance(base, (PyStruct, StructInstance)):
                return base.get(expr.name)
            raise
        return self.load_value(mem, addr, ctype)

    def _eval_cast(self, expr: A.Cast, env: list[dict]):
        return self._eval_const_memo(expr, env, self._eval_cast_raw)

    def _eval_cast_raw(self, expr: A.Cast, env: list[dict]):
        value = self.eval(expr.operand, env)
        target = expr.type
        if isinstance(target, PointerType):
            if isinstance(value, Ptr):
                return Ptr(value.mem, value.addr, target.pointee)
            addr = int(value)
            return self.make_ptr(addr, target.pointee) if addr else 0
        if isinstance(target, BasicType):
            if target.is_integer:
                if isinstance(value, Ptr):
                    return value.addr
                return int(value)
            if target.is_floating:
                if target.kind == "float":
                    return np.float32(value)
                return float(value)
            if target.is_void:
                return None
        raise InterpError(f"unsupported cast to {target}", expr.loc)

    def _eval_sizeof_expr(self, expr: A.SizeofExpr, env: list[dict]):
        return self.type_of(expr.operand, env).sizeof()

    def _eval_sizeof_type(self, expr: A.SizeofType, env: list[dict]):
        return expr.type.sizeof()

    # -- static typing (for sizeof) -----------------------------------------
    def type_of(self, expr: A.Expr, env: list[dict]) -> CType:
        if isinstance(expr, A.Ident):
            binding = self._lookup(env, expr.name)
            if isinstance(binding, VarBinding):
                return binding.ctype
            raise InterpError(f"sizeof of non-variable {expr.name!r}", expr.loc)
        if isinstance(expr, A.Index):
            base = self.type_of(expr.base, env).decay()
            assert isinstance(base, PointerType)
            return base.pointee
        if isinstance(expr, A.Unary) and expr.op == "*":
            base = self.type_of(expr.operand, env).decay()
            assert isinstance(base, PointerType)
            return base.pointee
        if isinstance(expr, A.Unary) and expr.op == "&":
            return PointerType(self.type_of(expr.operand, env))
        if isinstance(expr, A.IntLit):
            return INT
        if isinstance(expr, A.FloatLit):
            return FLOAT if expr.single else DOUBLE
        if isinstance(expr, A.Cast):
            return expr.type
        if isinstance(expr, A.Member):
            base_t = self.type_of(expr.base, env)
            if isinstance(base_t, PointerType):
                base_t = base_t.pointee
            assert isinstance(base_t, StructType)
            return base_t.field_type(expr.name)
        if isinstance(expr, A.Binary):
            lt = self.type_of(expr.left, env)
            rt = self.type_of(expr.right, env)
            if lt.is_pointer or lt.is_array:
                return lt.decay()
            if rt.is_pointer or rt.is_array:
                return rt.decay()
            from repro.cfront.ctypes_ import usual_arithmetic
            return usual_arithmetic(lt, rt)
        raise InterpError(f"cannot type {type(expr).__name__} in sizeof", getattr(expr, "loc", None))


_COMPARE = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    ">": lambda a, b: a > b,
    "<=": lambda a, b: a <= b,
    ">=": lambda a, b: a >= b,
}

_EVAL_DISPATCH = {
    A.IntLit: lambda m, e, env: e.value,
    A.FloatLit: lambda m, e, env: np.float32(e.value) if e.single else e.value,
    A.CharLit: lambda m, e, env: e.value,
    A.StringLit: lambda m, e, env: m._string_literal(e.value),
    A.Ident: Machine._eval_ident,
    A.Unary: Machine._eval_unary,
    A.Binary: Machine._eval_binary,
    A.Assign: Machine._eval_assign,
    A.Cond: Machine._eval_cond,
    A.Comma: Machine._eval_comma,
    A.Call: Machine._eval_call,
    A.CudaKernelCall: Machine._eval_kernel_call,
    A.Index: Machine._eval_index,
    A.Member: Machine._eval_member,
    A.Cast: Machine._eval_cast,
    A.SizeofExpr: Machine._eval_sizeof_expr,
    A.SizeofType: Machine._eval_sizeof_type,
}


def _string_literal(self: Machine, text: str) -> Ptr:
    ptr = self._string_pool.get(text)
    if ptr is None:
        data = text.encode() + b"\0"
        addr = self.heap.alloc(len(data), 1)
        self.heap.copy_in(addr, data)
        from repro.cfront.ctypes_ import CHAR
        ptr = Ptr(self.heap, addr, CHAR)
        self._string_pool[text] = ptr
    return ptr


Machine._string_literal = _string_literal  # type: ignore[attr-defined]
