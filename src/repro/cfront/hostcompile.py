"""Closure-compiled host fast path for the C interpreter.

The host-code analogue of the kernel fast path (``cuda/sim/compile.py``):
whole loop nests and whole functions of the recognised C subset are lowered
to vectorized numpy execution plans instead of being tree-walked cell by
cell.  This generalizes the single-loop vectorizer (``cfront/vectorize.py``,
which now delegates here) to

* multi-statement loop bodies (several array assignments + reductions),
* nested loops (outer loops iterate in Python, inner loops run vectorized),
* scalar accumulators (``s += a[i]*b[i]``) and scalar temps/decls,
* whole ``*_hostfn`` twins / init / verify functions, compiled per-function
  with fallback to the tree-walk interpreter when a construct is
  unsupported.

Semantics are *bit-identical* to the tree-walk interpreter by construction:

* all intermediate arithmetic is done in float64 / int64 (the tree-walker
  computes on Python floats/ints), values are rounded to the cell dtype
  only where the tree-walker stores,
* single-cell reductions accumulate exactly like the sequential loop:
  float64 accumulators use ``ufunc.accumulate`` (sequential by definition),
  int ``+,-,*`` accumulate in int64 and wrap once at the store (exact: the
  mod-2^n reduction is a ring homomorphism), float32 and int-division
  accumulators use a sequential fold with per-step rounding,
* vectorized math calls are restricted to functions whose numpy ufunc is
  per-element identical to the scalar libm native (sqrt/fabs/floor/ceil/
  fmin/fmax/fmod); transcendentals (exp/log/sin/cos/tan/pow) may differ in
  the last ulp between numpy's SIMD routines and ``math.*``, so they are
  vectorized only when the mode is not ``verify``.

Modes (``REPRO_HOST_FASTPATH``, mirrored by ``OmpiConfig.host_fastpath``):

* ``on``      (default) compile what is supported, tree-walk the rest
* ``off``     pure tree-walk interpreter (no vectorization at all)
* ``verify``  run every compiled region twice — compiled and tree-walked —
              and require bit-identical memory; the tree-walk result wins.

Safety model: a region is only committed after a *structural validation*
pass that resolves every identifier/type without reading memory, so plans
that cannot execute bail out before any store.  Loops whose vector safety
is data-dependent (non-affine store indices) are only taken at the top
statement level, where a dry pass performs the runtime checks before any
memory is modified — exactly like the old vectorizer.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.cfront import astnodes as A
from repro.cfront.ctypes_ import ArrayType, BasicType, CType, PointerType
from repro.cfront.errors import InterpError
from repro.cfront.unparse import unparse


class _Bail(Exception):
    """Internal: construct unsupported; fall back to the tree-walker."""


class _BailDry(_Bail):
    """Raised by the runtime-checked dry pass, always before any store."""


class HostFastpathVerifyError(InterpError):
    """verify mode found a divergence between compiled and tree-walk runs."""


_MODES = ("on", "off", "verify")


def resolve_host_fastpath(value: Optional[str]) -> str:
    mode = (value or os.environ.get("REPRO_HOST_FASTPATH") or "on").strip().lower()
    if mode not in _MODES:
        raise ValueError(
            f"REPRO_HOST_FASTPATH must be one of {_MODES}, got {mode!r}")
    return mode


#: numpy ufuncs per-element identical to the scalar natives in builtins.py
_VEC_MATH_EXACT = {
    "sqrt": np.sqrt, "sqrtf": np.sqrt, "fabs": np.abs, "fabsf": np.abs,
    "floor": np.floor, "floorf": np.floor, "ceil": np.ceil, "ceilf": np.ceil,
    "fmin": np.minimum, "fmax": np.maximum, "fmod": np.fmod,
}
#: correct to ~1 ulp but not guaranteed bit-identical to libm
_VEC_MATH_APPROX = {
    "exp": np.exp, "expf": np.exp, "log": np.log, "logf": np.log,
    "sin": np.sin, "sinf": np.sin, "cos": np.cos, "cosf": np.cos,
    "tan": np.tan, "pow": np.power, "powf": np.power,
}
#: pure scalar natives callable from compiled scalar expressions
_PURE_NATIVES = frozenset(_VEC_MATH_EXACT) | frozenset(_VEC_MATH_APPROX)

_SCALAR_OPS = frozenset({"+", "-", "*", "/", "%", "<<", ">>", "&", "|", "^"})
_REDUCE_OPS = frozenset({"+", "-", "*", "/"})
_REDUCE_UFUNC = {"+": np.add, "-": np.subtract, "*": np.multiply,
                 "/": np.divide}

_UNSEEN = object()
_MISSING = object()


# --------------------------------------------------------------------------
# plan representation
# --------------------------------------------------------------------------

@dataclass
class ArrSpec:
    """``A[f(...)] (op)= expr`` — array store, vector or scalar."""
    target: A.Index
    op: Optional[str]
    value: A.Expr
    dest: str            # 'distinct' | 'cell' | 'general'
    base: str            # outermost base array name
    ttext: str           # unparse of the target (dependence discipline)
    indices: list        # index exprs, innermost first


@dataclass
class SetSpec:
    """``s (op)= expr`` — scalar assignment (reduction when vectorized)."""
    name: str
    op: Optional[str]
    value: A.Expr


@dataclass
class DeclSpec:
    decls: list          # (name, ctype, init expr | None)


@dataclass
class LoopSpec:
    var: str
    init: Optional[tuple]        # ('decl', ctype, expr|None) | ('set', expr)
    cond_op: str                 # '<' | '<='
    bound: A.Expr
    step: int
    items: list                  # ArrSpec | SetSpec | DeclSpec | LoopSpec
    vector: bool
    strict: bool
    written: set = field(default_factory=set)


@dataclass
class FnSpec:
    name: str
    params: list                 # (name, decayed ctype)
    items: list                  # DeclSpec | SetSpec | ArrSpec | LoopSpec
    ret: Optional[A.Expr]        # None = void / no return value
    has_ret: bool = False


# --------------------------------------------------------------------------
# analysis (pure AST, cached per Machine by id(node))
# --------------------------------------------------------------------------

def _mentions(expr: A.Expr, var: str) -> bool:
    return any(isinstance(n, A.Ident) and n.name == var for n in expr.walk())


def _base_key(index: A.Index) -> Optional[str]:
    base = index.base
    while isinstance(base, A.Index):
        base = base.base
    return base.name if isinstance(base, A.Ident) else None


def _expr_ok(expr: A.Expr, allow_approx: bool, vector: bool) -> bool:
    """Structural whitelist for compiled value expressions."""
    for n in expr.walk():
        if isinstance(n, (A.IntLit, A.FloatLit, A.CharLit, A.Ident,
                          A.Index, A.Cond)):
            continue
        if isinstance(n, A.Binary):
            if n.op in ("&&", "||"):
                if vector:
                    return False
                continue
            if n.op in _SCALAR_OPS or n.op in ("<", ">", "<=", ">=", "==", "!="):
                continue
            return False
        if isinstance(n, A.Unary):
            if n.op in ("-", "+", "!", "~"):
                continue
            if n.op == "*" and not vector:
                continue
            return False
        if isinstance(n, A.Cast):
            if isinstance(n.type, BasicType):
                continue
            if isinstance(n.type, PointerType) and not vector:
                continue
            return False
        if isinstance(n, A.Call):
            if not isinstance(n.func, A.Ident):
                return False
            name = n.func.name
            if vector:
                if name in _VEC_MATH_EXACT:
                    continue
                if allow_approx and name in _VEC_MATH_APPROX:
                    continue
                return False
            if name in _PURE_NATIVES:
                continue
            return False
        return False
    # index chains must bottom out in a plain identifier
    for n in expr.walk():
        if isinstance(n, A.Index) and _base_key(n) is None:
            return False
    return True


def _affine_coeff(expr: A.Expr, var: str) -> Optional[int]:
    """Net literal coefficient of ``var`` if ``expr`` is affine in it."""
    if isinstance(expr, A.Ident):
        return 1 if expr.name == var else 0
    if isinstance(expr, (A.IntLit, A.CharLit)):
        return 0
    if isinstance(expr, A.Binary):
        if expr.op in ("+", "-"):
            lc = _affine_coeff(expr.left, var)
            rc = _affine_coeff(expr.right, var)
            if lc is None or rc is None:
                return None
            return lc + rc if expr.op == "+" else lc - rc
        if expr.op == "*":
            lm, rm = _mentions(expr.left, var), _mentions(expr.right, var)
            if not lm and not rm:
                return 0
            if lm and rm:
                return None
            dep, other = (expr.left, expr.right) if lm else (expr.right, expr.left)
            c = _affine_coeff(dep, var)
            if c is None or not isinstance(other, A.IntLit):
                return None
            return c * other.value
        return 0 if not _mentions(expr, var) else None
    if isinstance(expr, A.Unary):
        if expr.op == "-":
            c = _affine_coeff(expr.operand, var)
            return None if c is None else -c
        if expr.op == "+":
            return _affine_coeff(expr.operand, var)
        return 0 if not _mentions(expr, var) else None
    if isinstance(expr, A.Cast):
        if isinstance(expr.type, BasicType) and expr.type.is_integer:
            return _affine_coeff(expr.operand, var)
        return None
    return 0 if not _mentions(expr, var) else None


def _loop_header(stmt: A.For):
    init = stmt.init
    if isinstance(init, A.ExprStmt) and isinstance(init.expr, A.Assign) \
            and init.expr.op is None and isinstance(init.expr.target, A.Ident):
        return init.expr.target.name, ("set", init.expr.value)
    if isinstance(init, A.DeclStmt) and len(init.decls) == 1:
        d = init.decls[0]
        if d.init is not None and isinstance(d.type, BasicType) \
                and d.type.is_integer and d.storage is None:
            return d.name, ("decl", d.type, d.init)
        return None
    if init is None and isinstance(stmt.cond, A.Binary) \
            and isinstance(stmt.cond.left, A.Ident):
        return stmt.cond.left.name, None
    return None


def _loop_step(step: Optional[A.Expr], var: str) -> Optional[int]:
    if step is None:
        return None
    if isinstance(step, A.Unary) and step.op in ("++", "p++") \
            and isinstance(step.operand, A.Ident) and step.operand.name == var:
        return 1
    if isinstance(step, A.Assign) and isinstance(step.target, A.Ident) \
            and step.target.name == var:
        if step.op == "+" and isinstance(step.value, A.IntLit):
            return step.value.value
        if step.op is None and isinstance(step.value, A.Binary) \
                and step.value.op == "+" \
                and isinstance(step.value.left, A.Ident) \
                and step.value.left.name == var \
                and isinstance(step.value.right, A.IntLit):
            return step.value.right.value
    return None


def _invariant_names(expr: A.Expr) -> Optional[set]:
    names = set()
    for n in expr.walk():
        if isinstance(n, (A.Index, A.Call, A.Assign, A.Member, A.Comma,
                          A.StringLit, A.CudaKernelCall, A.SizeofExpr)):
            return None
        if isinstance(n, A.Unary) and n.op not in ("-", "+", "!", "~"):
            return None
        if isinstance(n, A.Ident):
            names.add(n.name)
    return names


def _make_arr_spec(a: A.Assign, var: str, allow_approx: bool) -> Optional[ArrSpec]:
    if a.op is not None and a.op not in _SCALAR_OPS:
        return None
    indices = []
    node = a.target
    while isinstance(node, A.Index):
        if not _expr_ok(node.index, allow_approx, vector=True):
            return None
        indices.append(node.index)
        node = node.base
    if not isinstance(node, A.Ident) or node.name == var:
        return None
    if not _expr_ok(a.value, allow_approx, vector=True):
        return None
    dep = [ix for ix in indices if _mentions(ix, var)]
    if not dep:
        dest = "cell"
    elif len(dep) == 1:
        c = _affine_coeff(dep[0], var)
        if c is None:
            dest = "general"
        elif c == 0:
            dest = "cell"
        else:
            dest = "distinct"
    else:
        dest = "general"
    return ArrSpec(a.target, a.op, a.value, dest, node.name,
                   unparse(a.target).strip(), indices)


def _read_indices(spec: ArrSpec):
    """Index nodes this statement *reads* (value + subscript expressions)."""
    out = [n for n in spec.value.walk() if isinstance(n, A.Index)]
    for ix in spec.indices:
        out.extend(n for n in ix.walk() if isinstance(n, A.Index))
    return out


def _try_vector(items: list, allow_approx: bool):
    """Classify a loop body as one vector pass; None if ineligible."""
    arrs, order = [], []
    red_names = set()
    for it in items:
        if isinstance(it, ArrSpec):
            arrs.append(it)
            order.append(it)
        elif isinstance(it, SetSpec) and it.op in _REDUCE_OPS \
                and _expr_ok(it.value, allow_approx, vector=True):
            if it.name in red_names:
                return None
            red_names.add(it.name)
            order.append(it)
        else:
            return None
    if not order:
        return None
    # reduction accumulators must not be read/written anywhere else
    for name in red_names:
        for it in order:
            exprs = [it.value]
            if isinstance(it, ArrSpec):
                exprs += it.indices
            for e in exprs:
                if _mentions(e, name):
                    return None
    # one write shape per base; reads of a written base must match it exactly
    wtext = {}
    for a2 in arrs:
        if a2.base in wtext and wtext[a2.base] != a2.ttext:
            return None
        wtext[a2.base] = a2.ttext
    reads = []
    for it in order:
        if isinstance(it, ArrSpec):
            reads.extend(_read_indices(it))
        else:
            reads.extend(n for n in it.value.walk() if isinstance(n, A.Index))
    for n in reads:
        k = _base_key(n)
        if k in wtext and unparse(n).strip() != wtext[k]:
            return None
    # single-cell stores: a reduction must be the only statement, and a
    # plain cell store must not be read back (its value evolves with i)
    for a2 in arrs:
        if a2.dest != "cell":
            continue
        if a2.op is not None:
            if a2.op not in _REDUCE_OPS or len(order) != 1:
                return None
        else:
            for n in reads:
                if _base_key(n) == a2.base:
                    return None
    strict = all(a2.dest != "general" for a2 in arrs)
    return order, strict


def _analyze_loop(stmt: A.For, allow_approx: bool, top: bool) -> Optional[LoopSpec]:
    if stmt.cond is None or stmt.body is None:
        return None
    header = _loop_header(stmt)
    if header is None:
        return None
    var, init = header
    cond = stmt.cond
    if not (isinstance(cond, A.Binary) and cond.op in ("<", "<=")):
        return None
    if not (isinstance(cond.left, A.Ident) and cond.left.name == var):
        return None
    bound_names = _invariant_names(cond.right)
    if bound_names is None or var in bound_names:
        return None
    if init is not None and init[0] == "set" \
            and not _expr_ok(init[1], allow_approx, vector=False):
        return None
    if init is not None and init[0] == "decl" and init[2] is not None \
            and not _expr_ok(init[2], allow_approx, vector=False):
        return None
    step = _loop_step(stmt.step, var)
    if step is None or step <= 0:
        return None
    stmts = stmt.body.body if isinstance(stmt.body, A.Compound) else [stmt.body]
    items: list = []
    written: set = set()
    has_loop = False
    for s in stmts:
        if isinstance(s, A.ExprStmt) and isinstance(s.expr, A.Assign):
            a = s.expr
            if isinstance(a.target, A.Index):
                arr = _make_arr_spec(a, var, allow_approx)
                if arr is None:
                    return None
                items.append(arr)
            elif isinstance(a.target, A.Ident):
                if a.op is not None and a.op not in _SCALAR_OPS:
                    return None
                if not _expr_ok(a.value, allow_approx, vector=False):
                    return None
                items.append(SetSpec(a.target.name, a.op, a.value))
                written.add(a.target.name)
            else:
                return None
        elif isinstance(s, A.DeclStmt):
            ds = []
            for d in s.decls:
                if d.storage is not None:
                    return None
                if not isinstance(d.type, (BasicType, PointerType)):
                    return None
                if d.init is not None \
                        and not _expr_ok(d.init, allow_approx, vector=False):
                    return None
                ds.append((d.name, d.type, d.init))
                written.add(d.name)
            items.append(DeclSpec(ds))
        elif isinstance(s, A.For):
            inner = _analyze_loop(s, allow_approx, top=False)
            if inner is None or not inner.strict:
                return None
            items.append(inner)
            written |= inner.written
            written.add(inner.var)
            has_loop = True
        else:
            return None
    if not items:
        return None
    if var in written or (bound_names & written):
        return None
    vec = _try_vector(items, allow_approx)
    if vec is not None:
        order, strict = vec
        if strict or top:
            return LoopSpec(var, init, cond.op, cond.right, step, order,
                            vector=True, strict=strict, written=written)
    # iterate mode: only worthwhile (and only exact-cost-safe) when the body
    # contains at least one compiled inner loop; a scalar-only body is
    # cheaper to tree-walk than to re-dispatch per iteration
    if not has_loop:
        return None
    return LoopSpec(var, init, cond.op, cond.right, step, items,
                    vector=False, strict=True, written=written)


def _analyze_fn(defn: A.FuncDef, allow_approx: bool) -> Optional[FnSpec]:
    if defn.body is None or not isinstance(defn.body, A.Compound):
        return None
    params = []
    for p in defn.params:
        ctype = p.type.decay() if p.type is not None else None
        if not isinstance(ctype, (BasicType, PointerType)):
            return None
        params.append((p.name, ctype))
    items: list = []
    ret = None
    has_ret = False
    body = defn.body.body
    for pos, s in enumerate(body):
        if isinstance(s, A.Return):
            if pos != len(body) - 1:
                return None
            if s.value is not None \
                    and not _expr_ok(s.value, allow_approx, vector=False):
                return None
            ret = s.value
            has_ret = True
            break
        if isinstance(s, A.DeclStmt):
            ds = []
            for d in s.decls:
                if d.storage is not None:
                    return None
                if not isinstance(d.type, (BasicType, PointerType)):
                    return None
                if d.init is not None \
                        and not _expr_ok(d.init, allow_approx, vector=False):
                    return None
                ds.append((d.name, d.type, d.init))
            items.append(DeclSpec(ds))
        elif isinstance(s, A.For):
            inner = _analyze_loop(s, allow_approx, top=False)
            if inner is None or not inner.strict:
                return None
            items.append(inner)
        elif isinstance(s, A.ExprStmt) and isinstance(s.expr, A.Assign):
            a = s.expr
            if isinstance(a.target, A.Index):
                arr = _make_arr_spec(a, "\0nosuchvar", allow_approx)
                if arr is None:
                    return None
                items.append(arr)
            elif isinstance(a.target, A.Ident):
                if a.op is not None and a.op not in _SCALAR_OPS:
                    return None
                if not _expr_ok(a.value, allow_approx, vector=False):
                    return None
                items.append(SetSpec(a.target.name, a.op, a.value))
            else:
                return None
        else:
            return None
    return FnSpec(defn.name, params, items, ret, has_ret)


# --------------------------------------------------------------------------
# frames: virtualized scalar bindings over interpreter memory
# --------------------------------------------------------------------------

def _canon(value, ctype: CType):
    """Round a scalar exactly as a store+load through ``ctype`` would."""
    from repro.cfront.interp import Ptr
    if isinstance(ctype, (PointerType, ArrayType)):
        return value
    if not isinstance(ctype, BasicType):
        raise _Bail()
    if ctype.is_floating:
        return np.float32(value) if ctype.kind == "float" else float(value)
    if isinstance(value, Ptr):
        return value.addr
    iv = int(value)
    bits = 8 * ctype.sizeof()
    iv &= (1 << bits) - 1
    if ctype.signed and iv >= 1 << (bits - 1):
        iv -= 1 << bits
    return iv


class Frame:
    """Scalar variables of a compiled region, virtualized in Python.

    Memory-backed scalars are loaded on first use and flushed back on exit;
    loop variables and block-local declarations live purely in the frame.
    """

    __slots__ = ("machine", "env", "values", "ctypes", "bindings",
                 "dirty", "_shadow")

    def __init__(self, machine, env):
        self.machine = machine
        self.env = env
        self.values: dict = {}
        self.ctypes: dict = {}
        self.bindings: dict = {}
        self.dirty: set = set()
        self._shadow: list = []

    def _resolve_binding(self, name):
        for scope in reversed(self.env):
            if name in scope:
                return scope[name]
        return self.machine.globals.get(name)

    def ctype_of(self, name) -> CType:
        ct = self.ctypes.get(name)
        if ct is not None:
            return ct
        from repro.cfront.interp import VarBinding
        b = self._resolve_binding(name)
        if not isinstance(b, VarBinding):
            raise _Bail()
        self.ctypes[name] = b.ctype
        self.bindings[name] = b
        return b.ctype

    def get(self, name):
        if name in self.values:
            return self.values[name]
        self.ctype_of(name)
        b = self.bindings.get(name)
        if b is None:
            raise _Bail()
        v = self.machine.load_value(b.mem, b.addr, b.ctype)
        if not isinstance(v, (int, float, np.floating)) \
                and v.__class__.__name__ != "Ptr":
            raise _Bail()
        self.values[name] = v
        return v

    def set(self, name, value):
        ct = self.ctype_of(name)
        self.values[name] = _canon(value, ct)
        if self.bindings.get(name) is not None:
            self.dirty.add(name)

    def declare(self, name, ctype, value):
        self._shadow.append((
            name,
            self.values.get(name, _MISSING),
            self.ctypes.get(name, _MISSING),
            self.bindings.get(name, _MISSING),
            name in self.dirty,
        ))
        self.ctypes[name] = ctype
        self.bindings[name] = None
        self.dirty.discard(name)
        self.values[name] = _canon(value, ctype)

    def mark(self) -> int:
        return len(self._shadow)

    def release(self, mark: int) -> None:
        while len(self._shadow) > mark:
            name, v, ct, b, dirty = self._shadow.pop()
            for d, key in ((self.values, v), (self.ctypes, ct),
                           (self.bindings, b)):
                if key is _MISSING:
                    d.pop(name, None)
                else:
                    d[name] = key
            if dirty:
                self.dirty.add(name)
            else:
                self.dirty.discard(name)

    def flush(self) -> None:
        m = self.machine
        for name in self.dirty:
            b = self.bindings[name]
            m.store_value(b.mem, b.addr, b.ctype, self.values[name])
        self.dirty.clear()


# --------------------------------------------------------------------------
# validation: type-structural, no memory reads, no side effects
# --------------------------------------------------------------------------

def _vt_lookup(frame: Frame, vt: dict, name: str) -> CType:
    if name in vt:
        return vt[name]
    return frame.ctype_of(name)


def _validate_expr(frame: Frame, vt: dict, expr: A.Expr) -> None:
    """Check that every leaf of ``expr`` resolves to a supported type."""
    from repro.cfront.interp import FuncValue
    if isinstance(expr, (A.IntLit, A.FloatLit, A.CharLit)):
        return
    if isinstance(expr, A.Ident):
        ct = _vt_lookup(frame, vt, expr.name)
        if not isinstance(ct, (BasicType, PointerType, ArrayType)):
            raise _Bail()
        return
    if isinstance(expr, A.Binary):
        _validate_expr(frame, vt, expr.left)
        _validate_expr(frame, vt, expr.right)
        return
    if isinstance(expr, A.Unary):
        _validate_expr(frame, vt, expr.operand)
        return
    if isinstance(expr, A.Cast):
        _validate_expr(frame, vt, expr.operand)
        return
    if isinstance(expr, A.Cond):
        _validate_expr(frame, vt, expr.cond)
        _validate_expr(frame, vt, expr.then)
        _validate_expr(frame, vt, expr.other)
        return
    if isinstance(expr, A.Index):
        _validate_lvalue_chain(frame, vt, expr)
        return
    if isinstance(expr, A.Call):
        name = expr.func.name  # _expr_ok guaranteed Ident + whitelisted name
        if name in vt:
            raise _Bail()
        b = frame._resolve_binding(name)
        if b is not None and not (isinstance(b, FuncValue) and b.defn is None):
            raise _Bail()      # user function shadows the libm native
        if name not in frame.machine.natives:
            raise _Bail()
        for a in expr.args:
            _validate_expr(frame, vt, a)
        return
    raise _Bail()


def _validate_lvalue_chain(frame: Frame, vt: dict, expr: A.Index) -> CType:
    """Resolve the element type of an index chain; validates subscripts."""
    indices = []
    node = expr
    while isinstance(node, A.Index):
        _validate_expr(frame, vt, node.index)
        indices.append(node.index)
        node = node.base
    if not isinstance(node, A.Ident):
        raise _Bail()
    ct = _vt_lookup(frame, vt, node.name)
    for _ in indices:
        ct = ct.decay()
        if isinstance(ct, PointerType):
            ct = ct.pointee
        elif isinstance(ct, ArrayType):
            ct = ct.elem
        else:
            raise _Bail()
    return ct


def _validate_items(frame: Frame, vt: dict, items: list) -> None:
    for it in items:
        if isinstance(it, ArrSpec):
            elem = _validate_lvalue_chain(frame, vt, it.target)
            if not isinstance(elem, BasicType):
                raise _Bail()
            _validate_expr(frame, vt, it.value)
        elif isinstance(it, SetSpec):
            ct = _vt_lookup(frame, vt, it.name)
            if not isinstance(ct, (BasicType, PointerType)):
                raise _Bail()
            _validate_expr(frame, vt, it.value)
        elif isinstance(it, DeclSpec):
            for name, ctype, init in it.decls:
                if init is not None:
                    _validate_expr(frame, vt, init)
                vt[name] = ctype
        elif isinstance(it, LoopSpec):
            _validate_loop(frame, it, vt)
        else:
            raise _Bail()


def _validate_loop(frame: Frame, spec: LoopSpec, vtypes: dict) -> None:
    vt = dict(vtypes)
    if spec.init is not None and spec.init[0] == "decl":
        if spec.init[2] is not None:
            _validate_expr(frame, vt, spec.init[2])
        vt[spec.var] = spec.init[1]
    else:
        if spec.init is not None:
            _validate_expr(frame, vt, spec.init[1])
        ct = _vt_lookup(frame, vt, spec.var)
        if not (isinstance(ct, BasicType) and ct.is_integer):
            raise _Bail()
    _validate_expr(frame, vt, spec.bound)
    _validate_items(frame, vt, spec.items)


def _validate_fn(frame: Frame, spec: FnSpec) -> None:
    vt: dict = {}
    _validate_items(frame, vt, spec.items)
    if spec.ret is not None:
        _validate_expr(frame, vt, spec.ret)


# --------------------------------------------------------------------------
# scalar evaluation on frames (bit-identical to Machine.eval)
# --------------------------------------------------------------------------

def _scalar_eval(frame: Frame, e: A.Expr):
    from repro.cfront.interp import Machine, Ptr
    m = frame.machine
    t = type(e)
    if t is A.IntLit:
        return e.value
    if t is A.FloatLit:
        return np.float32(e.value) if e.single else e.value
    if t is A.CharLit:
        return e.value
    if t is A.Ident:
        return frame.get(e.name)
    if t is A.Binary:
        op = e.op
        if op == "&&":
            if not Machine._truthy(_scalar_eval(frame, e.left)):
                return 0
            return 1 if Machine._truthy(_scalar_eval(frame, e.right)) else 0
        if op == "||":
            if Machine._truthy(_scalar_eval(frame, e.left)):
                return 1
            return 1 if Machine._truthy(_scalar_eval(frame, e.right)) else 0
        return m.apply_binop(op, _scalar_eval(frame, e.left),
                             _scalar_eval(frame, e.right), e.loc)
    if t is A.Unary:
        op = e.op
        if op == "*":
            ptr = _scalar_eval(frame, e.operand)
            if not isinstance(ptr, Ptr):
                raise _Bail()
            return m.load_value(ptr.mem, ptr.addr, ptr.ctype)
        v = _scalar_eval(frame, e.operand)
        if op == "-":
            return -v
        if op == "+":
            return v
        if op == "!":
            return 0 if Machine._truthy(v) else 1
        if op == "~":
            return ~int(v)
        raise _Bail()
    if t is A.Index:
        mem, addr, ctype = _scalar_addr(frame, e)
        return m.load_value(mem, addr, ctype)
    if t is A.Cast:
        v = _scalar_eval(frame, e.operand)
        target = e.type
        if isinstance(target, PointerType):
            if isinstance(v, Ptr):
                return Ptr(v.mem, v.addr, target.pointee)
            addr = int(v)
            return m.make_ptr(addr, target.pointee) if addr else 0
        if isinstance(target, BasicType):
            if target.is_integer:
                return v.addr if isinstance(v, Ptr) else int(v)
            if target.is_floating:
                return np.float32(v) if target.kind == "float" else float(v)
        raise _Bail()
    if t is A.Cond:
        if Machine._truthy(_scalar_eval(frame, e.cond)):
            return _scalar_eval(frame, e.then)
        return _scalar_eval(frame, e.other)
    if t is A.Call:
        native = m.natives[e.func.name]
        args = [_scalar_eval(frame, a) for a in e.args]
        return native(m, args, e.loc)
    raise _Bail()


def _scalar_addr(frame: Frame, expr: A.Index):
    """(mem, addr, elem ctype) of an index chain — mirrors Machine.lvalue."""
    from repro.cfront.interp import Ptr
    base = _scalar_eval(frame, expr.base)
    if not isinstance(base, Ptr):
        raise _Bail()
    idx = int(_scalar_eval(frame, expr.index))
    return base.mem, base.addr + idx * base.ctype.sizeof(), base.ctype


# --------------------------------------------------------------------------
# vector evaluation (float64/int64 intermediates, tree-walk rounding)
# --------------------------------------------------------------------------

class _VecCtx:
    def __init__(self, frame: Frame, var: str, iv: np.ndarray):
        self.frame = frame
        self.var = var
        self.iv = iv

    def addr_vec(self, index: A.Index):
        from repro.cfront.interp import Ptr
        base = index.base
        idx = np.asarray(self.value_vec(index.index), dtype=np.int64)
        if isinstance(base, A.Index):
            mem, addrs, ctype = self.addr_vec(base)
            ctype = ctype.decay() if isinstance(ctype, PointerType) else ctype
            if not isinstance(ctype, ArrayType):
                raise _Bail()
            elem = ctype.elem
            return mem, addrs + idx * elem.sizeof(), elem
        if not isinstance(base, A.Ident) or base.name == self.var:
            raise _Bail()
        ptr = self.frame.get(base.name)
        if not isinstance(ptr, Ptr):
            raise _Bail()
        elem = ptr.ctype
        addrs = ptr.addr + idx * elem.sizeof()
        if np.isscalar(addrs) or getattr(addrs, "ndim", 0) == 0:
            addrs = np.full(self.iv.shape, addrs, dtype=np.int64)
        return ptr.mem, addrs, elem

    def value_vec(self, expr: A.Expr):
        """Typed vector evaluation mirroring the interpreter's C99 value
        semantics: float expressions stay float32 (per-op rounding), double
        is float64, integers are evaluated in int64 (the tree-walker uses
        unbounded Python ints and wraps at the store, which agrees with
        int64 intermediates for any realistic magnitude)."""
        t = type(expr)
        if t is A.IntLit or t is A.CharLit:
            return expr.value
        if t is A.FloatLit:
            return np.float32(expr.value) if expr.single \
                else np.float64(expr.value)
        if t is A.Ident:
            if expr.name == self.var:
                return self.iv
            v = self.frame.get(expr.name)
            if isinstance(v, np.floating):
                return v
            if isinstance(v, float):
                return np.float64(v)
            if isinstance(v, int):
                return v
            raise _Bail()
        if t is A.Binary:
            return _apply_np(expr.op, self.value_vec(expr.left),
                             self.value_vec(expr.right))
        if t is A.Unary:
            if expr.op == "-":
                return -np.asarray(self.value_vec(expr.operand))
            if expr.op == "+":
                return self.value_vec(expr.operand)
            if expr.op == "!":
                v = np.asarray(self.value_vec(expr.operand))
                return (v == 0).astype(np.int64)
            if expr.op == "~":
                return ~np.asarray(self.value_vec(expr.operand),
                                   dtype=np.int64)
            raise _Bail()
        if t is A.Cast:
            target = expr.type
            if not isinstance(target, BasicType):
                raise _Bail()
            value = np.asarray(self.value_vec(expr.operand))
            if target.is_integer:
                return np.trunc(value).astype(np.int64) \
                    if value.dtype.kind == "f" else value.astype(np.int64)
            if target.kind == "float":
                return value.astype(np.float32)
            return value.astype(np.float64)
        if t is A.Index:
            mem, addrs, ctype = self.addr_vec(expr)
            if not isinstance(ctype, BasicType):
                raise _Bail()
            raw = mem.gather(addrs, ctype.dtype())
            if ctype.is_floating:
                return raw
            return raw.astype(np.int64)
        if t is A.Call:
            name = expr.func.name
            fn = _VEC_MATH_EXACT.get(name) or _VEC_MATH_APPROX.get(name)
            if fn is None:
                raise _Bail()
            # the scalar natives compute in double (math.*), so vector math
            # runs in float64 regardless of argument type
            args = [np.asarray(self.value_vec(a), dtype=np.float64)
                    for a in expr.args]
            return fn(*args)
        if t is A.Cond:
            cond = np.asarray(self.value_vec(expr.cond))
            then = self.value_vec(expr.then)
            other = self.value_vec(expr.other)
            dt = _common_dtype(then, other)
            return np.where(cond != 0,
                            np.asarray(then, dtype=dt),
                            np.asarray(other, dtype=dt))
        raise _Bail()


def _rank(x) -> int:
    """C usual-arithmetic rank of a vector operand: 2=double, 1=float, 0=int."""
    if isinstance(x, (bool, int)):
        return 0
    if isinstance(x, float):
        return 2
    dt = np.asarray(x).dtype
    if dt == np.float64:
        return 2
    if dt == np.float32:
        return 1
    return 0


_RANK_DTYPE = {0: np.int64, 1: np.float32, 2: np.float64}


def _common_dtype(lhs, rhs) -> np.dtype:
    return np.dtype(_RANK_DTYPE[max(_rank(lhs), _rank(rhs))])


def _apply_np(op: str, lhs, rhs):
    dt = _common_dtype(lhs, rhs)
    lhs = np.asarray(lhs, dtype=dt)
    rhs = np.asarray(rhs, dtype=dt)
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if dt.kind in "iu":
            return (np.sign(lhs) * np.sign(rhs)
                    * (np.abs(lhs) // np.abs(rhs))).astype(np.int64)
        return lhs / rhs
    if op == "%":
        if dt.kind == "f":   # the tree-walker truncates via int()
            lhs = np.trunc(lhs).astype(np.int64)
            rhs = np.trunc(rhs).astype(np.int64)
        r = np.abs(lhs) % np.abs(rhs)
        return np.where(lhs >= 0, r, -r).astype(np.int64)
    if op in ("<", ">", "<=", ">=", "==", "!="):
        fn = {"<": np.less, ">": np.greater, "<=": np.less_equal,
              ">=": np.greater_equal, "==": np.equal, "!=": np.not_equal}[op]
        return fn(lhs, rhs).astype(np.int64)
    if op in ("<<", ">>", "&", "|", "^"):
        li = lhs.astype(np.int64)
        ri = rhs.astype(np.int64)
        return {"<<": li << ri, ">>": li >> ri, "&": li & ri,
                "|": li | ri, "^": li ^ ri}[op]
    raise _Bail()


# --------------------------------------------------------------------------
# exact sequential folds (single-cell / scalar reductions)
# --------------------------------------------------------------------------

def _c_idiv(a: int, b: int) -> int:
    if b == 0:
        raise InterpError("integer division by zero")
    q = abs(a) // abs(b)
    return q if (a < 0) == (b < 0) else -q


def _fold(old, op: str, vals: np.ndarray, ctype: BasicType):
    """Fold ``old op= v`` over ``vals`` exactly like the sequential loop.

    With typed C99 semantics the common cases are a single sequential
    ``ufunc.accumulate`` in the accumulation dtype:

    * double cell: every step computes and stores in float64 — exact.
    * float cell with a float-typed value vector: every step computes *and*
      stores in float32 (the interpreter's per-op rounding) — exact, and
      identical to the simulated GPU's typed registers.
    * int cell with ``+,-,*``: the tree-walker computes unbounded and wraps
      at each store; mod-2^n is a ring homomorphism, so accumulating in
      int64 and wrapping once at the end is exact.

    The remaining cases (a double-typed addend into a float cell, integer
    division) double-round / renormalize per step and fold sequentially.
    """
    if vals.size == 0:
        return old
    if ctype.is_floating and ctype.kind == "double":
        seq = np.concatenate([np.asarray([old], dtype=np.float64),
                              np.asarray(vals, dtype=np.float64)])
        return float(_REDUCE_UFUNC[op].accumulate(seq)[-1])
    if ctype.is_floating:
        if vals.dtype == np.float64:
            # double addend into a float cell: the store rounds a float64
            # result each step — fold sequentially with per-step rounding
            f32, f64 = np.float32, np.float64
            acc = np.float32(old)
            if op == "+":
                for v in vals.tolist():
                    acc = f32(f64(acc) + v)
            elif op == "-":
                for v in vals.tolist():
                    acc = f32(f64(acc) - v)
            elif op == "*":
                for v in vals.tolist():
                    acc = f32(f64(acc) * v)
            else:
                for v in vals.tolist():
                    acc = f32(f64(acc) / v)
            return acc
        seq = np.concatenate([np.asarray([old], dtype=np.float32),
                              np.asarray(vals, dtype=np.float32)])
        return np.float32(_REDUCE_UFUNC[op].accumulate(seq)[-1])
    # integer accumulator
    if vals.dtype.kind == "f":
        # float addend: each step computes in float and truncates at the
        # store (int(acc + v)) — not a ring op, fold sequentially
        pyop = {"+": lambda a, v: a + v, "-": lambda a, v: a - v,
                "*": lambda a, v: a * v}.get(op)
        if pyop is None:
            raise _Bail()
        acc = int(old)
        for v in vals.tolist():
            acc = _canon(int(pyop(acc, v)), ctype)
        return acc
    if op in ("+", "-", "*"):
        seq = np.concatenate([np.asarray([old], dtype=np.int64),
                              np.asarray(vals, dtype=np.int64)])
        with np.errstate(over="ignore"):
            return _canon(int(_REDUCE_UFUNC[op].accumulate(seq)[-1]), ctype)
    if op == "/":
        acc = int(old)
        for v in vals.tolist():
            acc = _canon(_c_idiv(acc, int(v)), ctype)
        return acc
    raise _Bail()


# --------------------------------------------------------------------------
# executors
# --------------------------------------------------------------------------

def _iter_space(frame: Frame, spec: LoopSpec):
    start = int(frame.get(spec.var))
    stop = int(_scalar_eval(frame, spec.bound))
    stop_excl = stop + 1 if spec.cond_op == "<=" else stop
    return start, stop_excl


def _run_init(frame: Frame, spec: LoopSpec) -> None:
    kind = spec.init[0]
    if kind == "decl":
        _, ctype, init = spec.init
        v = _scalar_eval(frame, init) if init is not None else 0
        frame.declare(spec.var, ctype, v)
    else:
        frame.set(spec.var, _scalar_eval(frame, spec.init[1]))


def _exec_loop(machine, frame: Frame, spec: LoopSpec, run_init: bool) -> None:
    mark = frame.mark()
    try:
        if run_init and spec.init is not None:
            _run_init(frame, spec)
        if spec.vector:
            _run_vector(machine, frame, spec)
            return
        start, stop_excl = _iter_space(frame, spec)
        i = start
        while i < stop_excl:
            frame.set(spec.var, i)
            imark = frame.mark()
            try:
                _exec_items(machine, frame, spec.items)
            finally:
                frame.release(imark)
            i += spec.step
        frame.set(spec.var, i)
    finally:
        frame.release(mark)


def _exec_items(machine, frame: Frame, items: list) -> None:
    for it in items:
        if isinstance(it, ArrSpec):
            _exec_scalar_arr(machine, frame, it)
        elif isinstance(it, SetSpec):
            value = _scalar_eval(frame, it.value)
            if it.op is not None:
                value = machine.apply_binop(it.op, frame.get(it.name), value)
            frame.set(it.name, value)
        elif isinstance(it, DeclSpec):
            for name, ctype, init in it.decls:
                v = _scalar_eval(frame, init) if init is not None else 0
                frame.declare(name, ctype, v)
        elif isinstance(it, LoopSpec):
            _exec_loop(machine, frame, it, run_init=True)
        else:
            raise _Bail()


def _exec_scalar_arr(machine, frame: Frame, spec: ArrSpec) -> None:
    mem, addr, ctype = _scalar_addr(frame, spec.target)
    value = _scalar_eval(frame, spec.value)
    if spec.op is not None:
        old = machine.load_value(mem, addr, ctype)
        value = machine.apply_binop(spec.op, old, value)
    machine.store_value(mem, addr, ctype, value)


def _run_vector(machine, frame: Frame, spec: LoopSpec) -> None:
    start, stop_excl = _iter_space(frame, spec)
    iv = np.arange(start, stop_excl, spec.step, dtype=np.int64)
    ctx = _VecCtx(frame, spec.var, iv)
    if iv.size:
        if not spec.strict:
            _dry_check(ctx, spec)
        for it in spec.items:
            if isinstance(it, ArrSpec):
                _commit_arr(machine, ctx, it)
            else:  # SetSpec reduction
                vals = _broadcast(ctx, ctx.value_vec(it.value))
                ct = frame.ctype_of(it.name)
                frame.set(it.name, _fold(frame.get(it.name), it.op, vals, ct))
    frame.set(spec.var, start + len(iv) * spec.step)


def _broadcast(ctx: _VecCtx, value) -> np.ndarray:
    value = np.asarray(value)
    if value.ndim == 0:
        value = np.full(ctx.iv.shape, value)
    return value


def _dry_check(ctx: _VecCtx, spec: LoopSpec) -> None:
    """Runtime safety checks for data-dependent ('general') store indices.

    Performs only reads; raises _BailDry before anything is committed.
    """
    arrs = [it for it in spec.items if isinstance(it, ArrSpec)]
    for a in arrs:
        _, addrs, ctype = ctx.addr_vec(a.target)
        if not isinstance(ctype, BasicType):
            raise _BailDry()
        ctx.value_vec(a.value)
        uniq = np.unique(addrs).size
        if uniq == addrs.size:
            continue
        reads_target = any(
            isinstance(n, A.Index) and _base_key(n) == a.base
            for n in a.value.walk())
        if reads_target and a.op is None:
            raise _BailDry()   # stale gather of a multiply-written cell
        if a.op is not None and (uniq != 1 or len(spec.items) != 1
                                 or a.op not in _REDUCE_OPS):
            raise _BailDry()


def _commit_arr(machine, ctx: _VecCtx, spec: ArrSpec) -> None:
    mem, addrs, ctype = ctx.addr_vec(spec.target)
    if not isinstance(ctype, BasicType):
        raise _Bail()
    dtype = ctype.dtype()
    value = _broadcast(ctx, ctx.value_vec(spec.value))
    if spec.op is not None:
        single = spec.dest == "cell" or (
            spec.dest == "general" and np.unique(addrs).size == 1)
        if single:
            addr = int(addrs[0])
            old = machine.load_value(mem, addr, ctype)
            machine.store_value(mem, addr, ctype,
                                _fold(old, spec.op, value, ctype))
            return
        old = mem.gather(addrs, dtype)
        if not ctype.is_floating:
            old = old.astype(np.int64)
        value = _apply_np(spec.op, old, value)
    value = np.asarray(value)
    if ctype.is_integer and value.dtype.kind == "f":
        value = np.trunc(value)
    mem.scatter(addrs, dtype, value.astype(dtype, casting="unsafe"))


# --------------------------------------------------------------------------
# verify mode: differential execution with block snapshots
# --------------------------------------------------------------------------

def _snapshot(machine):
    return [(mem, mem.snapshot_blocks()) for mem in machine.spaces]


def _restore(machine, snap) -> None:
    for mem, blocks in snap:
        mem.restore_blocks(blocks)


def _diff_snapshots(fast, ref) -> Optional[str]:
    for (mem_f, blocks_f), (_, blocks_r) in zip(fast, ref):
        if blocks_f.keys() != blocks_r.keys():
            return f"{mem_f.name}: allocation sets differ"
        for addr, data_r in blocks_r.items():
            data_f = blocks_f[addr]
            if not np.array_equal(data_f, data_r):
                bad = int(np.nonzero(data_f != data_r)[0][0])
                return (f"{mem_f.name}: block {addr:#x} differs at byte "
                        f"{bad} (fastpath {data_f[bad]} != "
                        f"interp {data_r[bad]})")
    return None


def _treewalk_loop(machine, stmt: A.For, env) -> None:
    from repro.cfront.interp import _Break, _Continue
    while stmt.cond is None or machine._truthy(machine.eval(stmt.cond, env)):
        try:
            machine.exec_stmt(stmt.body, env)
        except _Break:
            break
        except _Continue:
            pass
        if stmt.step is not None:
            machine.eval(stmt.step, env)


def _exec_loop_verified(machine, frame: Frame, spec: LoopSpec,
                        stmt: A.For, env) -> bool:
    pre = _snapshot(machine)
    _exec_loop(machine, frame, spec, run_init=False)
    frame.flush()
    post_fast = _snapshot(machine)
    _restore(machine, pre)
    prev = machine.host_fastpath
    machine.host_fastpath = "off"
    try:
        _treewalk_loop(machine, stmt, env)
    finally:
        machine.host_fastpath = prev
    post_ref = _snapshot(machine)
    machine.host_stats["verified_regions"] += 1
    diff = _diff_snapshots(post_fast, post_ref)
    if diff:
        raise HostFastpathVerifyError(
            f"host fastpath verify: loop at {stmt.loc} diverged — {diff}")
    machine.host_stats["loop_fast"] += 1
    return True


def _results_equal(a, b) -> bool:
    from repro.cfront.interp import Ptr
    if isinstance(a, Ptr) or isinstance(b, Ptr):
        return isinstance(a, Ptr) and isinstance(b, Ptr) \
            and a.addr == b.addr and a.mem is b.mem
    if a is None or b is None:
        return a is b
    if isinstance(a, (float, np.floating)) and isinstance(b, (float, np.floating)):
        return type(a) is type(b) and (a == b or (a != a and b != b))
    return type(a) is type(b) and a == b


def _call_fn_verified(machine, frame: Frame, spec: FnSpec, fn, args, loc):
    pre = _snapshot(machine)
    result = _exec_fn(machine, frame, spec)
    frame.flush()
    post_fast = _snapshot(machine)
    _restore(machine, pre)
    prev = machine.host_fastpath
    machine.host_fastpath = "off"
    try:
        ref = machine._call_interpreted(fn, args, loc)
    finally:
        machine.host_fastpath = prev
    post_ref = _snapshot(machine)
    machine.host_stats["verified_regions"] += 1
    diff = _diff_snapshots(post_fast, post_ref)
    if diff is None and not _results_equal(result, ref):
        diff = f"return value {result!r} != {ref!r}"
    if diff:
        raise HostFastpathVerifyError(
            f"host fastpath verify: {spec.name}() diverged — {diff}")
    machine.host_stats["fn_fast"] += 1
    return ref


# --------------------------------------------------------------------------
# entry points (called from Machine)
# --------------------------------------------------------------------------

def exec_for_fastpath(machine, stmt: A.For, env) -> bool:
    """Execute an already-initialised ``for`` via a compiled plan.

    Returns True when fully executed (loop variable left at its final
    value); False to fall back to the tree-walker.  Called by
    ``Machine._exec_for`` after the init statement has run.
    """
    mode = machine.host_fastpath
    plans = machine._hc_loop_plans
    key = id(stmt)
    spec = plans.get(key, _UNSEEN)
    if spec is _UNSEEN:
        spec = _analyze_loop(stmt, allow_approx=(mode != "verify"), top=True)
        plans[key] = (stmt, spec)
    else:
        spec = spec[1]
    if spec is None:
        machine.host_stats["loop_fallback"] += 1
        return False
    frame = Frame(machine, env)
    try:
        _validate_loop(frame, spec, {})
    except _Bail:
        machine.host_stats["loop_fallback"] += 1
        return False
    if mode == "verify":
        return _exec_loop_verified(machine, frame, spec, stmt, env)
    try:
        _exec_loop(machine, frame, spec, run_init=False)
    except _BailDry:
        machine.host_stats["loop_fallback"] += 1
        return False
    except _Bail as exc:
        raise InterpError(
            f"host fastpath: internal bail after validation at {stmt.loc}"
        ) from exc
    frame.flush()
    machine.host_stats["loop_fast"] += 1
    return True


def _canon_arg(machine, arg, ctype: CType):
    from repro.cfront.interp import Ptr
    if isinstance(ctype, BasicType):
        if isinstance(arg, Ptr):
            raise _Bail()
        return _canon(arg, ctype)
    if isinstance(ctype, PointerType):
        if isinstance(arg, Ptr):
            return Ptr(arg.mem, arg.addr, ctype.pointee)
        addr = int(arg)
        return machine.make_ptr(addr, ctype.pointee) if addr else 0
    raise _Bail()


def _exec_fn(machine, frame: Frame, spec: FnSpec):
    _exec_items(machine, frame, spec.items)
    if spec.ret is not None:
        return _scalar_eval(frame, spec.ret)
    return None


def maybe_call_compiled(machine, fn, args, loc=None):
    """Try to run a user function as a compiled closure.

    Returns ``(True, result)`` when the function was executed compiled, or
    ``(False, None)`` to fall back to ``Machine._call_interpreted``.
    """
    defn = fn.defn
    plans = machine._hc_fn_plans
    key = id(defn)
    spec = plans.get(key, _UNSEEN)
    if spec is _UNSEEN:
        spec = _analyze_fn(
            defn, allow_approx=(machine.host_fastpath != "verify"))
        plans[key] = (defn, spec)
    else:
        spec = spec[1]
    if spec is None or len(args) != len(spec.params):
        machine.host_stats["fn_fallback"] += 1
        return False, None
    frame = Frame(machine, [])
    try:
        for (name, ctype), arg in zip(spec.params, args):
            frame.declare(name, ctype, _canon_arg(machine, arg, ctype))
        _validate_fn(frame, spec)
    except _Bail:
        machine.host_stats["fn_fallback"] += 1
        return False, None
    if machine.host_fastpath == "verify":
        return True, _call_fn_verified(machine, frame, spec, fn, args, loc)
    try:
        result = _exec_fn(machine, frame, spec)
    except _Bail as exc:
        raise InterpError(
            f"host fastpath: internal bail after validation in {spec.name}()"
        ) from exc
    frame.flush()
    machine.host_stats["fn_fast"] += 1
    return True, result

