"""The C type system (LP64 layout, matching the 64-bit ARM A57 of the
Jetson Nano).

Types are immutable value objects; equality is structural.  Only the
features the reproduction needs are modelled: basic arithmetic types,
pointers, (possibly multi-dimensional) arrays, functions and simple
structs.  ``dim3`` (CUDA's grid/block dimension triple) is provided as a
builtin struct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np


class CType:
    """Base class for all C types."""

    def sizeof(self) -> int:
        raise NotImplementedError

    def alignof(self) -> int:
        return self.sizeof()

    # Convenience predicates -------------------------------------------------
    @property
    def is_arithmetic(self) -> bool:
        return isinstance(self, BasicType) and self.kind != "void"

    @property
    def is_integer(self) -> bool:
        return isinstance(self, BasicType) and self.kind in _INT_KINDS

    @property
    def is_floating(self) -> bool:
        return isinstance(self, BasicType) and self.kind in ("float", "double")

    @property
    def is_pointer(self) -> bool:
        return isinstance(self, PointerType)

    @property
    def is_array(self) -> bool:
        return isinstance(self, ArrayType)

    @property
    def is_void(self) -> bool:
        return isinstance(self, BasicType) and self.kind == "void"

    def decay(self) -> "CType":
        """Array-to-pointer decay (identity for non-arrays)."""
        if isinstance(self, ArrayType):
            return PointerType(self.elem)
        return self


_INT_KINDS = ("char", "short", "int", "long")
_SIZES = {"void": 0, "char": 1, "short": 2, "int": 4, "long": 8,
          "float": 4, "double": 8}

#: numpy dtypes backing each basic kind; memory in the simulated device and
#: in the host interpreter is numpy-typed so arithmetic wraps exactly like C.
_DTYPES = {
    ("char", True): np.int8, ("char", False): np.uint8,
    ("short", True): np.int16, ("short", False): np.uint16,
    ("int", True): np.int32, ("int", False): np.uint32,
    ("long", True): np.int64, ("long", False): np.uint64,
    ("float", True): np.float32, ("double", True): np.float64,
}


# precomputed (kind, signed) -> np.dtype: the interpreter fallback path
# resolves a dtype on every scalar load/store, so this lookup is hot — the
# dict probe is inlined at the call site in BasicType.dtype (no wrapper
# frame at all) and the domain is small and closed
_DTYPE_CACHE = {key: np.dtype(value) for key, value in _DTYPES.items()}


_U64 = np.dtype(np.uint64)


@dataclass(frozen=True)
class BasicType(CType):
    kind: str                  # void/char/short/int/long/float/double
    signed: bool = True

    def __post_init__(self):
        if self.kind not in _SIZES:
            raise ValueError(f"unknown basic type kind {self.kind!r}")

    def sizeof(self) -> int:
        return _SIZES[self.kind]

    def dtype(self) -> np.dtype:
        return _DTYPE_CACHE[(self.kind, self.signed or self.is_floating)]

    def __str__(self) -> str:
        prefix = "" if self.signed or self.kind in ("float", "double", "void") else "unsigned "
        return prefix + self.kind


@dataclass(frozen=True)
class PointerType(CType):
    pointee: CType

    def sizeof(self) -> int:
        return 8  # LP64

    def dtype(self) -> np.dtype:
        return _U64

    def __str__(self) -> str:
        return f"{self.pointee} *"


@dataclass(frozen=True)
class ArrayType(CType):
    elem: CType
    length: Optional[int] = None   # None: incomplete ('x[]')

    def sizeof(self) -> int:
        if self.length is None:
            raise ValueError("sizeof incomplete array type")
        return self.elem.sizeof() * self.length

    def alignof(self) -> int:
        return self.elem.alignof()

    def __str__(self) -> str:
        n = "" if self.length is None else str(self.length)
        return f"{self.elem} [{n}]"


@dataclass(frozen=True)
class FunctionType(CType):
    return_type: CType
    param_types: tuple[CType, ...] = ()
    variadic: bool = False

    def sizeof(self) -> int:
        raise ValueError("sizeof function type")

    def __str__(self) -> str:
        params = ", ".join(str(p) for p in self.param_types) or "void"
        if self.variadic:
            params += ", ..."
        return f"{self.return_type} (*)({params})"


@dataclass(frozen=True)
class StructType(CType):
    name: str
    #: resolved field list; may be empty for a forward reference that gets
    #: looked up in the parser's struct table.
    fields_: tuple[tuple[str, CType], ...] = field(default=())

    def layout(self) -> tuple[dict[str, int], int, int]:
        """Return ({field: offset}, total size, alignment)."""
        offsets: dict[str, int] = {}
        off = 0
        align = 1
        for fname, ftype in self.fields_:
            a = ftype.alignof()
            align = max(align, a)
            off = (off + a - 1) // a * a
            offsets[fname] = off
            off += ftype.sizeof()
        size = (off + align - 1) // align * align if off else 0
        return offsets, size, align

    def field_type(self, name: str) -> CType:
        for fname, ftype in self.fields_:
            if fname == name:
                return ftype
        raise KeyError(f"struct {self.name} has no field {name!r}")

    def sizeof(self) -> int:
        return self.layout()[1]

    def alignof(self) -> int:
        return self.layout()[2]

    def __str__(self) -> str:
        return f"struct {self.name}"


# Canonical singletons ------------------------------------------------------
VOID = BasicType("void")
CHAR = BasicType("char")
UCHAR = BasicType("char", signed=False)
SHORT = BasicType("short")
INT = BasicType("int")
UINT = BasicType("int", signed=False)
LONG = BasicType("long")
ULONG = BasicType("long", signed=False)
FLOAT = BasicType("float")
DOUBLE = BasicType("double")
VOIDP = PointerType(VOID)
CHARP = PointerType(CHAR)

#: CUDA's dim3: three unsigned ints (x, y, z).
DIM3 = StructType("dim3", (("x", UINT), ("y", UINT), ("z", UINT)))


def usual_arithmetic(a: CType, b: CType) -> CType:
    """C's usual arithmetic conversions, reduced to the subset's ranks."""
    if not (a.is_arithmetic and b.is_arithmetic):
        raise ValueError(f"usual_arithmetic on non-arithmetic {a}, {b}")
    assert isinstance(a, BasicType) and isinstance(b, BasicType)
    if a.kind == "double" or b.kind == "double":
        return DOUBLE
    if a.kind == "float" or b.kind == "float":
        return FLOAT
    rank = {"char": 0, "short": 1, "int": 2, "long": 3}
    ra, rb = max(rank[a.kind], 2), max(rank[b.kind], 2)  # integer promotion
    kind = "long" if max(ra, rb) == 3 else "int"
    wide = a if rank[a.kind] >= rank[b.kind] else b
    signed = a.signed and b.signed if rank[a.kind] == rank[b.kind] else wide.signed
    if kind == "int" and rank[a.kind] < 3 and rank[b.kind] < 3:
        signed = True  # both promoted to plain int
    return BasicType(kind, signed)


def promote(t: CType) -> CType:
    """Integer promotion of small types to int."""
    if isinstance(t, BasicType) and t.kind in ("char", "short"):
        return INT
    return t
