"""Token kinds and keyword tables for the C subset."""

from __future__ import annotations

import enum


class TokenKind(enum.Enum):
    """Lexical token categories.

    Punctuators carry their spelling as the token ``text``; a single
    ``PUNCT`` kind would also work but distinct kinds make the parser's
    dispatch tables self-documenting.
    """

    EOF = "eof"
    IDENT = "ident"
    KEYWORD = "keyword"
    INT_LIT = "int-literal"
    FLOAT_LIT = "float-literal"
    CHAR_LIT = "char-literal"
    STRING_LIT = "string-literal"
    PRAGMA = "pragma"          # a whole '#pragma ...' line, text = payload
    PUNCT = "punct"            # operators and punctuation, text = spelling


#: C keywords recognised by the subset.  ``__global__``/``__device__``/
#: ``__shared__``/``__host__`` are CUDA C declaration specifiers — the nvcc
#: simulator parses generated kernel files with this same lexer.
KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default",
        "do", "double", "else", "enum", "extern", "float", "for", "goto",
        "if", "inline", "int", "long", "register", "restrict", "return",
        "short", "signed", "sizeof", "static", "struct", "switch",
        "typedef", "union", "unsigned", "void", "volatile", "while",
        # CUDA C extensions (used by generated kernel files / .cu sources)
        "__global__", "__device__", "__shared__", "__host__",
        "__restrict__", "__constant__",
    }
)

#: Multi-character punctuators, longest first so the lexer can do maximal
#: munch with a simple ordered scan.
PUNCTUATORS = (
    "<<<", ">>>",
    "<<=", ">>=", "...",
    "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "^=", "|=",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
)

#: Assignment operator spellings mapped to the underlying binary operator
#: (``=`` maps to ``None``: plain assignment).
ASSIGN_OPS: dict[str, str | None] = {
    "=": None,
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "/",
    "%=": "%",
    "<<=": "<<",
    ">>=": ">>",
    "&=": "&",
    "^=": "^",
    "|=": "|",
}
