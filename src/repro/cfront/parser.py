"""Recursive-descent parser for the C subset (plus CUDA C extensions).

Scope of the subset (enough for Polybench/Unibench sources, the code the
OMPi translator generates, and the CUDA kernel files the nvcc simulator
consumes):

* declarations with full C declarator syntax (pointers, arrays, function
  pointers, parenthesised declarators such as ``int (*x)[96]``);
* ``struct`` definitions (file scope and inline in declarations);
* all C control flow except ``switch``/``goto`` (not used by the paper's
  pipeline); expressions with the complete C operator set;
* ``#pragma`` lines as statements or file-scope declarations, classified
  by a pluggable *pragma classifier* (the OpenMP layer provides one);
* CUDA: ``__global__``/``__device__``/``__shared__`` specifiers and the
  triple-chevron launch syntax.

There is no preprocessor; commonly-used library functions are declared by
:mod:`repro.cfront.builtins`.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cfront import astnodes as A
from repro.cfront.ctypes_ import (
    DIM3, INT, UINT, ULONG, VOID, ArrayType, BasicType, CType, FunctionType,
    PointerType, StructType,
)
from repro.cfront.errors import ParseError, SourceLoc
from repro.cfront.lexer import Lexer, Token
from repro.cfront.tokens import ASSIGN_OPS, TokenKind

#: classification of a pragma's association with code
PragmaClassifier = Callable[[str], str]  # -> 'block' | 'standalone' | 'declarative'

_STANDALONE_OMP = (
    "barrier", "taskwait", "taskyield", "flush",
    "target update", "target enter data", "target exit data",
)
_DECLARATIVE_OMP = ("declare target", "end declare target", "threadprivate")


def default_pragma_classifier(text: str) -> str:
    """Classify an OpenMP pragma payload by its directive name.

    Non-``omp`` pragmas are treated as standalone (and later ignored).
    """
    body = text.strip()
    if not body.startswith("omp"):
        return "standalone"
    body = body[3:].strip()
    for name in _DECLARATIVE_OMP:
        if body == name or body.startswith(name + " ") or body.startswith(name + "("):
            return "declarative"
    for name in _STANDALONE_OMP:
        if body == name or body.startswith(name + " ") or body.startswith(name + "("):
            return "standalone"
    return "block"


_TYPE_SPEC_KEYWORDS = frozenset(
    {"void", "char", "short", "int", "long", "float", "double",
     "signed", "unsigned", "struct"}
)
_STORAGE_KEYWORDS = frozenset({"static", "extern", "typedef", "auto", "register"})
_QUAL_KEYWORDS = frozenset(
    {"const", "volatile", "restrict", "inline",
     "__global__", "__device__", "__shared__", "__host__", "__restrict__",
     "__constant__"}
)

#: binary operator precedence (higher binds tighter)
_BINOP_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6,
    "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}


class Parser:
    def __init__(
        self,
        source: str,
        filename: str = "<memory>",
        pragma_classifier: PragmaClassifier | None = None,
        typedefs: dict[str, CType] | None = None,
    ):
        self.toks = Lexer(source, filename).tokens()
        self.i = 0
        self.filename = filename
        self.classify_pragma = pragma_classifier or default_pragma_classifier
        #: known type aliases; seeded with the CUDA/stdlib names our
        #: pipeline relies on (there is no preprocessor to introduce them).
        self.typedefs: dict[str, CType] = {
            "dim3": DIM3,
            "size_t": ULONG,
            "uint32_t": UINT,
            "int32_t": INT,
            "DATA_TYPE": BasicType("float"),
        }
        if typedefs:
            self.typedefs.update(typedefs)
        self.structs: dict[str, StructType] = {"dim3": DIM3}
        self._anon_struct_count = 0
        #: names of the most recently parsed parameter list (set by
        #: :meth:`_parse_declarator_suffixes`; consumed for function
        #: definitions, whose FunctionType carries only parameter types).
        self._last_fn_params: list[tuple[Optional[str], CType]] = []

    # -- token helpers -------------------------------------------------------
    def _peek(self, offset: int = 0) -> Token:
        i = min(self.i + offset, len(self.toks) - 1)
        return self.toks[i]

    def _next(self) -> Token:
        tok = self.toks[self.i]
        if tok.kind is not TokenKind.EOF:
            self.i += 1
        return tok

    def _check_punct(self, spelling: str) -> bool:
        return self._peek().is_punct(spelling)

    def _accept_punct(self, spelling: str) -> Optional[Token]:
        if self._check_punct(spelling):
            return self._next()
        return None

    def _expect_punct(self, spelling: str) -> Token:
        tok = self._peek()
        if not tok.is_punct(spelling):
            raise ParseError(f"expected {spelling!r}, found {tok.text!r}", tok.loc)
        return self._next()

    def _accept_keyword(self, word: str) -> Optional[Token]:
        if self._peek().is_keyword(word):
            return self._next()
        return None

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {tok.text!r}", tok.loc)
        return self._next()

    # -- type detection --------------------------------------------------------
    def _starts_type(self, offset: int = 0) -> bool:
        tok = self._peek(offset)
        if tok.kind is TokenKind.KEYWORD and (
            tok.text in _TYPE_SPEC_KEYWORDS
            or tok.text in _QUAL_KEYWORDS
            or tok.text in _STORAGE_KEYWORDS
        ):
            return True
        return tok.kind is TokenKind.IDENT and tok.text in self.typedefs

    # -- declaration specifiers ---------------------------------------------
    def _parse_decl_specifiers(self) -> tuple[CType, Optional[str], tuple[str, ...], bool]:
        """Parse storage/qualifier/type specifiers.

        Returns ``(base_type, storage, quals, saw_inline_struct)``.
        """
        storage: Optional[str] = None
        quals: list[str] = []
        kinds: list[str] = []
        signedness: Optional[bool] = None
        base: Optional[CType] = None
        inline_struct = False
        start = self._peek().loc
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.KEYWORD and tok.text in _STORAGE_KEYWORDS:
                self._next()
                if tok.text in ("auto", "register"):
                    continue  # accepted and ignored
                if storage is not None:
                    raise ParseError("multiple storage specifiers", tok.loc)
                storage = tok.text
            elif tok.kind is TokenKind.KEYWORD and tok.text in _QUAL_KEYWORDS:
                self._next()
                if tok.text not in quals:
                    quals.append(tok.text)
            elif tok.kind is TokenKind.KEYWORD and tok.text == "struct":
                self._next()
                base, inline_struct = self._parse_struct_specifier(tok.loc)
            elif tok.kind is TokenKind.KEYWORD and tok.text in (
                "void", "char", "short", "int", "long", "float", "double"
            ):
                self._next()
                kinds.append(tok.text)
            elif tok.kind is TokenKind.KEYWORD and tok.text in ("signed", "unsigned"):
                self._next()
                signedness = tok.text == "signed"
            elif (
                tok.kind is TokenKind.IDENT
                and tok.text in self.typedefs
                and base is None
                and not kinds
                and signedness is None
            ):
                # A typedef name is only a type specifier when no other type
                # specifier has been seen (so 'int dim3;' declares a variable
                # named dim3).
                self._next()
                base = self.typedefs[tok.text]
            else:
                break
        if base is None:
            if not kinds and signedness is None:
                raise ParseError("expected type specifier", start)
            base = self._combine_basic(kinds, signedness, start)
        elif kinds or signedness is not None:
            raise ParseError("conflicting type specifiers", start)
        return base, storage, tuple(quals + (["inline_struct"] if inline_struct else [])), inline_struct

    @staticmethod
    def _combine_basic(kinds: list[str], signedness: Optional[bool], loc: SourceLoc) -> CType:
        counts = {k: kinds.count(k) for k in set(kinds)}
        signed = True if signedness is None else signedness
        if counts.get("long", 0) >= 1:
            if any(k not in ("long", "int") for k in kinds):
                raise ParseError("invalid long combination", loc)
            return BasicType("long", signed)
        if not kinds:
            return BasicType("int", signed)  # bare signed/unsigned
        if len(set(kinds)) > 1 and set(kinds) != {"short", "int"}:
            raise ParseError(f"invalid type combination {kinds}", loc)
        kind = "short" if "short" in kinds else kinds[0]
        if kind in ("float", "double", "void") and signedness is not None:
            raise ParseError(f"cannot apply signedness to {kind}", loc)
        return BasicType(kind, signed)

    def _parse_struct_specifier(self, loc: SourceLoc) -> tuple[StructType, bool]:
        name = None
        if self._peek().kind is TokenKind.IDENT:
            name = self._next().text
        if self._accept_punct("{"):
            fields: list[tuple[str, CType]] = []
            while not self._check_punct("}"):
                fbase, fstorage, _fquals, _ = self._parse_decl_specifiers()
                if fstorage is not None:
                    raise ParseError("storage class in struct field", self._peek().loc)
                while True:
                    fname, ftype = self._parse_declarator(fbase)
                    if fname is None:
                        raise ParseError("unnamed struct field", self._peek().loc)
                    fields.append((fname, ftype))
                    if not self._accept_punct(","):
                        break
                self._expect_punct(";")
            self._expect_punct("}")
            if name is None:
                self._anon_struct_count += 1
                name = f"__anon{self._anon_struct_count}"
            st = StructType(name, tuple(fields))
            self.structs[name] = st
            return st, True
        if name is None:
            raise ParseError("anonymous struct requires a body", loc)
        if name in self.structs:
            return self.structs[name], False
        st = StructType(name, ())
        self.structs[name] = st
        return st, False

    # -- declarators -----------------------------------------------------------
    def _parse_declarator(self, base: CType) -> tuple[Optional[str], CType]:
        """Parse a declarator, returning (name, full type).

        Implements the standard inside-out algorithm via a worklist of type
        constructors gathered while descending.
        """
        while self._accept_punct("*"):
            while self._peek().kind is TokenKind.KEYWORD and self._peek().text in _QUAL_KEYWORDS:
                self._next()
            base = PointerType(base)
        return self._parse_direct_declarator(base)

    def _parse_direct_declarator(self, base: CType) -> tuple[Optional[str], CType]:
        name: Optional[str] = None
        inner: Optional[tuple[int, int]] = None  # token span of parenthesised declarator
        tok = self._peek()
        if tok.kind is TokenKind.IDENT:
            name = self._next().text
        elif tok.is_punct("(") and self._is_paren_declarator():
            # Remember the span; re-parse after suffixes are known.
            start = self.i
            self._skip_balanced_parens()
            inner = (start + 1, self.i - 1)
        # suffixes apply outside-in to `base`
        base = self._parse_declarator_suffixes(base)
        if inner is not None:
            save = self.i
            self.i = inner[0]
            name, base = self._parse_declarator(base)
            if self.i != inner[1]:
                raise ParseError("trailing tokens in declarator", self._peek().loc)
            self.i = save
        return name, base

    def _is_paren_declarator(self) -> bool:
        """Disambiguate ``(`` starting a parenthesised declarator from a
        function parameter list: a declarator starts with ``*``, ``(``, or an
        identifier that is not a type name."""
        nxt = self._peek(1)
        if nxt.is_punct("*") or nxt.is_punct("("):
            return True
        return nxt.kind is TokenKind.IDENT and nxt.text not in self.typedefs

    def _skip_balanced_parens(self) -> None:
        depth = 0
        while True:
            tok = self._next()
            if tok.kind is TokenKind.EOF:
                raise ParseError("unbalanced parentheses", tok.loc)
            if tok.is_punct("("):
                depth += 1
            elif tok.is_punct(")"):
                depth -= 1
                if depth == 0:
                    return

    def _parse_declarator_suffixes(self, base: CType) -> CType:
        # Array suffixes bind left-to-right but construct outer-to-inner:
        # x[2][3] is array 2 of array 3 of base.
        dims: list[Optional[int]] = []
        while True:
            if self._accept_punct("["):
                if self._accept_punct("]"):
                    dims.append(None)
                else:
                    size_expr = self._parse_expr()
                    self._expect_punct("]")
                    dims.append(self._const_int(size_expr))
            elif self._check_punct("(") and not dims:
                self._next()
                named, variadic = self._parse_param_types()
                self._expect_punct(")")
                inner = self._parse_declarator_suffixes(base)
                self._last_fn_params = named
                return FunctionType(inner, tuple(t for _n, t in named), variadic)
            else:
                break
        for d in reversed(dims):
            base = ArrayType(base, d)
        return base

    def _parse_param_types(self) -> tuple[list[tuple[Optional[str], CType]], bool]:
        params: list[tuple[Optional[str], CType]] = []
        variadic = False
        if self._check_punct(")"):
            return params, variadic
        if self._peek().is_keyword("void") and self._peek(1).is_punct(")"):
            self._next()
            return params, variadic
        while True:
            if self._accept_punct("..."):
                variadic = True
                break
            pbase, _storage, _quals, _ = self._parse_decl_specifiers()
            pname, ptype = self._parse_declarator(pbase)
            params.append((pname, ptype.decay()))
            if not self._accept_punct(","):
                break
        return params, variadic

    def _const_int(self, expr: A.Expr) -> int:
        """Fold a constant expression used as an array bound."""
        val = _const_eval(expr)
        if val is None:
            raise ParseError("array bound must be a constant expression", expr.loc)
        return int(val)

    # -- type names (casts, sizeof) -----------------------------------------
    def _parse_type_name(self) -> CType:
        base, storage, _quals, _ = self._parse_decl_specifiers()
        if storage is not None:
            raise ParseError("storage class in type name", self._peek().loc)
        name, ctype = self._parse_abstract_declarator(base)
        if name is not None:
            raise ParseError("unexpected identifier in type name", self._peek().loc)
        return ctype

    def _parse_abstract_declarator(self, base: CType) -> tuple[Optional[str], CType]:
        if (
            self._check_punct("*")
            or self._check_punct("[")
            or (self._check_punct("(") and self._is_paren_declarator())
            or self._peek().kind is TokenKind.IDENT
        ):
            return self._parse_declarator(base)
        return None, base

    # -- expressions -------------------------------------------------------------
    def _parse_expr(self) -> A.Expr:
        expr = self._parse_assignment()
        if self._check_punct(","):
            parts = [expr]
            while self._accept_punct(","):
                parts.append(self._parse_assignment())
            return A.Comma(parts, loc=expr.loc)
        return expr

    def _parse_assignment(self) -> A.Expr:
        left = self._parse_conditional()
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in ASSIGN_OPS:
            self._next()
            value = self._parse_assignment()
            return A.Assign(left, value, ASSIGN_OPS[tok.text], loc=tok.loc)
        return left

    def _parse_conditional(self) -> A.Expr:
        cond = self._parse_binary(1)
        if self._check_punct("?"):
            loc = self._next().loc
            then = self._parse_expr()
            self._expect_punct(":")
            other = self._parse_conditional()
            return A.Cond(cond, then, other, loc=loc)
        return cond

    def _parse_binary(self, min_prec: int) -> A.Expr:
        left = self._parse_unary()
        while True:
            tok = self._peek()
            prec = _BINOP_PREC.get(tok.text) if tok.kind is TokenKind.PUNCT else None
            if prec is None or prec < min_prec:
                return left
            self._next()
            right = self._parse_binary(prec + 1)
            left = A.Binary(tok.text, left, right, loc=tok.loc)

    def _parse_unary(self) -> A.Expr:
        tok = self._peek()
        if tok.kind is TokenKind.PUNCT and tok.text in ("-", "+", "!", "~", "*", "&"):
            self._next()
            return A.Unary(tok.text, self._parse_unary(), loc=tok.loc)
        if tok.is_punct("++") or tok.is_punct("--"):
            self._next()
            return A.Unary(tok.text, self._parse_unary(), loc=tok.loc)
        if tok.is_keyword("sizeof"):
            self._next()
            if self._check_punct("(") and self._starts_type(1):
                self._next()
                ctype = self._parse_type_name()
                self._expect_punct(")")
                return A.SizeofType(ctype, loc=tok.loc)
            return A.SizeofExpr(self._parse_unary(), loc=tok.loc)
        if tok.is_punct("(") and self._starts_type(1):
            self._next()
            ctype = self._parse_type_name()
            self._expect_punct(")")
            return A.Cast(ctype, self._parse_unary(), loc=tok.loc)
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("["):
                self._next()
                index = self._parse_expr()
                self._expect_punct("]")
                expr = A.Index(expr, index, loc=tok.loc)
            elif tok.is_punct("("):
                self._next()
                args = self._parse_call_args()
                expr = A.Call(expr, args, loc=tok.loc)
            elif tok.is_punct("<<<"):
                self._next()
                grid = self._parse_assignment()
                self._expect_punct(",")
                block = self._parse_assignment()
                shmem = None
                if self._accept_punct(","):
                    shmem = self._parse_assignment()
                self._expect_punct(">>>")
                self._expect_punct("(")
                args = self._parse_call_args()
                expr = A.CudaKernelCall(expr, grid, block, shmem, args, loc=tok.loc)
            elif tok.is_punct("."):
                self._next()
                name = self._expect_ident().text
                expr = A.Member(expr, name, arrow=False, loc=tok.loc)
            elif tok.is_punct("->"):
                self._next()
                name = self._expect_ident().text
                expr = A.Member(expr, name, arrow=True, loc=tok.loc)
            elif tok.is_punct("++") or tok.is_punct("--"):
                self._next()
                expr = A.Unary("p" + tok.text, expr, loc=tok.loc)
            else:
                return expr

    def _parse_call_args(self) -> list[A.Expr]:
        args: list[A.Expr] = []
        if not self._check_punct(")"):
            while True:
                args.append(self._parse_assignment())
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        return args

    def _parse_primary(self) -> A.Expr:
        tok = self._next()
        if tok.kind is TokenKind.INT_LIT:
            return A.IntLit(int(tok.value), loc=tok.loc)  # type: ignore[arg-type]
        if tok.kind is TokenKind.FLOAT_LIT:
            single = tok.text.lower().endswith("f")
            return A.FloatLit(float(tok.value), single, loc=tok.loc)  # type: ignore[arg-type]
        if tok.kind is TokenKind.CHAR_LIT:
            return A.CharLit(int(tok.value), loc=tok.loc)  # type: ignore[arg-type]
        if tok.kind is TokenKind.STRING_LIT:
            return A.StringLit(str(tok.value), loc=tok.loc)
        if tok.kind is TokenKind.IDENT:
            return A.Ident(tok.text, loc=tok.loc)
        if tok.is_punct("("):
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        raise ParseError(f"unexpected token {tok.text!r} in expression", tok.loc)

    # -- statements ----------------------------------------------------------------
    def _parse_statement(self) -> A.Stmt:
        tok = self._peek()
        if tok.kind is TokenKind.PRAGMA:
            return self._parse_pragma_stmt()
        if tok.is_punct("{"):
            return self._parse_compound()
        if tok.is_keyword("if"):
            return self._parse_if()
        if tok.is_keyword("while"):
            self._next()
            self._expect_punct("(")
            cond = self._parse_expr()
            self._expect_punct(")")
            body = self._parse_statement()
            return A.While(cond, body, loc=tok.loc)
        if tok.is_keyword("do"):
            self._next()
            body = self._parse_statement()
            if not self._accept_keyword("while"):
                raise ParseError("expected 'while' after do-body", self._peek().loc)
            self._expect_punct("(")
            cond = self._parse_expr()
            self._expect_punct(")")
            self._expect_punct(";")
            return A.DoWhile(body, cond, loc=tok.loc)
        if tok.is_keyword("for"):
            return self._parse_for()
        if tok.is_keyword("return"):
            self._next()
            value = None if self._check_punct(";") else self._parse_expr()
            self._expect_punct(";")
            return A.Return(value, loc=tok.loc)
        if tok.is_keyword("break"):
            self._next()
            self._expect_punct(";")
            return A.Break(loc=tok.loc)
        if tok.is_keyword("continue"):
            self._next()
            self._expect_punct(";")
            return A.Continue(loc=tok.loc)
        if tok.is_punct(";"):
            self._next()
            return A.ExprStmt(None, loc=tok.loc)
        if self._starts_type():
            return self._parse_decl_stmt()
        expr = self._parse_expr()
        self._expect_punct(";")
        return A.ExprStmt(expr, loc=tok.loc)

    def _parse_pragma_stmt(self) -> A.Stmt:
        tok = self._next()
        kind = self.classify_pragma(tok.text)
        if kind == "block":
            body = self._parse_statement()
            return A.PragmaStmt(tok.text, body, loc=tok.loc)
        return A.PragmaStmt(tok.text, None, loc=tok.loc)

    def _parse_compound(self) -> A.Compound:
        open_tok = self._expect_punct("{")
        body: list[A.Stmt] = []
        while not self._check_punct("}"):
            if self._peek().kind is TokenKind.EOF:
                raise ParseError("unterminated compound statement", open_tok.loc)
            body.append(self._parse_statement())
        self._expect_punct("}")
        return A.Compound(body, loc=open_tok.loc)

    def _parse_if(self) -> A.If:
        tok = self._next()
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        then = self._parse_statement()
        other = None
        if self._accept_keyword("else"):
            other = self._parse_statement()
        return A.If(cond, then, other, loc=tok.loc)

    def _parse_for(self) -> A.For:
        tok = self._next()
        self._expect_punct("(")
        init: Optional[A.Stmt]
        if self._check_punct(";"):
            self._next()
            init = None
        elif self._starts_type():
            init = self._parse_decl_stmt()
        else:
            expr = self._parse_expr()
            self._expect_punct(";")
            init = A.ExprStmt(expr, loc=expr.loc)
        cond = None if self._check_punct(";") else self._parse_expr()
        self._expect_punct(";")
        step = None if self._check_punct(")") else self._parse_expr()
        self._expect_punct(")")
        body = self._parse_statement()
        return A.For(init, cond, step, body, loc=tok.loc)

    def _parse_decl_stmt(self) -> A.DeclStmt:
        loc = self._peek().loc
        base, storage, quals, _inline = self._parse_decl_specifiers()
        decls: list[A.VarDecl] = []
        if self._check_punct(";") and isinstance(base, StructType):
            self._next()  # bare struct definition as a statement
            return A.DeclStmt(decls, loc=loc)
        first = True
        while True:
            dloc = self._peek().loc
            name, ctype = self._parse_declarator(base)
            if name is None:
                raise ParseError("expected declarator name", dloc)
            init = None
            if self._accept_punct("="):
                init = self._parse_assignment()
            dquals = quals if first else tuple(q for q in quals if q != "inline_struct")
            decls.append(A.VarDecl(name, ctype, init, storage, dquals, loc=dloc))
            first = False
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return A.DeclStmt(decls, loc=loc)

    # -- top level -------------------------------------------------------------
    def parse_translation_unit(self) -> A.TranslationUnit:
        unit = A.TranslationUnit(filename=self.filename)
        while self._peek().kind is not TokenKind.EOF:
            unit.decls.append(self._parse_external_decl())
        return unit

    def _parse_external_decl(self) -> A.Node:
        tok = self._peek()
        if tok.kind is TokenKind.PRAGMA:
            self._next()
            return A.PragmaDecl(tok.text, loc=tok.loc)
        loc = tok.loc
        base, storage, quals, inline_struct = self._parse_decl_specifiers()
        if storage == "typedef":
            name, ctype = self._parse_declarator(base)
            if name is None:
                raise ParseError("typedef requires a name", loc)
            self._expect_punct(";")
            self.typedefs[name] = ctype
            return A.GlobalDecl([], loc=loc)
        if self._check_punct(";"):
            self._next()
            if isinstance(base, StructType) and inline_struct:
                return A.StructDef(base.name, list(base.fields_), loc=loc)
            return A.GlobalDecl([], loc=loc)
        name, ctype = self._parse_declarator(base)
        if name is None:
            raise ParseError("expected declarator", loc)
        if isinstance(ctype, FunctionType) and self._check_punct("{"):
            params = [
                A.Param(pname if pname is not None else f"arg{i}", ptype, loc=loc)
                for i, (pname, ptype) in enumerate(self._last_fn_params)
            ]
            body = self._parse_compound()
            return A.FuncDef(name, ctype.return_type, params, body, quals, loc=loc)
        # prototype or global variables
        if isinstance(ctype, FunctionType):
            self._expect_punct(";")
            params = [
                A.Param(pname if pname is not None else f"arg{i}", ptype, loc=loc)
                for i, (pname, ptype) in enumerate(self._last_fn_params)
            ]
            return A.FuncProto(name, ctype.return_type, params, quals, loc=loc)
        decls = []
        init = None
        if self._accept_punct("="):
            init = self._parse_assignment()
        decls.append(A.VarDecl(name, ctype, init, storage, quals, loc=loc))
        while self._accept_punct(","):
            dloc = self._peek().loc
            dname, dtype = self._parse_declarator(base)
            if dname is None:
                raise ParseError("expected declarator name", dloc)
            dinit = None
            if self._accept_punct("="):
                dinit = self._parse_assignment()
            dquals = tuple(q for q in quals if q != "inline_struct")
            decls.append(A.VarDecl(dname, dtype, dinit, storage, dquals, loc=dloc))
        self._expect_punct(";")
        return A.GlobalDecl(decls, loc=loc)


def _const_eval(expr: A.Expr) -> Optional[float]:
    """Best-effort constant folding for array bounds and similar contexts."""
    if isinstance(expr, A.IntLit):
        return expr.value
    if isinstance(expr, A.FloatLit):
        return expr.value
    if isinstance(expr, A.Unary) and expr.op in ("-", "+", "~", "!"):
        v = _const_eval(expr.operand)
        if v is None:
            return None
        if expr.op == "-":
            return -v
        if expr.op == "+":
            return v
        if expr.op == "~":
            return ~int(v)
        return float(not v)
    if isinstance(expr, A.Binary):
        lhs, rhs = _const_eval(expr.left), _const_eval(expr.right)
        if lhs is None or rhs is None:
            return None
        try:
            return _APPLY_CONST[expr.op](lhs, rhs)
        except (KeyError, ZeroDivisionError):
            return None
    return None


_APPLY_CONST = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b if isinstance(a, float) or isinstance(b, float) else int(a) // int(b),
    "%": lambda a, b: int(a) % int(b),
    "<<": lambda a, b: int(a) << int(b),
    ">>": lambda a, b: int(a) >> int(b),
    "&": lambda a, b: int(a) & int(b),
    "|": lambda a, b: int(a) | int(b),
    "^": lambda a, b: int(a) ^ int(b),
}


def parse_translation_unit(
    source: str,
    filename: str = "<memory>",
    pragma_classifier: PragmaClassifier | None = None,
) -> A.TranslationUnit:
    """Parse a full source buffer into a :class:`TranslationUnit`."""
    return Parser(source, filename, pragma_classifier).parse_translation_unit()


def parse_expression(source: str) -> A.Expr:
    """Parse a standalone expression (testing convenience)."""
    parser = Parser(source)
    expr = parser._parse_expr()
    tok = parser._peek()
    if tok.kind is not TokenKind.EOF:
        raise ParseError(f"trailing input {tok.text!r}", tok.loc)
    return expr
