"""Affine-loop vectorizer — compatibility shim over ``cfront.hostcompile``.

This module used to hold the original single-loop numpy vectorizer.  The
host fast path (``cfront/hostcompile.py``) generalizes it to multi-statement
bodies, nested loops, scalar accumulators and whole functions, with exact
tree-walk semantics; this shim keeps the historical entry point alive for
callers and tests that import it directly.

``try_vectorize_for`` always runs with ``on``-mode analysis semantics
(transcendental math calls are vectorizable) regardless of the machine's
configured ``host_fastpath`` mode, matching the old vectorizer's behaviour.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.cfront import astnodes as A
from repro.cfront.hostcompile import (
    _Bail,
    _BailDry,
    _analyze_loop,
    _exec_loop,
    _validate_loop,
    Frame,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cfront.interp import Machine


def try_vectorize_for(machine: "Machine", stmt: A.For, env: list[dict]) -> bool:
    """Attempt to execute the already-initialised ``for`` with numpy.

    Returns True when the loop was fully executed (including leaving the
    loop variable at its final value); False to fall back.
    """
    try:
        spec = _analyze_loop(stmt, allow_approx=True, top=True)
    except _Bail:
        return False
    if spec is None:
        return False
    frame = Frame(machine, env)
    try:
        _validate_loop(frame, spec, {})
        _exec_loop(machine, frame, spec, run_init=False)
    except _BailDry:
        return False
    except _Bail:
        return False
    frame.flush()
    return True
