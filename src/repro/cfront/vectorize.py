"""Affine-loop vectorizer for the host interpreter.

Tree-walking a 2048x2048 initialisation loop is prohibitively slow in
Python, so canonical affine loops are executed with numpy instead (the HPC
guide's first rule: vectorize the hot loops).  The transformation is
deliberately conservative — anything outside the recognised shape falls
back to the tree-walking interpreter, so correctness never depends on this
module, only speed.

Recognised shape::

    for (i = start; i < stop; i += step)        # or <=, i++, ++i
        A[f(i)] = expr(i);                      # one or more assignments

where every array subscript and every value subexpression is built from
literals, loop-invariant scalars, ``i`` and elementwise operators/math
calls.  Reads of an array that is also written must use an index
expression textually identical to the write (the SAXPY/Polybench pattern
``y[i] = a * x[i] + y[i]``), which guarantees the loop has no loop-carried
dependence and is safe to execute as one vector operation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cfront import astnodes as A
from repro.cfront.ctypes_ import ArrayType, BasicType, PointerType
from repro.cfront.unparse import unparse

if TYPE_CHECKING:  # pragma: no cover
    from repro.cfront.interp import Machine


class _Bail(Exception):
    """Internal: pattern not vectorizable; fall back to interpretation."""


_NP_MATH = {
    "sqrt": np.sqrt, "sqrtf": np.sqrt, "fabs": np.abs, "fabsf": np.abs,
    "exp": np.exp, "expf": np.exp, "log": np.log, "logf": np.log,
    "sin": np.sin, "sinf": np.sin, "cos": np.cos, "cosf": np.cos,
    "floor": np.floor, "floorf": np.floor, "ceil": np.ceil, "ceilf": np.ceil,
    "pow": np.power, "powf": np.power, "fmin": np.minimum, "fmax": np.maximum,
}


def try_vectorize_for(machine: "Machine", stmt: A.For, env: list[dict]) -> bool:
    """Attempt to execute the already-initialised ``for`` with numpy.

    Returns True when the loop was fully executed (including leaving the
    loop variable at its final value); False to fall back.
    """
    try:
        plan = _analyze(machine, stmt, env)
    except _Bail:
        return False
    if plan is None:
        return False
    try:
        return _execute(machine, plan, env)
    except _Bail:
        return False


def _analyze(machine: "Machine", stmt: A.For, env: list[dict]):
    if stmt.cond is None or stmt.body is None:
        return None
    var = _loop_var(stmt)
    if var is None:
        return None
    # bounds
    if not (isinstance(stmt.cond, A.Binary) and stmt.cond.op in ("<", "<=")):
        return None
    if not (isinstance(stmt.cond.left, A.Ident) and stmt.cond.left.name == var):
        return None
    if _mentions(stmt.cond.right, var):
        return None
    step = _loop_step(stmt.step, var)
    if step is None or step <= 0:
        return None
    stmts = stmt.body.body if isinstance(stmt.body, A.Compound) else [stmt.body]
    assigns: list[A.Assign] = []
    for s in stmts:
        if not (isinstance(s, A.ExprStmt) and isinstance(s.expr, A.Assign)):
            return None
        if not isinstance(s.expr.target, A.Index):
            return None
        assigns.append(s.expr)
    if not assigns:
        return None
    # dependence safety: reads of written bases must match the write index
    write_keys = {}
    for a in assigns:
        base_key = _base_key(a.target)
        if base_key is None:
            return None
        write_keys[base_key] = unparse(a.target).strip()
    for a in assigns:
        for node in a.value.walk():
            if isinstance(node, A.Index):
                key = _base_key(node)
                if key in write_keys and unparse(node).strip() != write_keys[key]:
                    return None
        if a.op is not None:
            pass  # compound assignment reads the target at the same index
    return (var, stmt.cond, step, assigns)


def _loop_var(stmt: A.For) -> Optional[str]:
    init = stmt.init
    if isinstance(init, A.ExprStmt) and isinstance(init.expr, A.Assign) \
            and init.expr.op is None and isinstance(init.expr.target, A.Ident):
        return init.expr.target.name
    if isinstance(init, A.DeclStmt) and len(init.decls) == 1 \
            and init.decls[0].init is not None:
        return init.decls[0].name
    # init may be absent when i was set before the loop; accept cond's var
    if init is None and isinstance(stmt.cond, A.Binary) \
            and isinstance(stmt.cond.left, A.Ident):
        return stmt.cond.left.name
    return None


def _loop_step(step: Optional[A.Expr], var: str) -> Optional[int]:
    if step is None:
        return None
    if isinstance(step, A.Unary) and step.op in ("++", "p++") \
            and isinstance(step.operand, A.Ident) and step.operand.name == var:
        return 1
    if isinstance(step, A.Assign) and isinstance(step.target, A.Ident) \
            and step.target.name == var:
        if step.op == "+" and isinstance(step.value, A.IntLit):
            return step.value.value
        if step.op is None and isinstance(step.value, A.Binary) \
                and step.value.op == "+" \
                and isinstance(step.value.left, A.Ident) \
                and step.value.left.name == var \
                and isinstance(step.value.right, A.IntLit):
            return step.value.right.value
    return None


def _mentions(expr: A.Expr, var: str) -> bool:
    return any(isinstance(n, A.Ident) and n.name == var for n in expr.walk())


def _base_key(index: A.Index):
    """Identity of the outermost array base of an index chain, or None."""
    base = index.base
    while isinstance(base, A.Index):
        base = base.base
    if isinstance(base, A.Ident):
        return base.name
    return None


#: compound-assignment operators foldable as a sequential reduction
_REDUCE_UFUNC = {"+": np.add, "-": np.subtract, "*": np.multiply,
                 "/": np.divide}


def _execute(machine: "Machine", plan, env: list[dict]) -> bool:
    var, cond, step, assigns = plan
    from repro.cfront.interp import VarBinding

    start = int(machine.eval(A.Ident(var), env))
    stop = int(machine.eval(cond.right, env))
    stop_excl = stop + 1 if cond.op == "<=" else stop
    iv = np.arange(start, stop_excl, step, dtype=np.int64)
    ctx = _Ctx(machine, env, var, iv)
    # Dry pass: compile every address/value vector without storing anything,
    # so an unsupported construct bails *before* memory is modified and the
    # scalar fallback sees pristine state.  Compilation is side-effect free:
    # only gathers (reads) are performed.  Destinations that collapse onto
    # fewer cells than iterations carry a dependence between iterations:
    # the only such shape executed here is the single-cell reduction
    # ``acc[inv] op= expr(i)`` (e.g. the gemm k-loop); everything else with
    # duplicate destinations falls back to the tree-walker.
    for a in assigns:
        _, addrs, ctype = ctx.addr_vec(a.target)
        if not isinstance(ctype, BasicType):
            raise _Bail()
        ctx.value_vec(a.value)
        uniq = np.unique(addrs).size
        if uniq == addrs.size:
            continue
        reads_target = any(
            isinstance(n, A.Index) and _base_key(n) == _base_key(a.target)
            for n in a.value.walk())
        if reads_target:
            raise _Bail()       # stale gather of a multiply-written cell
        if a.op is not None and (
                uniq != 1 or len(assigns) != 1
                or a.op not in _REDUCE_UFUNC or ctype.is_integer):
            raise _Bail()
        # plain assigns with duplicate destinations scatter in lane order,
        # so the last iteration wins — same as the sequential loop
    # Real pass: re-evaluate in statement order (a statement may read what a
    # previous one just wrote, always at the same index) and scatter.
    for a in assigns:
        mem, addrs, ctype = ctx.addr_vec(a.target)
        assert isinstance(ctype, BasicType)
        dtype = ctype.dtype()
        value = ctx.value_vec(a.value)
        if np.isscalar(value) or getattr(value, "ndim", 1) == 0:
            value = np.full(iv.shape, value)
        if a.op is not None and addrs.size and np.unique(addrs).size == 1:
            # single-cell reduction: left-fold in the target dtype so the
            # per-iteration rounding matches the scalar loop exactly
            old = mem.gather(addrs[:1], dtype)
            seq = np.concatenate(
                [old, np.asarray(value).astype(dtype, casting="unsafe")])
            total = _REDUCE_UFUNC[a.op].accumulate(seq)[-1:]
            mem.scatter(addrs[:1], dtype, total.astype(dtype))
            continue
        if a.op is not None:
            old = mem.gather(addrs, dtype)
            value = _apply_np(a.op, old, value)
        if ctype.is_integer:
            value = np.trunc(value) if np.asarray(value).dtype.kind == "f" else value
        mem.scatter(addrs, dtype, np.asarray(value).astype(dtype, casting="unsafe"))
    # leave the loop variable at its final value
    final = start + len(iv) * step
    for scope in reversed(env):
        if var in scope:
            binding = scope[var]
            break
    else:
        binding = machine.globals[var]
    assert isinstance(binding, VarBinding)
    machine.store_value(binding.mem, binding.addr, binding.ctype, final)
    return True


class _Ctx:
    def __init__(self, machine: "Machine", env: list[dict], var: str, iv: np.ndarray):
        self.machine = machine
        self.env = env
        self.var = var
        self.iv = iv

    def addr_vec(self, index: A.Index):
        """Vector of byte addresses for an index chain."""
        from repro.cfront.interp import Ptr

        base = index.base
        idx = self.value_vec(index.index)
        idx = np.asarray(idx, dtype=np.int64)
        if isinstance(base, A.Index):
            mem, addrs, ctype = self.addr_vec(base)
            if not isinstance(ctype, ArrayType):
                raise _Bail()
            elem = ctype.elem
            return mem, addrs + np.asarray(idx) * elem.sizeof(), elem
        if _mentions(base, self.var):
            raise _Bail()
        ptr = self.machine.eval(base, self.env)
        if not isinstance(ptr, Ptr):
            raise _Bail()
        elem = ptr.ctype
        addrs = ptr.addr + np.asarray(idx, dtype=np.int64) * elem.sizeof()
        if np.isscalar(addrs) or addrs.ndim == 0:
            addrs = np.full(self.iv.shape, addrs, dtype=np.int64)
        return ptr.mem, addrs, elem

    def value_vec(self, expr: A.Expr):
        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.FloatLit):
            return float(np.float32(expr.value)) if expr.single else expr.value
        if isinstance(expr, A.Ident):
            if expr.name == self.var:
                return self.iv
            value = self.machine.eval(expr, self.env)
            if not isinstance(value, (int, float)):
                raise _Bail()
            return value
        if isinstance(expr, A.Binary):
            lhs = self.value_vec(expr.left)
            rhs = self.value_vec(expr.right)
            return _apply_np(expr.op, lhs, rhs)
        if isinstance(expr, A.Unary):
            if expr.op == "-":
                return -self.value_vec(expr.operand)
            if expr.op == "+":
                return self.value_vec(expr.operand)
            if expr.op == "~":
                return ~np.asarray(self.value_vec(expr.operand), dtype=np.int64)
            raise _Bail()
        if isinstance(expr, A.Cast):
            if not isinstance(expr.type, BasicType):
                raise _Bail()
            value = np.asarray(self.value_vec(expr.operand))
            if expr.type.is_integer:
                return np.trunc(value).astype(np.int64) if value.dtype.kind == "f" \
                    else value.astype(np.int64)
            return value.astype(expr.type.dtype())
        if isinstance(expr, A.Index):
            mem, addrs, ctype = self.addr_vec(expr)
            if not isinstance(ctype, BasicType):
                raise _Bail()
            return mem.gather(addrs, ctype.dtype())
        if isinstance(expr, A.Call) and isinstance(expr.func, A.Ident) \
                and expr.func.name in _NP_MATH:
            args = [np.asarray(self.value_vec(a), dtype=np.float64) for a in expr.args]
            return _NP_MATH[expr.func.name](*args)
        if isinstance(expr, A.Cond):
            cond = np.asarray(self.value_vec(expr.cond))
            return np.where(cond != 0, self.value_vec(expr.then), self.value_vec(expr.other))
        raise _Bail()


def _apply_np(op: str, lhs, rhs):
    lhs = np.asarray(lhs)
    rhs = np.asarray(rhs)
    if op == "+":
        return lhs + rhs
    if op == "-":
        return lhs - rhs
    if op == "*":
        return lhs * rhs
    if op == "/":
        if lhs.dtype.kind in "iu" and rhs.dtype.kind in "iu":
            # C truncating division
            return (np.sign(lhs) * np.sign(rhs) *
                    (np.abs(lhs) // np.abs(rhs))).astype(np.int64)
        return lhs / rhs
    if op == "%":
        r = np.abs(lhs) % np.abs(rhs)
        return np.where(lhs >= 0, r, -r).astype(np.int64)
    if op in ("<", ">", "<=", ">=", "==", "!="):
        fn = {"<": np.less, ">": np.greater, "<=": np.less_equal,
              ">=": np.greater_equal, "==": np.equal, "!=": np.not_equal}[op]
        return fn(lhs, rhs).astype(np.int64)
    if op in ("<<", ">>", "&", "|", "^"):
        li = lhs.astype(np.int64)
        ri = rhs.astype(np.int64)
        return {"<<": li << ri, ">>": li >> ri, "&": li & ri,
                "|": li | ri, "^": li ^ ri}[op]
    raise _Bail()
