"""Native (libc/libm) functions available to interpreted host programs.

There is no preprocessor, so instead of header files the interpreter's
global scope is pre-populated with these natives.  Each native has the
signature ``fn(machine, args, loc) -> value``; ``machine`` is the
:class:`repro.cfront.interp.Machine` executing the program.

The OpenMP host API (``omp_*``) and the simulated CUDA runtime API are
registered on top of these by :mod:`repro.hostrt.api` and
:mod:`repro.cuda.runtimeapi` respectively.
"""

from __future__ import annotations

import math
import re
from typing import TYPE_CHECKING

from repro.cfront.errors import InterpError

if TYPE_CHECKING:  # pragma: no cover
    from repro.cfront.interp import Machine


# -- printf ------------------------------------------------------------------

_FMT_RE = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?(?:hh|h|ll|l|z)?[diouxXeEfgGcspn%]")


def _format_printf(machine: "Machine", fmt: str, args: list) -> str:
    out: list[str] = []
    pos = 0
    argi = 0
    for m in _FMT_RE.finditer(fmt):
        out.append(fmt[pos : m.start()])
        pos = m.end()
        spec = m.group(0)
        conv = spec[-1]
        if conv == "%":
            out.append("%")
            continue
        if argi >= len(args):
            raise InterpError(f"printf: missing argument for {spec!r}")
        arg = args[argi]
        argi += 1
        pyspec = re.sub(r"hh|h|ll|l|z", "", spec)
        if conv in "diu":
            pyspec = pyspec[:-1] + "d"
            out.append(pyspec % int(arg))
        elif conv in "oxX":
            out.append(pyspec % int(arg))
        elif conv in "eEfgG":
            out.append(pyspec % float(arg))
        elif conv == "c":
            out.append(chr(int(arg)))
        elif conv == "s":
            out.append(machine.read_cstring(arg))
        elif conv == "p":
            addr = arg.addr if hasattr(arg, "addr") else int(arg)
            out.append(f"0x{addr:x}")
        else:
            raise InterpError(f"printf: unsupported conversion {spec!r}")
    out.append(fmt[pos:])
    return "".join(out)


def _printf(machine: "Machine", args: list, loc) -> int:
    if not args:
        raise InterpError("printf with no format", loc)
    fmt = machine.read_cstring(args[0])
    text = _format_printf(machine, fmt, args[1:])
    machine.stdout.append(text)
    return len(text)


def _fprintf(machine: "Machine", args: list, loc) -> int:
    # stream argument ignored; everything goes to the same capture buffer
    return _printf(machine, args[1:], loc)


def _puts(machine: "Machine", args: list, loc) -> int:
    machine.stdout.append(machine.read_cstring(args[0]) + "\n")
    return 0


# -- memory ------------------------------------------------------------------

def _malloc(machine: "Machine", args: list, loc):
    size = int(args[0])
    from repro.cfront.interp import Ptr
    from repro.cfront.ctypes_ import CHAR
    addr = machine.heap.alloc(size)
    return Ptr(machine.heap, addr, CHAR)


def _calloc(machine: "Machine", args: list, loc):
    n, size = int(args[0]), int(args[1])
    from repro.cfront.interp import Ptr
    from repro.cfront.ctypes_ import CHAR
    addr = machine.heap.alloc(max(n * size, 1))
    machine.heap.view(addr, max(n * size, 1), "u1")[:] = 0
    return Ptr(machine.heap, addr, CHAR)


def _free(machine: "Machine", args: list, loc):
    ptr = args[0]
    if isinstance(ptr, int) and ptr == 0:
        return 0
    machine.heap.free(ptr.addr)
    return 0


def _memset(machine: "Machine", args: list, loc):
    ptr, value, size = args
    ptr.mem.view(ptr.addr, int(size), "u1")[:] = int(value) & 0xFF
    return ptr


def _memcpy(machine: "Machine", args: list, loc):
    dst, src, size = args
    dst.mem.copy_in(dst.addr, src.mem.copy_out(src.addr, int(size)))
    return dst


def _exit(machine: "Machine", args: list, loc):
    from repro.cfront.interp import ProgramExit
    raise ProgramExit(int(args[0]) if args else 0)


def _abort(machine: "Machine", args: list, loc):
    raise InterpError("abort() called", loc)


# -- math ----------------------------------------------------------------------

def _math1(fn):
    def native(machine: "Machine", args: list, loc):
        return fn(float(args[0]))
    return native


def _math2(fn):
    def native(machine: "Machine", args: list, loc):
        return fn(float(args[0]), float(args[1]))
    return native


def default_natives() -> dict:
    """Native function table for a fresh Machine.

    The table is built once and copied per call — the closures are
    stateless, and every interpreter start was paying to rebuild it.
    """
    cached = _NATIVES_CACHE.get("natives")
    if cached is not None:
        return dict(cached)
    natives = {
        "printf": _printf,
        "fprintf": _fprintf,
        "puts": _puts,
        "malloc": _malloc,
        "calloc": _calloc,
        "free": _free,
        "memset": _memset,
        "memcpy": _memcpy,
        "exit": _exit,
        "abort": _abort,
        "abs": _math1(lambda x: abs(int(x))),
        "rand": lambda machine, args, loc: machine.rand(),
        "srand": lambda machine, args, loc: machine.srand(int(args[0])),
    }
    for name, fn in [
        ("sqrt", math.sqrt), ("fabs", abs), ("exp", math.exp),
        ("log", math.log), ("sin", math.sin), ("cos", math.cos),
        ("tan", math.tan), ("floor", math.floor), ("ceil", math.ceil),
    ]:
        natives[name] = _math1(fn)
        natives[name + "f"] = _math1(fn)
    for name, fn in [("pow", math.pow), ("fmod", math.fmod),
                     ("fmax", max), ("fmin", min)]:
        natives[name] = _math2(fn)
        natives[name + "f"] = _math2(fn)
    _NATIVES_CACHE["natives"] = natives
    return dict(natives)


_NATIVES_CACHE: dict = {}
