"""AST -> C source text.

The OMPi compiler is source-to-source: both the transformed host program
and the generated CUDA kernel files are emitted as compilable C text.  The
unparser therefore has to reproduce full declarator syntax (``int
(*x)[96]``), pragma lines, CUDA qualifiers and the triple-chevron launch.

Expression printing is precedence-aware so output stays close to what a
human (or OMPi) would write, which the golden tests rely on.
"""

from __future__ import annotations

from repro.cfront import astnodes as A
from repro.cfront.ctypes_ import (
    ArrayType, BasicType, CType, FunctionType, PointerType, StructType,
)

_PREC = {
    "||": 1, "&&": 2, "|": 3, "^": 4, "&": 5,
    "==": 6, "!=": 6, "<": 7, ">": 7, "<=": 7, ">=": 7,
    "<<": 8, ">>": 8, "+": 9, "-": 9, "*": 10, "/": 10, "%": 10,
}
_PREC_UNARY = 11
_PREC_POSTFIX = 12
_PREC_ASSIGN = 0
_PREC_COND = 0.5
_PREC_COMMA = -1


def declarator(ctype: CType, name: str) -> str:
    """Render ``ctype`` as a C declarator for ``name`` (may be empty for an
    abstract declarator)."""
    out = name
    while True:
        if isinstance(ctype, PointerType):
            out = "*" + out
            ctype = ctype.pointee
        elif isinstance(ctype, ArrayType):
            if out.startswith("*"):
                out = f"({out})"
            dim = "" if ctype.length is None else str(ctype.length)
            out = f"{out}[{dim}]"
            ctype = ctype.elem
        elif isinstance(ctype, FunctionType):
            if out.startswith("*"):
                out = f"({out})"
            params = ", ".join(declarator(p, "") for p in ctype.param_types)
            if ctype.variadic:
                params = params + ", ..." if params else "..."
            if not params:
                params = "void"
            out = f"{out}({params})"
            ctype = ctype.return_type
        else:
            base = str(ctype)
            return f"{base} {out}".rstrip() if out else base


def struct_body(st: StructType, indent: str = "") -> str:
    lines = [f"{indent}struct {st.name} {{"]
    for fname, ftype in st.fields_:
        lines.append(f"{indent}    {declarator(ftype, fname)};")
    lines.append(f"{indent}}}")
    return "\n".join(lines)


class Unparser:
    def __init__(self, indent_unit: str = "    "):
        self.indent_unit = indent_unit
        self.lines: list[str] = []
        self.depth = 0

    # -- helpers ---------------------------------------------------------------
    def _emit(self, text: str) -> None:
        self.lines.append(self.indent_unit * self.depth + text)

    def _pad(self) -> str:
        return self.indent_unit * self.depth

    # -- expressions -------------------------------------------------------------
    def expr(self, e: A.Expr, prec: float = _PREC_COMMA) -> str:
        text, my_prec = self._expr_inner(e)
        if my_prec < prec:
            return f"({text})"
        return text

    def _expr_inner(self, e: A.Expr) -> tuple[str, float]:
        if isinstance(e, A.IntLit):
            return str(e.value), _PREC_POSTFIX
        if isinstance(e, A.FloatLit):
            text = repr(float(e.value))
            if "e" in text or "E" in text:
                # C accepts the same exponent syntax Python's repr produces,
                # but 'inf'/'nan' never appear in generated code paths.
                pass
            if e.single:
                text += "f"
            return text, _PREC_POSTFIX
        if isinstance(e, A.CharLit):
            ch = chr(e.value)
            escaped = {"\n": "\\n", "\t": "\\t", "'": "\\'", "\\": "\\\\", "\0": "\\0"}.get(ch, ch)
            return f"'{escaped}'", _PREC_POSTFIX
        if isinstance(e, A.StringLit):
            body = (
                e.value.replace("\\", "\\\\").replace('"', '\\"')
                .replace("\n", "\\n").replace("\t", "\\t")
            )
            return f'"{body}"', _PREC_POSTFIX
        if isinstance(e, A.Ident):
            return e.name, _PREC_POSTFIX
        if isinstance(e, A.Unary):
            if e.op in ("p++", "p--"):
                return f"{self.expr(e.operand, _PREC_POSTFIX)}{e.op[1:]}", _PREC_POSTFIX
            operand = self.expr(e.operand, _PREC_UNARY)
            sep = " " if e.op in ("-", "+") and operand.startswith(e.op) else ""
            return f"{e.op}{sep}{operand}", _PREC_UNARY
        if isinstance(e, A.Binary):
            p = _PREC[e.op]
            left = self.expr(e.left, p)
            right = self.expr(e.right, p + 1)
            return f"{left} {e.op} {right}", p
        if isinstance(e, A.Assign):
            op = (e.op or "") + "="
            target = self.expr(e.target, _PREC_UNARY)
            value = self.expr(e.value, _PREC_ASSIGN)
            return f"{target} {op} {value}", _PREC_ASSIGN
        if isinstance(e, A.Cond):
            cond = self.expr(e.cond, 1)
            return f"{cond} ? {self.expr(e.then, _PREC_ASSIGN)} : {self.expr(e.other, _PREC_ASSIGN)}", _PREC_COND
        if isinstance(e, A.Comma):
            return ", ".join(self.expr(p, _PREC_ASSIGN) for p in e.parts), _PREC_COMMA
        if isinstance(e, A.Call):
            args = ", ".join(self.expr(a, _PREC_ASSIGN) for a in e.args)
            return f"{self.expr(e.func, _PREC_POSTFIX)}({args})", _PREC_POSTFIX
        if isinstance(e, A.CudaKernelCall):
            args = ", ".join(self.expr(a, _PREC_ASSIGN) for a in e.args)
            dims = f"{self.expr(e.grid, _PREC_ASSIGN)}, {self.expr(e.block, _PREC_ASSIGN)}"
            if e.shmem is not None:
                dims += f", {self.expr(e.shmem, _PREC_ASSIGN)}"
            return f"{self.expr(e.func, _PREC_POSTFIX)}<<<{dims}>>>({args})", _PREC_POSTFIX
        if isinstance(e, A.Index):
            return f"{self.expr(e.base, _PREC_POSTFIX)}[{self.expr(e.index)}]", _PREC_POSTFIX
        if isinstance(e, A.Member):
            op = "->" if e.arrow else "."
            return f"{self.expr(e.base, _PREC_POSTFIX)}{op}{e.name}", _PREC_POSTFIX
        if isinstance(e, A.Cast):
            return f"({declarator(e.type, '')}) {self.expr(e.operand, _PREC_UNARY)}", _PREC_UNARY
        if isinstance(e, A.SizeofExpr):
            return f"sizeof({self.expr(e.operand)})", _PREC_UNARY
        if isinstance(e, A.SizeofType):
            return f"sizeof({declarator(e.type, '')})", _PREC_UNARY
        raise TypeError(f"cannot unparse expression {type(e).__name__}")

    # -- statements ----------------------------------------------------------------
    def stmt(self, s: A.Stmt) -> None:
        if isinstance(s, A.ExprStmt):
            self._emit(f"{self.expr(s.expr)};" if s.expr is not None else ";")
        elif isinstance(s, A.DeclStmt):
            self._decl_stmt(s)
        elif isinstance(s, A.Compound):
            self._emit("{")
            self.depth += 1
            for inner in s.body:
                self.stmt(inner)
            self.depth -= 1
            self._emit("}")
        elif isinstance(s, A.If):
            self._emit(f"if ({self.expr(s.cond)})")
            self._nested(s.then)
            if s.other is not None:
                self._emit("else")
                self._nested(s.other)
        elif isinstance(s, A.While):
            self._emit(f"while ({self.expr(s.cond)})")
            self._nested(s.body)
        elif isinstance(s, A.DoWhile):
            self._emit("do")
            self._nested(s.body)
            self._emit(f"while ({self.expr(s.cond)});")
        elif isinstance(s, A.For):
            init = ""
            if isinstance(s.init, A.ExprStmt) and s.init.expr is not None:
                init = self.expr(s.init.expr)
            elif isinstance(s.init, A.DeclStmt):
                init = self._decl_text(s.init)
            cond = self.expr(s.cond) if s.cond is not None else ""
            step = self.expr(s.step) if s.step is not None else ""
            self._emit(f"for ({init}; {cond}; {step})")
            self._nested(s.body)
        elif isinstance(s, A.Return):
            self._emit(f"return {self.expr(s.value)};" if s.value is not None else "return;")
        elif isinstance(s, A.Break):
            self._emit("break;")
        elif isinstance(s, A.Continue):
            self._emit("continue;")
        elif isinstance(s, A.PragmaStmt):
            self.lines.append(f"#pragma {s.text}")
            if s.body is not None:
                self.stmt(s.body)
        else:
            raise TypeError(f"cannot unparse statement {type(s).__name__}")

    def _nested(self, s: A.Stmt) -> None:
        if isinstance(s, A.Compound):
            self.stmt(s)
        else:
            self.depth += 1
            self.stmt(s)
            self.depth -= 1

    def _decl_text(self, s: A.DeclStmt) -> str:
        # Single-line form used in for-init; assumes a uniform base type.
        parts = []
        for d in s.decls:
            text = declarator(d.type, d.name)
            if d.init is not None:
                text += f" = {self.expr(d.init, _PREC_ASSIGN)}"
            parts.append(text)
        if not parts:
            return ""
        # merge subsequent declarators of the same base: keep it simple and
        # emit the full declarator for the first, names for the rest only if
        # types match exactly.
        first = parts[0]
        rest = []
        for d, text in zip(s.decls[1:], parts[1:]):
            if d.type == s.decls[0].type:
                rest.append(text.split(" ", 1)[1] if " " in text else text)
            else:
                rest.append(text)
        return ", ".join([first] + rest)

    def _decl_stmt(self, s: A.DeclStmt) -> None:
        if not s.decls:
            return
        for d in s.decls:
            prefix = ""
            quals = [q for q in d.quals if q != "inline_struct"]
            if d.storage:
                prefix += d.storage + " "
            if quals:
                prefix += " ".join(quals) + " "
            if "inline_struct" in d.quals and isinstance(_base_of(d.type), StructType):
                st = _base_of(d.type)
                assert isinstance(st, StructType)
                body = struct_body(st, self._pad())
                # re-render: 'quals struct name { ... } declarator;'
                decl = declarator(d.type, d.name)
                # strip the leading 'struct name' from the declarator text
                decl = decl.replace(f"struct {st.name} ", "", 1)
                init = f" = {self.expr(d.init, _PREC_ASSIGN)}" if d.init is not None else ""
                lines = body.split("\n")
                lines[0] = self._pad() + prefix + lines[0].lstrip()
                lines[-1] = lines[-1] + f" {decl}{init};"
                self.lines.extend(lines)
                continue
            text = declarator(d.type, d.name)
            if d.init is not None:
                text += f" = {self.expr(d.init, _PREC_ASSIGN)}"
            self._emit(f"{prefix}{text};")

    # -- top level -------------------------------------------------------------
    def decl(self, node: A.Node) -> None:
        if isinstance(node, A.FuncDef):
            quals = " ".join(node.quals)
            params = ", ".join(declarator(p.type, p.name) for p in node.params) or "void"
            prefix = f"{quals} " if quals else ""
            self._emit(f"{prefix}{declarator(node.return_type, '')} {node.name}({params})")
            self.stmt(node.body)
            self._emit("")
        elif isinstance(node, A.FuncProto):
            quals = " ".join(node.quals)
            params = ", ".join(declarator(p.type, p.name) for p in node.params) or "void"
            prefix = f"{quals} " if quals else ""
            self._emit(f"{prefix}{declarator(node.return_type, '')} {node.name}({params});")
        elif isinstance(node, A.StructDef):
            st = StructType(node.name, tuple(node.fields_))
            self.lines.append(struct_body(st, self._pad()) + ";")
        elif isinstance(node, A.GlobalDecl):
            self._decl_stmt(A.DeclStmt(node.decls, loc=node.loc))
        elif isinstance(node, A.PragmaDecl):
            self.lines.append(f"#pragma {node.text}")
        elif isinstance(node, A.TranslationUnit):
            for d in node.decls:
                self.decl(d)
        else:
            raise TypeError(f"cannot unparse declaration {type(node).__name__}")


def _base_of(ctype: CType) -> CType:
    while isinstance(ctype, (PointerType, ArrayType)):
        ctype = ctype.pointee if isinstance(ctype, PointerType) else ctype.elem
    if isinstance(ctype, FunctionType):
        return _base_of(ctype.return_type)
    return ctype


def unparse(node: A.Node) -> str:
    """Render any AST node (expression, statement, declaration or whole
    translation unit) back to C source text."""
    up = Unparser()
    if isinstance(node, A.Expr):
        return up.expr(node)
    if isinstance(node, A.Stmt):
        up.stmt(node)
    else:
        up.decl(node)
    return "\n".join(up.lines).rstrip() + "\n"
