"""Diagnostics: source locations and frontend error types."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLoc:
    """A position in an input source buffer.

    ``filename`` is whatever name the caller handed to the lexer (benchmarks
    use virtual names like ``"gemm_omp.c"`` since sources live in Python
    strings, exactly like OMPi's in-memory transformation buffers).
    """

    filename: str = "<memory>"
    line: int = 1
    col: int = 1

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.filename}:{self.line}:{self.col}"


class CFrontError(Exception):
    """Base class for all frontend diagnostics."""

    def __init__(self, message: str, loc: SourceLoc | None = None):
        self.loc = loc
        self.message = message
        super().__init__(f"{loc}: {message}" if loc else message)


class LexError(CFrontError):
    """Raised on malformed input at the token level."""


class ParseError(CFrontError):
    """Raised on syntactically invalid input."""


class TypeError_(CFrontError):
    """Raised on semantically invalid input (named to avoid the builtin)."""


class InterpError(CFrontError):
    """Raised when the host interpreter hits undefined behaviour it detects
    (out-of-bounds access, call to an unknown function, ...)."""
