"""C frontend substrate for the OMPi reproduction.

This subpackage provides everything needed to treat C-with-OpenMP source
text as the compiler's input language:

* :mod:`repro.cfront.lexer` — tokenizer for the supported C subset,
  including ``#pragma`` lines and the CUDA ``<<< >>>`` launch syntax.
* :mod:`repro.cfront.parser` — recursive-descent parser producing the AST
  defined in :mod:`repro.cfront.astnodes`.
* :mod:`repro.cfront.ctypes_` — the C type system (LP64, ARM-like layout).
* :mod:`repro.cfront.unparse` — AST back to C source text.
* :mod:`repro.cfront.interp` — host-side tree-walking interpreter with
  numpy-backed memory, used to *execute* translated host programs.

The OMPi paper's translator operates on an abstract syntax tree and emits
C/CUDA-C source; this package is the Python stand-in for that AST layer.
"""

from repro.cfront.errors import CFrontError, LexError, ParseError, SourceLoc
from repro.cfront.lexer import Lexer, Token, TokenKind, tokenize
from repro.cfront.parser import Parser, parse_translation_unit, parse_expression
from repro.cfront.unparse import unparse

__all__ = [
    "CFrontError",
    "LexError",
    "Lexer",
    "ParseError",
    "Parser",
    "SourceLoc",
    "Token",
    "TokenKind",
    "parse_expression",
    "parse_translation_unit",
    "tokenize",
    "unparse",
]
