"""AST node classes for the C subset.

All nodes derive from :class:`Node`, which provides generic child iteration
(used by the OMPi translator's capture analysis, call-graph discovery and
rewriting passes).  Nodes are plain mutable dataclasses: OMPi transforms the
tree in place, and so do we.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from repro.cfront.ctypes_ import CType
from repro.cfront.errors import SourceLoc


@dataclass
class Node:
    """Base AST node.  Subclasses must place ``loc`` last with a default."""

    def children(self) -> Iterator["Node"]:
        """Yield direct child nodes (descending into lists/tuples)."""
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if isinstance(value, Node):
                yield value
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Node):
                        yield item

    def walk(self) -> Iterator["Node"]:
        """Yield this node and all descendants, pre-order."""
        yield self
        for child in self.children():
            yield from child.walk()

    def replace_child(self, old: "Node", new: "Node") -> bool:
        """Replace a direct child ``old`` with ``new``; returns success."""
        for f in dataclasses.fields(self):
            value = getattr(self, f.name)
            if value is old:
                setattr(self, f.name, new)
                return True
            if isinstance(value, list):
                for i, item in enumerate(value):
                    if item is old:
                        value[i] = new
                        return True
        return False


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------

@dataclass
class Expr(Node):
    pass


@dataclass
class IntLit(Expr):
    value: int
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class FloatLit(Expr):
    value: float
    #: True when the literal carried an 'f' suffix (single precision).
    single: bool = False
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class CharLit(Expr):
    value: int
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class StringLit(Expr):
    value: str
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class Ident(Expr):
    name: str
    loc: SourceLoc = field(default_factory=SourceLoc)


#: Unary operator spellings.  ``p++``/``p--`` are post forms.
UNARY_OPS = ("-", "+", "!", "~", "*", "&", "++", "--", "p++", "p--")


@dataclass
class Unary(Expr):
    op: str
    operand: Expr = None  # type: ignore[assignment]
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class Binary(Expr):
    op: str
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class Assign(Expr):
    """``target op= value``; ``op`` is None for plain assignment."""

    target: Expr
    value: Expr = None  # type: ignore[assignment]
    op: Optional[str] = None
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class Cond(Expr):
    """Ternary ``cond ? then : other``."""

    cond: Expr
    then: Expr = None  # type: ignore[assignment]
    other: Expr = None  # type: ignore[assignment]
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class Comma(Expr):
    parts: list[Expr] = field(default_factory=list)
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class Call(Expr):
    func: Expr
    args: list[Expr] = field(default_factory=list)
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class CudaKernelCall(Expr):
    """CUDA triple-chevron launch: ``func<<<grid, block[, shmem]>>>(args)``."""

    func: Expr
    grid: Expr = None  # type: ignore[assignment]
    block: Expr = None  # type: ignore[assignment]
    shmem: Optional[Expr] = None
    args: list[Expr] = field(default_factory=list)
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class Index(Expr):
    base: Expr
    index: Expr = None  # type: ignore[assignment]
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class Member(Expr):
    """``base.name`` (arrow=False) or ``base->name`` (arrow=True)."""

    base: Expr
    name: str = ""
    arrow: bool = False
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class Cast(Expr):
    type: CType
    operand: Expr = None  # type: ignore[assignment]
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class SizeofExpr(Expr):
    operand: Expr
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class SizeofType(Expr):
    type: CType
    loc: SourceLoc = field(default_factory=SourceLoc)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------

@dataclass
class Stmt(Node):
    pass


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr]
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class VarDecl(Node):
    """A single declarator within a declaration."""

    name: str
    type: CType = None  # type: ignore[assignment]
    init: Optional[Expr] = None
    storage: Optional[str] = None          # 'static' | 'extern' | None
    quals: tuple[str, ...] = ()            # e.g. ('__shared__',), ('const',)
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class DeclStmt(Stmt):
    decls: list[VarDecl] = field(default_factory=list)
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class Compound(Stmt):
    body: list[Stmt] = field(default_factory=list)
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class If(Stmt):
    cond: Expr
    then: Stmt = None  # type: ignore[assignment]
    other: Optional[Stmt] = None
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class While(Stmt):
    cond: Expr
    body: Stmt = None  # type: ignore[assignment]
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class DoWhile(Stmt):
    body: Stmt
    cond: Expr = None  # type: ignore[assignment]
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class For(Stmt):
    init: Optional[Stmt]                   # ExprStmt or DeclStmt or None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None  # type: ignore[assignment]
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class Break(Stmt):
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class Continue(Stmt):
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class PragmaStmt(Stmt):
    """A statement-level ``#pragma`` with, for block-associated pragmas, the
    statement it applies to.  The OpenMP layer parses ``text`` into a
    directive and the OMPi translator rewrites these nodes."""

    text: str
    body: Optional[Stmt] = None
    #: Filled by the OpenMP layer: the parsed directive object.
    directive: Any = None
    loc: SourceLoc = field(default_factory=SourceLoc)


# ---------------------------------------------------------------------------
# Top-level declarations
# ---------------------------------------------------------------------------

@dataclass
class Param(Node):
    name: str
    type: CType = None  # type: ignore[assignment]
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class FuncDef(Node):
    name: str
    return_type: CType = None  # type: ignore[assignment]
    params: list[Param] = field(default_factory=list)
    body: Compound = None  # type: ignore[assignment]
    quals: tuple[str, ...] = ()            # ('__global__',) / ('__device__',) / ('static',)
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class FuncProto(Node):
    name: str
    return_type: CType = None  # type: ignore[assignment]
    params: list[Param] = field(default_factory=list)
    quals: tuple[str, ...] = ()
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class StructDef(Node):
    name: str
    #: (field name, field type) in declaration order.
    fields_: list[tuple[str, CType]] = field(default_factory=list)
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class GlobalDecl(Node):
    decls: list[VarDecl] = field(default_factory=list)
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class PragmaDecl(Node):
    """A file-scope pragma (e.g. ``declare target``)."""

    text: str
    directive: Any = None
    loc: SourceLoc = field(default_factory=SourceLoc)


@dataclass
class TranslationUnit(Node):
    decls: list[Node] = field(default_factory=list)
    filename: str = "<memory>"
    loc: SourceLoc = field(default_factory=SourceLoc)

    def functions(self) -> list[FuncDef]:
        return [d for d in self.decls if isinstance(d, FuncDef)]

    def find_function(self, name: str) -> Optional[FuncDef]:
        for d in self.decls:
            if isinstance(d, FuncDef) and d.name == name:
                return d
        return None
