"""Chrome-trace (``chrome://tracing`` / Perfetto) export of a profile.

Emits the Trace Event Format's JSON object form: ``{"traceEvents": [...],
"displayTimeUnit": "ms"}``.  Track layout:

* **pid 1 "device streams"** — one track (tid = stream handle) per CUDA
  stream; kernels, transfers, event records and stream waits appear on
  the stream that carried them.
* **pid 2 "device engines"** — one track per hardware engine (the Nano's
  single compute engine and single copy engine); the same kernel/memcpy
  spans re-plotted by the engine they occupied, which makes copy/compute
  overlap (and the absence of compute/compute overlap) directly visible.
* In a multi-device run every record carries its device ordinal; device 0
  keeps the single-device track ids while device *d* > 0 gets its own
  stream tracks (tid ``d*1000 + stream``, named ``dev<d> stream <s>``)
  and engine tracks (tid ``d*2`` / ``d*2+1``), so concurrent shards show
  up as parallel per-device tracks.
* **pid 3 "host"** — host-blocking synchronisations, module load / JIT
  spans, nowait-task lifecycle instants, and a ``device memory`` counter
  series fed by the alloc/free records (the memory track).
* **pid 4 "serving"** — the offload server's view: one track per device
  carrying request spans (admission -> completion), lifecycle instants
  (session open/close, enqueue, batch, evict, reject) and an
  ``admission queue`` counter series, above the device tracks that
  executed the work.
* **pid 5 "resilience"** — per-device degradation/health: circuit-breaker
  transitions, session migrations, deadline rejections, retries, planned
  drains (instants) and a ``health dev<k>`` counter series fed by the
  periodic device-health scores.

All timestamps are the simulated clock in microseconds, so the exported
trace is deterministic for a given program.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.prof.activity import ActivityRecorder

PID_STREAMS = 1
PID_ENGINES = 2
PID_HOST = 3
PID_SERVING = 4
PID_RESILIENCE = 5

TID_ENGINE_COMPUTE = 0
TID_ENGINE_COPY = 1
TID_HOST = 0

#: record kinds that occupy the compute / copy engine
_COMPUTE_KINDS = {"kernel"}
_COPY_KINDS = {"memcpy"}


def _us(seconds: float) -> float:
    return seconds * 1e6


def _meta(pid: int, name: str, tid: int = None, tname: str = None) -> list[dict]:
    events = [{"ph": "M", "pid": pid, "name": "process_name",
               "args": {"name": name}}]
    if tid is not None:
        events.append({"ph": "M", "pid": pid, "tid": tid,
                       "name": "thread_name", "args": {"name": tname}})
    return events


def trace_events(recorder: ActivityRecorder,
                 device_names: dict = None) -> list[dict]:
    """The ``traceEvents`` array for the recorded activities.

    ``device_names`` (ordinal -> backend name, e.g. ``{0: 'nano',
    1: 'v100'}``) labels a heterogeneous registry's per-device tracks;
    without it the classic ``dev<k>`` naming applies."""
    events: list[dict] = []
    names = device_names or {}

    def dev_label(dev: int) -> str:
        name = names.get(dev)
        return f"dev{dev}:{name}" if name else f"dev{dev}"
    events += _meta(PID_STREAMS, "device streams")
    events += _meta(PID_ENGINES, "device engines",
                    TID_ENGINE_COMPUTE, "engine:compute")
    events += _meta(PID_ENGINES, "device engines",
                    TID_ENGINE_COPY, "engine:copy")[1:]
    events += _meta(PID_HOST, "host", TID_HOST, "host runtime")
    named_streams: set[int] = set()
    named_engines: set[int] = set()
    named_serving: set[int] = set()
    named_resilience: set[int] = set()

    def resilience_tid(device) -> int:
        tid = int(device if device is not None else 0)
        if tid not in named_resilience:
            if not named_resilience:
                events.extend(_meta(PID_RESILIENCE, "resilience"))
            named_resilience.add(tid)
            events.append({"ph": "M", "pid": PID_RESILIENCE, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": f"{dev_label(tid)} health"}})
        return tid

    def serving_tid(device) -> int:
        tid = int(device if device is not None else 0)
        if tid not in named_serving:
            if not named_serving:
                events.extend(_meta(PID_SERVING, "serving"))
            named_serving.add(tid)
            events.append({"ph": "M", "pid": PID_SERVING, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": f"{dev_label(tid)} requests"}})
        return tid

    def stream_tid(stream, device) -> int:
        dev = int(device or 0)
        s = int(stream or 0)
        tid = dev * 1000 + s
        if tid not in named_streams:
            named_streams.add(tid)
            name = (f"stream {s}" if dev == 0 and dev not in names
                    else f"{dev_label(dev)} stream {s}")
            events.append({"ph": "M", "pid": PID_STREAMS, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": name}})
        return tid

    def engine_tid(engine: int, device) -> int:
        # engine 0 = compute, 1 = copy; device 0 keeps tids 0/1
        dev = int(device or 0)
        tid = dev * 2 + engine
        if (dev > 0 or dev in names) and tid not in named_engines:
            named_engines.add(tid)
            ename = "compute" if engine == TID_ENGINE_COMPUTE else "copy"
            events.append({"ph": "M", "pid": PID_ENGINES, "tid": tid,
                           "name": "thread_name",
                           "args": {"name": f"{dev_label(dev)} "
                                            f"engine:{ename}"}})
        return tid

    def span(pid: int, tid: int, name: str, record, args: dict) -> dict:
        return {
            "ph": "X", "pid": pid, "tid": tid, "name": name,
            "cat": record.kind,
            "ts": _us(record.t_start),
            "dur": max(_us(record.duration), 0.0),
            "args": args,
        }

    def instant(pid: int, tid: int, name: str, ts_s: float, args: dict) -> dict:
        return {"ph": "i", "pid": pid, "tid": tid, "name": name, "s": "t",
                "ts": _us(ts_s), "args": args}

    for r in recorder:
        if r.kind == "kernel":
            args = {
                "grid": list(r.grid), "block": list(r.block),
                "bound": r.bound,
                "occupancy_warps": r.occupancy_warps,
                "registers_per_thread": r.registers_per_thread,
                "instructions": r.instructions,
                "global_transactions": r.global_transactions,
                "modelled_ms": r.modelled_s * 1e3,
                "wall_ms": r.wall_s * 1e3,
            }
            events.append(span(PID_STREAMS, stream_tid(r.stream, r.device),
                               r.name, r, args))
            events.append(span(PID_ENGINES,
                               engine_tid(TID_ENGINE_COMPUTE, r.device),
                               r.name, r, args))
        elif r.kind == "memcpy":
            name = (r.detail or f"memcpy_{r.direction}")
            args = {"bytes": r.nbytes, "bandwidth_gbps": r.bandwidth_gbps}
            events.append(span(PID_STREAMS, stream_tid(r.stream, r.device),
                               name, r, args))
            events.append(span(PID_ENGINES,
                               engine_tid(TID_ENGINE_COPY, r.device),
                               name, r, args))
        elif r.kind == "stream_wait":
            events.append(span(PID_STREAMS, stream_tid(r.stream, r.device),
                               "wait_event", r, {"event": r.event}))
        elif r.kind == "event":
            events.append(instant(PID_STREAMS, stream_tid(r.stream, r.device),
                                  f"event {r.handle}", r.t_start,
                                  {"op": r.op, "timestamp": r.timestamp}))
        elif r.kind == "sync":
            events.append(span(PID_HOST, TID_HOST, r.op, r,
                               {"handle": r.handle,
                                "waited_ms": r.waited_s * 1e3}))
        elif r.kind == "module":
            name = f"jit {r.name}" if r.image_kind == "ptx" else \
                f"module_load {r.name}"
            events.append(span(PID_HOST, TID_HOST, name, r,
                               {"image": r.image_kind,
                                "jit_cached": r.jit_cached,
                                "jit_ms": r.jit_s * 1e3}))
        elif r.kind == "memory":
            events.append({
                "ph": "C", "pid": PID_HOST, "tid": TID_HOST,
                "name": "device memory", "ts": _us(r.t_end),
                "args": {"in_use": r.in_use},
            })
        elif r.kind == "task":
            events.append(instant(PID_HOST, TID_HOST,
                                  f"task:{r.op} {r.label}".rstrip(),
                                  r.t_start,
                                  {"tid": r.tid, "stream": r.stream,
                                   "preds": list(r.preds)}))
        elif r.kind == "fault":
            # degradation markers: injected faults and the recovery the
            # runtime applied, on the host track next to the work they hit
            events.append(instant(PID_HOST, TID_HOST,
                                  f"fault:{r.op} {r.api}".rstrip(),
                                  r.t_start,
                                  {"fault": r.fault, "attempt": r.attempt,
                                   "bytes": r.nbytes, "detail": r.detail}))
        elif r.kind == "serving":
            tid = serving_tid(r.device)
            common = {"session": r.session, "tenant": r.tenant,
                      "request": r.request, "program": r.program,
                      "batch": r.batch, "bytes": r.nbytes,
                      "detail": r.detail}
            if r.op == "request":
                events.append(span(
                    PID_SERVING, tid,
                    f"req{r.request} s{r.session}", r, common))
            else:
                events.append(instant(PID_SERVING, tid,
                                      f"serving:{r.op}", r.t_start, common))
            if r.op in ("enqueue", "admit"):
                events.append({
                    "ph": "C", "pid": PID_SERVING, "tid": tid,
                    "name": f"admission queue dev{tid}",
                    "ts": _us(r.t_start),
                    "args": {"depth": r.queue_depth},
                })
        elif r.kind == "resilience":
            tid = resilience_tid(r.device)
            if r.op == "health":
                events.append({
                    "ph": "C", "pid": PID_RESILIENCE, "tid": tid,
                    "name": f"health dev{tid}", "ts": _us(r.t_start),
                    "args": {"score": r.score},
                })
            else:
                events.append(instant(
                    PID_RESILIENCE, tid, f"resilience:{r.op}", r.t_start,
                    {"session": r.session, "request": r.request,
                     "state": r.state, "target": r.target,
                     "bytes": r.nbytes, "detail": r.detail}))
        # kernel_exec records carry no timeline (pure engine counters);
        # they feed the metrics table, not the trace
    return events


def chrome_trace(recorder: ActivityRecorder, compile_cache=None,
                 device_names: dict = None) -> dict:
    """The full Trace Event Format object.  ``compile_cache`` (a
    :class:`repro.ompi.cache.CompileCache`) embeds its hit/miss/evict
    counters — both the in-memory and the persistent tier — into the
    trace's ``otherData`` metadata, so a saved trace records how much of
    it ran against warm compilations."""
    other = {
        "generator": "repro.prof",
        "dropped_records": recorder.dropped,
    }
    if compile_cache is not None:
        other["compile_cache"] = compile_cache.stats
    return {
        "traceEvents": trace_events(recorder, device_names=device_names),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(recorder: ActivityRecorder,
                       path: Union[str, Path],
                       compile_cache=None,
                       device_names: dict = None) -> Path:
    """Serialise the trace to ``path``; returns the written path."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(recorder, compile_cache,
                                            device_names=device_names),
                               indent=1) + "\n")
    return path
