"""Per-kernel metrics: the profiler's ``nvprof``-style summary table.

Aggregates the driver-level :class:`~repro.prof.activity.KernelActivity`
records (full-grid, possibly sampling-extrapolated counters — what the
timing model priced) by kernel name and derives the efficiency metrics a
GPU profiler reports:

* **occupancy** — resident warps from the analytic model (threads,
  registers and shared memory limited);
* **coalescing** — DRAM transactions per global warp access, and the
  efficiency against the fully-coalesced ideal of 4 x 32-byte segments
  per 128-byte warp access (the float32 ideal; the paper's applications
  are all float32);
* **branch divergence** — divergent branches per warp instruction;
* **barrier stalls / shared-memory traffic** — straight from the sim
  engine's dynamic counters.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.prof.activity import ActivityRecorder

#: fully-coalesced 32-byte segments per warp access (32 lanes x 4B / 32B)
IDEAL_SEGMENTS_PER_ACCESS = 4.0


@dataclass
class KernelMetrics:
    name: str
    launches: int = 0
    modelled_s: float = 0.0
    overhead_s: float = 0.0
    wall_s: float = 0.0
    bound: str = ""
    occupancy_warps: float = 0.0
    resident_blocks: int = 0
    registers_per_thread: int = 0
    smem_per_block: int = 0
    instructions: int = 0
    global_mem_instructions: int = 0
    global_transactions: int = 0
    divergent_branches: int = 0
    barriers: int = 0
    atomics: int = 0
    shared_accesses: int = 0
    local_accesses: int = 0
    grids: list = field(default_factory=list)

    @property
    def transactions_per_access(self) -> float:
        """DRAM transactions per global-memory warp instruction."""
        if self.global_mem_instructions == 0:
            return 0.0
        return self.global_transactions / self.global_mem_instructions

    @property
    def coalescing_efficiency(self) -> float:
        """Fully-coalesced ideal over observed transactions (<= 1.0)."""
        tpa = self.transactions_per_access
        if tpa <= 0.0:
            return 1.0
        return min(1.0, IDEAL_SEGMENTS_PER_ACCESS / tpa)

    @property
    def divergence_ratio(self) -> float:
        """Divergent branches per warp instruction dispatched."""
        if self.instructions == 0:
            return 0.0
        return self.divergent_branches / self.instructions


def kernel_metrics(recorder: ActivityRecorder) -> list[KernelMetrics]:
    """Per-kernel aggregation of the recorded launches, in order of first
    appearance."""
    table: dict[str, KernelMetrics] = {}
    for r in recorder.records("kernel"):
        m = table.get(r.name)
        if m is None:
            m = table[r.name] = KernelMetrics(r.name)
        m.launches += 1
        m.modelled_s += r.modelled_s
        m.overhead_s += r.overhead_s
        m.wall_s += r.wall_s
        m.bound = r.bound          # last launch wins; uniform in practice
        m.occupancy_warps = r.occupancy_warps
        m.resident_blocks = r.resident_blocks
        m.registers_per_thread = r.registers_per_thread
        m.smem_per_block = r.smem_per_block
        m.instructions += r.instructions
        m.global_mem_instructions += r.global_mem_instructions
        m.global_transactions += r.global_transactions
        m.divergent_branches += r.divergent_branches
        m.barriers += r.barriers
        m.atomics += r.atomics
        m.shared_accesses += r.shared_accesses
        m.local_accesses += r.local_accesses
        if list(r.grid) not in m.grids:
            m.grids.append(list(r.grid))
    return list(table.values())


def format_metrics_table(metrics: list[KernelMetrics]) -> str:
    """Fixed-width text rendering of the per-kernel metrics."""
    if not metrics:
        return "(no kernel launches recorded)"
    headers = ("kernel", "launches", "modelled ms", "occup.warps", "bound",
               "txn/access", "coalesce", "diverg.", "barriers", "smem acc")
    rows = []
    for m in metrics:
        rows.append((
            m.name,
            str(m.launches),
            f"{m.modelled_s * 1e3:.3f}",
            f"{m.occupancy_warps:.0f}",
            m.bound,
            f"{m.transactions_per_access:.2f}",
            f"{m.coalescing_efficiency * 100.0:.0f}%",
            f"{m.divergence_ratio:.4f}",
            str(m.barriers),
            str(m.shared_accesses),
        ))
    widths = [max(len(h), *(len(row[i]) for row in rows))
              for i, h in enumerate(headers)]
    def fmt(cells):
        return "  ".join(c.ljust(w) if i == 0 else c.rjust(w)
                         for i, (c, w) in enumerate(zip(cells, widths)))
    lines = [fmt(headers), fmt(tuple("-" * w for w in widths))]
    lines += [fmt(row) for row in rows]
    return "\n".join(lines)
