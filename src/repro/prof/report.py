"""Text summary report of a recorded profile (the ``--profile`` output)."""

from __future__ import annotations

from collections import Counter

from repro.prof.activity import ActivityRecorder
from repro.prof.metrics import format_metrics_table, kernel_metrics


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    return f"{n:.1f} GiB"  # pragma: no cover - loop always returns


def _cache_lines(compile_cache) -> list[str]:
    """Compile-cache counter lines (in-memory tier, plus disk if attached)."""
    s = compile_cache.stats
    lines = [f"compile cache: hits={s['hits']} misses={s['misses']} "
             f"evictions={s['evictions']} compiles={s['compiles']} "
             f"({s['compile_wall_s'] * 1e3:.1f} ms compiling)"]
    if compile_cache.disk is not None:
        d = s["disk"]
        lines.append(f"disk cache: hits={s['disk_hits']} "
                     f"misses={s['disk_misses']} stores={d['stores']} "
                     f"evictions={d['evictions']} entries={d['entries']} "
                     f"({_fmt_bytes(d['size_bytes'])})")
    return lines


def summary(recorder: ActivityRecorder, compile_cache=None) -> str:
    """Human-readable profile summary: activity counts, device-time
    totals, transfer volumes/bandwidth, memory peak, per-kernel table.
    ``compile_cache`` (a :class:`repro.ompi.cache.CompileCache`) appends
    its hit/miss/evict counters for both tiers."""
    lines = ["=== repro.prof summary ==="]
    if not len(recorder):
        lines.append("(no activity recorded)")
        if compile_cache is not None:
            lines.extend(_cache_lines(compile_cache))
        return "\n".join(lines)
    counts = Counter(r.kind for r in recorder)
    lines.append("activities: " + ", ".join(
        f"{kind}={n}" for kind, n in sorted(counts.items())))
    if recorder.dropped:
        lines.append(f"ring buffer dropped {recorder.dropped} oldest records "
                     f"(capacity {recorder.capacity})")

    kernels = recorder.records("kernel")
    if kernels:
        modelled = sum(r.modelled_s for r in kernels)
        wall = sum(r.wall_s for r in kernels)
        lines.append(f"kernel time (modelled): {modelled * 1e3:.3f} ms over "
                     f"{len(kernels)} launch(es)")
        if wall > 0.0:
            lines.append(f"kernel time (host wall): {wall * 1e3:.1f} ms "
                         f"simulating the launches")

    for direction, label in (("h2d", "HtoD"), ("d2h", "DtoH")):
        xs = [r for r in recorder.records("memcpy") if r.direction == direction]
        if xs:
            nbytes = sum(r.nbytes for r in xs)
            secs = sum(r.duration for r in xs)
            bw = (nbytes / secs / 1e9) if secs > 0 else 0.0
            lines.append(f"{label}: {len(xs)} transfer(s), "
                         f"{_fmt_bytes(nbytes)}, {secs * 1e3:.3f} ms, "
                         f"{bw:.2f} GB/s")

    mods = recorder.records("module")
    jit_s = sum(r.jit_s for r in mods)
    if mods:
        cached = sum(1 for r in mods if r.jit_cached)
        lines.append(f"modules: {len(mods)} load(s), JIT {jit_s * 1e3:.3f} ms "
                     f"({cached} cache hit(s))")

    mems = recorder.records("memory")
    if mems:
        peak = max(r.peak for r in mems)
        lines.append(f"device memory peak: {_fmt_bytes(peak)}")

    tasks = recorder.records("task")
    if tasks:
        begun = sum(1 for r in tasks if r.op == "begin")
        waits = sum(1 for r in tasks if r.op == "taskwait")
        lines.append(f"nowait tasks: {begun} submitted, {waits} taskwait join(s)")

    syncs = recorder.records("sync")
    if syncs:
        waited = sum(r.waited_s for r in syncs)
        lines.append(f"host synchronisations: {len(syncs)}, "
                     f"blocked {waited * 1e3:.3f} ms (modelled)")

    if compile_cache is not None:
        lines.extend(_cache_lines(compile_cache))

    lines.append("")
    lines.append(format_metrics_table(kernel_metrics(recorder)))
    return "\n".join(lines)
