"""OMPT-style host-runtime callback registry.

OpenMP 5.x defines OMPT: a first-party tool interface where a tool
registers callbacks for runtime events (``ompt_callback_target``,
``ompt_callback_target_data_op``, ``ompt_callback_target_submit``) and the
runtime invokes them at the corresponding points.  This module is the
reproduction's equivalent: the ort host runtime and the cudadev host
module dispatch the four events below, so tools can observe offloading
without patching the runtime.

Events
------

``target_begin`` / ``target_end``
    A target region starts/finishes on the host side (``ort_offload``).
    Keywords: ``device`` (resolved device id), ``kernel`` (kernel name),
    ``teams`` and ``threads`` (grid/block triples).

``data_op``
    A data-environment operation.  Keywords: ``optype`` (``map_enter`` |
    ``map_exit`` | ``update_to`` | ``update_from`` | ``transfer_to`` |
    ``transfer_from``), ``device``, ``addr``, ``nbytes`` (when known).

``submit``
    The kernel is submitted to the device (the cudadev module's 3-phase
    launch, just before ``cuLaunchKernel``).  Keywords: ``kernel``,
    ``teams``, ``threads``, ``stream``.

Callbacks run synchronously on the (single) host thread, in registration
order.  A callback raising propagates to the offloading program — tools
are trusted, exactly like native OMPT tools living in the runtime's
address space.
"""

from __future__ import annotations

from typing import Callable

#: the dispatch points the host runtime exposes
OMPT_EVENTS = ("target_begin", "target_end", "data_op", "submit")


class OmptError(Exception):
    """Registration against an unknown event name."""


class OmptRegistry:
    """Per-runtime callback table (one per cudadev host module)."""

    def __init__(self):
        self._callbacks: dict[str, list[Callable]] = {
            event: [] for event in OMPT_EVENTS
        }

    def _check_event(self, event: str) -> None:
        if event not in self._callbacks:
            raise OmptError(
                f"unknown OMPT event {event!r} (have: {', '.join(OMPT_EVENTS)})"
            )

    def set_callback(self, event: str, fn: Callable) -> Callable:
        """Register ``fn`` for ``event``; returns ``fn`` (decorator-friendly)."""
        self._check_event(event)
        self._callbacks[event].append(fn)
        return fn

    def remove_callback(self, event: str, fn: Callable) -> None:
        self._check_event(event)
        try:
            self._callbacks[event].remove(fn)
        except ValueError:
            raise OmptError(
                f"callback not registered for event {event!r}") from None

    def callbacks(self, event: str) -> tuple[Callable, ...]:
        self._check_event(event)
        return tuple(self._callbacks[event])

    @property
    def active(self) -> bool:
        """True when any callback is registered (dispatch sites may use
        this to skip argument marshalling entirely)."""
        return any(self._callbacks.values())

    def dispatch(self, event: str, **kw) -> None:
        """Invoke every callback registered for ``event`` in order."""
        cbs = self._callbacks.get(event)
        if cbs is None:
            raise OmptError(f"unknown OMPT event {event!r}")
        if not cbs:
            return
        for fn in tuple(cbs):
            fn(event=event, **kw)

    def clear(self) -> None:
        for cbs in self._callbacks.values():
            cbs.clear()
