"""``repro.prof`` — CUPTI/OMPT-style observability for the simulated stack.

Three layers (DESIGN.md §8):

* **activity tracing** (:mod:`repro.prof.activity`) — the driver, stream
  table, task scheduler and sim engine emit typed activity records into a
  bounded :class:`ActivityRecorder`; zero overhead when disabled (the
  recorder is simply ``None``);
* **tool callbacks** (:mod:`repro.prof.ompt`) — an OMPT-style registry the
  host runtime dispatches target-begin/end, data-op and submit events to;
* **analysis/export** (:mod:`repro.prof.chrome`, :mod:`repro.prof.metrics`,
  :mod:`repro.prof.report`) — ``chrome://tracing`` JSON, a per-kernel
  metrics table, a text summary.

Enable with ``OmpiConfig(profile=...)``, the ``REPRO_PROFILE`` environment
variable, or ``ompicc --profile[=trace.json]``.
"""

from repro.prof.activity import (
    ActivityRecord, ActivityRecorder, EventActivity, FaultActivity,
    KernelActivity, KernelExecActivity, MemcpyActivity, MemoryActivity,
    ModuleActivity, SyncActivity, TaskActivity, WaitActivity, resolve_profile,
)
from repro.prof.chrome import chrome_trace, trace_events, write_chrome_trace
from repro.prof.metrics import (
    KernelMetrics, format_metrics_table, kernel_metrics,
)
from repro.prof.ompt import OMPT_EVENTS, OmptError, OmptRegistry
from repro.prof.report import summary

__all__ = [
    "ActivityRecord", "ActivityRecorder", "EventActivity", "FaultActivity",
    "KernelActivity", "KernelExecActivity", "KernelMetrics", "MemcpyActivity",
    "MemoryActivity", "ModuleActivity", "OMPT_EVENTS", "OmptError",
    "OmptRegistry",
    "SyncActivity", "TaskActivity", "WaitActivity", "chrome_trace",
    "format_metrics_table", "kernel_metrics", "resolve_profile", "summary",
    "trace_events", "write_chrome_trace",
]
