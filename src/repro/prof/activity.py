"""CUPTI-style activity records and the bounded activity recorder.

The profiler mirrors how CUPTI exposes a CUDA run: every driver-level
action (kernel launch, transfer, module load, synchronisation) and every
runtime-level action (nowait-task lifecycle, stream waits) is emitted as
one *typed activity record* carrying its placement on the modelled
timeline.  Producers hold an ``Optional[ActivityRecorder]`` and guard the
emission with ``if recorder is not None`` — a disabled profiler is a
``None`` attribute, so the hot paths pay a single identity check and
nothing else.

Records are buffered in a bounded ring: when the buffer is full the
*oldest* record is dropped and :attr:`ActivityRecorder.dropped` counts the
loss, so a profiled long run degrades to "the last N activities" instead
of growing without bound (CUPTI's activity buffers behave the same way).

Determinism note: every field of a record is derived from the simulated
run except the ``wall_s`` fields, which measure *host* wall-clock spent
executing the simulation.  :meth:`ActivityRecord.identity` returns the
record with volatile fields removed — two runs of the same program (e.g.
with ``REPRO_KERNEL_FASTPATH=on`` vs ``off``) must produce identical
identity streams.
"""

from __future__ import annotations

import os
from collections import deque
from dataclasses import dataclass, fields
from typing import ClassVar, Iterator, Optional

#: record fields that legitimately differ between runs of the same program
#: (host wall-clock measurements); everything else is modelled and must be
#: deterministic.
VOLATILE_FIELDS = ("wall_s",)

#: default ring capacity (records, not bytes)
DEFAULT_CAPACITY = 1 << 16


@dataclass
class ActivityRecord:
    """Base class: one action with its span on the modelled timeline.

    ``t_start == t_end`` marks an instantaneous record; ``stream`` is the
    CUDA stream the action was placed on (None: host-side, no stream).
    """

    kind: ClassVar[str] = "activity"

    t_start: float = 0.0
    t_end: float = 0.0
    stream: Optional[int] = None
    #: ordinal of the device the action belongs to (None: host-side or a
    #: driver not owned by a device registry).  Stamped by the per-device
    #: :class:`DeviceRecorder` so multi-device runs share one ring while
    #: staying attributable per device.
    device: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def to_dict(self) -> dict:
        out = {"kind": self.kind}
        for f in fields(self):
            out[f.name] = getattr(self, f.name)
        return out

    def identity(self) -> dict:
        """The record as a dict minus volatile (wall-clock) fields — the
        deterministic content two equivalent runs must agree on."""
        out = self.to_dict()
        for name in VOLATILE_FIELDS:
            out.pop(name, None)
        return out


@dataclass
class KernelActivity(ActivityRecord):
    """One ``cuLaunchKernel`` with its modelled time and dynamic counters.

    The counters are the (possibly sampling-extrapolated) full-grid
    :class:`~repro.cuda.sim.engine.KernelStats` the timing model priced;
    ``wall_s`` is the host wall-clock the functional simulation of this
    launch took (the modelled-vs-wall comparison CUPTI tools draw).
    """

    kind: ClassVar[str] = "kernel"

    name: str = ""
    grid: tuple[int, int, int] = (1, 1, 1)
    block: tuple[int, int, int] = (1, 1, 1)
    modelled_s: float = 0.0
    overhead_s: float = 0.0          # launch overhead (3-phase dispatch)
    wall_s: float = 0.0              # host wall-clock (volatile)
    bound: str = ""                  # compute | bandwidth | latency
    occupancy_warps: float = 0.0
    resident_blocks: int = 0
    registers_per_thread: int = 0
    smem_per_block: int = 0
    instructions: int = 0
    global_mem_instructions: int = 0
    global_transactions: int = 0
    divergent_branches: int = 0
    barriers: int = 0
    atomics: int = 0
    shared_accesses: int = 0
    local_accesses: int = 0


@dataclass
class KernelExecActivity(ActivityRecord):
    """One functional execution inside the sim engine (what actually ran).

    Under sampling this covers only the representative blocks/warps, so the
    counters are the *executed* subset, not the extrapolated grid — the
    complement of :class:`KernelActivity`.  Both the tree-walk engine and
    the closure-compiled fast path emit this record from the same hook
    with identical content (asserted by the profiler tests).
    """

    kind: ClassVar[str] = "kernel_exec"

    name: str = ""
    grid: tuple[int, int, int] = (1, 1, 1)
    block: tuple[int, int, int] = (1, 1, 1)
    blocks_run: int = 0
    warps_run: int = 0
    instructions: int = 0
    global_transactions: int = 0
    divergent_branches: int = 0
    barriers: int = 0
    shared_accesses: int = 0
    local_accesses: int = 0
    spins: int = 0


@dataclass
class MemcpyActivity(ActivityRecord):
    """A host/device transfer (HtoD, DtoH, or a memset on the copy path)."""

    kind: ClassVar[str] = "memcpy"

    direction: str = ""              # 'h2d' | 'd2h'
    nbytes: int = 0
    bandwidth_gbps: float = 0.0      # nbytes / modelled seconds
    detail: str = ""                 # e.g. 'memset'


@dataclass
class MemoryActivity(ActivityRecord):
    """Device memory management: alloc/free with the usage watermark."""

    kind: ClassVar[str] = "memory"

    op: str = ""                     # 'alloc' | 'free' | 'module_global'
    nbytes: int = 0
    addr: int = 0
    in_use: int = 0                  # device bytes allocated after the op
    peak: int = 0                    # high-water mark so far


@dataclass
class ModuleActivity(ActivityRecord):
    """Module load; for PTX images the JIT compilation span + cache verdict."""

    kind: ClassVar[str] = "module"

    name: str = ""
    image_kind: str = ""             # 'ptx' | 'cubin'
    jit_cached: bool = False
    jit_s: float = 0.0


@dataclass
class SyncActivity(ActivityRecord):
    """A host-blocking synchronisation: the span the host waited."""

    kind: ClassVar[str] = "sync"

    op: str = ""                     # 'stream_sync' | 'ctx_sync' | 'event_sync'
    handle: int = 0
    waited_s: float = 0.0


@dataclass
class WaitActivity(ActivityRecord):
    """A device-side ``cuStreamWaitEvent`` that actually delayed a stream
    (emitted by the stream table; no-op waits are not recorded)."""

    kind: ClassVar[str] = "stream_wait"

    event: int = 0


@dataclass
class EventActivity(ActivityRecord):
    """A ``cuEventRecord`` timeline mark."""

    kind: ClassVar[str] = "event"

    op: str = "record"
    handle: int = 0
    timestamp: float = 0.0


@dataclass
class TaskActivity(ActivityRecord):
    """Lifecycle of a deferred offload task (``target nowait``)."""

    kind: ClassVar[str] = "task"

    op: str = ""     # 'begin' | 'end' | 'sync' | 'taskwait' | 'fail' | 'cancel'
    tid: int = 0
    label: str = ""
    deps: tuple = ()
    preds: tuple = ()


@dataclass
class FaultActivity(ActivityRecord):
    """One fault-related happening: an injected driver failure or a
    recovery action the runtime took in response (emitted by the
    :class:`repro.faults.injector.FaultLog`, so chrome traces show the
    degradation alongside the work it disturbed)."""

    kind: ClassVar[str] = "fault"

    #: 'inject' | 'retry' | 'evict' | 'fallback' | 'device_lost'
    #: | 'task_fail' | 'cancel' | 'poison' | 'reset'
    op: str = ""
    api: str = ""                    # driver API (or kernel/task label)
    fault: str = ""                  # CUresult name of the failure
    attempt: int = 0                 # retry attempt number (op == 'retry')
    nbytes: int = 0
    detail: str = ""


@dataclass
class ServingActivity(ActivityRecord):
    """One serving-runtime happening: request/session lifecycle, batching
    and eviction decisions of the persistent offload server.  Request
    spans carry ``t_start`` = admission and ``t_end`` = completion on the
    modelled timeline, so the chrome exporter can draw a serving track
    above the device tracks that produced the work."""

    kind: ClassVar[str] = "serving"

    #: 'session_open' | 'session_close' | 'enqueue' | 'admit' | 'batch'
    #: | 'request' | 'evict' | 'reject' | 'reuse'
    op: str = ""
    session: int = -1
    tenant: str = ""
    request: int = -1                # per-server request sequence number
    program: str = ""                # program cache key prefix / name
    batch: int = 0                   # members in the admitted batch
    queue_depth: int = 0             # admission queue depth after the op
    nbytes: int = 0                  # bytes moved/evicted, if relevant
    detail: str = ""


@dataclass
class ResilienceActivity(ActivityRecord):
    """One serving-resilience happening: circuit-breaker transitions,
    session migrations, deadline rejections, retries, planned drains and
    periodic device-health scores.  Everything is stamped on the virtual
    clock, so two chaos runs with the same seed produce identical
    resilience tracks."""

    kind: ClassVar[str] = "resilience"

    #: 'breaker_open' | 'breaker_half_open' | 'breaker_closed' | 'migrate'
    #: | 'deadline' | 'retry' | 'drain' | 'resume' | 'health'
    op: str = ""
    session: int = -1
    request: int = -1
    state: str = ""                  # breaker state after a transition
    target: int = -1                 # migration target device
    score: float = -1.0              # health score (op == 'health')
    nbytes: int = 0                  # bytes migrated, if relevant
    detail: str = ""


class ActivityRecorder:
    """Bounded ring buffer of :class:`ActivityRecord` instances."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError("recorder capacity must be positive")
        self.capacity = int(capacity)
        self._buf: deque[ActivityRecord] = deque(maxlen=self.capacity)
        #: records pushed out of the full ring (oldest-first loss)
        self.dropped = 0
        #: total records ever emitted (dropped + retained)
        self.emitted = 0

    def emit(self, record: ActivityRecord) -> None:
        if len(self._buf) == self.capacity:
            self.dropped += 1
        self.emitted += 1
        self._buf.append(record)

    # -- access ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._buf)

    def __iter__(self) -> Iterator[ActivityRecord]:
        return iter(self._buf)

    def records(self, *kinds: str) -> list[ActivityRecord]:
        """Retained records in emission order, optionally filtered by kind."""
        if not kinds:
            return list(self._buf)
        wanted = set(kinds)
        return [r for r in self._buf if r.kind in wanted]

    def identities(self, *kinds: str) -> list[dict]:
        """Deterministic view of the retained records (volatile fields
        stripped) — what equivalent runs must agree on."""
        return [r.identity() for r in self.records(*kinds)]

    def clear(self) -> None:
        self._buf.clear()
        self.dropped = 0
        self.emitted = 0


class DeviceRecorder:
    """A view of a shared :class:`ActivityRecorder` that stamps every
    emitted record with one device ordinal.

    Multi-device runs hand each simulated driver its own ``DeviceRecorder``
    over a single shared ring, so the merged activity stream stays in
    emission order while every record remains attributable to the device
    that produced it (the chrome exporter splits tracks on this field).
    Read access delegates to the underlying recorder.
    """

    def __init__(self, base: ActivityRecorder, device: int):
        self.base = base
        self.device = int(device)

    def emit(self, record: ActivityRecord) -> None:
        if record.device is None:
            record.device = self.device
        self.base.emit(record)

    # -- delegated read access ---------------------------------------------
    @property
    def capacity(self) -> int:
        return self.base.capacity

    @property
    def dropped(self) -> int:
        return self.base.dropped

    @property
    def emitted(self) -> int:
        return self.base.emitted

    def __len__(self) -> int:
        return len(self.base)

    def __iter__(self) -> Iterator[ActivityRecord]:
        return iter(self.base)

    def records(self, *kinds: str) -> list[ActivityRecord]:
        return self.base.records(*kinds)

    def identities(self, *kinds: str) -> list[dict]:
        return self.base.identities(*kinds)

    def clear(self) -> None:
        self.base.clear()


def resolve_profile(spec) -> tuple[Optional[ActivityRecorder], Optional[str]]:
    """Resolve a user-facing profile spec into ``(recorder, trace_path)``.

    ``spec`` may be:

    * ``None`` — defer to the ``REPRO_PROFILE`` environment variable
      (unset/empty/``0``/``off`` disables; ``1``/``on`` enables; any other
      value enables *and* names the Chrome-trace output path);
    * ``False``/``'off'``/``'0'`` — disabled;
    * ``True``/``'on'``/``'1'`` — enabled, in-memory only;
    * an ``int`` — enabled with that ring capacity;
    * a path string — enabled, trace exported there at end of run;
    * an :class:`ActivityRecorder` — use the caller's recorder (lets tests
      and tools share one buffer across drivers).
    """
    if spec is None:
        spec = os.environ.get("REPRO_PROFILE", "")
        if spec == "":
            return None, None
    if isinstance(spec, (ActivityRecorder, DeviceRecorder)):
        return spec, None
    if spec is False or spec in ("off", "0"):
        return None, None
    if spec is True or spec in ("on", "1"):
        return ActivityRecorder(), None
    if isinstance(spec, int):
        return ActivityRecorder(capacity=spec), None
    if isinstance(spec, str):
        return ActivityRecorder(), spec
    raise ValueError(f"bad profile spec {spec!r}")
