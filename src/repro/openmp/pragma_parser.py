"""Parser for ``#pragma omp`` payload text -> :class:`Directive`.

The payload has already been captured as a single logical line by the C
lexer (continuations folded).  Clause argument expressions are parsed with
the cfront expression parser so that e.g. ``num_teams(n / 32 + 1)`` or
``map(to: A[0:n*n])`` produce real ASTs.
"""

from __future__ import annotations

from typing import Optional

from repro.cfront import astnodes as A
from repro.cfront.errors import CFrontError
from repro.cfront.lexer import Lexer, Token
from repro.cfront.parser import Parser
from repro.cfront.tokens import TokenKind
from repro.openmp.clauses import (
    ATOMIC_KINDS, AtomicClause, DataSharingClause, DefaultClause,
    DependClause, DeviceClause, DistScheduleClause, ExprClause, IfClause,
    MAP_TYPES, MapClause, MapItem, MotionClause, NameClause, NowaitClause,
    ProcBindClause, ReductionClause, SUPPORTED_REDUCTION_OPS, ScheduleClause,
)
from repro.openmp.directives import DIRECTIVE_NAMES, Directive


class OmpParseError(CFrontError):
    """Malformed OpenMP pragma."""


_EXPR_CLAUSES = frozenset(
    {"num_teams", "num_threads", "thread_limit", "collapse", "safelen",
     "simdlen", "priority", "grainsize", "num_tasks", "ordered", "shard"}
)
_DATA_SHARING = frozenset(
    {"private", "firstprivate", "lastprivate", "shared", "copyprivate",
     "copyin", "uses_allocators", "is_device_ptr", "use_device_ptr"}
)
#: the parser accepts exactly what the device lowering implements (the
#: canonical set lives next to ReductionClause); operators that exist in
#: OpenMP but have no lowering here are named in a parse-time diagnostic
#: instead of surfacing as a late CudaXformError
_REDUCTION_OPS = SUPPORTED_REDUCTION_OPS
_REJECTED_REDUCTION_OPS = ("&&", "||")


class _PragmaParser:
    def __init__(self, text: str):
        self.text = text
        self.toks = Lexer(text, "<pragma>").tokens()
        self.i = 0

    def _peek(self, offset: int = 0) -> Token:
        return self.toks[min(self.i + offset, len(self.toks) - 1)]

    def _next(self) -> Token:
        tok = self.toks[self.i]
        if tok.kind is not TokenKind.EOF:
            self.i += 1
        return tok

    def _at_word(self, word: str, offset: int = 0) -> bool:
        tok = self._peek(offset)
        return tok.kind in (TokenKind.IDENT, TokenKind.KEYWORD) and tok.text == word

    def _accept_word(self, word: str) -> bool:
        if self._at_word(word):
            self._next()
            return True
        return False

    def _expect(self, spelling: str) -> None:
        tok = self._next()
        if tok.text != spelling:
            raise OmpParseError(
                f"expected {spelling!r} in pragma, found {tok.text!r}: "
                f"#pragma {self.text}", tok.loc
            )

    # -- directive name -----------------------------------------------------
    def _match_name(self) -> str:
        for name in DIRECTIVE_NAMES:
            words = name.split()
            if all(self._at_word(w, off) for off, w in enumerate(words)):
                for _ in words:
                    self._next()
                return name
        tok = self._peek()
        raise OmpParseError(
            f"unknown OpenMP directive starting at {tok.text!r}: "
            f"#pragma {self.text}", tok.loc
        )

    # -- expression fragments -------------------------------------------------
    def _collect_balanced_until(self, stops: tuple[str, ...]) -> str:
        """Collect raw token texts (paren balanced) until one of ``stops`` at
        depth 0; the stop token is left unconsumed."""
        depth = 0
        start_tok = self._peek()
        parts: list[str] = []
        while True:
            tok = self._peek()
            if tok.kind is TokenKind.EOF:
                if depth:
                    raise OmpParseError("unbalanced parentheses in pragma", start_tok.loc)
                break
            if tok.text == "(" or tok.text == "[":
                depth += 1
            elif tok.text == ")" or tok.text == "]":
                if depth == 0 and tok.text in stops:
                    break
                depth -= 1
                if depth < 0:
                    raise OmpParseError("unbalanced parentheses in pragma", tok.loc)
            elif depth == 0 and tok.text in stops:
                break
            parts.append(tok.text)
            self._next()
        return " ".join(parts)

    def _parse_expr_fragment(self, text: str) -> A.Expr:
        try:
            parser = Parser(text, "<pragma-expr>")
            expr = parser._parse_expr()
            if parser._peek().kind is not TokenKind.EOF:
                raise OmpParseError(f"trailing tokens in clause expression {text!r}")
            return expr
        except CFrontError as exc:
            raise OmpParseError(f"bad clause expression {text!r}: {exc}") from exc

    def _parse_expr_until(self, stops: tuple[str, ...]) -> A.Expr:
        return self._parse_expr_fragment(self._collect_balanced_until(stops))

    # -- list items ------------------------------------------------------------
    def _parse_map_item(self) -> MapItem:
        tok = self._next()
        if tok.kind is not TokenKind.IDENT:
            raise OmpParseError(f"expected variable name in list, found {tok.text!r}", tok.loc)
        item = MapItem(tok.text)
        while self._peek().text == "[":
            self._next()
            lower: Optional[A.Expr] = None
            length: Optional[A.Expr] = None
            if self._peek().text != ":":
                lower = self._parse_expr_until((":", "]"))
            if self._peek().text == ":":
                self._next()
                if self._peek().text != "]":
                    length = self._parse_expr_until(("]",))
            else:
                # plain subscript x[i] used as a 1-element section
                length = None
            self._expect("]")
            item.sections.append((lower, length))
        return item

    def _parse_item_list(self) -> list[MapItem]:
        items = [self._parse_map_item()]
        while self._peek().text == ",":
            self._next()
            items.append(self._parse_map_item())
        return items

    def _parse_name_list(self) -> list[str]:
        names: list[str] = []
        while True:
            tok = self._next()
            if tok.kind is not TokenKind.IDENT:
                raise OmpParseError(f"expected variable name, found {tok.text!r}", tok.loc)
            names.append(tok.text)
            if self._peek().text != ",":
                return names
            self._next()

    # -- clauses ------------------------------------------------------------
    def _parse_clause(self) -> Optional[object]:
        tok = self._peek()
        if tok.kind is TokenKind.EOF:
            return None
        if tok.text == ",":  # optional clause separators
            self._next()
            return self._parse_clause()
        word = tok.text
        if word == "nowait":
            self._next()
            return NowaitClause()
        # atomic form selectors are bare words (no parenthesised argument)
        if word in ATOMIC_KINDS and self._peek(1).text != "(":
            self._next()
            return AtomicClause(word)
        if word == "depend":
            self._next()
            self._expect("(")
            dep_tok = self._next()
            if dep_tok.kind not in (TokenKind.IDENT, TokenKind.KEYWORD):
                raise OmpParseError(
                    f"expected a dependence type before ':' in depend(), "
                    f"found {dep_tok.text!r}", dep_tok.loc
                )
            self._expect(":")
            items = self._parse_item_list()
            self._expect(")")
            # the dependence type is validated (not parsed away) so the
            # validator can name unknown types in its diagnostic
            return DependClause(dep_tok.text, items)
        if word == "map":
            self._next()
            self._expect("(")
            map_type = "tofrom"
            # optional map-type prefix 'to:' / 'from:' / ...
            if self._peek().text in MAP_TYPES and self._peek(1).text == ":":
                map_type = self._next().text
                self._next()
            items = self._parse_item_list()
            self._expect(")")
            return MapClause(map_type, items)
        if word in ("to", "from") and self._peek(1).text == "(":
            self._next()
            self._expect("(")
            items = self._parse_item_list()
            self._expect(")")
            return MotionClause(word, items)
        if word in _EXPR_CLAUSES:
            self._next()
            if word == "ordered" and self._peek().text != "(":
                return ExprClause("ordered", A.IntLit(1))
            self._expect("(")
            expr = self._parse_expr_until((")",))
            self._expect(")")
            return ExprClause(word, expr)
        if word == "if":
            self._next()
            self._expect("(")
            modifier = None
            if (
                self._peek().kind is TokenKind.IDENT
                and self._peek(1).text == ":"
                and self._peek().text in ("target", "parallel", "taskloop", "task")
            ):
                modifier = self._next().text
                self._next()
            expr = self._parse_expr_until((")",))
            self._expect(")")
            return IfClause(expr, modifier)
        if word == "device":
            self._next()
            self._expect("(")
            expr = self._parse_expr_until((")",))
            self._expect(")")
            return DeviceClause(expr)
        if word in _DATA_SHARING:
            self._next()
            self._expect("(")
            names = self._parse_name_list()
            self._expect(")")
            return DataSharingClause(word, names)
        if word == "reduction":
            self._next()
            self._expect("(")
            op_parts = []
            while self._peek().text != ":":
                op_parts.append(self._next().text)
            op = "".join(op_parts)
            if op in _REJECTED_REDUCTION_OPS:
                raise OmpParseError(
                    f"reduction operator {op!r} is not supported by the "
                    f"device lowering (supported: "
                    f"{', '.join(_REDUCTION_OPS)})", tok.loc)
            if op not in _REDUCTION_OPS:
                raise OmpParseError(f"unsupported reduction operator {op!r}", tok.loc)
            self._expect(":")
            names = self._parse_name_list()
            self._expect(")")
            return ReductionClause(op, names)
        if word == "schedule":
            self._next()
            self._expect("(")
            kind_tok = self._next()
            if kind_tok.text not in ("static", "dynamic", "guided", "auto", "runtime"):
                raise OmpParseError(f"unknown schedule kind {kind_tok.text!r}", kind_tok.loc)
            chunk = None
            if self._peek().text == ",":
                self._next()
                chunk = self._parse_expr_until((")",))
            self._expect(")")
            return ScheduleClause(kind_tok.text, chunk)
        if word == "dist_schedule":
            self._next()
            self._expect("(")
            kind_tok = self._next()
            if kind_tok.text != "static":
                raise OmpParseError("dist_schedule supports only static", kind_tok.loc)
            chunk = None
            if self._peek().text == ",":
                self._next()
                chunk = self._parse_expr_until((")",))
            self._expect(")")
            return DistScheduleClause("static", chunk)
        if word == "default":
            self._next()
            self._expect("(")
            mode = self._next().text
            if mode not in ("shared", "none"):
                raise OmpParseError(f"unknown default mode {mode!r}", tok.loc)
            self._expect(")")
            return DefaultClause(mode)
        if word == "proc_bind":
            self._next()
            self._expect("(")
            mode = self._next().text
            self._expect(")")
            return ProcBindClause(mode)
        raise OmpParseError(
            f"unknown clause {word!r} in: #pragma {self.text}", tok.loc
        )

    def parse(self) -> Directive:
        if not self._accept_word("omp"):
            raise OmpParseError(f"not an OpenMP pragma: #pragma {self.text}")
        name = self._match_name()
        directive = Directive(name)
        if name == "critical" and self._peek().text == "(":
            self._next()
            cname = self._next()
            self._expect(")")
            directive.clauses.append(NameClause(cname.text))
        while True:
            clause = self._parse_clause()
            if clause is None:
                break
            directive.clauses.append(clause)
        return directive


def parse_omp_pragma(text: str) -> Directive:
    """Parse a pragma payload (everything after ``#pragma``)."""
    try:
        return _PragmaParser(text.strip()).parse()
    except OmpParseError:
        raise
    except CFrontError as exc:
        raise OmpParseError(f"malformed pragma '#pragma {text.strip()}': {exc}") from exc
