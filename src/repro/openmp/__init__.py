"""OpenMP directive layer: pragma parsing, clause model, validation.

This package turns the raw ``#pragma omp ...`` text captured by the C
frontend into structured :class:`~repro.openmp.directives.Directive`
objects the OMPi translator consumes.  Clause arguments that are C
expressions (``num_teams(n/2)``, ``map(to: x[0:size])``) are parsed with
the same cfront expression parser as the surrounding program.
"""

from repro.openmp.clauses import (
    Clause, DataSharingClause, DefaultClause, DependClause, DeviceClause,
    ExprClause, IfClause, MapClause, MapItem, MotionClause, NameClause,
    NowaitClause, ReductionClause, ScheduleClause,
)
from repro.openmp.directives import Directive, DIRECTIVE_NAMES
from repro.openmp.pragma_parser import OmpParseError, parse_omp_pragma
from repro.openmp.validator import OmpValidationError, validate_directive, validate_unit

__all__ = [
    "Clause", "DataSharingClause", "DefaultClause", "DependClause",
    "DeviceClause", "Directive", "DIRECTIVE_NAMES", "ExprClause", "IfClause",
    "MapClause", "MapItem", "MotionClause", "NameClause", "NowaitClause",
    "OmpParseError", "OmpValidationError", "ReductionClause",
    "ScheduleClause", "parse_omp_pragma", "validate_directive",
    "validate_unit",
]
