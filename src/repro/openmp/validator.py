"""Semantic validation of OpenMP directives: clause legality and nesting.

OMPi reports such errors at translation time; we do the same before the
transformation phase runs, so the translator can assume well-formed input.
"""

from __future__ import annotations

from repro.cfront import astnodes as A
from repro.cfront.errors import CFrontError
from repro.openmp.clauses import (
    ATOMIC_KINDS, AtomicClause, DEPEND_TYPES, DataSharingClause,
    DefaultClause, DependClause, DeviceClause, DistScheduleClause,
    ExprClause, IfClause, MapClause, MotionClause, NameClause, NowaitClause,
    ProcBindClause, ReductionClause, ScheduleClause,
)
from repro.openmp.directives import Directive
from repro.openmp.pragma_parser import parse_omp_pragma


class OmpValidationError(CFrontError):
    """Directive violates a clause-legality or nesting rule."""


#: clause kinds legal on each leaf construct; combined constructs accept the
#: union of their parts.
_LEGAL: dict[str, frozenset[str]] = {
    # "shard" is this implementation's multi-device extension: split the
    # teams-distribute iteration space across shard(n) devices
    "target": frozenset({"map", "device", "if", "nowait", "depend",
                         "is_device_ptr", "firstprivate", "private",
                         "shard"}),
    "target data": frozenset({"map", "device", "if", "use_device_ptr"}),
    "target enter data": frozenset({"map", "device", "if", "nowait",
                                    "depend"}),
    "target exit data": frozenset({"map", "device", "if", "nowait",
                                   "depend"}),
    "target update": frozenset({"motion", "device", "if", "nowait",
                                "depend"}),
    "teams": frozenset({"num_teams", "thread_limit", "private", "firstprivate",
                        "shared", "default", "reduction"}),
    "distribute": frozenset({"private", "firstprivate", "lastprivate",
                             "collapse", "dist_schedule"}),
    "parallel": frozenset({"num_threads", "private", "firstprivate", "shared",
                           "default", "reduction", "if", "proc_bind", "copyin"}),
    "for": frozenset({"private", "firstprivate", "lastprivate", "reduction",
                      "schedule", "collapse", "nowait", "ordered"}),
    "simd": frozenset({"private", "lastprivate", "reduction", "collapse",
                       "safelen", "simdlen"}),
    "sections": frozenset({"private", "firstprivate", "lastprivate",
                           "reduction", "nowait"}),
    "section": frozenset(),
    "single": frozenset({"private", "firstprivate", "nowait", "copyprivate"}),
    "critical": frozenset({"name"}),
    "master": frozenset(),
    "barrier": frozenset(),
    # OpenMP 5.0 allows depend() on taskwait; this implementation joins the
    # whole task graph regardless (conservative over-synchronisation)
    "taskwait": frozenset({"depend"}),
    "atomic": frozenset({"atomic_kind"}),
    "declare target": frozenset(),
    "end declare target": frozenset(),
}

_CLAUSE_KIND: dict[type, str] = {
    MapClause: "map",
    MotionClause: "motion",
    IfClause: "if",
    DeviceClause: "device",
    ReductionClause: "reduction",
    ScheduleClause: "schedule",
    DistScheduleClause: "dist_schedule",
    DefaultClause: "default",
    NowaitClause: "nowait",
    NameClause: "name",
    ProcBindClause: "proc_bind",
    DependClause: "depend",
    AtomicClause: "atomic_kind",
}


def _clause_kind(clause) -> str:
    if isinstance(clause, (DataSharingClause, ExprClause)):
        return clause.kind
    return _CLAUSE_KIND[type(clause)]


def _legal_kinds(directive: Directive) -> frozenset[str]:
    legal: set[str] = set()
    words = list(directive.words)
    i = 0
    while i < len(words):
        # match the longest leaf name at this position
        for leaf in ("target enter data", "target exit data", "target update",
                     "target data", "declare target", "end declare target"):
            leaf_words = leaf.split()
            if words[i : i + len(leaf_words)] == leaf_words:
                legal |= _LEGAL[leaf]
                i += len(leaf_words)
                break
        else:
            legal |= _LEGAL.get(words[i], frozenset())
            i += 1
    return frozenset(legal)


def validate_directive(directive: Directive, loc=None) -> None:
    """Check clause legality for one directive."""
    for dep in directive.clauses_of(DependClause):
        if dep.dep_type not in DEPEND_TYPES:
            raise OmpValidationError(
                f"unknown dependence type '{dep.dep_type}' in depend() on "
                f"'#pragma omp {directive.name}': expected one of "
                f"{', '.join(DEPEND_TYPES)}", loc
            )
        if not dep.items:
            raise OmpValidationError(
                f"depend({dep.dep_type}:) requires at least one list item", loc
            )
    if directive.name in ("target update",):
        if not any(isinstance(c, MotionClause) for c in directive.clauses):
            raise OmpValidationError(
                "target update requires at least one to()/from() clause", loc
            )
    if directive.name in ("target enter data", "target exit data"):
        maps = list(directive.clauses_of(MapClause))
        if not maps:
            raise OmpValidationError(f"{directive.name} requires a map clause", loc)
        for m in maps:
            if directive.name == "target enter data" and m.map_type not in ("to", "alloc"):
                raise OmpValidationError(
                    f"target enter data map type must be to/alloc, got {m.map_type}", loc
                )
            if directive.name == "target exit data" and m.map_type not in (
                "from", "release", "delete"
            ):
                raise OmpValidationError(
                    f"target exit data map type must be from/release/delete, "
                    f"got {m.map_type}", loc
                )
    kinds = {_clause_kind(c) for c in directive.clauses}
    if "shard" in kinds:
        words = directive.name.split()
        if "teams" not in words or "distribute" not in words:
            raise OmpValidationError(
                "shard() requires a combined target teams distribute "
                f"construct, not '#pragma omp {directive.name}'", loc
            )
        for incompatible in ("nowait", "depend", "device"):
            if incompatible in kinds:
                raise OmpValidationError(
                    f"shard() cannot be combined with '{incompatible}' "
                    f"on '#pragma omp {directive.name}'", loc
                )
    for clause in directive.clauses:
        if (isinstance(clause, AtomicClause)
                and clause.atomic_kind not in ATOMIC_KINDS):
            raise OmpValidationError(
                f"unknown atomic form '{clause.atomic_kind}' on "
                f"'#pragma omp {directive.name}'", loc
            )
    if ("reduction" in kinds and "nowait" in kinds
            and directive.name.split()[0] == "target"):
        # the cross-team combine runs synchronously on copy-back; a
        # deferred region has no join point to anchor it
        raise OmpValidationError(
            "reduction cannot be combined with nowait on "
            f"'#pragma omp {directive.name}' (the cross-team combine is "
            "performed at the region's synchronous join)", loc
        )
    legal = _legal_kinds(directive)
    for clause in directive.clauses:
        kind = _clause_kind(clause)
        if kind not in legal:
            raise OmpValidationError(
                f"clause '{kind}' is not permitted on '#pragma omp "
                f"{directive.name}'", loc
            )
    seen_unique: set[str] = set()
    for clause in directive.clauses:
        kind = _clause_kind(clause)
        if kind in ("num_teams", "num_threads", "thread_limit", "collapse",
                    "schedule", "dist_schedule", "default", "device", "if",
                    "shard"):
            if kind in seen_unique:
                raise OmpValidationError(
                    f"duplicate '{kind}' clause on '#pragma omp {directive.name}'", loc
                )
            seen_unique.add(kind)


#: constructs that may appear (dynamically) nested inside a target region in
#: this implementation (matches the device-side features of the paper §4.2.2)
_DEVICE_SIDE = frozenset(
    {"teams", "distribute", "parallel", "for", "parallel for", "sections",
     "simd", "for simd",
     "section", "single", "critical", "barrier", "master", "atomic",
     "teams distribute", "distribute parallel for",
     "teams distribute parallel for"}
)


def validate_unit(unit: A.TranslationUnit) -> list[Directive]:
    """Parse + validate every pragma in the unit; attaches ``directive`` to
    each PragmaStmt/PragmaDecl node.  Returns all directives found."""
    out: list[Directive] = []
    declare_target_depth = 0
    for decl in unit.decls:
        if isinstance(decl, A.PragmaDecl) and decl.text.strip().startswith("omp"):
            directive = parse_omp_pragma(decl.text)
            decl.directive = directive
            validate_directive(directive, decl.loc)
            if directive.name == "declare target":
                declare_target_depth += 1
            elif directive.name == "end declare target":
                declare_target_depth -= 1
                if declare_target_depth < 0:
                    raise OmpValidationError(
                        "end declare target without matching declare target", decl.loc
                    )
            out.append(directive)
    if declare_target_depth != 0:
        raise OmpValidationError("unterminated declare target region")
    for decl in unit.decls:
        if not isinstance(decl, A.FuncDef):
            continue
        for node in decl.body.walk():
            if isinstance(node, A.PragmaStmt) and node.text.strip().startswith("omp"):
                directive = parse_omp_pragma(node.text)
                node.directive = directive
                validate_directive(directive, node.loc)
                out.append(directive)
        # nesting rules within this function
        _check_nesting(decl.body, in_target=False)
    return out


def _check_nesting(stmt: A.Stmt, in_target: bool, in_teams: bool = False) -> None:
    if isinstance(stmt, A.PragmaStmt) and stmt.directive is not None:
        d: Directive = stmt.directive
        if d.name == "distribute" and not in_teams:
            raise OmpValidationError(
                "distribute must be closely nested inside a teams region", stmt.loc
            )
        if d.is_target_construct and in_target:
            raise OmpValidationError("target regions cannot nest", stmt.loc)
        if in_target and not d.is_target_construct and d.name not in _DEVICE_SIDE \
                and d.name not in ("target data",):
            raise OmpValidationError(
                f"'#pragma omp {d.name}' is not supported inside a target region",
                stmt.loc,
            )
        child_in_target = in_target or d.is_target_construct
        child_in_teams = d.includes("teams") or (
            in_teams and d.name in ("section",)
        )
        if stmt.body is not None:
            _check_nesting(stmt.body, child_in_target, child_in_teams)
        return
    for child in stmt.children():
        if isinstance(child, A.Stmt):
            _check_nesting(child, in_target, in_teams)
        elif isinstance(child, (A.Expr,)):
            continue
