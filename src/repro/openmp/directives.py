"""Directive node model.

A :class:`Directive` is the parsed form of one ``#pragma omp`` line.
Combined constructs keep their full name (``target teams distribute
parallel for``); the OMPi translator decomposes them during lowering, as
the paper's Section 3.1 describes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional, TypeVar

from repro.openmp.clauses import Clause

#: All directive names the implementation understands, longest first so the
#: pragma parser can do maximal-munch matching on the name.
DIRECTIVE_NAMES = (
    "target teams distribute parallel for",
    "teams distribute parallel for",
    "distribute parallel for",
    "target teams distribute",
    "teams distribute",
    "target parallel for",
    "target enter data",
    "target exit data",
    "end declare target",
    "target parallel",
    "parallel sections",
    "target update",
    "declare target",
    "target teams",
    "target data",
    "parallel for",
    "distribute",
    "for simd",
    "sections",
    "parallel",
    "critical",
    "taskwait",
    "barrier",
    "section",
    "target",
    "single",
    "master",
    "atomic",
    "teams",
    "simd",
    "for",
)

#: Directives that stand alone (no associated statement).
STANDALONE_DIRECTIVES = frozenset(
    {"barrier", "taskwait", "target update", "target enter data",
     "target exit data"}
)

#: Directives that are declarative (file scope).
DECLARATIVE_DIRECTIVES = frozenset({"declare target", "end declare target"})

C = TypeVar("C", bound=Clause)


@dataclass
class Directive:
    name: str
    clauses: list[Clause] = field(default_factory=list)

    # -- clause lookup helpers ------------------------------------------------
    def clauses_of(self, cls: type[C]) -> Iterator[C]:
        for clause in self.clauses:
            if isinstance(clause, cls):
                yield clause

    def first(self, cls: type[C], kind: Optional[str] = None) -> Optional[C]:
        for clause in self.clauses_of(cls):
            if kind is None or clause.kind == kind:
                return clause
        return None

    def has(self, cls: type[C], kind: Optional[str] = None) -> bool:
        return self.first(cls, kind) is not None

    # -- name decomposition ------------------------------------------------------
    @property
    def words(self) -> tuple[str, ...]:
        return tuple(self.name.split())

    def includes(self, part: str) -> bool:
        """True when this (possibly combined) directive contains ``part``
        as a sub-construct, e.g. 'parallel for'.includes('for')."""
        part_words = part.split()
        words = list(self.words)
        # handle 'parallel for' vs 'parallel sections' word order: a
        # sub-construct is a contiguous word subsequence.
        for i in range(len(words) - len(part_words) + 1):
            if words[i : i + len(part_words)] == part_words:
                return True
        return False

    @property
    def is_standalone(self) -> bool:
        return self.name in STANDALONE_DIRECTIVES

    @property
    def is_declarative(self) -> bool:
        return self.name in DECLARATIVE_DIRECTIVES

    @property
    def is_target_construct(self) -> bool:
        return self.words[0] == "target" and self.name not in (
            "target data", "target update", "target enter data", "target exit data"
        )

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return f"#pragma omp {self.name} ({len(self.clauses)} clauses)"
