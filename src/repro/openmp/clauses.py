"""Clause model for OpenMP directives.

Clauses carry parsed C expression ASTs (:mod:`repro.cfront.astnodes`) for
their arguments; the translator evaluates or re-emits them as needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfront import astnodes as A


class Clause:
    """Base class; ``kind`` is the clause keyword as written."""

    kind: str = ""


@dataclass
class MapItem:
    """One list item of a ``map``/``to``/``from`` clause.

    ``sections`` holds OpenMP array sections as ``(lower, length)`` pairs of
    expression ASTs; either element may be None (``x[:n]``, ``x[0:]``).
    A plain scalar variable has no sections.
    """

    name: str
    sections: list[tuple[Optional[A.Expr], Optional[A.Expr]]] = field(default_factory=list)

    def is_array_section(self) -> bool:
        return bool(self.sections)


#: map types from OpenMP 4.5 used by the paper
MAP_TYPES = ("to", "from", "tofrom", "alloc", "release", "delete")


@dataclass
class MapClause(Clause):
    map_type: str = "tofrom"
    items: list[MapItem] = field(default_factory=list)
    kind: str = "map"


@dataclass
class MotionClause(Clause):
    """``to``/``from`` on ``target update``."""

    direction: str = "to"
    items: list[MapItem] = field(default_factory=list)
    kind: str = "motion"


@dataclass
class ExprClause(Clause):
    """Single-expression clauses: num_teams, num_threads, thread_limit,
    collapse, safelen, ordered(n), priority..."""

    kind: str = ""
    expr: A.Expr = None  # type: ignore[assignment]


@dataclass
class IfClause(Clause):
    expr: A.Expr = None  # type: ignore[assignment]
    modifier: Optional[str] = None      # e.g. 'target', 'parallel'
    kind: str = "if"


@dataclass
class DeviceClause(Clause):
    expr: A.Expr = None  # type: ignore[assignment]
    kind: str = "device"


@dataclass
class DataSharingClause(Clause):
    """private / firstprivate / lastprivate / shared / copyprivate / linear."""

    kind: str = "private"
    names: list[str] = field(default_factory=list)


#: reduction operators supported end-to-end (parser, device tree combine,
#: host fallback, cross-team/cross-device merge).  `-` reduces like `+`
#: per the OpenMP spec.  `&&`/`||` are rejected at parse time: short-
#: circuit semantics have no deterministic tree-combine shape here.
SUPPORTED_REDUCTION_OPS = ("+", "-", "*", "max", "min", "&", "|", "^")


@dataclass
class ReductionClause(Clause):
    op: str = "+"
    names: list[str] = field(default_factory=list)
    kind: str = "reduction"


#: memory-order forms of the atomic construct (OpenMP 4.5 atomic clauses)
ATOMIC_KINDS = ("read", "write", "update", "capture")


@dataclass
class AtomicClause(Clause):
    """The read/write/update/capture form selector on ``atomic``."""

    atomic_kind: str = "update"
    kind: str = "atomic_kind"


@dataclass
class ScheduleClause(Clause):
    schedule: str = "static"            # static | dynamic | guided | auto | runtime
    chunk: Optional[A.Expr] = None
    kind: str = "schedule"


@dataclass
class DistScheduleClause(Clause):
    schedule: str = "static"
    chunk: Optional[A.Expr] = None
    kind: str = "dist_schedule"


@dataclass
class DefaultClause(Clause):
    mode: str = "shared"                # shared | none
    kind: str = "default"


@dataclass
class NowaitClause(Clause):
    kind: str = "nowait"


#: dependence types accepted on depend() (OpenMP 4.5 task dependences)
DEPEND_TYPES = ("in", "out", "inout")


@dataclass
class DependClause(Clause):
    """``depend(in|out|inout: list)`` on deferrable constructs.

    ``dep_type`` is kept as written so the validator can reject unknown
    dependence types with a diagnostic naming the offender; items reuse
    :class:`MapItem` so array-sectioned dependences (``depend(out:
    A[0:n])``) parse like map list items."""

    dep_type: str = "inout"
    items: list[MapItem] = field(default_factory=list)
    kind: str = "depend"


@dataclass
class NameClause(Clause):
    """The optional name of a ``critical`` region."""

    name: str = ""
    kind: str = "name"


@dataclass
class ProcBindClause(Clause):
    mode: str = "close"
    kind: str = "proc_bind"
