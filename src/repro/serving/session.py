"""Client sessions and their warm device-resident state.

A session is one client's sticky binding to a device: its requests run
in admission order on that device, and between requests the session may
keep *resident buffers* — device allocations parked with a content
digest so the next request mapping the same ``(host address, size)``
range can skip both the allocation and (digest permitting) the HtoD
transfer.  Parking is quota-checked by the owning server; eviction under
memory pressure frees exactly these buffers, never the state of a
request in flight.

:class:`SessionDataEnv` is the hook layer: a
:class:`~repro.hostrt.mapping.DataEnv` whose allocation/retirement side
goes through the session pool, while the OpenMP mapping semantics
(refcounts, copy-back decisions, interval lookup) stay entirely in the
base class.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.hostrt.mapping import (
    MAP_FROM, MAP_TO, MAP_TOFROM, DataEnv, MapEntry, MappingError,
)
# one digest implementation serves every gate that elides a transfer:
# the serving warm-remap check here and Ort._resync_device's skip
from repro.mem import content_digest  # noqa: F401  (re-exported)


@dataclass
class ResidentBuffer:
    """One parked device allocation a session keeps warm between
    requests.  ``digest`` hashes the device bytes at park time; a later
    map whose host bytes hash the same skips the HtoD transfer (this
    models a runtime that tracks device writes — the simulator reads the
    device bytes back at zero modelled cost to compute it)."""

    host_addr: int
    size: int
    dev_addr: int
    digest: str = ""


@dataclass
class Session:
    """One client's state on the server (see module docstring)."""

    sid: int
    tenant: str
    device: int
    #: (host_addr, size) -> parked buffer available for the next request
    resident: dict[tuple[int, int], ResidentBuffer] = field(
        default_factory=dict)
    resident_bytes: int = 0
    #: simulated completion time of the session's last finished request
    #: (the LRU key eviction orders victims by)
    last_active: float = 0.0
    #: a request of this session is currently executing or in flight —
    #: its device state must not be evicted
    busy: bool = False
    closed: bool = False
    #: requests submitted so far (the per-session FIFO sequence)
    submitted: int = 0
    #: requests admitted but not yet executed
    pending: int = 0
    #: requests executed (any outcome)
    requests: int = 0
    #: maps that found a parked buffer (allocation skipped)
    warm_borrows: int = 0
    #: maps that also skipped the HtoD transfer (digest matched)
    reuse_hits: int = 0
    #: times this session was re-pinned to another device (breaker
    #: failover, retry, planned drain)
    migrations: int = 0

    def borrow(self, host_addr: int, size: int) -> Optional[ResidentBuffer]:
        """Take a parked buffer for this exact range, if one is warm."""
        buf = self.resident.pop((host_addr, size), None)
        if buf is not None:
            self.warm_borrows += 1
        return buf

    def park(self, buf: ResidentBuffer) -> None:
        self.resident[(buf.host_addr, buf.size)] = buf


class SessionDataEnv(DataEnv):
    """A device data environment that recycles the session's parked
    buffers.  With ``session=None`` it is exactly a :class:`DataEnv`
    (used for the devices a request's session is *not* bound to)."""

    def __init__(self, device_module, session: Optional[Session] = None,
                 server=None):
        super().__init__(device_module)
        self.session = session
        #: the owning :class:`~repro.serving.server.OffloadServer`, which
        #: arbitrates parking against tenant/device quotas
        self.server = server

    # -- enter: borrow instead of alloc --------------------------------------
    def map_enter(self, host_addr: int, size: int, map_type: int) -> MapEntry:
        if self.session is None:
            return super().map_enter(host_addr, size, map_type)
        if size <= 0:
            raise MappingError(f"mapping of non-positive size {size}")
        entry = self.find(host_addr)
        if entry is not None:
            if host_addr + size > entry.host_addr + entry.size:
                raise MappingError(
                    "mapped section extends beyond an existing entry"
                )
            entry.refcount += 1
            return entry
        buf = self.session.borrow(host_addr, size)
        if buf is None:
            return super().map_enter(host_addr, size, map_type)
        if self.server is not None:
            # borrowed bytes leave the parked pool: uncharge now, and
            # try_park re-charges if the buffer is parked again at exit
            self.server.note_borrow(self.session, buf.size)
        entry = MapEntry(host_addr, size, buf.dev_addr)
        if map_type in (MAP_TO, MAP_TOFROM):
            host_bytes = self.device.host_mem.copy_out(host_addr, size)
            if content_digest(host_bytes) == buf.digest:
                # device copy already holds these bytes: transfer elided
                self.session.reuse_hits += 1
                if self.server is not None:
                    self.server.note_reuse(self.session, size)
            else:
                self.device.write(buf.dev_addr, host_addr, size)
        # alloc/from entries leave device contents undefined on entry, so
        # a stale parked image is fine — only the allocation is reused
        self._install(entry)
        return entry

    # -- exit: park instead of free ------------------------------------------
    def _release_entry(self, entry: MapEntry, map_type: int) -> None:
        if self.session is None or self.server is None:
            super()._release_entry(entry, map_type)
            return
        if map_type in (MAP_FROM, MAP_TOFROM):
            self.device.read(entry.host_addr, entry.dev_addr, entry.size)
        if self.server.try_park(self.session, self.device, entry):
            return
        self.device.mem_free(entry.dev_addr)
