"""Per-tenant quotas for the offload server.

A tenant is a named principal owning sessions; quotas bound how much of
the shared board a tenant can hold: open sessions, queued (admitted but
not yet executed) requests, and device-resident bytes parked between
requests for warm reuse.  ``None`` means unbounded.  Session and pending
limits reject at admission (:class:`QuotaError`); the resident limit is
soft — crossing it triggers eviction of the tenant's idle session state,
and only if nothing evictable remains does the server refuse to park
more (the request itself still runs, its buffers are simply freed
instead of kept warm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class TenantQuota:
    #: concurrently open sessions (None: unbounded)
    max_sessions: Optional[int] = None
    #: admitted-but-unexecuted requests across the tenant's sessions
    max_pending: Optional[int] = None
    #: device bytes parked for warm reuse across the tenant's sessions
    max_resident_bytes: Optional[int] = None


class QuotaError(Exception):
    """An admission was refused by a tenant quota."""


class QuotaManager:
    """Book-keeping of per-tenant usage against their quotas."""

    def __init__(self, default: Optional[TenantQuota] = None):
        self.default = default or TenantQuota()
        self._quotas: dict[str, TenantQuota] = {}
        self.open_sessions: dict[str, int] = {}
        self.pending: dict[str, int] = {}
        self.resident_bytes: dict[str, int] = {}
        #: admissions refused, per tenant
        self.rejections: dict[str, int] = {}

    def quota(self, tenant: str) -> TenantQuota:
        return self._quotas.get(tenant, self.default)

    def set_quota(self, tenant: str, quota: TenantQuota) -> None:
        self._quotas[tenant] = quota

    def _reject(self, tenant: str, why: str) -> None:
        self.rejections[tenant] = self.rejections.get(tenant, 0) + 1
        raise QuotaError(f"tenant {tenant!r}: {why}")

    # -- sessions -------------------------------------------------------------
    def admit_session(self, tenant: str) -> None:
        q = self.quota(tenant)
        have = self.open_sessions.get(tenant, 0)
        if q.max_sessions is not None and have >= q.max_sessions:
            self._reject(tenant, f"session limit {q.max_sessions} reached")
        self.open_sessions[tenant] = have + 1

    def release_session(self, tenant: str) -> None:
        self.open_sessions[tenant] = max(
            0, self.open_sessions.get(tenant, 0) - 1)

    # -- pending requests -----------------------------------------------------
    def admit_pending(self, tenant: str) -> None:
        q = self.quota(tenant)
        have = self.pending.get(tenant, 0)
        if q.max_pending is not None and have >= q.max_pending:
            self._reject(tenant, f"pending-request limit {q.max_pending} "
                                 "reached")
        self.pending[tenant] = have + 1

    def release_pending(self, tenant: str) -> None:
        self.pending[tenant] = max(0, self.pending.get(tenant, 0) - 1)

    # -- resident bytes -------------------------------------------------------
    def resident(self, tenant: str) -> int:
        return self.resident_bytes.get(tenant, 0)

    def resident_over(self, tenant: str, extra: int) -> bool:
        """Would parking ``extra`` more bytes exceed the tenant's limit?"""
        q = self.quota(tenant)
        if q.max_resident_bytes is None:
            return False
        return self.resident(tenant) + extra > q.max_resident_bytes

    def charge_resident(self, tenant: str, nbytes: int) -> None:
        self.resident_bytes[tenant] = self.resident(tenant) + int(nbytes)

    def uncharge_resident(self, tenant: str, nbytes: int) -> None:
        self.resident_bytes[tenant] = max(0, self.resident(tenant)
                                          - int(nbytes))
