"""Offload-as-a-service: the persistent multi-tenant serving runtime.

A long-lived :class:`OffloadServer` owns one compile cache and one
N-device registry and multiplexes many client sessions over them, with
deterministic request admission, compatible-request batching, per-tenant
quotas and quota/pressure-driven eviction of idle warm state.  See
DESIGN.md §11 for the architecture.
"""

from repro.serving.quota import QuotaError, QuotaManager, TenantQuota
from repro.serving.scheduler import AdmissionQueue
from repro.serving.server import (
    OffloadServer, Request, ServingStats, percentile,
)
from repro.serving.session import (
    ResidentBuffer, Session, SessionDataEnv, content_digest,
)

__all__ = [
    "AdmissionQueue", "OffloadServer", "QuotaError", "QuotaManager",
    "Request", "ResidentBuffer", "ServingStats", "Session",
    "SessionDataEnv", "TenantQuota", "content_digest", "percentile",
]
