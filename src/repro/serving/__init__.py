"""Offload-as-a-service: the persistent multi-tenant serving runtime.

A long-lived :class:`OffloadServer` owns one compile cache and one
N-device registry and multiplexes many client sessions over them, with
deterministic request admission, compatible-request batching, per-tenant
quotas and quota/pressure-driven eviction of idle warm state.  The
resilience layer (:mod:`repro.serving.resilience`) adds per-device
health scores, circuit breakers, request deadlines and live session
migration on top.  See DESIGN.md §11 and §15 for the architecture.
"""

from repro.serving.quota import QuotaError, QuotaManager, TenantQuota
from repro.serving.resilience import (
    BreakerPolicy, CircuitBreaker, DeadlineExceeded, DeviceHealthMonitor,
    resolve_breaker, resolve_deadline,
)
from repro.serving.scheduler import AdmissionQueue
from repro.serving.server import (
    OffloadServer, Request, ServingStats, percentile,
)
from repro.serving.session import (
    ResidentBuffer, Session, SessionDataEnv, content_digest,
)

__all__ = [
    "AdmissionQueue", "BreakerPolicy", "CircuitBreaker", "DeadlineExceeded",
    "DeviceHealthMonitor", "OffloadServer", "QuotaError", "QuotaManager",
    "Request", "ResidentBuffer", "ServingStats", "Session",
    "SessionDataEnv", "TenantQuota", "content_digest", "percentile",
    "resolve_breaker", "resolve_deadline",
]
