"""The persistent offload server (offload-as-a-service).

One :class:`OffloadServer` owns the long-lived state a fleet of client
sessions multiplexes over:

* one **compile cache** (:mod:`repro.ompi.cache`): source-hash ->
  compiled program; the first request for a program pays the full OMPi +
  nvcc pipeline, every later request (any session, any tenant) binds the
  cached images,
* one **device registry**: N simulated Jetson boards sharing a virtual
  clock and one activity ring, each with its own driver, memory arena
  and fault domain,
* one **admission queue** per device with deterministic ordering and
  compatible-request batching (:mod:`repro.serving.scheduler`),
* per-tenant **quotas** (:mod:`repro.serving.quota`) and quota/pressure
  driven **eviction** of idle sessions' warm state.

Each executed request gets a private data environment, ICV state and
interpreter machine bound to the shared registry through a *leased*
:class:`~repro.hostrt.ort.Ort`; the request rides one task of the
device's serving stream pool with a ``(INOUT, session id)`` dependence,
so a session's requests run FIFO while different sessions overlap on
the modelled timeline.  Completion events are synchronised only after
every queued request has dispatched, keeping cross-device overlap
visible in the latency numbers.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.cfront.errors import CFrontError
from repro.cuda.nvcc import NvccError
from repro.cfront.interp import Machine
from repro.cuda.device import DeviceProperties, JETSON_NANO_GPU
from repro.cuda.driver import DEVICE_MEM_BASE
from repro.cuda.errors import CudaError
from repro.faults.recovery import DeviceLost, OffloadFailure
from repro.hostrt.cudadev_host import CudadevModule
from repro.hostrt.mapping import MappingError
from repro.hostrt.ort import DEVICE_MEM_STRIDE, Ort
from repro.mem import MemoryError_
from repro.ompi.cache import GLOBAL_COMPILE_CACHE, CompileCache, source_key
from repro.ompi.config import OmpiConfig
from repro.ompi.diskcache import DiskCompileCache
from repro.prof.activity import (
    DeviceRecorder, ServingActivity, resolve_profile,
)
from repro.prof.ompt import OmptRegistry
from repro.rt_async.taskgraph import (
    DEP_INOUT, OffloadTaskError, StreamPoolScheduler,
)
from repro.serving.quota import QuotaError, QuotaManager, TenantQuota
from repro.serving.scheduler import AdmissionQueue
from repro.serving.session import (
    ResidentBuffer, Session, SessionDataEnv, content_digest,
)
from repro.timing.clock import VirtualClock

#: request heap default: enough for the small serving workloads; callers
#: size it per request like the bench harness sizes standalone runs
DEFAULT_HEAP = 64 << 20


def percentile(values, p: float) -> float:
    """Nearest-rank percentile (the convention latency SLOs use)."""
    if not values:
        return 0.0
    xs = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(xs)))
    return float(xs[min(rank, len(xs)) - 1])


@dataclass
class Request:
    """One submitted offload job and, after :meth:`OffloadServer.drain`,
    its outcome."""

    seq: int                       # server-wide submission number
    session: Session
    source: str
    name: str
    program_key: str               # compile-cache key (batch compatibility)
    arrival: float                 # simulated admission time
    session_seq: int               # per-session FIFO position
    seed_arrays: Optional[dict] = None
    outputs: tuple = ()
    heap_capacity: int = DEFAULT_HEAP
    status: str = "queued"         # 'queued' | 'done' | 'failed'
    result: dict = field(default_factory=dict)
    stdout: str = ""
    exit_code: int = 0
    error: Optional[str] = None
    latency: float = 0.0           # arrival -> completion, simulated
    done_time: float = 0.0
    batch_size: int = 0
    task: object = None
    #: host wall-clock bracketing time-to-first-launch: dispatch start
    #: and the first OMPT ``submit`` of this request (None: no launch)
    dispatch_wall: Optional[float] = None
    first_launch_wall: Optional[float] = None

    @property
    def key(self) -> tuple:
        """Deterministic admission order: arrival time, then session id
        (the stable tie-break), then per-session sequence."""
        return (self.arrival, self.session.sid, self.session_seq)

    @property
    def ttfl(self) -> Optional[float]:
        """Wall seconds from dispatch to the first kernel submission —
        the cold/warm compile-cache metric."""
        if self.dispatch_wall is None or self.first_launch_wall is None:
            return None
        return self.first_launch_wall - self.dispatch_wall


@dataclass
class ServingStats:
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejections: int = 0
    evictions: int = 0             # idle sessions whose warm state was shed
    evicted_bytes: int = 0
    reuse_hits: int = 0            # HtoD transfers elided by digest match
    reuse_bytes: int = 0
    latencies: list = field(default_factory=list)
    #: batch size -> how many batches dispatched at that size
    batches: dict = field(default_factory=dict)

    def summary(self) -> dict:
        return {
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejections": self.rejections,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "reuse_hits": self.reuse_hits,
            "reuse_bytes": self.reuse_bytes,
            "latency_p50_s": percentile(self.latencies, 50),
            "latency_p95_s": percentile(self.latencies, 95),
            "latency_p99_s": percentile(self.latencies, 99),
            "batch_histogram": {str(k): v
                                for k, v in sorted(self.batches.items())},
        }


class OffloadServer:
    """A long-lived multi-tenant offload service over a shared device
    registry (see module docstring)."""

    def __init__(
        self,
        num_devices: Optional[int] = None,
        device: Optional[DeviceProperties] = None,
        config: Optional[OmpiConfig] = None,
        compile_cache: Optional[CompileCache] = None,
        launch_mode: str = "auto",
        profile=None,
        faults=None,
        recovery=None,
        max_batch: int = 8,
        pool_size: int = 4,
        max_resident_fraction: float = 0.5,
        default_quota: Optional[TenantQuota] = None,
        compact_logs: bool = True,
        devices=None,
    ):
        # heterogeneous registry: an explicit spec ("nano,v100", a list of
        # names/backends) wins; the REPRO_DEVICES environment variable
        # applies only when neither a device profile nor a device count
        # was given explicitly (mirroring Ort's precedence)
        from repro.devices import resolve_backends
        if devices is not None:
            backs = resolve_backends(devices)
        elif num_devices is None and device is None:
            backs = resolve_backends()
        else:
            backs = None
        if device is None:
            device = JETSON_NANO_GPU
        if backs is not None:
            num_devices = len(backs)
        elif num_devices is None:
            num_devices = 1
        num_devices = int(num_devices)
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        self.backends = backs
        self.config = config or OmpiConfig()
        if compile_cache is not None:
            self.compile_cache = compile_cache
        else:
            # long-lived server: attach the persistent tier when the
            # operator configured one (REPRO_CACHE_DIR), sharing the
            # process-wide warm tier either way
            disk = DiskCompileCache.from_env()
            if disk is not None:
                self.compile_cache = CompileCache(disk=disk)
                self.compile_cache._cache = GLOBAL_COMPILE_CACHE._cache
            else:
                self.compile_cache = GLOBAL_COMPILE_CACHE
        self.launch_mode = launch_mode
        self.max_batch = int(max_batch)
        self.pool_size = int(pool_size)
        self.max_resident_fraction = float(max_resident_fraction)
        self.compact_logs = compact_logs
        self.clock = VirtualClock()
        self.prof, self.prof_path = resolve_profile(profile)
        self.ompt = OmptRegistry()
        from repro.devrt import build_intrinsics
        intrinsics = build_intrinsics()
        # faults: one spec for every device, or {ordinal: spec} so tests
        # can fault one tenant's device while its neighbours stay healthy
        fault_map = (faults if isinstance(faults, dict)
                     else {k: faults for k in range(num_devices)})
        self.devices = [
            CudadevModule(
                None, backs[k].props if backs is not None else device,
                clock=self.clock,
                launch_mode=launch_mode,
                fastpath=self.config.kernel_fastpath,
                profile=(DeviceRecorder(self.prof, k)
                         if self.prof is not None else False),
                faults=fault_map.get(k), recovery=recovery, ordinal=k,
                ompt=self.ompt,
                gmem_base=DEVICE_MEM_BASE + k * DEVICE_MEM_STRIDE,
                intrinsics=intrinsics,
                backend=backs[k] if backs is not None else None,
            )
            for k in range(num_devices)
        ]
        for k, mod in enumerate(self.devices):
            # second-level OOM pressure valve: shed idle sessions' warm
            # state on this device before an allocation gives up
            mod.evict_hook = (
                lambda nbytes, dev=k: self.evict_idle(dev, need=int(nbytes)))
        self.quotas = QuotaManager(default_quota)
        self.queue = AdmissionQueue(num_devices)
        self.sessions: dict[int, Session] = {}
        self.stats = ServingStats()
        self._sched: dict[int, StreamPoolScheduler] = {}
        self._device_resident = {k: 0 for k in range(num_devices)}
        self._next_sid = 0
        self._next_req = 0
        self._current_request: Optional[Request] = None
        self.closed = False
        # TTFL probe: the first kernel submission of the executing request
        self.ompt.set_callback("submit", self._on_submit)

    # -- lifecycle ------------------------------------------------------------
    def __enter__(self) -> "OffloadServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Graceful shutdown: close every session (draining their pending
        requests), release the serving stream pools, export the trace."""
        if self.closed:
            return
        for sid in list(self.sessions):
            self.close_session(self.sessions[sid])
        for sched in self._sched.values():
            sched.shutdown()
        self._sched.clear()
        self.closed = True
        if self.prof is not None and self.prof_path:
            from repro.prof.chrome import write_chrome_trace
            names = ({k: b.name for k, b in enumerate(self.backends)}
                     if self.backends is not None else None)
            write_chrome_trace(self.prof, self.prof_path,
                               compile_cache=self.compile_cache,
                               device_names=names)

    def summary(self) -> dict:
        """Serving counters plus the shared compile cache's hit/miss/evict
        stats (both tiers) — the dict the load-test artifact records.
        ``compile_cache_disk_hits``/``_misses`` surface the persistent
        tier's counters (0 when no REPRO_CACHE_DIR tier is attached), and
        a heterogeneous registry reports its backend names."""
        out = {**self.stats.summary(),
               "compile_cache": self.compile_cache.stats,
               "compile_cache_disk_hits": getattr(
                   self.compile_cache, "disk_hits", 0),
               "compile_cache_disk_misses": getattr(
                   self.compile_cache, "disk_misses", 0)}
        if self.backends is not None:
            out["devices"] = [b.name for b in self.backends]
        return out

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    # -- sessions -------------------------------------------------------------
    def open_session(self, tenant: str = "default",
                     device: Optional[int] = None) -> Session:
        if self.closed:
            raise RuntimeError("server is closed")
        try:
            self.quotas.admit_session(tenant)
        except QuotaError as exc:
            self.stats.rejections += 1
            self._note("reject", tenant=tenant, detail=str(exc))
            raise
        if device is None:
            # least-loaded placement, lowest ordinal on ties
            counts = {k: 0 for k in range(self.num_devices)}
            for s in self.sessions.values():
                counts[s.device] += 1
            device = min(counts, key=lambda k: (counts[k], k))
        if not 0 <= int(device) < self.num_devices:
            self.quotas.release_session(tenant)
            raise ValueError(f"no such device {device}")
        session = Session(sid=self._next_sid, tenant=tenant,
                          device=int(device))
        self._next_sid += 1
        self.sessions[session.sid] = session
        self._note("session_open", session=session.sid, tenant=tenant,
                   device=session.device)
        return session

    def close_session(self, session: Session) -> None:
        """Graceful teardown: drain the session's pending requests, free
        its parked device state deterministically, return fully-idle
        arena blocks to the driver, release its quota slot."""
        if session.closed:
            return
        if session.pending > 0:
            self.drain()
        freed = self._free_resident(session)
        self.devices[session.device].trim_arena()
        self.quotas.release_session(session.tenant)
        self.sessions.pop(session.sid, None)
        session.closed = True
        self._note("session_close", session=session.sid,
                   tenant=session.tenant, device=session.device,
                   nbytes=freed)

    # -- submission -----------------------------------------------------------
    def submit(self, session: Session, source: str, name: str = "prog",
               seed_arrays: Optional[dict] = None, outputs: tuple = (),
               heap_capacity: int = DEFAULT_HEAP,
               arrival: Optional[float] = None) -> Request:
        """Admit one offload job for the session; execution happens at
        the next :meth:`drain`.  ``arrival`` is the simulated admission
        time (default: now) — the load benches use it to model open-loop
        arrival processes on the virtual clock."""
        if self.closed:
            raise RuntimeError("server is closed")
        if session.closed:
            raise RuntimeError(f"session {session.sid} is closed")
        try:
            self.quotas.admit_pending(session.tenant)
        except QuotaError as exc:
            self.stats.rejections += 1
            self._note("reject", session=session.sid, tenant=session.tenant,
                       detail=str(exc))
            raise
        req = Request(
            seq=self._next_req, session=session, source=source, name=name,
            program_key=source_key(source, name, self.config),
            arrival=(self.clock.now() if arrival is None
                     else float(arrival)),
            session_seq=session.submitted,
            seed_arrays=seed_arrays, outputs=tuple(outputs),
            heap_capacity=heap_capacity,
        )
        self._next_req += 1
        session.submitted += 1
        session.pending += 1
        depth = self.queue.push(req)
        self._note("enqueue", session=session.sid, tenant=session.tenant,
                   request=req.seq, program=name, queue_depth=depth,
                   device=session.device, t_start=req.arrival)
        return req

    # -- execution ------------------------------------------------------------
    def drain(self) -> list[Request]:
        """Run every admitted request to completion; returns them in
        dispatch order.  Dispatch picks the globally smallest admission
        key, batches compatible requests, and defers every completion
        sync until all queues are empty — so requests on different
        devices (and different sessions' requests on one device's pool
        streams) overlap on the modelled timeline."""
        inflight: list[Request] = []
        while len(self.queue):
            k = self.queue.head_device()
            arrival = self.queue.head_arrival(k)
            if arrival > self.clock.now():
                self.clock.advance_to(arrival)
            batch = self.queue.pop_batch(k, self.clock.now(), self.max_batch)
            self.stats.batches[len(batch)] = (
                self.stats.batches.get(len(batch), 0) + 1)
            self._note("batch", device=k, batch=len(batch),
                       program=batch[0].name,
                       queue_depth=self.queue.depth(k))
            for req in batch:
                self.quotas.release_pending(req.session.tenant)
                req.session.pending -= 1
                self._note("admit", device=k, session=req.session.sid,
                           tenant=req.session.tenant, request=req.seq,
                           program=req.name, batch=len(batch),
                           queue_depth=self.queue.depth(k))
                self._execute(req, len(batch))
                inflight.append(req)
        for req in inflight:
            mod = self.devices[req.session.device]
            task = req.task
            if (req.status == "done" and task is not None
                    and getattr(task, "done_event", None) is not None):
                done = mod.driver.cuEventSynchronize(task.done_event)
            else:
                done = self.clock.now()
            req.done_time = done
            req.latency = done - req.arrival
            sess = req.session
            sess.busy = False
            sess.last_active = max(sess.last_active, done)
            if req.status == "done":
                self.stats.latencies.append(req.latency)
            if self.prof is not None:
                self.prof.emit(ServingActivity(
                    op="request", session=sess.sid, tenant=sess.tenant,
                    request=req.seq, program=req.name,
                    batch=req.batch_size, device=sess.device,
                    t_start=req.arrival, t_end=done,
                    detail=req.status if req.status != "done"
                    else (req.error or ""),
                ))
        for sched in self._sched.values():
            try:
                sched.taskwait()
            except OffloadTaskError:
                pass  # failures already surfaced on their requests
            sched.release_events()
        if self.compact_logs:
            for mod in self.devices:
                mod.driver.log.compact()
        return inflight

    def _sched_for(self, k: int) -> Optional[StreamPoolScheduler]:
        """The device's serving stream pool — None once the device is
        lost, in which case requests run task-less and recover through
        the module's host-fallback path."""
        sched = self._sched.get(k)
        if sched is None and not self.devices[k].lost:
            try:
                self.devices[k].initialize()
            except (CudaError, DeviceLost):
                return None
            sched = StreamPoolScheduler(self.devices[k].driver,
                                        pool_size=self.pool_size)
            self._sched[k] = sched
        return sched

    def _execute(self, req: Request, batch_size: int) -> None:
        """Run one request on its session's device: compile (cached),
        lease the registry to a fresh machine, route the module onto the
        request's serving-pool stream, execute, capture outputs.  The
        completion sync is deferred to the caller."""
        session = req.session
        session.busy = True
        req.batch_size = batch_size
        req.dispatch_wall = time.perf_counter()
        self._current_request = req
        mod = self.devices[session.device]
        sched = self._sched_for(session.device)
        ort = None
        task = None
        try:
            if sched is not None:
                # the (INOUT, sid) dependence chains this session's
                # requests FIFO on the serving pool while other sessions'
                # chains land on other pool streams and overlap; it is
                # cut before the compile so even a compile failure
                # poisons the chain
                task = sched.begin_task(f"req{req.seq}:s{session.sid}",
                                        deps=[(DEP_INOUT, session.sid)])
                req.task = task
                if task.dead:
                    req.status = "failed"
                    req.error = ("cancelled: an earlier request of this "
                                 "session failed")
                    self.stats.cancelled += 1
                    return
            prog = self.compile_cache.get(req.source, req.name, self.config)
            machine = Machine(prog.host_unit,
                              heap_capacity=req.heap_capacity)
            if task is not None:
                mod.base_stream = task.stream
            dataenvs = {
                j: SessionDataEnv(m,
                                  session if j == session.device else None,
                                  self if j == session.device else None)
                for j, m in enumerate(self.devices)
            }
            ort = Ort(machine, clock=self.clock, devices=self.devices,
                      dataenvs=dataenvs, ompt=self.ompt,
                      profile=self.prof if self.prof is not None else False,
                      default_device=session.device)
            prog.bind(ort, seed_arrays=req.seed_arrays)
            req.exit_code = machine.run()
            # join request-internal nowait tasks and release their pool
            # streams before the request's own completion event is cut
            ort.shutdown()
            if task is not None:
                sched.end_task(task)
            req.stdout = machine.output()
            for out_name in req.outputs:
                if out_name in machine.globals:
                    req.result[out_name] = (
                        machine.global_array(out_name).copy())
            req.status = "done"
            self.stats.completed += 1
        except (CFrontError, NvccError, MappingError, MemoryError_,
                CudaError, DeviceLost, OffloadFailure, OffloadTaskError,
                QuotaError) as exc:
            req.status = "failed"
            req.error = f"{type(exc).__name__}: {exc}"
            self.stats.failed += 1
            if task is not None and not task.dead:
                sched.fail_task(task, exc)
        finally:
            self._current_request = None
            mod.base_stream = None
            if ort is not None:
                try:
                    ort.shutdown()
                except (OffloadTaskError, CudaError, DeviceLost):
                    pass
            session.requests += 1

    def _on_submit(self, event=None, **kw) -> None:
        req = self._current_request
        if req is not None and req.first_launch_wall is None:
            req.first_launch_wall = time.perf_counter()

    # -- warm state accounting (called by SessionDataEnv) --------------------
    def try_park(self, session: Session, device_module,
                 entry) -> bool:
        """Adopt a dying map entry into the session's warm pool if the
        tenant quota and the device resident watermark allow it (evicting
        colder idle sessions first); False tells the caller to free."""
        if session.closed or self.closed:
            return False
        k = session.device
        size = entry.size
        if self.quotas.resident_over(session.tenant, size):
            # tenant quota is global: shed the tenant's coldest idle
            # session on any device
            self.evict_idle(None, tenant=session.tenant, need=size)
            if self.quotas.resident_over(session.tenant, size):
                return False
        cap = int(device_module.driver.gmem.capacity
                  * self.max_resident_fraction)
        if self._device_resident[k] + size > cap:
            self.evict_idle(k, need=self._device_resident[k] + size - cap)
            if self._device_resident[k] + size > cap:
                return False
        data = device_module.driver.gmem.copy_out(entry.dev_addr, size)
        session.park(ResidentBuffer(entry.host_addr, size, entry.dev_addr,
                                    content_digest(data)))
        session.resident_bytes += size
        self.quotas.charge_resident(session.tenant, size)
        self._device_resident[k] += size
        return True

    def note_borrow(self, session: Session, size: int) -> None:
        session.resident_bytes -= size
        self.quotas.uncharge_resident(session.tenant, size)
        self._device_resident[session.device] -= size

    def note_reuse(self, session: Session, size: int) -> None:
        self.stats.reuse_hits += 1
        self.stats.reuse_bytes += size
        self._note("reuse", session=session.sid, tenant=session.tenant,
                   device=session.device, nbytes=size)

    def evict_idle(self, device: Optional[int], tenant: Optional[str] = None,
                   need: int = 0) -> int:
        """Shed idle sessions' parked buffers, coldest
        (:attr:`Session.last_active`, then sid) first, until ``need``
        bytes are freed (0: evict everything idle).  ``device`` limits
        victims to one device (memory-pressure eviction); ``None`` spans
        the registry (tenant-quota eviction).  Busy sessions — one of
        their requests is executing or in flight — are never touched.
        Returns the bytes freed."""
        victims = sorted(
            (s for s in self.sessions.values()
             if (device is None or s.device == device) and not s.busy
             and s.resident
             and (tenant is None or s.tenant == tenant)),
            key=lambda s: (s.last_active, s.sid))
        freed = 0
        trimmed: set[int] = set()
        for s in victims:
            n = self._free_resident(s)
            freed += n
            trimmed.add(s.device)
            self.stats.evictions += 1
            self.stats.evicted_bytes += n
            self._note("evict", device=s.device, session=s.sid,
                       tenant=s.tenant, nbytes=n)
            if need and freed >= need:
                break
        for k in trimmed:
            self.devices[k].trim_arena()
        return freed

    def _free_resident(self, session: Session) -> int:
        mod = self.devices[session.device]
        freed = 0
        for buf in session.resident.values():
            try:
                mod.mem_free(buf.dev_addr)
            except (CudaError, DeviceLost):
                pass  # a lost device reclaims nothing; forget the handle
            self.quotas.uncharge_resident(session.tenant, buf.size)
            self._device_resident[session.device] -= buf.size
            freed += buf.size
        session.resident.clear()
        session.resident_bytes = 0
        return freed

    # -- observability --------------------------------------------------------
    def _note(self, op: str, *, device: Optional[int] = None,
              session: int = -1, tenant: str = "", request: int = -1,
              program: str = "", batch: int = 0, queue_depth: int = 0,
              nbytes: int = 0, detail: str = "",
              t_start: Optional[float] = None) -> None:
        if self.prof is None:
            return
        t = self.clock.now() if t_start is None else t_start
        self.prof.emit(ServingActivity(
            op=op, session=session, tenant=tenant, request=request,
            program=program, batch=batch, queue_depth=queue_depth,
            nbytes=nbytes, detail=detail, device=device,
            t_start=t, t_end=t,
        ))
