"""The persistent offload server (offload-as-a-service).

One :class:`OffloadServer` owns the long-lived state a fleet of client
sessions multiplexes over:

* one **compile cache** (:mod:`repro.ompi.cache`): source-hash ->
  compiled program; the first request for a program pays the full OMPi +
  nvcc pipeline, every later request (any session, any tenant) binds the
  cached images,
* one **device registry**: N simulated Jetson boards sharing a virtual
  clock and one activity ring, each with its own driver, memory arena
  and fault domain,
* one **admission queue** per device with deterministic ordering and
  compatible-request batching (:mod:`repro.serving.scheduler`),
* per-tenant **quotas** (:mod:`repro.serving.quota`) and quota/pressure
  driven **eviction** of idle sessions' warm state.

Each executed request gets a private data environment, ICV state and
interpreter machine bound to the shared registry through a *leased*
:class:`~repro.hostrt.ort.Ort`; the request rides one task of the
device's serving stream pool with a ``(INOUT, session id)`` dependence,
so a session's requests run FIFO while different sessions overlap on
the modelled timeline.  Completion events are synchronised only after
every queued request has dispatched, keeping cross-device overlap
visible in the latency numbers.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.cfront.errors import CFrontError
from repro.cuda.nvcc import NvccError
from repro.cfront.interp import Machine
from repro.cuda.device import DeviceProperties, JETSON_NANO_GPU
from repro.cuda.driver import DEVICE_MEM_BASE
from repro.cuda.errors import CudaError
from repro.faults.injector import FaultInjector, resolve_faults
from repro.faults.recovery import DeviceLost, OffloadFailure
from repro.hostrt.cudadev_host import CudadevModule
from repro.hostrt.mapping import MappingError
from repro.hostrt.ort import DEVICE_MEM_STRIDE, Ort
from repro.mem import MemoryError_
from repro.ompi.cache import GLOBAL_COMPILE_CACHE, CompileCache, source_key
from repro.ompi.config import OmpiConfig
from repro.ompi.diskcache import DiskCompileCache
from repro.prof.activity import (
    DeviceRecorder, ResilienceActivity, ServingActivity, resolve_profile,
)
from repro.prof.ompt import OmptRegistry
from repro.rt_async.taskgraph import (
    DEP_INOUT, OffloadTaskError, StreamPoolScheduler,
)
from repro.serving.quota import QuotaError, QuotaManager, TenantQuota
from repro.serving.resilience import (
    CircuitBreaker, DeadlineExceeded, DeviceHealthMonitor, resolve_breaker,
    resolve_deadline,
)
from repro.serving.scheduler import AdmissionQueue
from repro.serving.session import (
    ResidentBuffer, Session, SessionDataEnv, content_digest,
)
from repro.timing.clock import VirtualClock

#: request heap default: enough for the small serving workloads; callers
#: size it per request like the bench harness sizes standalone runs
DEFAULT_HEAP = 64 << 20


def percentile(values, p: float) -> float:
    """Nearest-rank percentile (the convention latency SLOs use)."""
    if not values:
        return 0.0
    xs = sorted(values)
    rank = max(1, math.ceil(p / 100.0 * len(xs)))
    return float(xs[min(rank, len(xs)) - 1])


@dataclass
class Request:
    """One submitted offload job and, after :meth:`OffloadServer.drain`,
    its outcome."""

    seq: int                       # server-wide submission number
    session: Session
    source: str
    name: str
    program_key: str               # compile-cache key (batch compatibility)
    arrival: float                 # simulated admission time
    session_seq: int               # per-session FIFO position
    seed_arrays: Optional[dict] = None
    outputs: tuple = ()
    heap_capacity: int = DEFAULT_HEAP
    #: absolute simulated-time bound: past it the request is rejected
    #: with a typed DeadlineExceeded instead of served late (None: no
    #: deadline; the server default comes from REPRO_SERVE_DEADLINE)
    deadline: Optional[float] = None
    status: str = "queued"         # 'queued' | 'done' | 'failed' | 'rejected'
    result: dict = field(default_factory=dict)
    stdout: str = ""
    exit_code: int = 0
    error: Optional[str] = None
    latency: float = 0.0           # arrival -> completion, simulated
    done_time: float = 0.0
    batch_size: int = 0
    #: device the request actually executed on (completion events are
    #: synchronised against it even if the session migrated afterwards)
    device: Optional[int] = None
    #: failover re-executions consumed (bounded by the server's
    #: ``max_retries``)
    retries: int = 0
    #: the last execution observed a device-originated fault (loss,
    #: poisoning, host fallback) — set by outcome classification
    device_fault: bool = False
    task: object = None
    #: host wall-clock bracketing time-to-first-launch: dispatch start
    #: and the first OMPT ``submit`` of this request (None: no launch)
    dispatch_wall: Optional[float] = None
    first_launch_wall: Optional[float] = None

    @property
    def key(self) -> tuple:
        """Deterministic admission order: arrival time, then session id
        (the stable tie-break), then per-session sequence."""
        return (self.arrival, self.session.sid, self.session_seq)

    @property
    def ttfl(self) -> Optional[float]:
        """Wall seconds from dispatch to the first kernel submission —
        the cold/warm compile-cache metric."""
        if self.dispatch_wall is None or self.first_launch_wall is None:
            return None
        return self.first_launch_wall - self.dispatch_wall


@dataclass
class ServingStats:
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejections: int = 0
    evictions: int = 0             # idle sessions whose warm state was shed
    evicted_bytes: int = 0
    reuse_hits: int = 0            # HtoD transfers elided by digest match
    reuse_bytes: int = 0
    deadline_rejections: int = 0   # typed DeadlineExceeded outcomes
    retries: int = 0               # failover re-executions dispatched
    migrations: int = 0            # sessions re-pinned to another device
    migrated_bytes: int = 0        # warm bytes moved via cuMemcpyPeer
    latencies: list = field(default_factory=list)
    #: batch size -> how many batches dispatched at that size
    batches: dict = field(default_factory=dict)

    def summary(self) -> dict:
        return {
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "rejections": self.rejections,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "reuse_hits": self.reuse_hits,
            "reuse_bytes": self.reuse_bytes,
            "deadline_rejections": self.deadline_rejections,
            "retries": self.retries,
            "migrations": self.migrations,
            "migrated_bytes": self.migrated_bytes,
            "latency_p50_s": percentile(self.latencies, 50),
            "latency_p95_s": percentile(self.latencies, 95),
            "latency_p99_s": percentile(self.latencies, 99),
            "batch_histogram": {str(k): v
                                for k, v in sorted(self.batches.items())},
        }


class OffloadServer:
    """A long-lived multi-tenant offload service over a shared device
    registry (see module docstring)."""

    def __init__(
        self,
        num_devices: Optional[int] = None,
        device: Optional[DeviceProperties] = None,
        config: Optional[OmpiConfig] = None,
        compile_cache: Optional[CompileCache] = None,
        launch_mode: str = "auto",
        profile=None,
        faults=None,
        recovery=None,
        max_batch: int = 8,
        pool_size: int = 4,
        max_resident_fraction: float = 0.5,
        default_quota: Optional[TenantQuota] = None,
        compact_logs: bool = True,
        devices=None,
        deadline=None,
        breaker=None,
        max_retries: int = 2,
    ):
        # heterogeneous registry: an explicit spec ("nano,v100", a list of
        # names/backends) wins; the REPRO_DEVICES environment variable
        # applies only when neither a device profile nor a device count
        # was given explicitly (mirroring Ort's precedence)
        from repro.devices import resolve_backends
        if devices is not None:
            backs = resolve_backends(devices)
        elif num_devices is None and device is None:
            backs = resolve_backends()
        else:
            backs = None
        if device is None:
            device = JETSON_NANO_GPU
        if backs is not None:
            num_devices = len(backs)
        elif num_devices is None:
            num_devices = 1
        num_devices = int(num_devices)
        if num_devices < 1:
            raise ValueError(f"num_devices must be >= 1, got {num_devices}")
        self.backends = backs
        self.config = config or OmpiConfig()
        if compile_cache is not None:
            self.compile_cache = compile_cache
        else:
            # long-lived server: attach the persistent tier when the
            # operator configured one (REPRO_CACHE_DIR), sharing the
            # process-wide warm tier either way
            disk = DiskCompileCache.from_env()
            if disk is not None:
                self.compile_cache = CompileCache(disk=disk)
                self.compile_cache._cache = GLOBAL_COMPILE_CACHE._cache
            else:
                self.compile_cache = GLOBAL_COMPILE_CACHE
        self.launch_mode = launch_mode
        self.max_batch = int(max_batch)
        self.pool_size = int(pool_size)
        self.max_resident_fraction = float(max_resident_fraction)
        self.compact_logs = compact_logs
        self.clock = VirtualClock()
        self.prof, self.prof_path = resolve_profile(profile)
        self.ompt = OmptRegistry()
        from repro.devrt import build_intrinsics
        intrinsics = build_intrinsics()
        # faults: one spec for every device, or {ordinal: spec} so tests
        # can fault one tenant's device while its neighbours stay healthy
        fault_map = (faults if isinstance(faults, dict)
                     else {k: self._decorrelate(faults, k)
                           for k in range(num_devices)})
        self.devices = [
            CudadevModule(
                None, backs[k].props if backs is not None else device,
                clock=self.clock,
                launch_mode=launch_mode,
                fastpath=self.config.kernel_fastpath,
                profile=(DeviceRecorder(self.prof, k)
                         if self.prof is not None else False),
                faults=fault_map.get(k), recovery=recovery, ordinal=k,
                ompt=self.ompt,
                gmem_base=DEVICE_MEM_BASE + k * DEVICE_MEM_STRIDE,
                intrinsics=intrinsics,
                backend=backs[k] if backs is not None else None,
            )
            for k in range(num_devices)
        ]
        for k, mod in enumerate(self.devices):
            # second-level OOM pressure valve: shed idle sessions' warm
            # state on this device before an allocation gives up
            mod.evict_hook = (
                lambda nbytes, dev=k: self.evict_idle(dev, need=int(nbytes)))
        self.quotas = QuotaManager(default_quota)
        self.queue = AdmissionQueue(num_devices)
        self.sessions: dict[int, Session] = {}
        self.stats = ServingStats()
        self._sched: dict[int, StreamPoolScheduler] = {}
        self._device_resident = {k: 0 for k in range(num_devices)}
        self._next_sid = 0
        self._next_req = 0
        self._current_request: Optional[Request] = None
        self.closed = False
        # -- resilience (repro.serving.resilience) -----------------------
        #: default relative deadline budget (seconds of modelled time),
        #: applied as arrival + budget at submit; explicit Request
        #: deadlines are absolute and win
        self.deadline_budget = resolve_deadline(
            deadline if deadline is not None else self.config.serve_deadline)
        policy = resolve_breaker(
            breaker if breaker is not None else self.config.breaker)
        #: per-device circuit breakers (None: breaker disabled via 'off')
        self.breakers = ([CircuitBreaker(k, policy, note=self._rnote)
                          for k in range(num_devices)]
                         if policy is not None else None)
        self.health = DeviceHealthMonitor(self.devices, self.clock)
        self.max_retries = int(max_retries)
        #: devices under a planned drain (excluded from placement/routing)
        self._draining: set[int] = set()
        #: sessions whose task chain was poisoned by a *device* fault —
        #: their cancelled successors are failover-retried; program-error
        #: poisonings (compile errors etc.) are not
        self._session_fault: set[int] = set()
        # TTFL probe: the first kernel submission of the executing request
        self.ompt.set_callback("submit", self._on_submit)

    @staticmethod
    def _decorrelate(faults, k: int):
        """One shared fault spec must not fire identically on every
        device: device ``k`` re-seeds the resolved plan with ``seed + k``
        (device 0 keeps the spec's own seed).  Explicitly-passed
        FaultInjector objects are the caller's to seed and pass through
        untouched, as do per-device ``{ordinal: spec}`` maps."""
        if k == 0:
            return faults
        inj = resolve_faults(faults)   # None consults REPRO_FAULTS
        if inj is None or inj is faults:
            return faults
        return FaultInjector(inj.plan, seed=inj.seed + k)

    # -- lifecycle ------------------------------------------------------------
    def __enter__(self) -> "OffloadServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Graceful shutdown: close every session (draining their pending
        requests), release the serving stream pools, export the trace."""
        if self.closed:
            return
        for sid in list(self.sessions):
            self.close_session(self.sessions[sid])
        for sched in self._sched.values():
            sched.shutdown()
        self._sched.clear()
        self.closed = True
        if self.prof is not None and self.prof_path:
            from repro.prof.chrome import write_chrome_trace
            names = ({k: b.name for k, b in enumerate(self.backends)}
                     if self.backends is not None else None)
            write_chrome_trace(self.prof, self.prof_path,
                               compile_cache=self.compile_cache,
                               device_names=names)

    def summary(self) -> dict:
        """Serving counters plus the shared compile cache's hit/miss/evict
        stats (both tiers) — the dict the load-test artifact records.
        ``compile_cache_disk_hits``/``_misses`` surface the persistent
        tier's counters (0 when no REPRO_CACHE_DIR tier is attached), and
        a heterogeneous registry reports its backend names."""
        out = {**self.stats.summary(),
               "compile_cache": self.compile_cache.stats,
               "compile_cache_disk_hits": getattr(
                   self.compile_cache, "disk_hits", 0),
               "compile_cache_disk_misses": getattr(
                   self.compile_cache, "disk_misses", 0)}
        # PR 4's per-device recovery machinery, aggregated: injections,
        # retries, evictions, host fallbacks, resync skips, device losses
        recovery: dict[str, int] = {}
        for mod in self.devices:
            for op, count in mod.fault_stats.items():
                recovery[op] = recovery.get(op, 0) + count
        out["fault_recovery"] = dict(sorted(recovery.items()))
        out["faults_log_dropped"] = sum(
            mod.faultlog.dropped_lines for mod in self.devices)
        out["device_health"] = [round(self.health.score(k), 4)
                                for k in range(self.num_devices)]
        if self.breakers is not None:
            out["breakers"] = {
                "states": [b.state for b in self.breakers],
                "opens": sum(b.opens for b in self.breakers),
                "closes": sum(b.closes for b in self.breakers),
                "probes": sum(b.probes for b in self.breakers),
            }
        if self._draining:
            out["draining"] = sorted(self._draining)
        if self.backends is not None:
            out["devices"] = [b.name for b in self.backends]
        return out

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    # -- sessions -------------------------------------------------------------
    def open_session(self, tenant: str = "default",
                     device: Optional[int] = None) -> Session:
        if self.closed:
            raise RuntimeError("server is closed")
        try:
            self.quotas.admit_session(tenant)
        except QuotaError as exc:
            self.stats.rejections += 1
            self._note("reject", tenant=tenant, detail=str(exc))
            raise
        if device is None:
            # least-loaded placement over routable (healthy, not
            # breaker-open, not draining) devices, lowest ordinal on
            # ties; with nothing routable, fall back to the full registry
            candidates = [k for k in range(self.num_devices)
                          if self._routable(k)]
            if not candidates:
                candidates = list(range(self.num_devices))
            counts = {k: 0 for k in candidates}
            for s in self.sessions.values():
                if s.device in counts:
                    counts[s.device] += 1
            device = min(counts, key=lambda k: (counts[k], k))
        if not 0 <= int(device) < self.num_devices:
            self.quotas.release_session(tenant)
            raise ValueError(f"no such device {device}")
        session = Session(sid=self._next_sid, tenant=tenant,
                          device=int(device))
        self._next_sid += 1
        self.sessions[session.sid] = session
        self._note("session_open", session=session.sid, tenant=tenant,
                   device=session.device)
        return session

    def close_session(self, session: Session) -> None:
        """Graceful teardown: drain the session's pending requests, free
        its parked device state deterministically, return fully-idle
        arena blocks to the driver, release its quota slot."""
        if session.closed:
            return
        if session.pending > 0:
            self.drain()
        freed = self._free_resident(session)
        self.devices[session.device].trim_arena()
        self.quotas.release_session(session.tenant)
        self.sessions.pop(session.sid, None)
        session.closed = True
        self._note("session_close", session=session.sid,
                   tenant=session.tenant, device=session.device,
                   nbytes=freed)

    # -- submission -----------------------------------------------------------
    def submit(self, session: Session, source: str, name: str = "prog",
               seed_arrays: Optional[dict] = None, outputs: tuple = (),
               heap_capacity: int = DEFAULT_HEAP,
               arrival: Optional[float] = None,
               deadline: Optional[float] = None) -> Request:
        """Admit one offload job for the session; execution happens at
        the next :meth:`drain`.  ``arrival`` is the simulated admission
        time (default: now) — the load benches use it to model open-loop
        arrival processes on the virtual clock.  ``deadline`` is an
        absolute simulated-time bound (default: arrival plus the server's
        deadline budget, if one is configured); a request past it is
        rejected with a typed :class:`DeadlineExceeded` instead of
        silently served late."""
        if self.closed:
            raise RuntimeError("server is closed")
        if session.closed:
            raise RuntimeError(f"session {session.sid} is closed")
        when = self.clock.now() if arrival is None else float(arrival)
        if deadline is not None:
            deadline = float(deadline)
        elif self.deadline_budget is not None:
            deadline = when + self.deadline_budget
        if deadline is not None and deadline <= when:
            # admission-time enforcement: the bound is already unmeetable
            self.stats.deadline_rejections += 1
            self._rnote("deadline", device=session.device,
                        session=session.sid,
                        detail=f"rejected at admission: deadline "
                               f"{deadline:.6f} <= arrival {when:.6f}")
            raise DeadlineExceeded(
                f"deadline {deadline:.6f} is not after arrival {when:.6f}")
        # a session pinned to an unroutable device (lost, breaker-open,
        # draining) re-pins before the request enqueues, as long as
        # somewhere routable exists; an elapsed cooldown keeps the pin —
        # the request becomes the half-open canary
        if not self._routable(session.device):
            target = self._pick_target(exclude=session.device)
            if target is not None:
                self.migrate_session(session, target, reason="reroute")
        try:
            self.quotas.admit_pending(session.tenant)
        except QuotaError as exc:
            self.stats.rejections += 1
            self._note("reject", session=session.sid, tenant=session.tenant,
                       detail=str(exc))
            raise
        req = Request(
            seq=self._next_req, session=session, source=source, name=name,
            program_key=source_key(source, name, self.config),
            arrival=when,
            session_seq=session.submitted,
            seed_arrays=seed_arrays, outputs=tuple(outputs),
            heap_capacity=heap_capacity, deadline=deadline,
        )
        self._next_req += 1
        session.submitted += 1
        session.pending += 1
        depth = self.queue.push(req)
        self._note("enqueue", session=session.sid, tenant=session.tenant,
                   request=req.seq, program=name, queue_depth=depth,
                   device=session.device, t_start=req.arrival)
        return req

    # -- execution ------------------------------------------------------------
    def drain(self, device: Optional[int] = None) -> list[Request]:
        """Run every admitted request to completion; returns them in
        dispatch order.  Dispatch picks the globally smallest admission
        key, batches compatible requests, and defers every completion
        sync until all queues are empty — so requests on different
        devices (and different sessions' requests on one device's pool
        streams) overlap on the modelled timeline.

        ``device=k`` makes this a *planned* drain of device ``k``
        (:meth:`start_drain`): its sessions migrate off first, and ``k``
        stays out of placement and routing until :meth:`resume`."""
        if device is not None:
            self.start_drain(int(device))
        inflight: list[Request] = []
        while len(self.queue):
            k = self.queue.head_device()
            if self._route_around(k):
                continue
            arrival = self.queue.head_arrival(k)
            if arrival > self.clock.now():
                self.clock.advance_to(arrival)
            batch = self.queue.pop_batch(k, self.clock.now(), self.max_batch)
            self.stats.batches[len(batch)] = (
                self.stats.batches.get(len(batch), 0) + 1)
            self._note("batch", device=k, batch=len(batch),
                       program=batch[0].name,
                       queue_depth=self.queue.depth(k))
            #: session -> backoff arrival of a member that just failed
            #: over; its later members in this batch requeue behind it
            requeued: dict[int, float] = {}
            for req in batch:
                self.quotas.release_pending(req.session.tenant)
                req.session.pending -= 1
                if req.session.sid in requeued:
                    if not self._requeue(req, requeued[req.session.sid]):
                        inflight.append(req)
                    continue
                if (req.deadline is not None
                        and self.clock.now() > req.deadline):
                    self._reject_deadline(req, "expired before dispatch")
                    inflight.append(req)
                    continue
                self._note("admit", device=k, session=req.session.sid,
                           tenant=req.session.tenant, request=req.seq,
                           program=req.name, batch=len(batch),
                           queue_depth=self.queue.depth(k))
                self._execute(req, len(batch))
                retry_at = self._maybe_retry(req)
                if retry_at is not None:
                    requeued[req.session.sid] = retry_at
                else:
                    inflight.append(req)
        for req in inflight:
            sess = req.session
            dev = req.device if req.device is not None else sess.device
            mod = self.devices[dev]
            task = req.task
            if (req.status == "done" and task is not None
                    and getattr(task, "done_event", None) is not None):
                try:
                    done = mod.driver.cuEventSynchronize(task.done_event)
                except (CudaError, DeviceLost):
                    # a *later* request's launch poisoned this context;
                    # this request's results were already captured —
                    # only the modelled event time is unreadable
                    done = self.clock.now()
            else:
                done = self.clock.now()
            req.done_time = done
            req.latency = done - req.arrival
            sess.busy = False
            sess.last_active = max(sess.last_active, done)
            if (req.status == "done" and req.deadline is not None
                    and done > req.deadline):
                # completion-sync enforcement: the work finished, but
                # past the bound — the client gets a typed rejection,
                # never a silently-late result
                self.stats.completed -= 1
                self._reject_deadline(req, "completed past deadline",
                                      t=done)
            if req.status == "done":
                self.stats.latencies.append(req.latency)
            if self.prof is not None:
                self.prof.emit(ServingActivity(
                    op="request", session=sess.sid, tenant=sess.tenant,
                    request=req.seq, program=req.name,
                    batch=req.batch_size, device=dev,
                    t_start=req.arrival, t_end=done,
                    detail=req.status if req.status != "done"
                    else (req.error or ""),
                ))
        for sched in self._sched.values():
            try:
                sched.taskwait()
            except OffloadTaskError:
                pass  # failures already surfaced on their requests
            except (CudaError, DeviceLost):
                pass  # a poisoned/lost device cannot even sync; its
                # requests already failed (and failed over elsewhere)
            try:
                sched.release_events()
            except (CudaError, DeviceLost):
                pass
        if self.compact_logs:
            for mod in self.devices:
                mod.driver.log.compact()
        if self.prof is not None and inflight:
            for k in range(self.num_devices):
                self._rnote("health", device=k, score=self.health.score(k))
        return inflight

    def _sched_for(self, k: int) -> Optional[StreamPoolScheduler]:
        """The device's serving stream pool — None once the device is
        lost, in which case requests run task-less and recover through
        the module's host-fallback path."""
        sched = self._sched.get(k)
        if sched is not None and self.devices[k].lost:
            # the pool outlived its device: its streams/events live on a
            # poisoned context, so stop routing tasks through it — the
            # module's host-fallback path recovers each request instead
            self._sched.pop(k)
            return None
        if sched is None and not self.devices[k].lost:
            try:
                self.devices[k].initialize()
            except (CudaError, DeviceLost):
                return None
            sched = StreamPoolScheduler(self.devices[k].driver,
                                        pool_size=self.pool_size)
            self._sched[k] = sched
        return sched

    def _execute(self, req: Request, batch_size: int) -> None:
        """Run one request on its session's device: compile (cached),
        lease the registry to a fresh machine, route the module onto the
        request's serving-pool stream, execute, capture outputs.  The
        completion sync is deferred to the caller."""
        session = req.session
        session.busy = True
        req.batch_size = batch_size
        req.dispatch_wall = time.perf_counter()
        self._current_request = req
        k = session.device
        req.device = k
        mod = self.devices[k]
        fault_before = dict(mod.faultlog.counters)
        sched = self._sched_for(k)
        ort = None
        task = None
        try:
            if sched is not None:
                # the (INOUT, sid) dependence chains this session's
                # requests FIFO on the serving pool while other sessions'
                # chains land on other pool streams and overlap; it is
                # cut before the compile so even a compile failure
                # poisons the chain
                task = sched.begin_task(f"req{req.seq}:s{session.sid}",
                                        deps=[(DEP_INOUT, session.sid)])
                req.task = task
                if task.dead:
                    req.status = "failed"
                    req.error = ("cancelled: an earlier request of this "
                                 "session failed")
                    self.stats.cancelled += 1
                    return
            prog = self.compile_cache.get(req.source, req.name, self.config)
            machine = Machine(prog.host_unit,
                              heap_capacity=req.heap_capacity)
            if task is not None:
                mod.base_stream = task.stream
            dataenvs = {
                j: SessionDataEnv(m,
                                  session if j == session.device else None,
                                  self if j == session.device else None)
                for j, m in enumerate(self.devices)
            }
            ort = Ort(machine, clock=self.clock, devices=self.devices,
                      dataenvs=dataenvs, ompt=self.ompt,
                      profile=self.prof if self.prof is not None else False,
                      default_device=session.device,
                      healthy_fn=self._shard_ok)
            prog.bind(ort, seed_arrays=req.seed_arrays)
            req.exit_code = machine.run()
            # join request-internal nowait tasks and release their pool
            # streams before the request's own completion event is cut
            ort.shutdown()
            if task is not None:
                sched.end_task(task)
            req.stdout = machine.output()
            for out_name in req.outputs:
                if out_name in machine.globals:
                    req.result[out_name] = (
                        machine.global_array(out_name).copy())
            req.status = "done"
            self.stats.completed += 1
        except (CFrontError, NvccError, MappingError, MemoryError_,
                CudaError, DeviceLost, OffloadFailure, OffloadTaskError,
                QuotaError) as exc:
            req.status = "failed"
            req.error = f"{type(exc).__name__}: {exc}"
            self.stats.failed += 1
            if task is not None and not task.dead:
                sched.fail_task(task, exc)
        finally:
            self._current_request = None
            mod.base_stream = None
            if ort is not None:
                try:
                    ort.shutdown()
                except (OffloadTaskError, CudaError, DeviceLost):
                    pass
            session.requests += 1
            self._record_outcome(req, mod, fault_before)

    #: FaultLog ops that mean the *device* (not the program) degraded
    _FAULT_OPS = ("device_lost", "fallback", "poison")

    def _record_outcome(self, req: Request, mod, before: dict) -> None:
        """Classify the request's outcome for the resilience layer: a
        device-originated degradation (loss, poisoning, host fallback —
        read as deltas of the device's fault counters across the
        execution) feeds the circuit breaker and marks the session's
        task chain as fault-poisoned; a clean completion feeds back as
        breaker success (closing a half-open probe)."""
        counters = mod.faultlog.counters
        delta = sum(counters.get(op, 0) - before.get(op, 0)
                    for op in self._FAULT_OPS)
        req.device_fault = delta > 0
        if req.device_fault and req.status == "failed":
            self._session_fault.add(req.session.sid)
        if self.breakers is None:
            return
        breaker = self.breakers[req.device]
        now = self.clock.now()
        if mod.lost:
            breaker.trip_lost(now)
        elif delta > 0:
            breaker.record_failure(now, detail=f"req{req.seq}")
        elif req.status == "done":
            breaker.record_success(now)

    def _on_submit(self, event=None, **kw) -> None:
        req = self._current_request
        if req is not None and req.first_launch_wall is None:
            req.first_launch_wall = time.perf_counter()

    # -- resilience: routing, failover, migration, drains ---------------------
    def _breaker_allows(self, k: int) -> bool:
        """Passive breaker check — no state transition, so filters (shard
        participant selection, placement) never consume the probe slot."""
        return (self.breakers is None
                or self.breakers[k].allows(self.clock.now()))

    def _routable(self, k: int) -> bool:
        """May new work land on device ``k``: not lost, not under a
        planned drain, breaker not holding it open."""
        return (not self.devices[k].lost and k not in self._draining
                and self._breaker_allows(k))

    def _shard_ok(self, k: int) -> bool:
        # the per-request Ort's shard participant filter
        return k not in self._draining and self._breaker_allows(k)

    def _pick_target(self, exclude: Optional[int] = None) -> Optional[int]:
        """The healthiest routable device (ties: lowest ordinal),
        optionally excluding one; None when nowhere is routable."""
        best = None
        best_key = None
        for k in range(self.num_devices):
            if k == exclude or not self._routable(k):
                continue
            key = (-self.health.score(k), k)
            if best_key is None or key < best_key:
                best, best_key = k, key
        return best

    def _route_around(self, k: int) -> bool:
        """The head-of-queue device is unroutable (lost, draining, or its
        breaker holds open past the cooldown check): migrate its queued
        sessions to routable devices.  False when ``k`` may dispatch — a
        closed/half-open breaker, or nowhere else to go (single device /
        whole registry down), in which case the legacy per-offload
        recovery (retry, host fallback) still applies."""
        t = max(self.clock.now(), self.queue.head_arrival(k))
        unroutable = self.devices[k].lost or k in self._draining
        if not unroutable and self.breakers is not None:
            # active check: an elapsed cooldown flips open -> half_open
            # here and admits the head request as the canary
            unroutable = not self.breakers[k].routable(t)
        if not unroutable:
            return False
        if self._pick_target(exclude=k) is None:
            return False
        moved = False
        for sess in self.queue.queued_sessions(k):
            target = self._pick_target(exclude=k)
            if target is None:
                break
            self.migrate_session(sess, target, reason="route_around")
            moved = True
        return moved

    def _reject_deadline(self, req: Request, why: str,
                         t: Optional[float] = None) -> None:
        req.status = "rejected"
        req.error = f"DeadlineExceeded: {why}"
        self.stats.deadline_rejections += 1
        self._rnote("deadline", device=req.device
                    if req.device is not None else req.session.device,
                    session=req.session.sid, request=req.seq,
                    t=t, detail=why)

    def _undo_failure(self, req: Request) -> None:
        """Back out the failure counters :meth:`_execute` charged, ahead
        of a failover re-execution (the retry re-charges whatever its
        own outcome is)."""
        if (req.error or "").startswith("cancelled"):
            self.stats.cancelled -= 1
        else:
            self.stats.failed -= 1

    def _maybe_retry(self, req: Request) -> Optional[float]:
        """Failover: a request that failed because its *device* failed
        (directly, or cancelled behind a fault-poisoned session chain)
        re-executes on another healthy device after a backoff, bounded by
        ``max_retries`` and the request deadline.  Returns the retry
        arrival time when the request was re-enqueued, else None (the
        request's current outcome stands)."""
        if req.status != "failed":
            return None
        sid = req.session.sid
        cancelled = (req.error or "").startswith("cancelled")
        if not (req.device_fault or (cancelled
                                     and sid in self._session_fault)):
            return None                     # program error: not retryable
        if req.retries >= self.max_retries:
            return None
        failed_dev = req.device
        target = self._pick_target(exclude=failed_dev)
        if target is None:
            # nowhere healthy to fail over.  With the whole registry gone
            # the contract degrades to PR 4's: complete on the host, not
            # stay failed — so retry in place when the device can still
            # serve the request through its host-fallback path.
            mod = self.devices[req.session.device]
            if not (mod.lost and getattr(mod.recovery, "host_fallback",
                                         True)):
                return None                 # a routable device may heal
            target = req.session.device
        rec = self.devices[0].recovery
        backoff = rec.backoff_s * (rec.backoff_factor ** req.retries)
        retry_at = self.clock.now() + backoff
        if req.deadline is not None and retry_at > req.deadline:
            self._undo_failure(req)
            self._reject_deadline(req, "retry would miss deadline")
            return None
        try:
            self.quotas.admit_pending(req.session.tenant)
        except QuotaError as exc:
            self._undo_failure(req)
            req.status = "rejected"
            req.error = f"QuotaError: {exc}"
            self.stats.rejections += 1
            return None
        self._undo_failure(req)
        if req.session.device == failed_dev and target != failed_dev:
            # the retry must run elsewhere: the failed device's task
            # chain for this session is poisoned (and the device may be
            # gone).  min_arrival floors the session's later queued
            # requests so per-session FIFO survives the backoff.
            self.migrate_session(req.session, target, reason="retry",
                                 min_arrival=retry_at)
        else:
            # retry in place (or the session already migrated): still
            # floor any later queued requests behind the backoff arrival
            self.queue.retarget(sid, req.session.device, retry_at)
        self._session_fault.discard(sid)
        req.session.pending += 1
        req.status = "queued"
        req.error = None
        req.result.clear()
        req.stdout = ""
        req.exit_code = 0
        req.task = None
        req.device_fault = False
        req.batch_size = 0
        req.retries += 1
        req.arrival = retry_at
        self.stats.retries += 1
        self.queue.push(req)
        self._rnote("retry", device=failed_dev, session=sid,
                    request=req.seq, target=req.session.device,
                    detail=f"attempt {req.retries}")
        return retry_at

    def _requeue(self, req: Request, min_arrival: float) -> bool:
        """Re-enqueue a popped batch member whose session just failed
        over mid-batch: it runs after the retried head on the new device
        instead of out of order.  False when it could not be requeued
        (deadline or quota), with the request carrying its typed
        rejection."""
        if req.deadline is not None and min_arrival > req.deadline:
            self._reject_deadline(req, "failover requeue past deadline")
            return False
        try:
            self.quotas.admit_pending(req.session.tenant)
        except QuotaError as exc:
            req.status = "rejected"
            req.error = f"QuotaError: {exc}"
            self.stats.rejections += 1
            return False
        req.session.pending += 1
        req.arrival = max(req.arrival, min_arrival)
        self.queue.push(req)
        return True

    def migrate_session(self, session: Session, target: int, *,
                        reason: str = "",
                        min_arrival: Optional[float] = None) -> int:
        """Live-migrate a session to ``target``: every parked
        :class:`ResidentBuffer` moves device-to-device via
        ``cuMemcpyPeer`` and is digest-verified against its park-time
        hash (bit-identical or dropped — a dropped buffer simply
        re-uploads from the host copy on next use), queued requests
        retarget to the new device's admission queue, and the session
        re-pins.  Returns the warm bytes moved."""
        src_k = session.device
        target = int(target)
        if target == src_k or session.closed:
            return 0
        src = self.devices[src_k]
        dst = self.devices[target]
        moved = 0
        for key in list(session.resident):
            buf = session.resident[key]
            dst_addr = None
            try:
                dst_addr = dst.mem_alloc(buf.size)
                src.peer_copy(dst, dst_addr, buf.dev_addr, buf.size)
                data = dst.driver.gmem.copy_out(dst_addr, buf.size)
                if content_digest(data) != buf.digest:
                    raise ValueError(
                        f"migration digest mismatch for {buf.size} bytes "
                        f"dev{src_k}->dev{target}")
            except (CudaError, DeviceLost, MemoryError_, ValueError):
                # source unreadable, target full, or verify failed: drop
                # the warm buffer rather than migrate unverified bytes
                if dst_addr is not None:
                    try:
                        dst.mem_free(dst_addr)
                    except (CudaError, DeviceLost):
                        pass
                try:
                    src.mem_free(buf.dev_addr)
                except (CudaError, DeviceLost):
                    pass
                del session.resident[key]
                session.resident_bytes -= buf.size
                self.quotas.uncharge_resident(session.tenant, buf.size)
                self._device_resident[src_k] -= buf.size
                continue
            try:
                src.mem_free(buf.dev_addr)
            except (CudaError, DeviceLost):
                pass
            buf.dev_addr = dst_addr
            self._device_resident[src_k] -= buf.size
            self._device_resident[target] += buf.size
            moved += buf.size
        self.queue.retarget(session.sid, target, min_arrival)
        session.device = target
        session.migrations += 1
        self.stats.migrations += 1
        self.stats.migrated_bytes += moved
        self._rnote("migrate", device=src_k, session=session.sid,
                    target=target, nbytes=moved, detail=reason)
        return moved

    def start_drain(self, device: int) -> None:
        """Begin a *planned* drain of device ``k``: it leaves placement
        and routing, and its sessions (warm state included) migrate to
        routable peers while the device is still healthy — the opposite
        of reacting to its loss.  :meth:`resume` returns it to service."""
        k = int(device)
        if not 0 <= k < self.num_devices:
            raise ValueError(f"no such device {device}")
        if k in self._draining:
            return
        self._draining.add(k)
        self._rnote("drain", device=k)
        for sess in list(self.sessions.values()):
            if sess.device != k or sess.closed:
                continue
            target = self._pick_target(exclude=k)
            if target is None:
                break                     # nowhere to go: keep serving on k
            self.migrate_session(sess, target, reason="drain")

    def resume(self, device: int) -> None:
        """End a planned drain: the device re-enters placement/routing
        (existing sessions stay where they migrated to)."""
        k = int(device)
        if k in self._draining:
            self._draining.discard(k)
            self._rnote("resume", device=k)

    # -- warm state accounting (called by SessionDataEnv) --------------------
    def try_park(self, session: Session, device_module,
                 entry) -> bool:
        """Adopt a dying map entry into the session's warm pool if the
        tenant quota and the device resident watermark allow it (evicting
        colder idle sessions first); False tells the caller to free."""
        if session.closed or self.closed:
            return False
        k = session.device
        size = entry.size
        if self.quotas.resident_over(session.tenant, size):
            # tenant quota is global: shed the tenant's coldest idle
            # session on any device
            self.evict_idle(None, tenant=session.tenant, need=size)
            if self.quotas.resident_over(session.tenant, size):
                return False
        cap = int(device_module.driver.gmem.capacity
                  * self.max_resident_fraction)
        if self._device_resident[k] + size > cap:
            self.evict_idle(k, need=self._device_resident[k] + size - cap)
            if self._device_resident[k] + size > cap:
                return False
        data = device_module.driver.gmem.copy_out(entry.dev_addr, size)
        session.park(ResidentBuffer(entry.host_addr, size, entry.dev_addr,
                                    content_digest(data)))
        session.resident_bytes += size
        self.quotas.charge_resident(session.tenant, size)
        self._device_resident[k] += size
        return True

    def note_borrow(self, session: Session, size: int) -> None:
        session.resident_bytes -= size
        self.quotas.uncharge_resident(session.tenant, size)
        self._device_resident[session.device] -= size

    def note_reuse(self, session: Session, size: int) -> None:
        self.stats.reuse_hits += 1
        self.stats.reuse_bytes += size
        self._note("reuse", session=session.sid, tenant=session.tenant,
                   device=session.device, nbytes=size)

    def evict_idle(self, device: Optional[int], tenant: Optional[str] = None,
                   need: int = 0) -> int:
        """Shed idle sessions' parked buffers, coldest
        (:attr:`Session.last_active`, then sid) first, until ``need``
        bytes are freed (0: evict everything idle).  ``device`` limits
        victims to one device (memory-pressure eviction); ``None`` spans
        the registry (tenant-quota eviction).  Busy sessions — one of
        their requests is executing or in flight — are never touched.
        Returns the bytes freed."""
        victims = sorted(
            (s for s in self.sessions.values()
             if (device is None or s.device == device) and not s.busy
             and s.resident
             and (tenant is None or s.tenant == tenant)),
            key=lambda s: (s.last_active, s.sid))
        freed = 0
        trimmed: set[int] = set()
        for s in victims:
            n = self._free_resident(s)
            freed += n
            trimmed.add(s.device)
            self.stats.evictions += 1
            self.stats.evicted_bytes += n
            self._note("evict", device=s.device, session=s.sid,
                       tenant=s.tenant, nbytes=n)
            if need and freed >= need:
                break
        for k in trimmed:
            self.devices[k].trim_arena()
        return freed

    def _free_resident(self, session: Session) -> int:
        mod = self.devices[session.device]
        freed = 0
        for buf in session.resident.values():
            try:
                mod.mem_free(buf.dev_addr)
            except (CudaError, DeviceLost):
                pass  # a lost device reclaims nothing; forget the handle
            self.quotas.uncharge_resident(session.tenant, buf.size)
            self._device_resident[session.device] -= buf.size
            freed += buf.size
        session.resident.clear()
        session.resident_bytes = 0
        return freed

    # -- observability --------------------------------------------------------
    def _note(self, op: str, *, device: Optional[int] = None,
              session: int = -1, tenant: str = "", request: int = -1,
              program: str = "", batch: int = 0, queue_depth: int = 0,
              nbytes: int = 0, detail: str = "",
              t_start: Optional[float] = None) -> None:
        if self.prof is None:
            return
        t = self.clock.now() if t_start is None else t_start
        self.prof.emit(ServingActivity(
            op=op, session=session, tenant=tenant, request=request,
            program=program, batch=batch, queue_depth=queue_depth,
            nbytes=nbytes, detail=detail, device=device,
            t_start=t, t_end=t,
        ))

    def _rnote(self, op: str, *, device: Optional[int] = None,
               t: Optional[float] = None, session: int = -1,
               request: int = -1, state: str = "", target: int = -1,
               score: float = -1.0, nbytes: int = 0,
               detail: str = "") -> None:
        """Emit one resilience-track activity record (breaker
        transitions, migrations, deadline rejections, retries, drains,
        health scores); also the breakers' ``note`` callback."""
        if self.prof is None:
            return
        ts = self.clock.now() if t is None else t
        self.prof.emit(ResilienceActivity(
            op=op, session=session, request=request, state=state,
            target=target, score=score, nbytes=nbytes, detail=detail,
            device=device, t_start=ts, t_end=ts,
        ))
