"""Serving-tier resilience: device health, circuit breaking, deadlines.

The serving runtime (PR 6/8) multiplexes sessions over the N-device
registry, and the driver-level fault machinery (PR 4) retries/falls back
per offload — but nothing above the driver ever *reacts*: one sticky
``devlost`` silently degrades every later request of the affected
sessions to host fallback forever, even while healthy devices sit idle.
This module closes that gap with three deterministic primitives, all on
the virtual clock:

* :class:`DeviceHealthMonitor` — folds :class:`~repro.faults.injector.
  FaultLog` events (injections, retries, fallbacks, evictions, device
  loss) and per-device :class:`~repro.devices.throughput.
  ThroughputTracker` observations into a health score in ``[0, 1]`` per
  registry slot.  1.0 is a healthy device at peak observed throughput;
  0.0 is a lost device.
* :class:`CircuitBreaker` — one per device.  ``closed`` -> ``open`` when
  the windowed failure count reaches the policy threshold (or
  immediately and permanently on device loss); ``open`` -> ``half_open``
  after a cooldown, admitting a single canary request whose outcome
  closes or re-opens the breaker (with an escalating, bounded cooldown).
  The admission queue consults the breaker so new work routes around
  open devices instead of host-degrading.
* request **deadlines** — an absolute virtual-clock bound per request
  (:class:`~repro.serving.server.Request` ``deadline=``, or a relative
  budget via ``REPRO_SERVE_DEADLINE``), enforced at admission and at
  completion sync with a typed :class:`DeadlineExceeded` rejection.

Everything here is pure bookkeeping over modelled time: chaos reruns
with the same seed reproduce the same transitions bit-for-bit.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, List, Optional

__all__ = [
    "BreakerPolicy", "CircuitBreaker", "DeadlineExceeded",
    "DeviceHealthMonitor", "resolve_breaker", "resolve_deadline",
]


class DeadlineExceeded(Exception):
    """A request missed its deadline (at admission, dispatch, or
    completion sync) and was rejected instead of silently served late."""


def resolve_deadline(spec) -> Optional[float]:
    """Resolve a default per-request deadline *budget* (relative seconds
    of modelled time, applied as ``arrival + budget`` at submit).

    ``None`` consults ``REPRO_SERVE_DEADLINE``; ``""``/``"off"``/
    ``"none"``/``0`` disable; otherwise a float in seconds.
    """
    if spec is None:
        spec = os.environ.get("REPRO_SERVE_DEADLINE")
    if spec is None or spec is False:
        return None
    if isinstance(spec, str):
        spec = spec.strip().lower()
        if spec in ("", "off", "none", "0", "false", "no"):
            return None
        spec = float(spec)
    budget = float(spec)
    if budget <= 0.0:
        return None
    return budget


@dataclass
class BreakerPolicy:
    """Knobs of the per-device circuit breaker."""

    #: windowed failures that trip ``closed`` -> ``open``
    failure_threshold: int = 3
    #: sliding window (modelled seconds) over which failures are counted
    window_s: float = 0.05
    #: first ``open`` -> ``half_open`` cooldown (modelled seconds)
    cooldown_s: float = 2e-3
    #: cooldown multiplier after each failed half-open probe
    cooldown_factor: float = 2.0
    #: cooldown ceiling — a flapping device probes at least this often
    max_cooldown_s: float = 0.1


_BRK_NUM = {"threshold": ("failure_threshold", int),
            "failure_threshold": ("failure_threshold", int),
            "window": ("window_s", float),
            "window_s": ("window_s", float),
            "cooldown": ("cooldown_s", float),
            "cooldown_s": ("cooldown_s", float),
            "cooldown_factor": ("cooldown_factor", float),
            "max_cooldown": ("max_cooldown_s", float),
            "max_cooldown_s": ("max_cooldown_s", float)}


def resolve_breaker(spec) -> Optional[BreakerPolicy]:
    """``None`` -> ``REPRO_BREAKER`` env -> defaults; a policy passes
    through; ``"off"`` disables; a string like
    ``"threshold=2,cooldown=1e-3,window=0.02"`` is parsed."""
    if spec is None:
        spec = os.environ.get("REPRO_BREAKER")
    if spec is None:
        return BreakerPolicy()
    if isinstance(spec, BreakerPolicy):
        return spec
    if spec is False:
        return None
    if isinstance(spec, str):
        text = spec.strip()
        if text.lower() in ("", "off", "none", "0", "false", "no"):
            return None
        if text.lower() in ("on", "default", "1", "true"):
            return BreakerPolicy()
        policy = BreakerPolicy()
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"expected key=value, got {item!r}")
            key, value = (s.strip() for s in item.split("=", 1))
            if key not in _BRK_NUM:
                raise ValueError(f"unknown breaker option {key!r} "
                                 f"(known: {', '.join(sorted(_BRK_NUM))})")
            attr, conv = _BRK_NUM[key]
            setattr(policy, attr, conv(value))
        return policy
    raise TypeError(f"cannot resolve breaker policy from {spec!r}")


class CircuitBreaker:
    """Per-device breaker state machine on the virtual clock.

    States: ``closed`` (normal), ``open`` (route around; cooldown
    running), ``half_open`` (one canary in flight).  Device loss trips a
    *permanent* open — the simulated device can never heal, so there is
    no probe loop to run.  All transitions are reported through ``note``
    (the server wires this to the resilience activity track).
    """

    def __init__(self, device: int, policy: BreakerPolicy,
                 note: Optional[Callable[..., None]] = None):
        self.device = device
        self.policy = policy
        self.note = note
        self.state = "closed"
        self.permanent = False
        self.opened_at = 0.0
        self.cooldown = policy.cooldown_s
        self.opens = 0
        self.closes = 0
        self.probes = 0
        self._failures: List[float] = []   # windowed failure timestamps

    def _transition(self, state: str, now: float, detail: str = "") -> None:
        if state == self.state:
            return
        self.state = state
        if self.note is not None:
            self.note("breaker_" + state, device=self.device, t=now,
                      state=state, detail=detail)

    def record_success(self, now: float) -> None:
        """A request completed on this device without device faults."""
        if self.state == "half_open":
            self.closes += 1
            self.cooldown = self.policy.cooldown_s
            self._failures.clear()
            self._transition("closed", now, detail="probe succeeded")
        elif self.state == "closed":
            self._prune(now)

    def record_failure(self, now: float, detail: str = "") -> None:
        """A device-originated fault was observed on this device."""
        if self.permanent or self.state == "open":
            return
        if self.state == "half_open":
            # the canary failed: re-open with an escalated cooldown
            self.opens += 1
            self.opened_at = now
            self.cooldown = min(self.cooldown * self.policy.cooldown_factor,
                                self.policy.max_cooldown_s)
            self._transition("open", now, detail=detail or "probe failed")
            return
        self._failures.append(now)
        self._prune(now)
        if len(self._failures) >= self.policy.failure_threshold:
            self.opens += 1
            self.opened_at = now
            self._transition("open", now, detail=detail or
                             f"{len(self._failures)} failures in window")

    def trip_lost(self, now: float) -> None:
        """Device loss: permanent open, no probe loop (a lost simulated
        device never heals)."""
        if self.permanent:
            return
        self.permanent = True
        if self.state != "open":
            self.opens += 1
            self.opened_at = now
        self._transition("open", now, detail="device lost")

    def routable(self, now: float) -> bool:
        """May new work be dispatched to this device *now*?

        An expired ``open`` cooldown transitions to ``half_open`` here —
        the next request dispatched becomes the canary (the drain loop is
        synchronous, so exactly one probe resolves before the breaker is
        consulted again).
        """
        if self.state == "closed" or self.state == "half_open":
            return True
        if self.permanent:
            return False
        if now >= self.opened_at + self.cooldown:
            self.probes += 1
            self._transition("half_open", now, detail="cooldown elapsed")
            return True
        return False

    def allows(self, now: float) -> bool:
        """Passive form of :meth:`routable`: no state transition.  Used
        by filters (shard participant selection) that must not consume
        the half-open probe slot."""
        if self.state != "open":
            return True
        return not self.permanent and now >= self.opened_at + self.cooldown

    def _prune(self, now: float) -> None:
        cutoff = now - self.policy.window_s
        while self._failures and self._failures[0] < cutoff:
            self._failures.pop(0)


#: health penalty per windowed FaultLog event kind
_EVENT_WEIGHTS = {
    "device_lost": 1.0,
    "poison": 1.0,
    "fallback": 0.5,
    "inject": 0.2,
    "retry": 0.1,
    "evict": 0.05,
    "resync_skip": 0.0,     # a *good* outcome (digest gate) — no penalty
}


class DeviceHealthMonitor:
    """Health score in ``[0, 1]`` per registry slot.

    ``1.0`` is a device with no recent fault events running at its peak
    observed throughput; ``0.0`` is a lost device.  The score folds

    * windowed :class:`~repro.faults.injector.FaultLog` events, weighted
      by severity (loss/poison 1.0 ... eviction 0.05), and
    * a slowness penalty from the throughput tracker: ``1 - observed /
      peak-observed`` scaled by ``slow_weight`` (a device running hot —
      thermally throttled in the Jetson sense — scores below a device at
      its own historical peak; the ratio is scale-free, so a Nano is not
      penalised merely for being slower than a V100).
    """

    def __init__(self, modules, clock, window_s: float = 0.05,
                 slow_weight: float = 0.3):
        self.modules = modules
        self.clock = clock
        self.window_s = window_s
        self.slow_weight = slow_weight

    def score(self, device: int) -> float:
        mod = self.modules[device]
        if getattr(mod, "lost", False):
            return 0.0
        now = self.clock.now()
        cutoff = now - self.window_s
        penalty = 0.0
        events = mod.faultlog.events
        for event in reversed(events):       # timestamps are monotonic
            if event["t"] < cutoff:
                break
            penalty += _EVENT_WEIGHTS.get(event["op"], 0.1)
        rel = mod.throughput.relative_performance()
        if rel < 1.0:
            penalty += (1.0 - rel) * self.slow_weight
        return max(0.0, 1.0 - penalty)

    def scores(self) -> List[float]:
        return [self.score(k) for k in range(len(self.modules))]
