"""Request admission and batching for the offload server.

Admission is deterministic: every request carries the total-order key
``(arrival, session id, per-session sequence)`` — simulated arrival time
first, with the session id as a stable tie-break so two requests
admitted at the same instant always dispatch in the same order no matter
how the caller interleaved the ``submit`` calls.  One queue per device
(sessions are sticky to a device), dispatch always serves the globally
smallest key.

Batching groups *compatible* requests: same compiled program (same
source-hash cache key), already arrived, capped at ``max_batch``.  Batch
members share one admission decision and dispatch back-to-back onto the
device's serving stream pool; requests of the same session never reorder
— once a session's earlier request is skipped over, its later requests
are barred from the batch.
"""

from __future__ import annotations

import bisect
from typing import Optional


class AdmissionQueue:
    """Per-device queues of admitted requests in deterministic key order."""

    def __init__(self, num_devices: int):
        self._q: dict[int, list] = {k: [] for k in range(num_devices)}

    def push(self, req) -> int:
        """Insert by admission key; returns the queue depth after."""
        q = self._q[req.session.device]
        keys = [r.key for r in q]
        q.insert(bisect.bisect_right(keys, req.key), req)
        return len(q)

    def depth(self, device: int) -> int:
        return len(self._q[device])

    def __len__(self) -> int:
        return sum(len(q) for q in self._q.values())

    def head_device(self) -> Optional[int]:
        """The device whose head request has the globally smallest
        admission key (ties: lowest device ordinal); None when empty."""
        best = None
        best_key = None
        for dev, q in self._q.items():
            if q and (best_key is None or q[0].key < best_key):
                best, best_key = dev, q[0].key
        return best

    def head_arrival(self, device: int) -> float:
        return self._q[device][0].arrival

    def queued_sessions(self, device: int) -> list:
        """Distinct sessions with queued requests on ``device``, in key
        order (the route-around migration set)."""
        seen: list = []
        for r in self._q[device]:
            if r.session not in seen:
                seen.append(r.session)
        return seen

    def retarget(self, sid: int, device: int,
                 min_arrival: Optional[float] = None) -> int:
        """Move a session's queued requests onto ``device``'s queue (the
        session re-pinned there: migration, retry failover, a planned
        drain).  ``min_arrival`` floors the moved requests' arrival times
        — a retried request re-enqueued with a backoff arrival must still
        dispatch before the session's later queued requests, and the key
        order ``(arrival, sid, seq)`` only guarantees that when no later
        request keeps an earlier arrival.  Returns the requests moved."""
        moved = []
        for dev, q in self._q.items():
            keep = []
            for r in q:
                (moved if r.session.sid == sid else keep).append(r)
            self._q[dev] = keep
        for r in moved:
            if min_arrival is not None and r.arrival < min_arrival:
                r.arrival = min_arrival
        if moved:
            q = self._q[device]
            q.extend(moved)
            q.sort(key=lambda r: r.key)
        return len(moved)

    def pop_batch(self, device: int, now: float, max_batch: int) -> list:
        """Remove and return the head request plus every compatible
        follower: same program key, arrived by ``now``, same-session FIFO
        preserved, at most ``max_batch`` members."""
        q = self._q[device]
        head = q[0]
        batch = [head]
        remaining = []
        #: sessions with a skipped (incompatible) request — their later
        #: requests must stay queued to preserve per-session order
        barred: set[int] = set()
        for r in q[1:]:
            if (len(batch) < max_batch and r.arrival <= now
                    and r.program_key == head.program_key
                    and r.session.sid not in barred):
                batch.append(r)
            else:
                remaining.append(r)
                barred.add(r.session.sid)
        self._q[device] = remaining
        return batch
