"""Named backends and heterogeneous-registry resolution.

``BACKENDS`` maps the stable public names (CLI ``--devices``, the
``REPRO_DEVICES`` environment variable, the serving API) to their
:class:`~repro.devices.backend.DeviceBackend`.  A *registry spec* is a
comma-separated list of those names — ``"nano,v100"`` builds a
two-device registry whose ``device(0)`` is a Jetson Nano and
``device(1)`` a V100 — resolved by :func:`resolve_backends` with the
precedence explicit argument > ``REPRO_DEVICES`` > none (the caller
keeps its homogeneous ``num_devices`` path).
"""

from __future__ import annotations

import os
from typing import Optional, Sequence, Union

from repro.cuda.device import (
    JETSON_NANO_4GB_GPU, JETSON_NANO_GPU, JETSON_TX2_GPU, TESLA_V100_GPU,
)
from repro.devices.backend import DeviceBackend, XformSet, make_backend


class UnknownBackendError(ValueError):
    """A registry spec named a backend that does not exist."""


_NANO = make_backend(
    "nano", JETSON_NANO_GPU,
    description="Jetson Nano 2GB (Maxwell sm_53, 1 SM, shared LPDDR4)")

BACKENDS: dict[str, DeviceBackend] = {
    "nano": _NANO,
    # alias kept aligned with the CLI's historical --device choices
    "nano2gb": _NANO,
    "nano4gb": make_backend(
        "nano4gb", JETSON_NANO_4GB_GPU,
        description="Jetson Nano 4GB (same GPU, more DRAM)"),
    "tx2": make_backend(
        "tx2", JETSON_TX2_GPU,
        description="Jetson TX2 (Pascal sm_62, 2 SMs)"),
    "v100": make_backend(
        "v100", TESLA_V100_GPU,
        # a Volta SM runs 64 resident warps; 256-thread blocks keep more
        # of them resident per block without starving the 80-SM spread
        xform=XformSet(arch="sm_70", mw_block_threads=128,
                       default_num_threads=256),
        description="Tesla V100 (Volta sm_70, 80 SMs, HBM2)"),
}

#: spec grammar accepted by parse_devices / REPRO_DEVICES / --devices
SPEC_HELP = ",".join(sorted(set(b.name for b in BACKENDS.values())))


def get_backend(name: str) -> DeviceBackend:
    """The backend registered under ``name`` (case-insensitive)."""
    backend = BACKENDS.get(str(name).strip().lower())
    if backend is None:
        raise UnknownBackendError(
            f"unknown device backend {name!r} (known backends: "
            + ", ".join(sorted(BACKENDS)) + ")")
    return backend


def parse_devices(
    spec: Union[str, Sequence[Union[str, DeviceBackend]]],
) -> list[DeviceBackend]:
    """A registry spec -> backend list.

    Accepts a comma-separated string (``"nano,v100"``), or a sequence of
    names and/or :class:`DeviceBackend` instances.  The empty spec is an
    error — a registry cannot have zero devices.
    """
    if isinstance(spec, str):
        items: Sequence = [s for s in spec.split(",") if s.strip()]
    else:
        items = list(spec)
    if not items:
        raise UnknownBackendError(f"empty device registry spec {spec!r}")
    out: list[DeviceBackend] = []
    for item in items:
        if isinstance(item, DeviceBackend):
            out.append(item)
        else:
            out.append(get_backend(item))
    return out


def resolve_backends(
    devices: Union[None, str, Sequence] = None,
    env: str = "REPRO_DEVICES",
) -> Optional[list[DeviceBackend]]:
    """Resolve a heterogeneous registry, or None for "no spec given".

    Precedence: the explicit ``devices`` argument, then the environment
    variable.  Returning None (rather than a default) lets callers keep
    their homogeneous ``num_devices`` path — including its own
    ``REPRO_NUM_DEVICES`` defaulting — byte-for-byte unchanged when
    nobody asked for mixed backends.
    """
    if devices is not None:
        return parse_devices(devices)
    spec = os.environ.get(env, "")
    if spec.strip():
        return parse_devices(spec)
    return None
