"""One offload backend = device profile + timing calibration + xform set.

A :class:`DeviceBackend` is everything the compiler and runtime need to
know about one *kind* of device:

* the hardware profile (:class:`~repro.cuda.device.DeviceProperties`) the
  driver simulates and the timing model reads;
* the per-arch timing calibration
  (:class:`~repro.timing.calibration.ArchCalibration`);
* the per-arch **transformation set** (:class:`XformSet`): the codegen
  parameters the CUDA kernel builder specialises per target — cubin
  architecture and the block-geometry rules of paper §4.2.2/§5.  The
  paper fixes 128 threads per block "matching the 128 cores of the
  Nano's single SM"; a Volta SM wants more resident warps, so the V100
  set widens the default.

Backends are immutable and shared; per-device *state* (driver, data
environment, observed throughput) lives in the runtime modules that
reference them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Optional

from repro.cuda.device import DeviceProperties
from repro.timing.calibration import ArchCalibration, calibration_for

if TYPE_CHECKING:  # repro.ompi imports the runtime; keep this leaf-light
    from repro.ompi.config import OmpiConfig


@dataclass(frozen=True)
class XformSet:
    """Per-arch parameters of the CUDA transformation set.

    These are exactly the :class:`~repro.ompi.config.OmpiConfig` fields
    that enter the compile-cache fingerprint (plus the binary mode): two
    backends with different sets can never share a compiled image, and
    the cache keys keep them apart by construction.
    """

    arch: str = "sm_53"
    mw_block_threads: int = 128
    default_num_threads: int = 128
    block_shape: Optional[tuple[int, int, int]] = None


@dataclass(frozen=True)
class DeviceBackend:
    """A named, fully described offload target."""

    name: str
    props: DeviceProperties
    xform: XformSet
    calibration: ArchCalibration
    description: str = ""

    @property
    def arch(self) -> str:
        return self.props.arch

    def specialize(self, config: "OmpiConfig") -> "OmpiConfig":
        """The config with this backend's transformation set applied —
        what the CLI/bench compile with when the (primary) target is
        this backend.  Runtime knobs pass through untouched."""
        return replace(config,
                       arch=self.xform.arch,
                       mw_block_threads=self.xform.mw_block_threads,
                       default_num_threads=self.xform.default_num_threads,
                       block_shape=(config.block_shape
                                    if config.block_shape is not None
                                    else self.xform.block_shape))

    def calibrated_throughput(self) -> float:
        """Relative compute-rate hint (arbitrary units: core-cycles per
        second) seeding the shard planner before any kernel has run on
        the device; observed rates take over after the first launch."""
        p = self.props
        return float(p.multiprocessor_count * p.cores_per_mp
                     * p.clock_rate_khz * 1e3)


def make_backend(name: str, props: DeviceProperties,
                 xform: Optional[XformSet] = None,
                 description: str = "") -> DeviceBackend:
    """Build a backend with the arch-matched calibration (and an
    arch-matched default transformation set)."""
    if xform is None:
        xform = XformSet(arch=props.arch)
    return DeviceBackend(name=name, props=props, xform=xform,
                         calibration=calibration_for(props.compute_capability),
                         description=description)
