"""Heterogeneous device-backend subsystem.

The paper's core contribution is *per-device transformation sets*: OMPi
carries, for each kind of offload target, the bundle of code
transformations, runtime modules and device knowledge needed to run the
same OpenMP source there.  This package makes that abstraction concrete
for the reproduction:

* :mod:`repro.devices.backend` — :class:`DeviceBackend` bundles a
  hardware profile (:class:`~repro.cuda.device.DeviceProperties`), the
  per-arch timing calibration, and the per-arch *transformation set*
  (the codegen knobs the CUDA kernel builder specialises on);
* :mod:`repro.devices.registry` — named backends (``nano``, ``nano4gb``,
  ``tx2``, ``v100``) and the resolution of a heterogeneous registry from
  an explicit list, the ``REPRO_DEVICES`` environment variable or the
  ``ompicc --devices`` flag;
* :mod:`repro.devices.throughput` — the shard planner: contiguous
  block-range apportionment weighted by per-device throughput
  (calibrated hint, refined by observed kernel rates), degrading to the
  classic equal split for uniform registries.
"""

from repro.devices.backend import DeviceBackend, XformSet
from repro.devices.registry import (
    BACKENDS, UnknownBackendError, get_backend, parse_devices,
    resolve_backends,
)
from repro.devices.throughput import (
    ThroughputTracker, plan_shards, registry_weights,
)

__all__ = [
    "BACKENDS",
    "DeviceBackend",
    "ThroughputTracker",
    "UnknownBackendError",
    "XformSet",
    "get_backend",
    "parse_devices",
    "plan_shards",
    "registry_weights",
    "resolve_backends",
]
