"""Throughput-aware shard planning.

``shard(n)`` splits a target region's block range across the registry.
The classic split is equal-sized contiguous ranges; on a heterogeneous
registry (a Nano next to a V100) that leaves the fast device idle most
of the wall-clock.  :func:`plan_shards` instead apportions blocks in
proportion to per-device *throughput weights* — a calibrated hint
(cores x clock) before any kernel has run, refined by observed
blocks-per-modelled-second after each launch (:class:`ThroughputTracker`
EWMA).

Bit-stability contract: the merge copy-back diffs bytes, so *any*
contiguous partition of ``range(total_blocks)`` yields bit-identical
results; only modelled time changes.  Uniform weights (and ``None``)
reproduce the legacy ceil-split exactly, so homogeneous registries keep
their historical shard boundaries byte-for-byte.
"""

from __future__ import annotations

from typing import Optional, Sequence

#: weights within 5% of each other are treated as uniform -> legacy split
_UNIFORM_TOL = 1.05


def equal_split(total_blocks: int, n: int) -> list[tuple[int, int]]:
    """The legacy ceil split: n contiguous ranges of ceil(total/n) blocks
    (trailing shards may be empty)."""
    per = -(-total_blocks // n)
    out = []
    for i in range(n):
        blo = min(i * per, total_blocks)
        bhi = min(blo + per, total_blocks)
        out.append((blo, bhi))
    return out


def plan_shards(
    total_blocks: int,
    weights: Optional[Sequence[float]] = None,
    n: Optional[int] = None,
) -> list[tuple[int, int]]:
    """Contiguous ``(lo, hi)`` block ranges, one per device.

    ``weights`` are relative throughputs (blocks/second, any scale); the
    i-th device receives a block count proportional to ``weights[i]``
    via largest-remainder apportionment, keeping ranges contiguous and
    in device order.  ``weights=None`` (or effectively uniform weights)
    falls back to :func:`equal_split`.
    """
    if weights is None:
        if n is None:
            raise ValueError("plan_shards needs weights or n")
        return equal_split(total_blocks, n)
    n = len(weights)
    if n <= 0:
        raise ValueError("plan_shards needs at least one device")
    ws = [max(0.0, float(w)) for w in weights]
    positive = [w for w in ws if w > 0.0]
    if not positive or (len(positive) == n
                        and max(positive) <= min(positive) * _UNIFORM_TOL):
        return equal_split(total_blocks, n)
    total_w = sum(ws)
    # largest-remainder (Hamilton) apportionment of total_blocks
    quotas = [total_blocks * w / total_w for w in ws]
    counts = [int(q) for q in quotas]
    short = total_blocks - sum(counts)
    # hand leftover blocks to the largest fractional parts; ties go to
    # the lower device index for determinism
    order = sorted(range(n), key=lambda i: (-(quotas[i] - counts[i]), i))
    for i in order[:short]:
        counts[i] += 1
    out = []
    lo = 0
    for c in counts:
        out.append((lo, lo + c))
        lo += c
    return out


class ThroughputTracker:
    """EWMA of observed per-device throughput (blocks per modelled second).

    Seeded lazily by a calibrated hint so the very first shard plan on a
    heterogeneous registry is already unequal; each finished kernel
    refines the estimate.  alpha=0.4 weighs recent launches heavily —
    the workloads here are short suites, not long-running services.
    """

    def __init__(self, hint: float = 0.0, alpha: float = 0.4):
        self.hint = float(hint)
        self.alpha = float(alpha)
        self.observed: Optional[float] = None
        self.peak: Optional[float] = None
        self.samples = 0

    def note(self, blocks: int, seconds: float) -> None:
        """Record one kernel: ``blocks`` executed in modelled ``seconds``."""
        if blocks <= 0 or seconds <= 0.0:
            return
        rate = blocks / seconds
        if self.observed is None:
            self.observed = rate
        else:
            self.observed += self.alpha * (rate - self.observed)
        if self.peak is None or self.observed > self.peak:
            self.peak = self.observed
        self.samples += 1

    @property
    def weight(self) -> float:
        """Current best throughput estimate (observed, else hint, else 1)."""
        if self.observed is not None:
            return self.observed
        return self.hint if self.hint > 0.0 else 1.0

    def relative_performance(self) -> float:
        """Current throughput relative to this device's own peak EWMA,
        in ``(0, 1]``.  Scale-free: comparing observed to *peak observed*
        (not to the calibrated hint, which lives on a different unit
        scale) means a slow device at its usual speed scores 1.0, while
        any device running below its own best — hot, contended,
        retry-delayed — scores below 1.0.  ``1.0`` with no observations
        yet (nothing to compare)."""
        if self.observed is None or not self.peak:
            return 1.0
        return min(1.0, self.observed / self.peak)


def registry_weights(trackers: Sequence[ThroughputTracker]) -> list[float]:
    """Consistent-scale weights for one planning decision.

    Calibrated hints (core-cycles/second) and observed rates
    (blocks/modelled-second) live on different scales; mixing them in one
    weight vector would let whichever device observed first dwarf — or be
    dwarfed by — its unobserved peers.  Observed rates are used only once
    *every* participating device has them; until then the plan runs on
    hints alone."""
    if all(t.observed is not None for t in trackers):
        return [t.observed for t in trackers]
    return [t.hint if t.hint > 0.0 else 1.0 for t in trackers]
