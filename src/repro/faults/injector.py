"""Deterministic fault injection for the simulated CUDA driver.

Every ``cu*`` entry point of :class:`repro.cuda.driver.CudaDriver` calls
:meth:`FaultInjector.check` *before any functional side effect*, so an
injected failure leaves driver state exactly as it was — a retry of the
same operation is clean, which is what makes transient faults recoverable
by replay.

The injector is seeded: for a fixed program (a fixed driver-call
sequence) the same plan + seed produces the same faults, so a chaos run
is reproducible and two equivalent executions (e.g. the kernel fast path
on vs off) inject identically.

Sticky rules model real CUDA *context poisoning*: once a sticky fault
fires, every subsequent call on the context fails with the same result
until ``cuDevicePrimaryCtxReset``.

:class:`FaultLog` is the shared record of everything fault-related — the
driver owns one even with no injector attached, because the *recovery*
machinery (retries, eviction, host fallback, task cancellation) reports
through it too.  Events go to three sinks: an in-memory list, the
profiler's activity ring (as :class:`repro.prof.activity.FaultActivity`
records, so chrome traces show degradation), and optionally a JSON-lines
file named by ``REPRO_FAULTS_LOG`` (the chaos-CI artifact).
"""

from __future__ import annotations

import json
import os
import random
from fnmatch import fnmatch
from typing import Optional

from repro.cuda.errors import CudaError, CUresult
from repro.faults.plan import FaultPlan

#: APIs that still work on a poisoned context (real CUDA: device queries
#: and the primary-context reset itself do not require a healthy context)
POISON_EXEMPT = ("cuDevicePrimaryCtxReset", "cuDeviceGet", "cuDeviceGet*",
                 "cuDeviceComputeCapability", "cuDeviceTotalMem")


class FaultLog:
    """Counters + event list for injected faults and recovery actions."""

    #: default size cap for the jsonl sink (one rotated generation is
    #: kept, so peak disk use is ~2x this)
    MAX_LOG_BYTES = 4 * 1024 * 1024

    def __init__(self, clock=None, recorder=None, path: Optional[str] = None,
                 max_bytes: Optional[int] = None):
        self.clock = clock
        self.recorder = recorder
        self.path = path if path is not None else os.environ.get(
            "REPRO_FAULTS_LOG") or None
        if max_bytes is None:
            max_bytes = int(os.environ.get("REPRO_FAULTS_LOG_MAX_BYTES")
                            or self.MAX_LOG_BYTES)
        self.max_bytes = max_bytes
        self.counters: dict[str, int] = {}
        self.events: list[dict] = []
        self.dropped_lines = 0
        self._log_size: Optional[int] = None

    def note(self, op: str, api: str = "", fault: str = "", attempt: int = 0,
             nbytes: int = 0, detail: str = "") -> None:
        """Record one fault-related happening.

        ``op`` is the lifecycle verb: ``inject`` (a fault fired),
        ``retry`` / ``evict`` / ``fallback`` (recovery actions),
        ``device_lost`` (permanent loss, host-only from here on),
        ``task_fail`` / ``cancel`` (task-graph propagation),
        ``poison`` / ``reset`` (context lifecycle).
        """
        now = self.clock.now() if self.clock is not None else 0.0
        event = {"t": now, "op": op, "api": api, "fault": fault,
                 "attempt": attempt, "nbytes": nbytes, "detail": detail}
        self.counters[op] = self.counters.get(op, 0) + 1
        self.events.append(event)
        if self.recorder is not None:
            from repro.prof.activity import FaultActivity
            self.recorder.emit(FaultActivity(
                op=op, api=api, fault=fault, attempt=attempt, nbytes=nbytes,
                detail=detail, t_start=now, t_end=now,
            ))
        if self.path:
            try:
                self._append_line(json.dumps(event) + "\n")
            except OSError:  # pragma: no cover - log file is best-effort
                pass

    def _append_line(self, line: str) -> None:
        """Size-capped append: like the in-memory activity ring, the
        jsonl sink is bounded.  When the cap would be exceeded the
        current file rotates to ``<path>.1`` (dropping the previous
        generation, whose lines are counted in :attr:`dropped_lines`) so
        a long chaos serving run keeps only the most recent events."""
        if self._log_size is None:
            try:
                self._log_size = os.path.getsize(self.path)
            except OSError:
                self._log_size = 0
        if self.max_bytes and self._log_size + len(line) > self.max_bytes:
            old = self.path + ".1"
            try:
                with open(old) as fh:
                    self.dropped_lines += sum(1 for _ in fh)
            except OSError:
                pass
            os.replace(self.path, old)
            self._log_size = 0
        with open(self.path, "a") as fh:
            fh.write(line)
        self._log_size += len(line)

    def count(self, *ops: str) -> int:
        return sum(self.counters.get(op, 0) for op in ops)


class FaultInjector:
    """Seeded, plan-driven fault injection with sticky context poisoning."""

    def __init__(self, plan: FaultPlan, seed: Optional[int] = None):
        self.plan = plan
        self.seed = plan.seed if seed is None else seed
        self.rng = random.Random(self.seed)
        self.log: Optional[FaultLog] = None
        #: sticky state: the CUresult every call fails with until reset
        self.poison_result: Optional[CUresult] = None
        #: total check() calls (the injector's own call counter)
        self.calls = 0

    def bind(self, log: FaultLog) -> None:
        """Attach the owning driver's fault log (clock + recorder sinks)."""
        self.log = log

    @property
    def poisoned(self) -> bool:
        return self.poison_result is not None

    def reset_context(self) -> None:
        """Primary-context reset: clears the sticky poisoned state."""
        if self.poison_result is not None:
            self.poison_result = None
            if self.log is not None:
                self.log.note("reset", api="cuDevicePrimaryCtxReset")

    # -- the hook ------------------------------------------------------------
    def check(self, api: str, nbytes: int = 0) -> None:
        """Called at the top of every driver entry point; raises the
        injected :class:`CudaError` when a rule fires (or the context is
        poisoned), otherwise returns.  Must run before side effects."""
        self.calls += 1
        if self.poison_result is not None:
            if any(fnmatch(api, pat) for pat in POISON_EXEMPT):
                return
            raise CudaError(self.poison_result,
                            f"context poisoned (sticky error at {api})",
                            sticky=True, injected=True)
        for rule in self.plan.rules:
            if not fnmatch(api, rule.api):
                continue
            rule.matched += 1
            if rule.times is not None and rule.fired >= rule.times:
                continue
            if nbytes < rule.min_bytes:
                continue
            if rule.count is not None:
                fire = rule.matched == rule.count
            else:
                fire = self.rng.random() < rule.probability
            if not fire:
                continue
            rule.fired += 1
            detail = (f"injected {rule.kind} at {api} "
                      f"(call #{rule.matched})")
            if rule.sticky:
                self.poison_result = rule.result
                if self.log is not None:
                    self.log.note("poison", api=api, fault=rule.result.name,
                                  nbytes=nbytes, detail=detail)
            if self.log is not None:
                self.log.note("inject", api=api, fault=rule.result.name,
                              nbytes=nbytes, detail=detail)
            raise CudaError(rule.result, detail, sticky=rule.sticky,
                            injected=True)


def resolve_faults(spec) -> Optional[FaultInjector]:
    """Resolve a user-facing fault spec into an injector (or None).

    ``spec`` may be ``None`` (defer to the ``REPRO_FAULTS`` environment
    variable), ``False``/``'off'``/empty (disabled), a spec string (see
    :mod:`repro.faults.plan`), a :class:`FaultPlan`, or a ready
    :class:`FaultInjector`.
    """
    if spec is None:
        spec = os.environ.get("REPRO_FAULTS", "")
    if spec is False or spec == "" or spec in ("off", "0", "none"):
        return None
    if isinstance(spec, FaultInjector):
        return spec
    if isinstance(spec, FaultPlan):
        return FaultInjector(spec)
    if isinstance(spec, str):
        plan = FaultPlan.parse(spec)
        return FaultInjector(plan) if plan.rules else None
    raise ValueError(f"bad fault spec {spec!r}")
