"""Recovery policy: how the host runtime survives driver failures.

Mirrors what the LLVM/OpenMP offload runtime does in practice (and what
OpenMP 5.x semantics require): when offload is unavailable the ``target``
region executes on the initial (host) device; transient failures are
retried a bounded number of times; allocation failures trigger eviction
of cached state before the retry.

Error classification:

* **transient** — a replay of the same operation may succeed: transfer
  failures, launch failures, launch timeouts.  Retried with exponential
  backoff up to :attr:`RecoveryPolicy.max_retries` times (the backoff is
  simulated time on the virtual clock, so chaos runs stay deterministic).
* **lost** — the device is gone (unavailable at init, or a sticky/
  poisoned context): never retried; the region — and every later region —
  falls back to the host, matching ``omp_get_initial_device`` semantics.
* **OOM** — allocation retried once after evicting cached kernel modules
  and idle staging (arena) blocks from device memory.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.errors import CudaError, CUresult

#: results a bounded retry may cure
TRANSIENT_RESULTS = frozenset({
    CUresult.CUDA_ERROR_UNKNOWN,
    CUresult.CUDA_ERROR_LAUNCH_FAILED,
    CUresult.CUDA_ERROR_LAUNCH_TIMEOUT,
})

#: results that mean the device is gone for good
LOST_RESULTS = frozenset({
    CUresult.CUDA_ERROR_NO_DEVICE,
    CUresult.CUDA_ERROR_DEVICE_UNAVAILABLE,
    CUresult.CUDA_ERROR_NOT_INITIALIZED,
})


class DeviceLost(Exception):
    """The offload device is permanently unavailable; ``target`` regions
    must complete on the initial (host) device."""


class OffloadFailure(Exception):
    """A kernel offload failed beyond the module-level recovery budget.

    ``device_lost`` distinguishes a dead device (transfers unusable, the
    runtime must not touch device memory again) from a launch-only
    failure on an otherwise healthy device (host fallback plus a device
    resync keeps the data environment coherent).
    """

    def __init__(self, kernel: str, cause: Exception,
                 device_lost: bool = False):
        self.kernel = kernel
        self.cause = cause
        self.device_lost = device_lost
        super().__init__(f"offload of {kernel!r} failed: {cause}")


def is_transient(exc: CudaError) -> bool:
    return (not getattr(exc, "sticky", False)
            and exc.result in TRANSIENT_RESULTS)


def is_lost(exc: CudaError) -> bool:
    return getattr(exc, "sticky", False) or exc.result in LOST_RESULTS


@dataclass
class RecoveryPolicy:
    """Knobs of the host runtime's fault recovery."""

    #: bounded retry budget for transient transfer/launch failures
    max_retries: int = 3
    #: first retry delay (simulated seconds on the virtual clock)
    backoff_s: float = 50e-6
    #: multiplier applied to the delay after each failed retry
    backoff_factor: float = 2.0
    #: evict cached modules / idle arena blocks and retry on OOM
    oom_evict: bool = True
    #: execute the target region's ``*_hostfn`` on the initial device when
    #: the device is unavailable or a launch permanently fails
    host_fallback: bool = True


_BOOL_KEYS = {"evict": "oom_evict", "fallback": "host_fallback",
              "oom_evict": "oom_evict", "host_fallback": "host_fallback"}
_NUM_KEYS = {"retries": ("max_retries", int),
             "max_retries": ("max_retries", int),
             "backoff": ("backoff_s", float),
             "backoff_s": ("backoff_s", float),
             "backoff_factor": ("backoff_factor", float)}


def resolve_recovery(spec) -> RecoveryPolicy:
    """``None`` -> defaults; a policy passes through; a string like
    ``"retries=5,backoff=1e-3,fallback=off"`` is parsed."""
    if spec is None:
        return RecoveryPolicy()
    if isinstance(spec, RecoveryPolicy):
        return spec
    if isinstance(spec, str):
        policy = RecoveryPolicy()
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"expected key=value, got {item!r}")
            key, value = (s.strip() for s in item.split("=", 1))
            if key in _BOOL_KEYS:
                setattr(policy, _BOOL_KEYS[key],
                        value not in ("0", "off", "false", "no"))
            elif key in _NUM_KEYS:
                attr, conv = _NUM_KEYS[key]
                setattr(policy, attr, conv(value))
            else:
                raise ValueError(f"unknown recovery option {key!r}")
        return policy
    raise ValueError(f"bad recovery spec {spec!r}")
