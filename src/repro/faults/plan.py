"""Fault plans: *what* to inject, *where*, and *when*.

A :class:`FaultPlan` is an ordered list of :class:`FaultRule` instances.
Each rule targets a named driver API (``fnmatch`` glob over the ``cu*``
entry-point name) and fires on a trigger:

* ``count=N`` — exactly the N-th matching call (1-based, deterministic);
* ``probability=p`` — each matching call with probability *p*, drawn from
  the injector's seeded RNG (deterministic for a fixed call sequence);
* ``min_bytes=B`` — additionally restrict to operations moving/allocating
  at least *B* bytes (size-threshold faults, e.g. "only large copies").

``times`` bounds how often a rule may fire (count rules default to once;
probability rules default to unlimited).  ``sticky`` rules poison the
context: every later driver call fails with the same result until
``cuDevicePrimaryCtxReset`` — the behaviour of real CUDA "sticky" errors.

The ``REPRO_FAULTS`` environment variable / ``OmpiConfig(faults=...)`` /
``ompicc --faults`` all accept the same textual spec::

    spec      := preset | rules
    rules     := rule (';' rule)*
    rule      := kind '@' api-glob [':' key '=' value (',' key '=' value)*]
    preset    := ('transient' | 'devlost' | 'oom') [':' key=value ...]

Examples::

    transient:seed=42                 # seeded low-probability transient plan
    devlost                           # device unavailable from the start
    oom@cuMemAlloc:count=3            # third allocation fails with OOM
    launch_failed@cuLaunchKernel:count=2;transfer@cuMemcpy*:probability=0.01
    poison@cuLaunchKernel:count=5     # fifth launch poisons the context
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cuda.errors import CUresult

#: fault kind -> the CUresult the injected CudaError carries
FAULT_RESULTS = {
    "oom": CUresult.CUDA_ERROR_OUT_OF_MEMORY,
    "launch_failed": CUresult.CUDA_ERROR_LAUNCH_FAILED,
    "launch_timeout": CUresult.CUDA_ERROR_LAUNCH_TIMEOUT,
    "transfer": CUresult.CUDA_ERROR_UNKNOWN,
    "device_unavailable": CUresult.CUDA_ERROR_DEVICE_UNAVAILABLE,
    #: sticky context poisoning (real CUDA: a sticky launch failure makes
    #: every subsequent call on the context return the same error)
    "poison": CUresult.CUDA_ERROR_LAUNCH_FAILED,
}


class FaultSpecError(ValueError):
    """Malformed fault-plan specification."""


@dataclass
class FaultRule:
    """One injectable fault: a kind, a target API glob and a trigger."""

    kind: str
    api: str = "*"
    count: Optional[int] = None          # fire on the N-th matching call
    probability: float = 0.0             # ...or with this per-call chance
    min_bytes: int = 0                   # only ops of at least this size
    times: Optional[int] = None          # max firings (None: unlimited)
    sticky: bool = False                 # poison the context on firing
    # -- mutable firing state (owned by the injector) --------------------
    matched: int = 0
    fired: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_RESULTS:
            raise FaultSpecError(
                f"unknown fault kind {self.kind!r} "
                f"(known: {', '.join(sorted(FAULT_RESULTS))})")
        if self.kind == "poison":
            self.sticky = True
        if self.count is not None and self.count < 1:
            raise FaultSpecError("count is 1-based: must be >= 1")
        if not (0.0 <= self.probability <= 1.0):
            raise FaultSpecError("probability must be in [0, 1]")
        if self.count is None and self.probability == 0.0:
            # a rule with no trigger fires on every matching call
            self.probability = 1.0
        if self.times is None and self.count is not None:
            self.times = 1

    @property
    def result(self) -> CUresult:
        return FAULT_RESULTS[self.kind]


@dataclass
class FaultPlan:
    """An ordered collection of fault rules plus the RNG seed."""

    rules: list[FaultRule] = field(default_factory=list)
    seed: int = 0

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a textual fault spec (see module docstring)."""
        spec = spec.strip()
        if not spec or spec in ("off", "0", "none"):
            return cls()
        head = spec.split(";", 1)[0].split(":", 1)[0].strip()
        if head in PRESETS and "@" not in spec.split(";", 1)[0]:
            opts = _parse_opts(spec.split(":", 1)[1]) if ":" in spec else {}
            return PRESETS[head](opts)
        rules = []
        seed = 0
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            rule, rule_seed = _parse_rule(part)
            rules.append(rule)
            if rule_seed is not None:
                seed = rule_seed
        return cls(rules, seed=seed)


def _parse_opts(text: str) -> dict:
    opts: dict = {}
    for item in text.split(","):
        item = item.strip()
        if not item:
            continue
        if "=" not in item:
            raise FaultSpecError(f"expected key=value, got {item!r}")
        key, value = item.split("=", 1)
        opts[key.strip()] = value.strip()
    return opts


_RULE_KEYS = {
    "count": int,
    "probability": float, "p": float,
    "min_bytes": int,
    "times": int,
    "seed": int,
    "sticky": lambda v: v not in ("0", "off", "false"),
}


def _parse_rule(text: str) -> tuple[FaultRule, Optional[int]]:
    head, _, tail = text.partition(":")
    kind, _, api = head.partition("@")
    kind = kind.strip()
    api = api.strip() or "*"
    kwargs: dict = {}
    seed: Optional[int] = None
    for key, value in _parse_opts(tail).items():
        conv = _RULE_KEYS.get(key)
        if conv is None:
            raise FaultSpecError(f"unknown fault-rule option {key!r}")
        if key == "seed":
            seed = int(value)
            continue
        kwargs["probability" if key == "p" else key] = conv(value)
    try:
        return FaultRule(kind, api, **kwargs), seed
    except TypeError as exc:  # pragma: no cover - defensive
        raise FaultSpecError(str(exc)) from exc


# -- presets -----------------------------------------------------------------

def _preset_transient(opts: dict) -> FaultPlan:
    """Low-probability transient faults on transfers and launches — every
    one recoverable by the host runtime's bounded retry."""
    p = float(opts.get("p", opts.get("probability", 0.02)))
    return FaultPlan([
        FaultRule("transfer", "cuMemcpy*", probability=p),
        FaultRule("transfer", "cuMemsetD8", probability=p),
        FaultRule("launch_failed", "cuLaunchKernel", probability=p),
    ], seed=int(opts.get("seed", 0)))


def _preset_devlost(opts: dict) -> FaultPlan:
    """The device never comes up: ``cuInit`` fails permanently, so every
    ``target`` region must complete on the host-fallback path.

    With ``p=`` (e.g. ``devlost:p=0.02,seed=42``) the loss is *mid-run*
    instead: each kernel launch rolls the dice, and the first hit is a
    sticky ``CUDA_ERROR_DEVICE_UNAVAILABLE`` — the context is poisoned
    and the device is gone from that point on (the chaos-serving
    scenario: a device that was healthy at admission dies under load)."""
    p = opts.get("p", opts.get("probability"))
    if p is not None:
        return FaultPlan([
            FaultRule("device_unavailable", "cuLaunchKernel",
                      probability=float(p), sticky=True, times=1),
        ], seed=int(opts.get("seed", 0)))
    return FaultPlan([
        FaultRule("device_unavailable", "cuInit", probability=1.0),
    ], seed=int(opts.get("seed", 0)))


def _preset_oom(opts: dict) -> FaultPlan:
    """Allocation pressure: the N-th allocation (default: first) of at
    least ``min_bytes`` reports OOM once — recoverable by evict + retry."""
    return FaultPlan([
        FaultRule("oom", "cuMemAlloc",
                  count=int(opts.get("count", 1)),
                  min_bytes=int(opts.get("min_bytes", 0))),
    ], seed=int(opts.get("seed", 0)))


PRESETS = {
    "transient": _preset_transient,
    "devlost": _preset_devlost,
    "device-lost": _preset_devlost,
    "oom": _preset_oom,
}
