"""Fault-injection subsystem and recovery policy (see DESIGN.md §"Fault
model and recovery").

* :mod:`repro.faults.plan` — fault rules/plans and the ``REPRO_FAULTS``
  spec grammar (presets: ``transient``, ``devlost``, ``oom``);
* :mod:`repro.faults.injector` — the seeded :class:`FaultInjector` wired
  into every ``cu*`` driver entry point, plus the :class:`FaultLog` that
  records injections *and* recovery actions;
* :mod:`repro.faults.recovery` — the :class:`RecoveryPolicy` the host
  runtime applies: bounded retry with backoff, OOM eviction, and
  whole-region host fallback.
"""

from repro.faults.injector import FaultInjector, FaultLog, resolve_faults
from repro.faults.plan import (
    FAULT_RESULTS, FaultPlan, FaultRule, FaultSpecError, PRESETS,
)
from repro.faults.recovery import (
    DeviceLost, LOST_RESULTS, OffloadFailure, RecoveryPolicy,
    TRANSIENT_RESULTS, is_lost, is_transient, resolve_recovery,
)

__all__ = [
    "DeviceLost", "FAULT_RESULTS", "FaultInjector", "FaultLog", "FaultPlan",
    "FaultRule", "FaultSpecError", "LOST_RESULTS", "OffloadFailure",
    "PRESETS", "RecoveryPolicy", "TRANSIENT_RESULTS", "is_lost",
    "is_transient", "resolve_faults", "resolve_recovery",
]
