"""Byte-addressable linear memory with a first-fit allocator.

Both the host interpreter and the simulated GPU global memory are built on
:class:`LinearMemory`.  Pointers in interpreted programs are integer byte
addresses into one of these spaces, which is what lets the reproduction
keep the paper's host-address -> device-address mapping tables (OMPi's
device data environments) completely faithful.

All loads/stores go through numpy dtypes so narrowing stores truncate the
way C does (e.g. storing 300 into a ``char``).  Bulk region access uses
views, not copies, per the HPC guide's "views, not copies" rule.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass

import numpy as np


class MemoryError_(Exception):
    """Out-of-memory or invalid access in a simulated memory space."""


def content_digest(data: bytes | bytearray | memoryview | np.ndarray) -> str:
    """sha256 hex digest of a buffer (dirty-tracking / resync gates)."""
    if isinstance(data, np.ndarray):
        data = np.ascontiguousarray(data).view(np.uint8)
    return hashlib.sha256(data).hexdigest()


def _strides(n: int, step: int) -> np.ndarray:
    """Cached ``arange(n) * step`` used by the vector access paths."""
    key = (n, step)
    arr = _STRIDE_CACHE.get(key)
    if arr is None:
        arr = np.arange(n, dtype=np.int64) * step
        arr.flags.writeable = False
        _STRIDE_CACHE[key] = arr
    return arr


_STRIDE_CACHE: dict[tuple[int, int], np.ndarray] = {}


@dataclass
class _Block:
    addr: int
    size: int


class LinearMemory:
    """A contiguous byte-addressable memory of fixed capacity.

    Addresses start at ``base`` (never 0, so that 0 keeps its C meaning of
    NULL).  The allocator is a simple first-fit free list with coalescing —
    adequate for the allocation patterns of benchmark programs, and it
    makes double-free/overlap bugs detectable in tests.
    """

    def __init__(self, capacity: int, base: int = 0x1000, name: str = "mem"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = int(capacity)
        self.base = int(base)
        self.name = name
        self.buf = np.zeros(self.capacity, dtype=np.uint8)
        self._free: list[_Block] = [_Block(self.base, self.capacity)]
        self._allocated: dict[int, int] = {}  # addr -> size

    # -- allocation ---------------------------------------------------------
    def alloc(self, size: int, align: int = 16) -> int:
        if size <= 0:
            size = 1
        for i, blk in enumerate(self._free):
            addr = (blk.addr + align - 1) // align * align
            pad = addr - blk.addr
            if blk.size >= size + pad:
                if pad:
                    self._free[i] = _Block(blk.addr, pad)
                    rest_addr, rest_size = addr + size, blk.size - size - pad
                    if rest_size:
                        self._free.insert(i + 1, _Block(rest_addr, rest_size))
                else:
                    if blk.size == size:
                        del self._free[i]
                    else:
                        self._free[i] = _Block(addr + size, blk.size - size)
                self._allocated[addr] = size
                return addr
        raise MemoryError_(
            f"{self.name}: out of memory allocating {size} bytes "
            f"(capacity {self.capacity})"
        )

    def free(self, addr: int) -> None:
        size = self._allocated.pop(addr, None)
        if size is None:
            raise MemoryError_(f"{self.name}: free of unallocated address {addr:#x}")
        keys = [b.addr for b in self._free]
        i = bisect.bisect_left(keys, addr)
        self._free.insert(i, _Block(addr, size))
        # coalesce with neighbours
        merged: list[_Block] = []
        for blk in self._free:
            if merged and merged[-1].addr + merged[-1].size == blk.addr:
                merged[-1] = _Block(merged[-1].addr, merged[-1].size + blk.size)
            else:
                merged.append(blk)
        self._free = merged

    def allocated_size(self, addr: int) -> int | None:
        return self._allocated.get(addr)

    @property
    def bytes_in_use(self) -> int:
        return sum(self._allocated.values())

    # -- access ---------------------------------------------------------------
    def _check(self, addr: int, size: int) -> int:
        off = addr - self.base
        if off < 0 or off + size > self.capacity:
            raise MemoryError_(
                f"{self.name}: access of {size} bytes at {addr:#x} out of range"
            )
        return off

    def load(self, addr: int, dtype: np.dtype):
        """Load one scalar of ``dtype`` at ``addr``."""
        dt = np.dtype(dtype)
        off = self._check(addr, dt.itemsize)
        return self.buf[off : off + dt.itemsize].view(dt)[0]

    def store(self, addr: int, dtype: np.dtype, value) -> None:
        dt = np.dtype(dtype)
        off = self._check(addr, dt.itemsize)
        if dt.kind in "iu":
            # Wrap like a C narrowing conversion (two's complement).
            bits = 8 * dt.itemsize
            v = int(value) & ((1 << bits) - 1)
            if dt.kind == "i" and v >= 1 << (bits - 1):
                v -= 1 << bits
            self.buf[off : off + dt.itemsize].view(dt)[0] = v
        else:
            self.buf[off : off + dt.itemsize].view(dt)[0] = value

    def view(self, addr: int, count: int, dtype: np.dtype) -> np.ndarray:
        """A writable numpy view of ``count`` elements at ``addr``."""
        dt = np.dtype(dtype)
        off = self._check(addr, count * dt.itemsize)
        return self.buf[off : off + count * dt.itemsize].view(dt)

    def gather(self, addrs: np.ndarray, dtype: np.dtype) -> np.ndarray:
        """Vector load at per-lane byte addresses (SIMT warp loads)."""
        dt = np.dtype(dtype)
        offs = addrs.astype(np.int64) - self.base
        n = offs.size
        if n > 1:
            start = int(offs[0])
            step = int(offs[1]) - start
            if (step > 0 and step % dt.itemsize == 0
                    and int(offs[-1]) - start == (n - 1) * step
                    and (offs - start == _strides(n, step)).all()):
                # constant-stride warp load: one strided view (copied, so
                # the register value cannot alias the backing buffer).
                # step > 0 makes offs[0]/offs[-1] the exact min/max, so the
                # range check needs no reductions.
                end = start + (n - 1) * step + dt.itemsize
                if start < 0 or end > self.capacity:
                    raise MemoryError_(f"{self.name}: vector load out of range")
                return self.buf[start:end].view(dt)[::step // dt.itemsize].copy()
        if n and (offs.min() < 0 or offs.max() + dt.itemsize > self.capacity):
            raise MemoryError_(f"{self.name}: vector load out of range")
        idx = offs[:, None] + np.arange(dt.itemsize, dtype=np.int64)[None, :]
        raw = self.buf[idx.reshape(-1)]
        return raw.view(dt).reshape(offs.shape)

    def scatter(self, addrs: np.ndarray, dtype: np.dtype, values: np.ndarray) -> None:
        """Vector store at per-lane byte addresses (SIMT warp stores).

        Lanes scatter in lane order, so intra-warp write conflicts resolve
        with the highest lane winning — CUDA leaves the winner undefined;
        picking a deterministic one keeps runs reproducible.
        """
        dt = np.dtype(dtype)
        offs = addrs.astype(np.int64) - self.base
        n = offs.size
        if n > 1:
            start = int(offs[0])
            step = int(offs[1]) - start
            if (step > 0 and step % dt.itemsize == 0
                    and int(offs[-1]) - start == (n - 1) * step
                    and (offs - start == _strides(n, step)).all()):
                # constant-stride warp store: addresses are distinct, so
                # the lane-order conflict rule cannot trigger
                end = start + (n - 1) * step + dt.itemsize
                if start < 0 or end > self.capacity:
                    raise MemoryError_(f"{self.name}: vector store out of range")
                self.buf[start:end].view(dt)[::step // dt.itemsize] = values
                return
        if n and (offs.min() < 0 or offs.max() + dt.itemsize > self.capacity):
            raise MemoryError_(f"{self.name}: vector store out of range")
        raw = np.ascontiguousarray(values, dtype=dt).view(np.uint8).reshape(-1, dt.itemsize)
        idx = offs[:, None] + np.arange(dt.itemsize, dtype=np.int64)[None, :]
        self.buf[idx.reshape(-1)] = raw.reshape(-1)

    def snapshot_blocks(self) -> dict[int, np.ndarray]:
        """Copies of all allocated blocks, keyed by address (verify mode)."""
        out: dict[int, np.ndarray] = {}
        for addr, size in self._allocated.items():
            off = addr - self.base
            out[addr] = self.buf[off : off + size].copy()
        return out

    def restore_blocks(self, blocks: dict[int, np.ndarray]) -> None:
        """Restore block contents taken by :meth:`snapshot_blocks`.

        Only block *contents* are restored; the allocation map is left as
        is (verify mode snapshots/restores around a region that must not
        leak allocations either way).
        """
        for addr, data in blocks.items():
            off = addr - self.base
            self.buf[off : off + data.size] = data

    def copy_out(self, addr: int, size: int) -> bytes:
        off = self._check(addr, size)
        return self.buf[off : off + size].tobytes()

    def copy_in(self, addr: int, data: bytes | np.ndarray) -> None:
        data = np.frombuffer(data, dtype=np.uint8) if isinstance(data, (bytes, bytearray)) else np.asarray(data, dtype=np.uint8)
        off = self._check(addr, data.size)
        self.buf[off : off + data.size] = data

    def copy_within(self, dst: int, src: int, size: int) -> None:
        so = self._check(src, size)
        do = self._check(dst, size)
        self.buf[do : do + size] = self.buf[so : so + size]
