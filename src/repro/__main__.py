"""``python3 -m repro`` forwards to the ompicc command-line driver."""

import sys

from repro.ompi.cli import main

if __name__ == "__main__":
    sys.exit(main())
