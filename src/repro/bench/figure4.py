"""Figure 4 reproduction: execution time vs problem size, CUDA vs OMPi.

Each panel of the paper's Fig. 4 is one application: x-axis problem size,
y-axis execution time in seconds (kernel + required memory operations),
two series (pure CUDA, OMPi cudadev).  ``panel()`` regenerates one panel's
series; ``figure4()`` all six.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.bench.harness import BenchResult, run_cuda, run_ompi
from repro.bench.suite import ALL_APPS, get_app


@dataclass
class PanelPoint:
    size: int
    cuda_s: float
    ompi_s: float

    @property
    def ratio(self) -> float:
        return self.ompi_s / self.cuda_s if self.cuda_s else float("inf")


@dataclass
class Panel:
    app: str
    category: str
    points: list[PanelPoint] = field(default_factory=list)

    def series(self) -> tuple[list[int], list[float], list[float]]:
        return ([p.size for p in self.points],
                [p.cuda_s for p in self.points],
                [p.ompi_s for p in self.points])

    def to_rows(self) -> list[str]:
        rows = [f"# {self.app} ({self.category})",
                f"{'size':>8} {'CUDA (s)':>12} {'OMPi (s)':>12} {'OMPi/CUDA':>10}"]
        for p in self.points:
            rows.append(f"{p.size:>8} {p.cuda_s:>12.4f} {p.ompi_s:>12.4f} "
                        f"{p.ratio:>10.3f}")
        return rows


def panel(app_name: str, sizes: Optional[tuple[int, ...]] = None,
          launch_mode: str = "sample", progress=None) -> Panel:
    app = get_app(app_name)
    out = Panel(app.name, app.category)
    for n in sizes or app.sizes:
        rc, _ = run_cuda(app, n, launch_mode=launch_mode)
        ro, _ = run_ompi(app, n, launch_mode=launch_mode)
        out.points.append(PanelPoint(n, rc.mean_s, ro.mean_s))
        if progress:
            progress(app.name, n, rc.mean_s, ro.mean_s)
    return out


def figure4(sizes_override: Optional[dict[str, tuple[int, ...]]] = None,
            launch_mode: str = "sample", progress=None) -> dict[str, Panel]:
    """All six panels (paper order)."""
    panels: dict[str, Panel] = {}
    for name in ALL_APPS:
        sizes = (sizes_override or {}).get(name)
        panels[name] = panel(name, sizes, launch_mode, progress)
    return panels


def render_ascii(panel_: Panel, width: int = 48) -> str:
    """A quick terminal rendition of one Fig. 4 panel (two bars per size,
    like the paper's grouped bar charts)."""
    peak = max(max(p.cuda_s, p.ompi_s) for p in panel_.points) or 1.0
    rows = [f"{panel_.app} ({panel_.category}) — seconds, C=CUDA O=OMPi"]
    for p in panel_.points:
        for tag, value in (("C", p.cuda_s), ("O", p.ompi_s)):
            bar = "#" * max(1, round(width * value / peak))
            label = f"{p.size:>6} {tag}" if tag == "C" else f"{'':>6} {tag}"
            rows.append(f"{label} |{bar:<{width}}| {value:.4f}")
    return "\n".join(rows)


def render_text(panels: dict[str, Panel]) -> str:
    rows: list[str] = ["Figure 4 reproduction — execution time (seconds),",
                       "kernel time + required memory operations, avg of 10 runs", ""]
    for p in panels.values():
        rows.extend(p.to_rows())
        rows.append("")
    return "\n".join(rows)
