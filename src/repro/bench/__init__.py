"""Evaluation harness: the paper's §5 experiments.

The paper uses the Unibench remake of Polybench-ACC: for each application
a sequential version, a pure CUDA version and an OpenMP (target-offload)
version.  :mod:`repro.bench.apps` provides all three for the six
applications of Figure 4 (3dconv, bicg, atax, mvt, gemm, gramschmidt);
:mod:`repro.bench.harness` runs them on the simulated Jetson Nano and
collects the paper's metric ("kernel execution time, plus any required
memory operations", averaged over 10 modelled runs);
:mod:`repro.bench.figure4` regenerates each Fig. 4 panel's data series.
"""

from repro.bench.suite import ALL_APPS, get_app
from repro.bench.harness import BenchResult, run_app, verify_app

__all__ = ["ALL_APPS", "BenchResult", "get_app", "run_app", "verify_app"]
