"""Application registry."""

from __future__ import annotations

from repro.bench.apps.base import AppSpec


def _build_registry() -> dict[str, AppSpec]:
    from repro.bench.apps.atax import Atax
    from repro.bench.apps.bicg import Bicg
    from repro.bench.apps.conv3d import Conv3d
    from repro.bench.apps.gemm import Gemm
    from repro.bench.apps.gramschmidt import Gramschmidt
    from repro.bench.apps.mvt import Mvt

    from repro.bench.apps.extended import EXTENDED_APPS

    apps = [Conv3d(), Bicg(), Atax(), Mvt(), Gemm(), Gramschmidt(),
            *EXTENDED_APPS]
    return {app.name: app for app in apps}


_REGISTRY: dict[str, AppSpec] | None = None


def registry() -> dict[str, AppSpec]:
    global _REGISTRY
    if _REGISTRY is None:
        _REGISTRY = _build_registry()
    return _REGISTRY


def get_app(name: str) -> AppSpec:
    return registry()[name]


#: the paper's Fig. 4 panel order
ALL_APPS = ("3dconv", "bicg", "atax", "mvt", "gemm", "gramschmidt")

#: the rest of the suite ("We get similar results with the rest of the
#: applications in the suite", paper §5)
EXTENDED_APP_NAMES = ("2dconv", "gesummv", "syrk", "2mm")
