"""mvt — matrix-vector product and transpose: x1 += A y1, x2 += A^T y2
(Fig. 4d)."""

from __future__ import annotations

import numpy as np

from repro.bench.apps.base import AppSpec, fmt

_OMP = r'''
float A[{NN}], x1[{N}], x2[{N}], y1[{N}], y2[{N}];

int main(void)
{
    int i, j;
    int n = {N};
    #pragma omp target data map(to: A[0:n*n], y1[0:n], y2[0:n]) \
                            map(tofrom: x1[0:n], x2[0:n])
    {
        #pragma omp target teams distribute parallel for \
            map(to: A[0:n*n], y1[0:n], n) map(tofrom: x1[0:n]) \
            num_teams({TEAMS}) num_threads(256)
        for (i = 0; i < n; i++)
        {
            for (j = 0; j < n; j++)
                x1[i] += A[i * n + j] * y1[j];
        }
        #pragma omp target teams distribute parallel for \
            map(to: A[0:n*n], y2[0:n], n) map(tofrom: x2[0:n]) \
            num_teams({TEAMS}) num_threads(256)
        for (i = 0; i < n; i++)
        {
            for (j = 0; j < n; j++)
                x2[i] += A[j * n + i] * y2[j];
        }
    }
    return 0;
}
'''

_CUDA = r'''
__global__ void mvt_kernel1(float *A, float *x1, float *y1, int n)
{
    int i = blockIdx.x * (blockDim.x * blockDim.y)
          + threadIdx.y * blockDim.x + threadIdx.x;
    if (i < n)
    {
        int j;
        for (j = 0; j < n; j++)
            x1[i] += A[i * n + j] * y1[j];
    }
}

__global__ void mvt_kernel2(float *A, float *x2, float *y2, int n)
{
    int i = blockIdx.x * (blockDim.x * blockDim.y)
          + threadIdx.y * blockDim.x + threadIdx.x;
    if (i < n)
    {
        int j;
        for (j = 0; j < n; j++)
            x2[i] += A[j * n + i] * y2[j];
    }
}

float A[{NN}], x1[{N}], x2[{N}], y1[{N}], y2[{N}];

int main(void)
{
    int n = {N};
    float *dA, *dx1, *dx2, *dy1, *dy2;
    cudaMalloc((void **) &dA, n * n * sizeof(float));
    cudaMalloc((void **) &dx1, n * sizeof(float));
    cudaMalloc((void **) &dx2, n * sizeof(float));
    cudaMalloc((void **) &dy1, n * sizeof(float));
    cudaMalloc((void **) &dy2, n * sizeof(float));
    cudaMemcpy(dA, A, n * n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dx1, x1, n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dx2, x2, n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dy1, y1, n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dy2, y2, n * sizeof(float), cudaMemcpyHostToDevice);
    dim3 block = dim3(32, 8, 1);
    dim3 grid = dim3(({N} + 255) / 256, 1, 1);
    mvt_kernel1<<<grid, block>>>(dA, dx1, dy1, n);
    mvt_kernel2<<<grid, block>>>(dA, dx2, dy2, n);
    cudaMemcpy(x1, dx1, n * sizeof(float), cudaMemcpyDeviceToHost);
    cudaMemcpy(x2, dx2, n * sizeof(float), cudaMemcpyDeviceToHost);
    cudaFree(dA);
    cudaFree(dx1);
    cudaFree(dx2);
    cudaFree(dy1);
    cudaFree(dy2);
    return 0;
}
'''


class Mvt(AppSpec):
    name = "mvt"
    category = "kernel"
    sizes = (512, 1024, 2048, 4096, 8192)
    verify_size = 96
    block_shape = (32, 8, 1)
    outputs = ("x1", "x2")
    rtol = 2e-3

    def mem_bytes(self, n: int) -> int:
        return n * n * 4 * 2 + (64 << 20)

    def num_teams(self, n: int) -> int:
        return max(1, (n + 255) // 256)

    def omp_source(self, n: int) -> str:
        return fmt(_OMP, N=n, NN=n * n, TEAMS=self.num_teams(n))

    def cuda_source(self, n: int) -> str:
        return fmt(_CUDA, N=n, NN=n * n)

    def seed(self, n: int) -> dict[str, np.ndarray]:
        i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        return {
            "A": (((i * j) % 37) / np.float32(37)).astype(np.float32).reshape(-1),
            "x1": ((np.arange(n) % 5) / np.float32(5)).astype(np.float32),
            "x2": ((np.arange(n) % 9) / np.float32(9)).astype(np.float32),
            "y1": (1.0 + (np.arange(n) % 3) / np.float32(3)).astype(np.float32),
            "y2": (2.0 - (np.arange(n) % 4) / np.float32(4)).astype(np.float32),
        }

    def reference(self, n: int, data):
        A = data["A"].reshape(n, n).astype(np.float64)
        return {
            "x1": (data["x1"].astype(np.float64)
                   + A @ data["y1"].astype(np.float64)).astype(np.float32),
            "x2": (data["x2"].astype(np.float64)
                   + A.T @ data["y2"].astype(np.float64)).astype(np.float32),
        }
