"""gemm — matrix multiplication C = alpha*A*B + beta*C (Fig. 4e).

Sizes 128..2048, 32x8 thread blocks, one thread per C element, inner
k-loop of length n per thread.  This is the one application where the
paper observes a discrepancy (OMPi ~18% slower at n=2048).
"""

from __future__ import annotations

import numpy as np

from repro.bench.apps.base import AppSpec, fmt

_OMP = r'''
float A[{NN}], B[{NN}], C[{NN}];

int main(void)
{
    int i, j, k;
    int ni = {N}, nj = {N}, nk = {N};
    float alpha = 32412.0f, beta = 2123.0f;
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: A[0:ni*nk], B[0:nk*nj], ni, nj, nk, alpha, beta) \
        map(tofrom: C[0:ni*nj]) num_teams({TEAMS}) num_threads(256)
    for (i = 0; i < ni; i++)
        for (j = 0; j < nj; j++)
        {
            C[i * nj + j] *= beta;
            for (k = 0; k < nk; k++)
                C[i * nj + j] += alpha * A[i * nk + k] * B[k * nj + j];
        }
    return 0;
}
'''

_CUDA = r'''
__global__ void gemm_kernel(float *A, float *B, float *C,
                            float alpha, float beta, int ni, int nj, int nk)
{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < ni && j < nj)
    {
        int k;
        C[i * nj + j] *= beta;
        for (k = 0; k < nk; k++)
            C[i * nj + j] += alpha * A[i * nk + k] * B[k * nj + j];
    }
}

float A[{NN}], B[{NN}], C[{NN}];

int main(void)
{
    int ni = {N}, nj = {N}, nk = {N};
    float alpha = 32412.0f, beta = 2123.0f;
    float *dA, *dB, *dC;
    cudaMalloc((void **) &dA, ni * nk * sizeof(float));
    cudaMalloc((void **) &dB, nk * nj * sizeof(float));
    cudaMalloc((void **) &dC, ni * nj * sizeof(float));
    cudaMemcpy(dA, A, ni * nk * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dB, B, nk * nj * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dC, C, ni * nj * sizeof(float), cudaMemcpyHostToDevice);
    dim3 block = dim3(32, 8, 1);
    dim3 grid = dim3((nj + 31) / 32, (ni + 7) / 8, 1);
    gemm_kernel<<<grid, block>>>(dA, dB, dC, alpha, beta, ni, nj, nk);
    cudaMemcpy(C, dC, ni * nj * sizeof(float), cudaMemcpyDeviceToHost);
    cudaFree(dA);
    cudaFree(dB);
    cudaFree(dC);
    return 0;
}
'''


class Gemm(AppSpec):
    name = "gemm"
    category = "kernel"
    sizes = (128, 256, 512, 1024, 2048)
    verify_size = 64
    block_shape = (32, 8, 1)
    outputs = ("C",)
    rtol = 2e-3   # long float32 accumulation chains

    def mem_bytes(self, n: int) -> int:
        return 3 * n * n * 4 * 2 + (64 << 20)

    def omp_source(self, n: int) -> str:
        return fmt(_OMP, N=n, NN=n * n, TEAMS=self.num_teams(n))

    def cuda_source(self, n: int) -> str:
        return fmt(_CUDA, N=n, NN=n * n)

    def seed(self, n: int) -> dict[str, np.ndarray]:
        i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        return {
            "A": ((i * j) % 97 / np.float32(n)).astype(np.float32).reshape(-1),
            "B": ((i * (j + 1)) % 89 / np.float32(n)).astype(np.float32).reshape(-1),
            "C": ((i * (j + 2)) % 83 / np.float32(n)).astype(np.float32).reshape(-1),
        }

    def reference(self, n: int, data: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        A = data["A"].reshape(n, n).astype(np.float64)
        B = data["B"].reshape(n, n).astype(np.float64)
        C = data["C"].reshape(n, n).astype(np.float64)
        out = 2123.0 * C + 32412.0 * (A @ B)
        return {"C": out.astype(np.float32).reshape(-1)}
