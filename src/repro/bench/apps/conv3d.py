"""3dconv — 3D convolution stencil (Fig. 4a).

Triple-nested loops over the interior of an n^3 volume; both versions use
the paper's 2x4x32 thread geometry (256 threads) with one thread per
output cell.
"""

from __future__ import annotations

import numpy as np

from repro.bench.apps.base import AppSpec, fmt

_STENCIL = (
    "B[i * {N} * {N} + j * {N} + k] ="
    " c1 * A[(i - 1) * {N} * {N} + j * {N} + k]"
    " + c2 * A[(i + 1) * {N} * {N} + j * {N} + k]"
    " + c3 * A[i * {N} * {N} + (j - 1) * {N} + k]"
    " + c4 * A[i * {N} * {N} + (j + 1) * {N} + k]"
    " + c5 * A[i * {N} * {N} + j * {N} + (k - 1)]"
    " + c6 * A[i * {N} * {N} + j * {N} + (k + 1)]"
    " + c7 * A[i * {N} * {N} + j * {N} + k];"
)

_OMP = r'''
float A[{NNN}], B[{NNN}];

int main(void)
{
    int i, j, k;
    int n = {N};
    float c1 = 0.2f, c2 = -0.3f, c3 = 0.5f, c4 = -0.8f;
    float c5 = 0.6f, c6 = -0.9f, c7 = 0.4f;
    #pragma omp target teams distribute parallel for collapse(3) \
        map(to: A[0:n*n*n], n, c1, c2, c3, c4, c5, c6, c7) \
        map(from: B[0:n*n*n]) num_teams({TEAMS}) num_threads(256)
    for (i = 1; i < {NM1}; i++)
        for (j = 1; j < {NM1}; j++)
            for (k = 1; k < {NM1}; k++)
            {
                {STENCIL}
            }
    return 0;
}
'''

_CUDA = r'''
__global__ void conv3d_kernel(float *A, float *B, int n,
                              float c1, float c2, float c3, float c4,
                              float c5, float c6, float c7)
{
    int k = blockIdx.x * blockDim.x + threadIdx.x + 1;
    int j = blockIdx.y * blockDim.y + threadIdx.y + 1;
    int i = blockIdx.z * blockDim.z + threadIdx.z + 1;
    if (i < n - 1 && j < n - 1 && k < n - 1)
    {
        {STENCIL}
    }
}

float A[{NNN}], B[{NNN}];

int main(void)
{
    int n = {N};
    float c1 = 0.2f, c2 = -0.3f, c3 = 0.5f, c4 = -0.8f;
    float c5 = 0.6f, c6 = -0.9f, c7 = 0.4f;
    float *dA, *dB;
    cudaMalloc((void **) &dA, n * n * n * sizeof(float));
    cudaMalloc((void **) &dB, n * n * n * sizeof(float));
    cudaMemcpy(dA, A, n * n * n * sizeof(float), cudaMemcpyHostToDevice);
    dim3 block = dim3(32, 4, 2);
    dim3 grid = dim3(({N} - 2 + 31) / 32, ({N} - 2 + 3) / 4, ({N} - 2 + 1) / 2);
    conv3d_kernel<<<grid, block>>>(dA, dB, n, c1, c2, c3, c4, c5, c6, c7);
    cudaMemcpy(B, dB, n * n * n * sizeof(float), cudaMemcpyDeviceToHost);
    cudaFree(dA);
    cudaFree(dB);
    return 0;
}
'''


class Conv3d(AppSpec):
    name = "3dconv"
    category = "stencil"
    sizes = (32, 64, 128, 256, 384)
    verify_size = 20
    block_shape = (32, 4, 2)   # the paper's 2x4x32 thread geometry
    outputs = ("B",)
    rtol = 1e-4

    def mem_bytes(self, n: int) -> int:
        return 2 * n * n * n * 4 * 2 + (64 << 20)

    def total_iterations(self, n: int) -> int:
        return max(n - 2, 1) ** 3

    def num_teams(self, n: int) -> int:
        m = n - 2
        return max(1, ((m + 31) // 32) * ((m + 3) // 4) * ((m + 1) // 2))

    def omp_source(self, n: int) -> str:
        return fmt(_OMP, N=n, NNN=n * n * n, NM1=n - 1,
                   TEAMS=self.num_teams(n),
                   STENCIL=fmt(_STENCIL, N=n))

    def cuda_source(self, n: int) -> str:
        return fmt(_CUDA, N=n, NNN=n * n * n, STENCIL=fmt(_STENCIL, N=n))

    def seed(self, n: int) -> dict[str, np.ndarray]:
        i, j, k = np.meshgrid(np.arange(n), np.arange(n), np.arange(n),
                              indexing="ij")
        return {
            "A": (((i + j + k) % 13) / np.float32(13)).astype(np.float32).reshape(-1),
            "B": np.zeros(n * n * n, dtype=np.float32),
        }

    def reference(self, n: int, data):
        A = data["A"].reshape(n, n, n).astype(np.float64)
        B = np.zeros_like(A)
        c1, c2, c3, c4, c5, c6, c7 = 0.2, -0.3, 0.5, -0.8, 0.6, -0.9, 0.4
        c = slice(1, n - 1)
        B[c, c, c] = (
            c1 * A[:-2, c, c] + c2 * A[2:, c, c]
            + c3 * A[c, :-2, c] + c4 * A[c, 2:, c]
            + c5 * A[c, c, :-2] + c6 * A[c, c, 2:]
            + c7 * A[c, c, c]
        )
        return {"B": B.astype(np.float32).reshape(-1)}
