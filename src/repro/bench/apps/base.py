"""Common structure of one benchmark application.

Each app provides, exactly as Unibench does, three versions of the same
computation: a sequential reference (numpy here), a hand-written CUDA
program and an OpenMP target-offload program.  Sources are generated per
problem size so static array sizes match the configuration (Polybench's
compile-time problem sizes).  Array contents are seeded by the harness
directly into the interpreter's global arrays — exact float32 init values
come from :meth:`AppSpec.seed`, mirrored by the numpy reference.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np


class AppSpec(ABC):
    #: short name (paper's figure labels)
    name: str = ""
    #: stencil | kernel | solver (paper's taxonomy)
    category: str = "kernel"
    #: problem sizes of the paper's Fig. 4 x-axis
    sizes: tuple[int, ...] = ()
    #: size used for exact functional verification
    verify_size: int = 64
    #: thread-block shape both versions use (paper §5)
    block_shape: tuple[int, int, int] = (32, 8, 1)
    #: rough bytes of host/device memory needed per run at size n
    def mem_bytes(self, n: int) -> int:
        return 4 * n * n * 4

    @abstractmethod
    def omp_source(self, n: int) -> str:
        """The OpenMP C program (target-offload version)."""

    @abstractmethod
    def cuda_source(self, n: int) -> str:
        """The pure CUDA program."""

    @abstractmethod
    def seed(self, n: int) -> dict[str, np.ndarray]:
        """Initial contents of the program's global arrays."""

    @abstractmethod
    def reference(self, n: int, data: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Expected outputs (numpy, float32, same op structure)."""

    #: names of the output arrays checked by verification
    outputs: tuple[str, ...] = ()
    #: verification tolerance (float32 accumulation-order differences)
    rtol: float = 1e-4
    atol: float = 1e-5

    def num_teams(self, n: int) -> int:
        """Teams needed so every iteration gets one thread (paper:
        'the values we used ... matched the problem size')."""
        bx, by, bz = self.block_shape
        return max(1, (self.total_iterations(n) + bx * by * bz - 1)
                   // (bx * by * bz))

    def total_iterations(self, n: int) -> int:
        return n * n

    def __repr__(self) -> str:  # pragma: no cover
        return f"<app {self.name}>"


def fmt(template: str, **kw) -> str:
    """String templating with {{ }} braces left alone."""
    out = template
    for key, value in kw.items():
        out = out.replace("{" + key + "}", str(value))
    return out
