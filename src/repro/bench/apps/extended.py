"""Extended Unibench set (paper §5: "We get similar results with the rest
of the applications in the suite").

Four more Polybench-ACC applications beyond the six shown in Figure 4 —
``2dconv`` (stencil), ``gesummv`` and ``syrk`` (kernels), ``2mm``
(a two-stage solver-style pipeline) — with the same three-version
methodology, used by ``benchmarks/bench_extended_suite.py``.
"""

from __future__ import annotations

import numpy as np

from repro.bench.apps.base import AppSpec, fmt

# ---------------------------------------------------------------------- 2dconv

_CONV2D_STENCIL = (
    "B[i * {N} + j] ="
    " c1 * A[(i - 1) * {N} + (j - 1)] + c2 * A[(i - 1) * {N} + j]"
    " + c3 * A[(i - 1) * {N} + (j + 1)] + c4 * A[i * {N} + (j - 1)]"
    " + c5 * A[i * {N} + j] + c6 * A[i * {N} + (j + 1)]"
    " + c7 * A[(i + 1) * {N} + (j - 1)] + c8 * A[(i + 1) * {N} + j]"
    " + c9 * A[(i + 1) * {N} + (j + 1)];"
)

_CONV2D_OMP = r'''
float A[{NN}], B[{NN}];

int main(void)
{
    int i, j;
    int n = {N};
    float c1 = 0.2f, c2 = -0.3f, c3 = 0.4f, c4 = -0.5f, c5 = 0.6f;
    float c6 = -0.7f, c7 = 0.8f, c8 = -0.9f, c9 = 0.10f;
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: A[0:n*n], n, c1, c2, c3, c4, c5, c6, c7, c8, c9) \
        map(from: B[0:n*n]) num_teams({TEAMS}) num_threads(256)
    for (i = 1; i < {NM1}; i++)
        for (j = 1; j < {NM1}; j++)
        {
            {STENCIL}
        }
    return 0;
}
'''

_CONV2D_CUDA = r'''
__global__ void conv2d_kernel(float *A, float *B, int n,
                              float c1, float c2, float c3, float c4,
                              float c5, float c6, float c7, float c8,
                              float c9)
{
    int j = blockIdx.x * blockDim.x + threadIdx.x + 1;
    int i = blockIdx.y * blockDim.y + threadIdx.y + 1;
    if (i < n - 1 && j < n - 1)
    {
        {STENCIL}
    }
}

float A[{NN}], B[{NN}];

int main(void)
{
    int n = {N};
    float c1 = 0.2f, c2 = -0.3f, c3 = 0.4f, c4 = -0.5f, c5 = 0.6f;
    float c6 = -0.7f, c7 = 0.8f, c8 = -0.9f, c9 = 0.10f;
    float *dA, *dB;
    cudaMalloc((void **) &dA, n * n * sizeof(float));
    cudaMalloc((void **) &dB, n * n * sizeof(float));
    cudaMemcpy(dA, A, n * n * sizeof(float), cudaMemcpyHostToDevice);
    dim3 block = dim3(32, 8, 1);
    dim3 grid = dim3(({N} - 2 + 31) / 32, ({N} - 2 + 7) / 8, 1);
    conv2d_kernel<<<grid, block>>>(dA, dB, n, c1, c2, c3, c4, c5, c6, c7, c8, c9);
    cudaMemcpy(B, dB, n * n * sizeof(float), cudaMemcpyDeviceToHost);
    cudaFree(dA);
    cudaFree(dB);
    return 0;
}
'''


class Conv2d(AppSpec):
    name = "2dconv"
    category = "stencil"
    sizes = (256, 512, 1024, 2048, 4096)
    verify_size = 48
    block_shape = (32, 8, 1)
    outputs = ("B",)

    def mem_bytes(self, n: int) -> int:
        return 2 * n * n * 4 * 2 + (64 << 20)

    def num_teams(self, n: int) -> int:
        m = n - 2
        return max(1, ((m + 31) // 32) * ((m + 7) // 8))

    def omp_source(self, n: int) -> str:
        return fmt(_CONV2D_OMP, N=n, NN=n * n, NM1=n - 1,
                   TEAMS=self.num_teams(n),
                   STENCIL=fmt(_CONV2D_STENCIL, N=n))

    def cuda_source(self, n: int) -> str:
        return fmt(_CONV2D_CUDA, N=n, NN=n * n,
                   STENCIL=fmt(_CONV2D_STENCIL, N=n))

    def seed(self, n: int) -> dict[str, np.ndarray]:
        i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        return {
            "A": (((i * 7 + j * 3) % 17) / np.float32(17)).astype(np.float32).reshape(-1),
            "B": np.zeros(n * n, dtype=np.float32),
        }

    def reference(self, n: int, data):
        A = data["A"].reshape(n, n).astype(np.float64)
        B = np.zeros_like(A)
        c = slice(1, n - 1)
        c1, c2, c3, c4, c5, c6, c7, c8, c9 = (0.2, -0.3, 0.4, -0.5, 0.6,
                                              -0.7, 0.8, -0.9, 0.10)
        B[c, c] = (c1 * A[:-2, :-2] + c2 * A[:-2, c] + c3 * A[:-2, 2:]
                   + c4 * A[c, :-2] + c5 * A[c, c] + c6 * A[c, 2:]
                   + c7 * A[2:, :-2] + c8 * A[2:, c] + c9 * A[2:, 2:])
        return {"B": B.astype(np.float32).reshape(-1)}


# --------------------------------------------------------------------- gesummv

_GESUMMV_OMP = r'''
float A[{NN}], B[{NN}], x[{N}], y[{N}], tmp[{N}];

int main(void)
{
    int i, j;
    int n = {N};
    float alpha = 43532.0f, beta = 12313.0f;
    #pragma omp target teams distribute parallel for \
        map(to: A[0:n*n], B[0:n*n], x[0:n], n, alpha, beta) \
        map(from: y[0:n], tmp[0:n]) num_teams({TEAMS}) num_threads(256)
    for (i = 0; i < n; i++)
    {
        tmp[i] = 0.0f;
        y[i] = 0.0f;
        for (j = 0; j < n; j++)
        {
            tmp[i] = A[i * n + j] * x[j] + tmp[i];
            y[i] = B[i * n + j] * x[j] + y[i];
        }
        y[i] = alpha * tmp[i] + beta * y[i];
    }
    return 0;
}
'''

_GESUMMV_CUDA = r'''
__global__ void gesummv_kernel(float *A, float *B, float *x, float *y,
                               float *tmp, float alpha, float beta, int n)
{
    int i = blockIdx.x * (blockDim.x * blockDim.y)
          + threadIdx.y * blockDim.x + threadIdx.x;
    if (i < n)
    {
        int j;
        tmp[i] = 0.0f;
        y[i] = 0.0f;
        for (j = 0; j < n; j++)
        {
            tmp[i] = A[i * n + j] * x[j] + tmp[i];
            y[i] = B[i * n + j] * x[j] + y[i];
        }
        y[i] = alpha * tmp[i] + beta * y[i];
    }
}

float A[{NN}], B[{NN}], x[{N}], y[{N}], tmp[{N}];

int main(void)
{
    int n = {N};
    float alpha = 43532.0f, beta = 12313.0f;
    float *dA, *dB, *dx, *dy, *dtmp;
    cudaMalloc((void **) &dA, n * n * sizeof(float));
    cudaMalloc((void **) &dB, n * n * sizeof(float));
    cudaMalloc((void **) &dx, n * sizeof(float));
    cudaMalloc((void **) &dy, n * sizeof(float));
    cudaMalloc((void **) &dtmp, n * sizeof(float));
    cudaMemcpy(dA, A, n * n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dB, B, n * n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dx, x, n * sizeof(float), cudaMemcpyHostToDevice);
    dim3 block = dim3(32, 8, 1);
    dim3 grid = dim3(({N} + 255) / 256, 1, 1);
    gesummv_kernel<<<grid, block>>>(dA, dB, dx, dy, dtmp, alpha, beta, n);
    cudaMemcpy(y, dy, n * sizeof(float), cudaMemcpyDeviceToHost);
    cudaFree(dA); cudaFree(dB); cudaFree(dx); cudaFree(dy); cudaFree(dtmp);
    return 0;
}
'''


class Gesummv(AppSpec):
    name = "gesummv"
    category = "kernel"
    sizes = (512, 1024, 2048, 4096)
    verify_size = 96
    block_shape = (32, 8, 1)
    outputs = ("y",)
    rtol = 2e-3

    def mem_bytes(self, n: int) -> int:
        return 2 * n * n * 4 * 2 + (64 << 20)

    def num_teams(self, n: int) -> int:
        return max(1, (n + 255) // 256)

    def omp_source(self, n: int) -> str:
        return fmt(_GESUMMV_OMP, N=n, NN=n * n, TEAMS=self.num_teams(n))

    def cuda_source(self, n: int) -> str:
        return fmt(_GESUMMV_CUDA, N=n, NN=n * n)

    def seed(self, n: int) -> dict[str, np.ndarray]:
        i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        return {
            "A": (((i * j) % 43) / np.float32(n)).astype(np.float32).reshape(-1),
            "B": (((i + j) % 31) / np.float32(n)).astype(np.float32).reshape(-1),
            "x": ((np.arange(n) % 19) / np.float32(19)).astype(np.float32),
            "y": np.zeros(n, dtype=np.float32),
            "tmp": np.zeros(n, dtype=np.float32),
        }

    def reference(self, n: int, data):
        A = data["A"].reshape(n, n).astype(np.float64)
        B = data["B"].reshape(n, n).astype(np.float64)
        x = data["x"].astype(np.float64)
        y = 43532.0 * (A @ x) + 12313.0 * (B @ x)
        return {"y": y.astype(np.float32)}


# ------------------------------------------------------------------------ syrk

_SYRK_OMP = r'''
float A[{NN}], C[{NN}];

int main(void)
{
    int i, j, k;
    int n = {N};
    float alpha = 12435.0f, beta = 4546.0f;
    #pragma omp target teams distribute parallel for collapse(2) \
        map(to: A[0:n*n], n, alpha, beta) map(tofrom: C[0:n*n]) \
        num_teams({TEAMS}) num_threads(256)
    for (i = 0; i < n; i++)
        for (j = 0; j < n; j++)
        {
            C[i * n + j] *= beta;
            for (k = 0; k < n; k++)
                C[i * n + j] += alpha * A[i * n + k] * A[j * n + k];
        }
    return 0;
}
'''

_SYRK_CUDA = r'''
__global__ void syrk_kernel(float *A, float *C, float alpha, float beta, int n)
{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < n && j < n)
    {
        int k;
        C[i * n + j] *= beta;
        for (k = 0; k < n; k++)
            C[i * n + j] += alpha * A[i * n + k] * A[j * n + k];
    }
}

float A[{NN}], C[{NN}];

int main(void)
{
    int n = {N};
    float alpha = 12435.0f, beta = 4546.0f;
    float *dA, *dC;
    cudaMalloc((void **) &dA, n * n * sizeof(float));
    cudaMalloc((void **) &dC, n * n * sizeof(float));
    cudaMemcpy(dA, A, n * n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dC, C, n * n * sizeof(float), cudaMemcpyHostToDevice);
    dim3 block = dim3(32, 8, 1);
    dim3 grid = dim3(({N} + 31) / 32, ({N} + 7) / 8, 1);
    syrk_kernel<<<grid, block>>>(dA, dC, alpha, beta, n);
    cudaMemcpy(C, dC, n * n * sizeof(float), cudaMemcpyDeviceToHost);
    cudaFree(dA);
    cudaFree(dC);
    return 0;
}
'''


class Syrk(AppSpec):
    name = "syrk"
    category = "kernel"
    sizes = (128, 256, 512, 1024)
    verify_size = 48
    block_shape = (32, 8, 1)
    outputs = ("C",)
    rtol = 2e-3

    def mem_bytes(self, n: int) -> int:
        return 2 * n * n * 4 * 2 + (64 << 20)

    def omp_source(self, n: int) -> str:
        return fmt(_SYRK_OMP, N=n, NN=n * n, TEAMS=self.num_teams(n))

    def cuda_source(self, n: int) -> str:
        return fmt(_SYRK_CUDA, N=n, NN=n * n)

    def seed(self, n: int) -> dict[str, np.ndarray]:
        i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        return {
            "A": (((i * j + 3) % 23) / np.float32(n)).astype(np.float32).reshape(-1),
            "C": (((i + j) % 13) / np.float32(n)).astype(np.float32).reshape(-1),
        }

    def reference(self, n: int, data):
        A = data["A"].reshape(n, n).astype(np.float64)
        C = data["C"].reshape(n, n).astype(np.float64)
        out = 4546.0 * C + 12435.0 * (A @ A.T)
        return {"C": out.astype(np.float32).reshape(-1)}


# ------------------------------------------------------------------------- 2mm

_MM2_OMP = r'''
float A[{NN}], B[{NN}], C[{NN}], D[{NN}], tmp[{NN}];

int main(void)
{
    int i, j, k;
    int n = {N};
    float alpha = 32412.0f, beta = 2123.0f;
    #pragma omp target data map(to: A[0:n*n], B[0:n*n], C[0:n*n]) \
                            map(tofrom: D[0:n*n]) map(alloc: tmp[0:n*n])
    {
        #pragma omp target teams distribute parallel for collapse(2) \
            map(to: A[0:n*n], B[0:n*n], n, alpha) map(tofrom: tmp[0:n*n]) \
            num_teams({TEAMS}) num_threads(256)
        for (i = 0; i < n; i++)
            for (j = 0; j < n; j++)
            {
                tmp[i * n + j] = 0.0f;
                for (k = 0; k < n; k++)
                    tmp[i * n + j] += alpha * A[i * n + k] * B[k * n + j];
            }
        #pragma omp target teams distribute parallel for collapse(2) \
            map(to: tmp[0:n*n], C[0:n*n], n, beta) map(tofrom: D[0:n*n]) \
            num_teams({TEAMS}) num_threads(256)
        for (i = 0; i < n; i++)
            for (j = 0; j < n; j++)
            {
                D[i * n + j] *= beta;
                for (k = 0; k < n; k++)
                    D[i * n + j] += tmp[i * n + k] * C[k * n + j];
            }
    }
    return 0;
}
'''

_MM2_CUDA = r'''
__global__ void mm2_kernel1(float *A, float *B, float *tmp, float alpha, int n)
{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < n && j < n)
    {
        int k;
        tmp[i * n + j] = 0.0f;
        for (k = 0; k < n; k++)
            tmp[i * n + j] += alpha * A[i * n + k] * B[k * n + j];
    }
}

__global__ void mm2_kernel2(float *tmp, float *C, float *D, float beta, int n)
{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    int i = blockIdx.y * blockDim.y + threadIdx.y;
    if (i < n && j < n)
    {
        int k;
        D[i * n + j] *= beta;
        for (k = 0; k < n; k++)
            D[i * n + j] += tmp[i * n + k] * C[k * n + j];
    }
}

float A[{NN}], B[{NN}], C[{NN}], D[{NN}], tmp[{NN}];

int main(void)
{
    int n = {N};
    float alpha = 32412.0f, beta = 2123.0f;
    float *dA, *dB, *dC, *dD, *dtmp;
    cudaMalloc((void **) &dA, n * n * sizeof(float));
    cudaMalloc((void **) &dB, n * n * sizeof(float));
    cudaMalloc((void **) &dC, n * n * sizeof(float));
    cudaMalloc((void **) &dD, n * n * sizeof(float));
    cudaMalloc((void **) &dtmp, n * n * sizeof(float));
    cudaMemcpy(dA, A, n * n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dB, B, n * n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dC, C, n * n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dD, D, n * n * sizeof(float), cudaMemcpyHostToDevice);
    dim3 block = dim3(32, 8, 1);
    dim3 grid = dim3(({N} + 31) / 32, ({N} + 7) / 8, 1);
    mm2_kernel1<<<grid, block>>>(dA, dB, dtmp, alpha, n);
    mm2_kernel2<<<grid, block>>>(dtmp, dC, dD, beta, n);
    cudaMemcpy(D, dD, n * n * sizeof(float), cudaMemcpyDeviceToHost);
    cudaFree(dA); cudaFree(dB); cudaFree(dC); cudaFree(dD); cudaFree(dtmp);
    return 0;
}
'''


class Mm2(AppSpec):
    name = "2mm"
    category = "solver"
    sizes = (128, 256, 512, 1024)
    verify_size = 48
    block_shape = (32, 8, 1)
    outputs = ("D",)
    rtol = 2e-3

    def mem_bytes(self, n: int) -> int:
        return 5 * n * n * 4 * 2 + (64 << 20)

    def omp_source(self, n: int) -> str:
        return fmt(_MM2_OMP, N=n, NN=n * n, TEAMS=self.num_teams(n))

    def cuda_source(self, n: int) -> str:
        return fmt(_MM2_CUDA, N=n, NN=n * n)

    def seed(self, n: int) -> dict[str, np.ndarray]:
        i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        s = np.float32(n)
        return {
            "A": (((i * j) % 29) / s).astype(np.float32).reshape(-1),
            "B": (((i + 2 * j) % 31) / s).astype(np.float32).reshape(-1),
            "C": (((3 * i + j) % 37) / s).astype(np.float32).reshape(-1),
            "D": (((i - j) % 41) / s).astype(np.float32).reshape(-1),
            "tmp": np.zeros(n * n, dtype=np.float32),
        }

    def reference(self, n: int, data):
        A = data["A"].reshape(n, n).astype(np.float64)
        B = data["B"].reshape(n, n).astype(np.float64)
        C = data["C"].reshape(n, n).astype(np.float64)
        D = data["D"].reshape(n, n).astype(np.float64)
        tmp = 32412.0 * (A @ B)
        out = 2123.0 * D + tmp @ C
        return {"D": out.astype(np.float32).reshape(-1)}


EXTENDED_APPS = (Conv2d(), Gesummv(), Syrk(), Mm2())
