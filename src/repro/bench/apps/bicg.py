"""bicg — BiCG sub-kernels of BiCGStab: s = A^T r, q = A p (Fig. 4b)."""

from __future__ import annotations

import numpy as np

from repro.bench.apps.base import AppSpec, fmt

_OMP = r'''
float A[{NN}], r[{N}], s[{N}], p[{N}], q[{N}];

int main(void)
{
    int i, j;
    int nx = {N}, ny = {N};
    #pragma omp target data map(to: A[0:nx*ny], r[0:nx], p[0:ny]) \
                            map(from: s[0:ny], q[0:nx])
    {
        #pragma omp target teams distribute parallel for \
            map(to: A[0:nx*ny], r[0:nx], nx, ny) map(from: s[0:ny]) \
            num_teams({TEAMS}) num_threads(256)
        for (j = 0; j < ny; j++)
        {
            s[j] = 0.0f;
            for (i = 0; i < nx; i++)
                s[j] += r[i] * A[i * ny + j];
        }
        #pragma omp target teams distribute parallel for \
            map(to: A[0:nx*ny], p[0:ny], nx, ny) map(from: q[0:nx]) \
            num_teams({TEAMS}) num_threads(256)
        for (i = 0; i < nx; i++)
        {
            q[i] = 0.0f;
            for (j = 0; j < ny; j++)
                q[i] += A[i * ny + j] * p[j];
        }
    }
    return 0;
}
'''

_CUDA = r'''
__global__ void bicg_kernel1(float *A, float *r, float *s, int nx, int ny)
{
    int j = blockIdx.x * (blockDim.x * blockDim.y)
          + threadIdx.y * blockDim.x + threadIdx.x;
    if (j < ny)
    {
        int i;
        s[j] = 0.0f;
        for (i = 0; i < nx; i++)
            s[j] += r[i] * A[i * ny + j];
    }
}

__global__ void bicg_kernel2(float *A, float *p, float *q, int nx, int ny)
{
    int i = blockIdx.x * (blockDim.x * blockDim.y)
          + threadIdx.y * blockDim.x + threadIdx.x;
    if (i < nx)
    {
        int j;
        q[i] = 0.0f;
        for (j = 0; j < ny; j++)
            q[i] += A[i * ny + j] * p[j];
    }
}

float A[{NN}], r[{N}], s[{N}], p[{N}], q[{N}];

int main(void)
{
    int nx = {N}, ny = {N};
    float *dA, *dr, *ds, *dp, *dq;
    cudaMalloc((void **) &dA, nx * ny * sizeof(float));
    cudaMalloc((void **) &dr, nx * sizeof(float));
    cudaMalloc((void **) &ds, ny * sizeof(float));
    cudaMalloc((void **) &dp, ny * sizeof(float));
    cudaMalloc((void **) &dq, nx * sizeof(float));
    cudaMemcpy(dA, A, nx * ny * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dr, r, nx * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dp, p, ny * sizeof(float), cudaMemcpyHostToDevice);
    dim3 block = dim3(32, 8, 1);
    dim3 grid = dim3(({N} + 255) / 256, 1, 1);
    bicg_kernel1<<<grid, block>>>(dA, dr, ds, nx, ny);
    bicg_kernel2<<<grid, block>>>(dA, dp, dq, nx, ny);
    cudaMemcpy(s, ds, ny * sizeof(float), cudaMemcpyDeviceToHost);
    cudaMemcpy(q, dq, nx * sizeof(float), cudaMemcpyDeviceToHost);
    cudaFree(dA);
    cudaFree(dr);
    cudaFree(ds);
    cudaFree(dp);
    cudaFree(dq);
    return 0;
}
'''


class Bicg(AppSpec):
    name = "bicg"
    category = "kernel"
    sizes = (512, 1024, 2048, 4096, 8192)
    verify_size = 96
    block_shape = (32, 8, 1)
    outputs = ("s", "q")
    rtol = 2e-3

    def mem_bytes(self, n: int) -> int:
        return n * n * 4 * 2 + (64 << 20)

    def num_teams(self, n: int) -> int:
        return max(1, (n + 255) // 256)

    def omp_source(self, n: int) -> str:
        return fmt(_OMP, N=n, NN=n * n, TEAMS=self.num_teams(n))

    def cuda_source(self, n: int) -> str:
        return fmt(_CUDA, N=n, NN=n * n)

    def seed(self, n: int) -> dict[str, np.ndarray]:
        i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        return {
            "A": (((i * (j + 1)) % 101) / np.float32(n)).astype(np.float32).reshape(-1),
            "r": ((np.arange(n) % 7) / np.float32(7)).astype(np.float32),
            "p": ((np.arange(n) % 11) / np.float32(11)).astype(np.float32),
            "s": np.zeros(n, dtype=np.float32),
            "q": np.zeros(n, dtype=np.float32),
        }

    def reference(self, n: int, data):
        A = data["A"].reshape(n, n).astype(np.float64)
        return {
            "s": (A.T @ data["r"].astype(np.float64)).astype(np.float32),
            "q": (A @ data["p"].astype(np.float64)).astype(np.float32),
        }
