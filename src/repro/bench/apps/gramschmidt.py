"""gramschmidt — modified Gram-Schmidt QR decomposition (Fig. 4f).

The solver of the paper's set: a host loop over columns k launches three
kernels per iteration (norm of column k, normalisation into Q, and the
update of the trailing columns), exactly the Polybench-ACC structure.
Thread geometry is the paper's 256x1.
"""

from __future__ import annotations

import numpy as np

from repro.bench.apps.base import AppSpec, fmt

_OMP = r'''
float A[{NN}], R[{NN}], Q[{NN}];
float nrm[1];

int main(void)
{
    int i, j, k;
    int n = {N};
    #pragma omp target data map(tofrom: A[0:n*n]) \
                            map(from: R[0:n*n], Q[0:n*n]) map(alloc: nrm[0:1])
    {
        for (k = 0; k < n; k++)
        {
            #pragma omp target map(to: n, k) \
                map(tofrom: A[0:n*n], R[0:n*n], nrm[0:1])
            {
                int i2;
                float acc = 0.0f;
                for (i2 = 0; i2 < n; i2++)
                    acc += A[i2 * n + k] * A[i2 * n + k];
                nrm[0] = acc;
                R[k * n + k] = sqrtf(nrm[0]);
            }
            #pragma omp target teams distribute parallel for \
                map(to: n, k) map(tofrom: A[0:n*n], R[0:n*n], Q[0:n*n]) \
                num_teams({TEAMS}) num_threads(256)
            for (i = 0; i < n; i++)
                Q[i * n + k] = A[i * n + k] / R[k * n + k];
            #pragma omp target teams distribute parallel for \
                map(to: n, k) map(tofrom: A[0:n*n], R[0:n*n], Q[0:n*n]) \
                num_teams({TEAMS}) num_threads(256)
            for (j = k + 1; j < n; j++)
            {
                int i3;
                R[k * n + j] = 0.0f;
                for (i3 = 0; i3 < n; i3++)
                    R[k * n + j] += Q[i3 * n + k] * A[i3 * n + j];
                for (i3 = 0; i3 < n; i3++)
                    A[i3 * n + j] -= Q[i3 * n + k] * R[k * n + j];
            }
        }
    }
    return 0;
}
'''

_CUDA = r'''
__global__ void gs_kernel1(float *A, float *R, int n, int k)
{
    int tid = blockIdx.x * blockDim.x + threadIdx.x;
    if (tid == 0)
    {
        int i;
        float nrm = 0.0f;
        for (i = 0; i < n; i++)
            nrm += A[i * n + k] * A[i * n + k];
        R[k * n + k] = sqrtf(nrm);
    }
}

__global__ void gs_kernel2(float *A, float *R, float *Q, int n, int k)
{
    int i = blockIdx.x * blockDim.x + threadIdx.x;
    if (i < n)
        Q[i * n + k] = A[i * n + k] / R[k * n + k];
}

__global__ void gs_kernel3(float *A, float *R, float *Q, int n, int k)
{
    int j = blockIdx.x * blockDim.x + threadIdx.x;
    if (j > k && j < n)
    {
        int i;
        R[k * n + j] = 0.0f;
        for (i = 0; i < n; i++)
            R[k * n + j] += Q[i * n + k] * A[i * n + j];
        for (i = 0; i < n; i++)
            A[i * n + j] -= Q[i * n + k] * R[k * n + j];
    }
}

float A[{NN}], R[{NN}], Q[{NN}];

int main(void)
{
    int n = {N}, k;
    float *dA, *dR, *dQ;
    cudaMalloc((void **) &dA, n * n * sizeof(float));
    cudaMalloc((void **) &dR, n * n * sizeof(float));
    cudaMalloc((void **) &dQ, n * n * sizeof(float));
    cudaMemcpy(dA, A, n * n * sizeof(float), cudaMemcpyHostToDevice);
    dim3 block = dim3(256, 1, 1);
    dim3 grid = dim3(({N} + 255) / 256, 1, 1);
    for (k = 0; k < n; k++)
    {
        gs_kernel1<<<1, block>>>(dA, dR, n, k);
        gs_kernel2<<<grid, block>>>(dA, dR, dQ, n, k);
        gs_kernel3<<<grid, block>>>(dA, dR, dQ, n, k);
    }
    cudaMemcpy(A, dA, n * n * sizeof(float), cudaMemcpyDeviceToHost);
    cudaMemcpy(R, dR, n * n * sizeof(float), cudaMemcpyDeviceToHost);
    cudaMemcpy(Q, dQ, n * n * sizeof(float), cudaMemcpyDeviceToHost);
    cudaFree(dA);
    cudaFree(dR);
    cudaFree(dQ);
    return 0;
}
'''


class Gramschmidt(AppSpec):
    name = "gramschmidt"
    category = "solver"
    sizes = (128, 256, 512, 1024, 2048)
    verify_size = 24
    block_shape = (256, 1, 1)   # the paper: "fixed to use 256x1 threads"
    outputs = ("Q", "R")
    rtol = 5e-2     # float32 MGS is numerically delicate
    atol = 1e-3

    def mem_bytes(self, n: int) -> int:
        return 3 * n * n * 4 * 2 + (64 << 20)

    def num_teams(self, n: int) -> int:
        return max(1, (n + 255) // 256)

    def omp_source(self, n: int) -> str:
        return fmt(_OMP, N=n, NN=n * n, TEAMS=self.num_teams(n))

    def cuda_source(self, n: int) -> str:
        return fmt(_CUDA, N=n, NN=n * n)

    def seed(self, n: int) -> dict[str, np.ndarray]:
        i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        rng = np.random.default_rng(42)
        A = (rng.standard_normal((n, n)) * 0.5 + np.eye(n) * n).astype(np.float32)
        return {
            "A": A.reshape(-1),
            "R": np.zeros(n * n, dtype=np.float32),
            "Q": np.zeros(n * n, dtype=np.float32),
            "nrm": np.zeros(1, dtype=np.float32),
        }

    def reference(self, n: int, data):
        # mirror the kernel algorithm (modified Gram-Schmidt, same order)
        A = data["A"].reshape(n, n).astype(np.float64).copy()
        R = np.zeros((n, n))
        Q = np.zeros((n, n))
        for k in range(n):
            R[k, k] = np.sqrt(np.sum(A[:, k] ** 2))
            Q[:, k] = A[:, k] / R[k, k]
            for j in range(k + 1, n):
                R[k, j] = Q[:, k] @ A[:, j]
                A[:, j] -= Q[:, k] * R[k, j]
        return {"Q": Q.astype(np.float32).reshape(-1),
                "R": R.astype(np.float32).reshape(-1)}
