"""atax — y = A^T (A x) (Fig. 4c)."""

from __future__ import annotations

import numpy as np

from repro.bench.apps.base import AppSpec, fmt

_OMP = r'''
float A[{NN}], x[{N}], y[{N}], tmp[{N}];

int main(void)
{
    int i, j;
    int nx = {N}, ny = {N};
    #pragma omp target data map(to: A[0:nx*ny], x[0:ny]) \
                            map(from: y[0:ny]) map(alloc: tmp[0:nx])
    {
        #pragma omp target teams distribute parallel for \
            map(to: A[0:nx*ny], x[0:ny], nx, ny) map(from: tmp[0:nx]) \
            num_teams({TEAMS}) num_threads(256)
        for (i = 0; i < nx; i++)
        {
            tmp[i] = 0.0f;
            for (j = 0; j < ny; j++)
                tmp[i] += A[i * ny + j] * x[j];
        }
        #pragma omp target teams distribute parallel for \
            map(to: A[0:nx*ny], tmp[0:nx], nx, ny) map(from: y[0:ny]) \
            num_teams({TEAMS}) num_threads(256)
        for (j = 0; j < ny; j++)
        {
            y[j] = 0.0f;
            for (i = 0; i < nx; i++)
                y[j] += A[i * ny + j] * tmp[i];
        }
    }
    return 0;
}
'''

_CUDA = r'''
__global__ void atax_kernel1(float *A, float *x, float *tmp, int nx, int ny)
{
    int i = blockIdx.x * (blockDim.x * blockDim.y)
          + threadIdx.y * blockDim.x + threadIdx.x;
    if (i < nx)
    {
        int j;
        tmp[i] = 0.0f;
        for (j = 0; j < ny; j++)
            tmp[i] += A[i * ny + j] * x[j];
    }
}

__global__ void atax_kernel2(float *A, float *tmp, float *y, int nx, int ny)
{
    int j = blockIdx.x * (blockDim.x * blockDim.y)
          + threadIdx.y * blockDim.x + threadIdx.x;
    if (j < ny)
    {
        int i;
        y[j] = 0.0f;
        for (i = 0; i < nx; i++)
            y[j] += A[i * ny + j] * tmp[i];
    }
}

float A[{NN}], x[{N}], y[{N}], tmp[{N}];

int main(void)
{
    int nx = {N}, ny = {N};
    float *dA, *dx, *dy, *dtmp;
    cudaMalloc((void **) &dA, nx * ny * sizeof(float));
    cudaMalloc((void **) &dx, ny * sizeof(float));
    cudaMalloc((void **) &dy, ny * sizeof(float));
    cudaMalloc((void **) &dtmp, nx * sizeof(float));
    cudaMemcpy(dA, A, nx * ny * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpy(dx, x, ny * sizeof(float), cudaMemcpyHostToDevice);
    dim3 block = dim3(32, 8, 1);
    dim3 grid = dim3(({N} + 255) / 256, 1, 1);
    atax_kernel1<<<grid, block>>>(dA, dx, dtmp, nx, ny);
    atax_kernel2<<<grid, block>>>(dA, dtmp, dy, nx, ny);
    cudaMemcpy(y, dy, ny * sizeof(float), cudaMemcpyDeviceToHost);
    cudaFree(dA);
    cudaFree(dx);
    cudaFree(dy);
    cudaFree(dtmp);
    return 0;
}
'''


class Atax(AppSpec):
    name = "atax"
    category = "kernel"
    sizes = (512, 1024, 2048, 4096, 8192)
    verify_size = 96
    block_shape = (32, 8, 1)
    outputs = ("y",)
    rtol = 2e-3

    def mem_bytes(self, n: int) -> int:
        return n * n * 4 * 2 + (64 << 20)

    def num_teams(self, n: int) -> int:
        return max(1, (n + 255) // 256)

    def omp_source(self, n: int) -> str:
        return fmt(_OMP, N=n, NN=n * n, TEAMS=self.num_teams(n))

    def cuda_source(self, n: int) -> str:
        return fmt(_CUDA, N=n, NN=n * n)

    def seed(self, n: int) -> dict[str, np.ndarray]:
        i, j = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
        return {
            "A": (((i + j) % 61) / np.float32(61)).astype(np.float32).reshape(-1),
            "x": (1.0 + (np.arange(n) % 13) / np.float32(13)).astype(np.float32),
            "y": np.zeros(n, dtype=np.float32),
            "tmp": np.zeros(n, dtype=np.float32),
        }

    def reference(self, n: int, data):
        A = data["A"].reshape(n, n).astype(np.float64)
        x = data["x"].astype(np.float64)
        return {"y": (A.T @ (A @ x)).astype(np.float32)}
