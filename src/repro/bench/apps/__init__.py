"""Unibench/Polybench-ACC application set (paper §5)."""

from repro.bench.apps.base import AppSpec

__all__ = ["AppSpec"]
