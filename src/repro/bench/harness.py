"""Benchmark execution harness.

Reproduces the paper's measurement protocol: each (application, size,
version) runs on the simulated board; the reported time is "kernel
execution time, plus any required memory operations", averaged over 10
runs (run-to-run variation is modelled with a seeded multiplicative
jitter, matching the paper's "negligible variation among runs").
"""

from __future__ import annotations

import hashlib
import re
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.bench.apps.base import AppSpec
from repro.cfront.interp import Machine
from repro.cfront.parser import parse_translation_unit
from repro.cuda.device import DeviceProperties, JETSON_NANO_GPU
from repro.cuda.driver import CudaDriver
from repro.cuda.runtimeapi import CudaRuntime
from repro.ompi import OmpiCompiler, OmpiConfig
from repro.timing import calibration as C
from repro.timing.stats import EventLog


@dataclass
class BenchResult:
    app: str
    size: int
    version: str                    # 'cuda' | 'ompi'
    measured_s: float               # the paper's metric, single run
    runs: list[float] = field(default_factory=list)
    kernel_s: float = 0.0
    memory_s: float = 0.0
    launches: int = 0
    log: Optional[EventLog] = None

    @property
    def mean_s(self) -> float:
        return float(np.mean(self.runs)) if self.runs else self.measured_s


def _jittered_runs(app: str, size: int, version: str, measured: float,
                   nruns: int = 10) -> list[float]:
    seed = int.from_bytes(
        hashlib.sha256(f"{app}/{size}/{version}".encode()).digest()[:4], "big"
    )
    rng = np.random.default_rng(seed)
    return [float(measured * (1.0 + C.RUN_JITTER_SIGMA * z))
            for z in rng.standard_normal(nruns)]


def _finish(app: AppSpec, n: int, version: str, log: EventLog) -> BenchResult:
    measured = log.measured_time
    return BenchResult(
        app=app.name, size=n, version=version,
        measured_s=measured,
        runs=_jittered_runs(app.name, n, version, measured),
        kernel_s=log.kernel_time,
        memory_s=log.memory_time,
        launches=log.count("kernel"),
        log=log,
    )


def _heap_capacity(app: AppSpec, n: int) -> int:
    return max(app.mem_bytes(n) + (64 << 20), 256 << 20)


def _prog_name(app: AppSpec, n: int) -> str:
    """C-identifier-safe program name (app names may start with a digit)."""
    return "p" + re.sub(r"[^A-Za-z0-9_]", "_", f"{app.name}_{n}")


def run_ompi(app: AppSpec, n: int, launch_mode: str = "sample",
             device: DeviceProperties = JETSON_NANO_GPU,
             binary_mode: str = "cubin",
             fastpath: Optional[str] = None,
             host_fastpath: Optional[str] = None,
             profile=None) -> tuple[BenchResult, Machine]:
    config = OmpiConfig(block_shape=app.block_shape, binary_mode=binary_mode,
                        kernel_fastpath=fastpath,
                        host_fastpath=host_fastpath, profile=profile)
    prog = OmpiCompiler(config).compile(app.omp_source(n), _prog_name(app, n))
    run = prog.run(device=device, launch_mode=launch_mode,
                   seed_arrays=app.seed(n),
                   heap_capacity=_heap_capacity(app, n))
    return _finish(app, n, "ompi", run.log), run.machine


def run_cuda(app: AppSpec, n: int, launch_mode: str = "sample",
             device: DeviceProperties = JETSON_NANO_GPU,
             binary_mode: str = "cubin",
             fastpath: Optional[str] = None) -> tuple[BenchResult, Machine]:
    unit = parse_translation_unit(app.cuda_source(n), f"{app.name}_{n}.cu")
    machine = Machine(unit, heap_capacity=_heap_capacity(app, n))
    driver = CudaDriver(device, launch_mode=launch_mode, fastpath=fastpath)
    CudaRuntime(machine, driver, unit, mode=binary_mode)
    for name, values in app.seed(n).items():
        if name in machine.globals:
            machine.global_array(name)[...] = values
    machine.run()
    return _finish(app, n, "cuda", driver.log), machine


def run_app(app: AppSpec, n: int, version: str,
            launch_mode: str = "sample", **kw) -> BenchResult:
    if version == "cuda":
        return run_cuda(app, n, launch_mode, **kw)[0]
    if version == "ompi":
        return run_ompi(app, n, launch_mode, **kw)[0]
    raise ValueError(f"unknown version {version!r}")


@dataclass
class VerifyOutcome:
    app: str
    size: int
    ok_cuda: bool
    ok_ompi: bool
    max_err_cuda: float
    max_err_ompi: float

    @property
    def ok(self) -> bool:
        return self.ok_cuda and self.ok_ompi


def _max_rel_err(got: np.ndarray, want: np.ndarray, atol: float) -> float:
    denom = np.maximum(np.abs(want), atol)
    return float(np.max(np.abs(got.astype(np.float64) - want.astype(np.float64))
                        / denom))


def verify_app(app: AppSpec, n: Optional[int] = None) -> VerifyOutcome:
    """Run both versions fully (no sampling) at a small size and compare
    every output array against the sequential numpy reference."""
    n = n or app.verify_size
    data = app.seed(n)
    expect = app.reference(n, data)
    _, m_cuda = run_cuda(app, n, launch_mode="full")
    _, m_ompi = run_ompi(app, n, launch_mode="full")
    ok_c = ok_o = True
    err_c = err_o = 0.0
    for out in app.outputs:
        want = expect[out]
        got_c = np.asarray(m_cuda.global_array(out)).reshape(want.shape)
        got_o = np.asarray(m_ompi.global_array(out)).reshape(want.shape)
        err_c = max(err_c, _max_rel_err(got_c, want, app.atol))
        err_o = max(err_o, _max_rel_err(got_o, want, app.atol))
        ok_c &= bool(np.allclose(got_c, want, rtol=app.rtol, atol=app.atol))
        ok_o &= bool(np.allclose(got_o, want, rtol=app.rtol, atol=app.atol))
    return VerifyOutcome(app.name, n, ok_c, ok_o, err_c, err_o)
