"""EXPERIMENTS.md table generation from a recorded Figure-4 sweep.

``python3 -m repro.bench.report`` runs the full sweep (or loads
``results/figure4_full.json`` if present) and prints the markdown tables
EXPERIMENTS.md embeds.
"""

from __future__ import annotations

import json
import os
import sys

#: Paper CUDA-series values read off Figure 4 (seconds; plot-resolution
#: precision).  Used for the paper-vs-measured comparison tables; the OMPi
#: series is visually indistinguishable except gemm@2048 (see ratio below).
PAPER_FIG4: dict[str, dict[int, float]] = {
    "3dconv": {32: 0.01, 64: 0.03, 128: 0.10, 256: 0.55, 384: 1.45},
    "bicg": {512: 0.02, 1024: 0.05, 2048: 0.12, 4096: 0.30, 8192: 0.85},
    "atax": {512: 0.02, 1024: 0.05, 2048: 0.15, 4096: 0.40, 8192: 1.25},
    "mvt": {512: 0.02, 1024: 0.05, 2048: 0.15, 4096: 0.40, 8192: 1.30},
    "gemm": {128: 0.01, 256: 0.03, 512: 0.10, 1024: 0.42, 2048: 2.45},
    "gramschmidt": {128: 0.08, 256: 0.30, 512: 1.00, 1024: 2.90, 2048: 9.30},
}
#: the one paper-reported asymmetry: OMPi/CUDA at gemm 2048
PAPER_GEMM_2048_RATIO = 1.18


def render_markdown(data: dict[str, list]) -> str:
    lines: list[str] = []
    for app, points in data.items():
        lines.append(f"### {app}")
        lines.append("")
        lines.append("| size | paper CUDA (s) | sim CUDA (s) | sim OMPi (s) "
                     "| sim OMPi/CUDA |")
        lines.append("|---:|---:|---:|---:|---:|")
        for size, cuda_s, ompi_s in points:
            paper = PAPER_FIG4.get(app, {}).get(size)
            paper_txt = f"{paper:.2f}" if paper is not None else "—"
            lines.append(
                f"| {size} | {paper_txt} | {cuda_s:.4f} | {ompi_s:.4f} "
                f"| {ompi_s / cuda_s:.3f} |"
            )
        lines.append("")
    return "\n".join(lines)


def main() -> None:
    path = sys.argv[1] if len(sys.argv) > 1 else "results/figure4_full.json"
    if os.path.exists(path):
        data = json.load(open(path))
    else:
        from repro.bench.figure4 import figure4
        panels = figure4()
        data = {name: [(p.size, p.cuda_s, p.ompi_s) for p in panel.points]
                for name, panel in panels.items()}
        os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
        json.dump(data, open(path, "w"), indent=1)
    print(render_markdown(data))


if __name__ == "__main__":
    main()
