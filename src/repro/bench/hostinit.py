"""Host-heavy benchmark workloads for the host fast path.

The paper's Figure-4 applications seed their arrays from numpy
(:meth:`AppSpec.seed`), so their wall-clock is all device simulation
and the host fast path has nothing to accelerate.  Real OpenMP
benchmark programs are not like that: PolyBench-style sources spend
significant *host* time in init loops, normalisation passes and
checksum reductions around the offloaded region.  This module holds
host-heavy variants of gemm/mvt/atax written that way — every array is
initialised by C loop nests, a small region offloads to the device,
and teardown loops normalise and reduce the result on the host.

``REPRO_HOST_FASTPATH=off`` runs these loops through the tree-walk
interpreter; ``on`` runs them as closure-compiled numpy plans
(:mod:`repro.cfront.hostcompile`).  Outputs must be bit-identical
between the modes — the fast path implements the interpreter's exact
C99 float semantics — which is what ``bench_runner
--host-fastpath-check`` and ``BENCH_host_fastpath.json`` assert.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.apps.base import fmt

_GEMM = r'''
float A[{NN}], B[{NN}], C[{NN}];

int main(void)
{
    int i, j;
    int n = {N};
    int nn = {NN};
    float alpha = 1.5f;
    float beta = 0.5f;
    double s;

    /* host init: PolyBench-style deterministic fill */
    for (i = 0; i < n; i++)
    {
        for (j = 0; j < n; j++)
        {
            A[i * n + j] = ((i * 17 + j * 3) % 1024) * 0.001f + 1.0f;
            B[i * n + j] = ((i * 5 + j * 11) % 512) * 0.002f - 0.25f;
            C[i * n + j] = ((i + j) % 64) * 0.01f;
        }
    }

    /* offloaded region: one saxpy row on the device */
    #pragma omp target teams distribute parallel for \
        map(to: A[0:n], B[0:n], alpha, beta, n) map(tofrom: C[0:n])
    for (i = 0; i < n; i++)
        C[i] = alpha * A[i] + beta * B[i];

    /* host teardown: normalise and reduce */
    s = 0.0;
    for (i = 0; i < nn; i++)
    {
        C[i] = C[i] * 0.5f + A[i] * 0.25f - B[i] * 0.125f;
        s += C[i];
    }
    printf("gemm-host checksum %.6f\n", s);
    return 0;
}
'''

_MVT = r'''
float A[{NN}], x1[{N}], x2[{N}], y1[{N}], y2[{N}];

int main(void)
{
    int i, j;
    int n = {N};
    double s1;
    double s2;

    for (i = 0; i < n; i++)
    {
        x1[i] = (i % 256) * 0.01f;
        x2[i] = (i % 128) * 0.02f;
        y1[i] = ((i * 3) % 512) * 0.005f;
        y2[i] = ((i * 7) % 256) * 0.0025f;
        for (j = 0; j < n; j++)
            A[i * n + j] = ((i * 13 + j * 7) % 2048) * 0.0005f;
    }

    #pragma omp target teams distribute parallel for \
        map(to: y1[0:n], n) map(tofrom: x1[0:n])
    for (i = 0; i < n; i++)
        x1[i] = x1[i] + y1[i] * 2.0f;

    /* host: the transposed product stays on the CPU */
    for (i = 0; i < n; i++)
    {
        for (j = 0; j < n; j++)
            x2[i] += A[j * n + i] * y2[j];
    }

    s1 = 0.0;
    s2 = 0.0;
    for (i = 0; i < n; i++)
    {
        s1 += x1[i];
        s2 += x2[i];
    }
    printf("mvt-host checksums %.6f %.6f\n", s1, s2);
    return 0;
}
'''

_ATAX = r'''
float A[{NN}], x[{N}], y[{N}], tmp[{N}];

int main(void)
{
    int i, j;
    int n = {N};
    double s;

    for (i = 0; i < n; i++)
    {
        x[i] = ((i * 11) % 1024) * 0.001f;
        y[i] = 0.0f;
        tmp[i] = 0.0f;
        for (j = 0; j < n; j++)
            A[i * n + j] = ((i * 19 + j * 23) % 4096) * 0.00025f;
    }

    #pragma omp target teams distribute parallel for \
        map(to: x[0:n], n) map(tofrom: tmp[0:n])
    for (i = 0; i < n; i++)
        tmp[i] = x[i] * 3.0f;

    /* host: t = A tmp, then y = A^T t */
    for (i = 0; i < n; i++)
    {
        float t = 0.0f;
        for (j = 0; j < n; j++)
            t += A[i * n + j] * tmp[j];
        for (j = 0; j < n; j++)
            y[j] += A[i * n + j] * t;
    }

    s = 0.0;
    for (i = 0; i < n; i++)
        s += y[i];
    printf("atax-host checksum %.6f\n", s);
    return 0;
}
'''


@dataclass(frozen=True)
class HostWorkload:
    name: str
    template: str
    default_n: int
    #: global arrays compared bitwise between fastpath modes
    outputs: tuple[str, ...]

    def source(self, n: int | None = None) -> str:
        n = n or self.default_n
        return fmt(self.template, N=n, NN=n * n)

    def heap_capacity(self, n: int | None = None) -> int:
        n = n or self.default_n
        return max(3 * n * n * 4 + (64 << 20), 256 << 20)


HOST_WORKLOADS: dict[str, HostWorkload] = {
    w.name: w for w in (
        HostWorkload("gemm", _GEMM, 384, ("C",)),
        HostWorkload("mvt", _MVT, 320, ("x1", "x2")),
        HostWorkload("atax", _ATAX, 288, ("y", "tmp")),
    )
}

#: smaller sizes for the CI smoke check
CHECK_SIZES = {"gemm": 128, "mvt": 96, "atax": 96}
