"""Reproduction of "OpenMP Offloading in the Jetson Nano Platform"
(Kasmeridis & Dimakopoulos, ICPP Workshops 2022).

Public entry points:

* :class:`repro.ompi.OmpiCompiler` — compile OpenMP C source; the
  returned :class:`~repro.ompi.compiler.CompiledProgram` exposes the
  generated host/kernel sources and ``run()`` executes on the simulated
  Jetson Nano.
* :mod:`repro.ompi.cli` — the ``ompicc`` command-line driver
  (``python3 -m repro.ompi.cli``).
* :func:`repro.cuda.runtimeapi.run_cuda_program` — run a pure ``.cu``
  program (the paper's comparison baselines) on the same simulated stack.
* :mod:`repro.bench` — the paper's evaluation: applications, verification
  and the Figure-4 harness.

See README.md for a tour and DESIGN.md for the system inventory.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
