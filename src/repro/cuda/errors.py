"""CUDA driver API result codes and the exception used by the simulator."""

from __future__ import annotations

import enum


class CUresult(enum.IntEnum):
    """Subset of the driver API's CUresult codes used by the cudadev module."""

    CUDA_SUCCESS = 0
    CUDA_ERROR_INVALID_VALUE = 1
    CUDA_ERROR_OUT_OF_MEMORY = 2
    CUDA_ERROR_NOT_INITIALIZED = 3
    CUDA_ERROR_DEINITIALIZED = 4
    CUDA_ERROR_DEVICE_UNAVAILABLE = 46
    CUDA_ERROR_NO_DEVICE = 100
    CUDA_ERROR_INVALID_DEVICE = 101
    CUDA_ERROR_INVALID_IMAGE = 200
    CUDA_ERROR_INVALID_CONTEXT = 201
    CUDA_ERROR_INVALID_HANDLE = 400
    CUDA_ERROR_NOT_FOUND = 500
    CUDA_ERROR_NOT_READY = 600
    CUDA_ERROR_LAUNCH_FAILED = 719
    CUDA_ERROR_LAUNCH_OUT_OF_RESOURCES = 701
    CUDA_ERROR_LAUNCH_TIMEOUT = 702
    CUDA_ERROR_UNKNOWN = 999


class CudaError(Exception):
    """Raised by the simulated driver API on any non-success result.

    ``sticky`` marks context-poisoning errors (real CUDA: the context is
    unusable until a primary-context reset, and every call returns the
    same result).  ``injected`` marks faults raised by the fault injector
    rather than the driver's own validation — recovery treats both alike,
    but logs and tests can tell them apart.
    """

    def __init__(self, result: CUresult, detail: str = "",
                 sticky: bool = False, injected: bool = False):
        self.result = result
        self.detail = detail
        self.sticky = sticky
        self.injected = injected
        msg = result.name + (f": {detail}" if detail else "")
        super().__init__(msg)
