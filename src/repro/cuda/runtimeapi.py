"""CUDA *runtime API* natives for interpreted host programs.

The paper's pure-CUDA comparison benchmarks are normal ``.cu`` programs:
host C code calling ``cudaMalloc``/``cudaMemcpy`` and launching kernels
with ``<<< >>>``.  This module wires those calls into the simulated
driver so the exact benchmark sources run unmodified under the cfront
interpreter.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from repro.cfront import astnodes as A
from repro.cfront.ctypes_ import CHAR
from repro.cfront.errors import InterpError
from repro.cfront.interp import Machine, Ptr
from repro.cfront.parser import parse_translation_unit
from repro.cuda.device import Dim3
from repro.cuda.driver import CudaDriver, CUfunction
from repro.cuda.nvcc import compile_device

#: cudaMemcpyKind values (matching the real enum)
cudaMemcpyHostToHost = 0
cudaMemcpyHostToDevice = 1
cudaMemcpyDeviceToHost = 2
cudaMemcpyDeviceToDevice = 3


class CudaRuntime:
    """Binds one interpreter Machine to one driver + one kernel module."""

    def __init__(
        self,
        machine: Machine,
        driver: CudaDriver,
        source: Optional[Union[str, A.TranslationUnit]] = None,
        mode: str = "cubin",
    ):
        self.machine = machine
        self.driver = driver
        driver.cuInit(0)
        driver.cuDeviceGet(0)
        ctx = driver.cuDevicePrimaryCtxRetain(0)
        driver.cuCtxSetCurrent(ctx)
        self.module_handle: Optional[int] = None
        if source is not None:
            unit_ = source if isinstance(source, A.TranslationUnit) else \
                parse_translation_unit(source, "rtmodule.cu")
            has_kernels = any(isinstance(d, A.FuncDef) and "__global__" in d.quals
                              for d in unit_.decls)
            if has_kernels:
                image = compile_device(unit_, "rtmodule", mode=mode)
                self.module_handle = driver.cuModuleLoadData(image)
        machine.register_space(driver.gmem)
        machine.natives.update(self._natives())
        # enum constants normally provided by cuda_runtime.h
        machine.globals.setdefault("cudaMemcpyHostToHost", cudaMemcpyHostToHost)
        machine.globals.setdefault("cudaMemcpyHostToDevice", cudaMemcpyHostToDevice)
        machine.globals.setdefault("cudaMemcpyDeviceToHost", cudaMemcpyDeviceToHost)
        machine.globals.setdefault("cudaMemcpyDeviceToDevice", cudaMemcpyDeviceToDevice)
        machine.globals.setdefault("cudaSuccess", 0)

    # -- native implementations ----------------------------------------------
    def _natives(self) -> dict:
        return {
            "cudaMalloc": self._cuda_malloc,
            "cudaFree": self._cuda_free,
            "cudaMemcpy": self._cuda_memcpy,
            "cudaMemset": self._cuda_memset,
            "cudaDeviceSynchronize": lambda m, a, l: 0,
            "cudaThreadSynchronize": lambda m, a, l: 0,
            "cudaGetLastError": lambda m, a, l: 0,
            "__cuda_launch__": self._cuda_launch,
        }

    def _cuda_malloc(self, machine: Machine, args, loc):
        target, size = args
        if not isinstance(target, Ptr):
            raise InterpError("cudaMalloc: first argument must be a pointer "
                              "to a device pointer", loc)
        dptr = self.driver.cuMemAlloc(int(size))
        machine.store_value(target.mem, target.addr, target.ctype, dptr)
        return 0

    def _cuda_free(self, machine: Machine, args, loc):
        (ptr,) = args
        addr = ptr.addr if isinstance(ptr, Ptr) else int(ptr)
        if addr:
            self.driver.cuMemFree(addr)
        return 0

    def _cuda_memcpy(self, machine: Machine, args, loc):
        dst, src, size, kind = args
        size = int(size)
        kind = int(kind)
        if kind == cudaMemcpyHostToDevice:
            data = src.mem.copy_out(src.addr, size)
            self.driver.cuMemcpyHtoD(dst.addr, data)
        elif kind == cudaMemcpyDeviceToHost:
            data = self.driver.cuMemcpyDtoH(src.addr, size)
            dst.mem.copy_in(dst.addr, data)
        elif kind == cudaMemcpyDeviceToDevice:
            data = self.driver.gmem.copy_out(src.addr, size)
            self.driver.cuMemcpyHtoD(dst.addr, data)
        elif kind == cudaMemcpyHostToHost:
            dst.mem.copy_in(dst.addr, src.mem.copy_out(src.addr, size))
        else:
            raise InterpError(f"cudaMemcpy: bad kind {kind}", loc)
        return 0

    def _cuda_memset(self, machine: Machine, args, loc):
        ptr, value, size = args
        self.driver.cuMemsetD8(ptr.addr, int(value), int(size))
        return 0

    def _cuda_launch(self, machine: Machine, args, loc):
        name, grid_val, block_val, shmem, kargs = args
        if self.module_handle is None:
            raise InterpError("no kernel module loaded for this runtime", loc)
        fn = self.driver.cuModuleGetFunction(self.module_handle, name)
        grid = Dim3.of(grid_val if not isinstance(grid_val, (int, float))
                       else int(grid_val))
        block = Dim3.of(block_val if not isinstance(block_val, (int, float))
                        else int(block_val))
        params = [a.addr if isinstance(a, Ptr) else a for a in kargs]
        self.driver.cuLaunchKernel(
            fn, grid.x, grid.y, grid.z, block.x, block.y, block.z,
            shared_mem_bytes=int(shmem), kernel_params=params,
        )
        machine.stdout.extend(self.driver.stdout)
        self.driver.stdout.clear()
        return 0


def run_cuda_program(
    source: str,
    driver: Optional[CudaDriver] = None,
    mode: str = "cubin",
    heap_capacity: int = 1 << 30,
) -> tuple[Machine, CudaDriver]:
    """Convenience: compile + execute a complete .cu program."""
    unit = parse_translation_unit(source, "program.cu")
    machine = Machine(unit, heap_capacity=heap_capacity)
    driver = driver or CudaDriver()
    CudaRuntime(machine, driver, unit, mode=mode)
    machine.run()
    return machine, driver
