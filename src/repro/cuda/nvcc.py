"""``nvcc`` driver simulation.

Real nvcc splits a ``.cu`` file into host code (compiled with the host
toolchain, triple-chevron launches lowered to runtime-API calls) and
device code (lowered to PTX, optionally assembled into a cubin).  Our
stand-in does the same split over the cfront AST:

* :func:`compile_device` — all ``__global__``/``__device__`` definitions
  become a :class:`ModuleIR`, packaged as a PTX or cubin image (paper
  §3.3's two binary modes);
* the *host* part of a ``.cu`` program is simply the same translation
  unit executed by the cfront interpreter with the CUDA runtime API
  natives attached (:mod:`repro.cuda.runtimeapi`) — kernel definitions are
  skipped by the interpreter because they are never called from host code.

OMPi invokes this through its device-compilation scripts (paper Fig. 2,
"NVIDIA CUDA Compiler (nvcc)" box).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.cfront import astnodes as A
from repro.cfront.parser import parse_translation_unit
from repro.cuda.ptx.images import CubinImage, PtxImage, assemble_cubin
from repro.cuda.ptx.ir import ModuleIR
from repro.cuda.ptx.lower import lower_translation_unit
from repro.cuda.ptx.ptxwriter import module_to_ptx


class NvccError(Exception):
    """Compilation failed."""


def compile_device(
    source: Union[str, A.TranslationUnit],
    module_name: str = "module",
    mode: str = "cubin",
    arch: str = "sm_53",
    intrinsic_sigs: Optional[dict] = None,
    link_device_library: bool = True,
) -> Union[PtxImage, CubinImage]:
    """Compile the device code of a CUDA C source to a kernel image.

    ``mode='ptx'`` produces an architecture-agnostic image whose final
    compilation (and device-library linking) happens at module-load time
    with disk caching; ``mode='cubin'`` (the OMPi default) performs all
    steps now.
    """
    if mode not in ("ptx", "cubin"):
        raise NvccError(f"unknown binary mode {mode!r}")
    if intrinsic_sigs is None:
        from repro.devrt import INTRINSIC_SIGS
        intrinsic_sigs = INTRINSIC_SIGS
    unit = source if isinstance(source, A.TranslationUnit) else \
        parse_translation_unit(source, f"{module_name}.cu")
    try:
        module = lower_translation_unit(unit, intrinsic_sigs, module_name,
                                        arch=arch if mode == "cubin" else "sm_30")
    except Exception as exc:
        raise NvccError(f"nvcc: {exc}") from exc
    if not module.kernels:
        raise NvccError(f"{module_name}: no __global__ kernels in source")
    if mode == "ptx":
        # PTX is architecture-agnostic; record the lowest target
        text = module_to_ptx(module)
        return PtxImage(module, text)
    module.arch = arch
    return assemble_cubin(module, arch, linked=link_device_library)


def kernel_names(source: str) -> list[str]:
    unit = parse_translation_unit(source)
    return [d.name for d in unit.decls
            if isinstance(d, A.FuncDef) and "__global__" in d.quals]
