"""Simulated CUDA *driver API* (the ``cu*`` surface of paper §4.2.1).

The cudadev host module is written against exactly this interface: device
discovery, (primary) context creation, module loading — with JIT + disk
cache for PTX images and device-library linking — memory management,
transfers, and the three-phase kernel launch ending in ``cuLaunchKernel``.

Execution is functional (the warp engine) and timing is modelled (the
Maxwell analytic model + LPDDR4 transfer model); every action appends a
:class:`~repro.timing.stats.RunEvent` so harnesses can reconstruct the
paper's "kernel time + required memory operations" metric.

Large launches can run in *sampling* mode: a handful of representative
blocks execute functionally and their dynamic counts are extrapolated to
the full grid for the timing model.  Sampling silently degrades to full
execution for kernels with inter-warp communication (barriers, atomics,
runtime calls) because their behaviour is not block-local.

Transfers and launches take a ``stream`` argument routed through the
:mod:`repro.rt_async.streams` table: work on a created stream lands on
that stream's timeline (copy/compute engine queues, FIFO per stream) and
the host clock only advances when the stream is synchronized; work on the
default stream 0 remains host-synchronous, exactly as before streams
existed.

When profiling is enabled (``profile=`` argument or the ``REPRO_PROFILE``
environment variable) every driver action additionally emits a typed
:mod:`repro.prof.activity` record — kernels with their occupancy and
dynamic counters, transfers with bytes and bandwidth, module loads/JIT,
synchronisations and the device-memory watermark.  Disabled profiling is
a ``None`` recorder: the hooks cost one identity check.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.cuda.device import DeviceProperties, Dim3, JETSON_NANO_GPU
from repro.cuda.errors import CUresult, CudaError
from repro.cuda.ptx.images import CubinImage, PtxImage, identify_image
from repro.cuda.ptx.ir import (
    Atom, BarOp, CallOp, KernelIR, ModuleIR, np_dtype, walk_ops,
)
from repro.cuda.ptx.jit import JitCache, jit_compile
from repro.cuda.sim.compile import CompiledKernelCache
from repro.cuda.sim.engine import FunctionalEngine, KernelStats, LaunchError
from repro.faults.injector import FaultInjector, FaultLog
from repro.mem import LinearMemory
from repro.prof.activity import (
    EventActivity, KernelActivity, MemcpyActivity, MemoryActivity,
    ModuleActivity, SyncActivity, resolve_profile,
)
from repro.rt_async.streams import DEFAULT_STREAM, StreamError, StreamTable
from repro.timing import calibration as C
from repro.timing.clock import VirtualClock
from repro.timing.gpumodel import GpuTimingModel
from repro.timing.hostmodel import HostModel
from repro.timing.stats import EventLog

DEVICE_MEM_BASE = 0x2_0000_0000
#: DRAM the OS/display reserve on the 2GB board
RESERVED_MEM = 288 * 1024 * 1024


@dataclass
class LoadedModule:
    handle: int
    module: ModuleIR
    image_kind: str                      # 'ptx' (jitted) or 'cubin'
    linked: bool
    resources: dict[str, dict]
    global_addrs: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class CUfunction:
    module_handle: int
    name: str


class CudaDriver:
    """One simulated CUDA driver instance ("process-level" state)."""

    def __init__(
        self,
        device: DeviceProperties = JETSON_NANO_GPU,
        clock: Optional[VirtualClock] = None,
        jit_cache: Optional[JitCache] = None,
        gmem_capacity: Optional[int] = None,
        gmem_base: int = DEVICE_MEM_BASE,
        launch_mode: str = "auto",
        sample_threshold_threads: int = 1 << 15,
        intrinsics: Optional[dict] = None,
        fastpath: Optional[str] = None,
        profile=None,
        faults: Optional[FaultInjector] = None,
    ):
        if launch_mode not in ("full", "sample", "auto"):
            raise ValueError(f"bad launch_mode {launch_mode!r}")
        if fastpath is None:
            import os
            fastpath = os.environ.get("REPRO_KERNEL_FASTPATH", "on")
        if fastpath not in ("on", "off", "verify"):
            raise ValueError(f"bad fastpath mode {fastpath!r}")
        self.fastpath = fastpath
        self.kernel_cache = CompiledKernelCache()
        self.device_props = device
        self.clock = clock or VirtualClock()
        self.jit_cache = jit_cache
        self.launch_mode = launch_mode
        self.sample_threshold = sample_threshold_threads
        capacity = gmem_capacity or device.arena_bytes or \
            (device.total_global_mem - RESERVED_MEM)
        # multi-device registries hand each driver a disjoint base so the
        # host interpreter's space_of() can tell the address spaces apart
        self.gmem = LinearMemory(capacity, base=gmem_base, name="gmem")
        self.gpu_model = GpuTimingModel(device)
        self.host_model = HostModel(
            memcpy_bandwidth_gbps=device.copy_bandwidth_gbps)
        #: activity recorder (None: profiling disabled, hooks cost one
        #: identity check) and the Chrome-trace path requested, if any
        self.prof, self.prof_path = resolve_profile(profile)
        #: fault bookkeeping: the injector is optional (None: no injection;
        #: the hook costs one identity check per call), the fault log is
        #: always present — recovery layers report retries/fallbacks here
        #: even when nothing is injected (e.g. a real OOM)
        self.faultlog = FaultLog(clock=self.clock, recorder=self.prof)
        self.faults = faults
        if faults is not None:
            faults.bind(self.faultlog)
        self.streams = StreamTable(
            self.clock, recorder=self.prof,
            engine_lanes={"compute": device.concurrent_kernels,
                          "copy": device.copy_engines})
        #: high-water mark of device bytes allocated (the profiler's
        #: memory track; also maintained with profiling disabled — it is
        #: a single max() per allocation)
        self.mem_peak = 0
        self.log = EventLog()
        self.stdout: list[str] = []
        self._initialized = False
        self._ctx_count = 0
        self._modules: dict[int, LoadedModule] = {}
        self._handles = itertools.count(1)
        self._sample_cache: dict[tuple, bool] = {}
        if intrinsics is None:
            from repro.devrt import build_intrinsics
            intrinsics = build_intrinsics()
        self.intrinsics = intrinsics
        self.last_kernel_stats: Optional[KernelStats] = None
        #: modelled seconds of the most recent kernel (the shard planner's
        #: observed-throughput input)
        self.last_kernel_seconds: float = 0.0

    # -- fault injection hook -----------------------------------------------------
    def _fault(self, api: str, nbytes: int = 0) -> None:
        """Give the fault injector a chance to fail this entry point.
        Called *before* any functional side effect so a retry of the same
        call is clean (the invariant transient-fault recovery rests on)."""
        if self.faults is not None:
            self.faults.check(api, nbytes=nbytes)

    # -- init / device discovery ------------------------------------------------
    def cuInit(self, flags: int = 0) -> CUresult:
        self._fault("cuInit")
        if flags != 0:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_VALUE, "flags must be 0")
        self._initialized = True
        return CUresult.CUDA_SUCCESS

    def _check_init(self) -> None:
        if not self._initialized:
            raise CudaError(CUresult.CUDA_ERROR_NOT_INITIALIZED)

    def cuDeviceGetCount(self) -> int:
        self._check_init()
        self._fault("cuDeviceGetCount")
        return 1

    def cuDeviceGet(self, ordinal: int) -> int:
        self._check_init()
        self._fault("cuDeviceGet")
        if ordinal != 0:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_DEVICE, str(ordinal))
        return 0

    def cuDeviceGetName(self, dev: int) -> str:
        self._check_init()
        self._fault("cuDeviceGetName")
        return self.device_props.name

    def cuDeviceComputeCapability(self, dev: int) -> tuple[int, int]:
        self._check_init()
        self._fault("cuDeviceComputeCapability")
        return self.device_props.compute_capability

    def cuDeviceTotalMem(self, dev: int) -> int:
        self._check_init()
        self._fault("cuDeviceTotalMem")
        return self.device_props.total_global_mem

    def cuDeviceGetAttribute(self, attrib: str, dev: int) -> int:
        self._check_init()
        self._fault("cuDeviceGetAttribute")
        props = self.device_props
        table = {
            "MAX_THREADS_PER_BLOCK": props.max_threads_per_block,
            "WARP_SIZE": props.warp_size,
            "MULTIPROCESSOR_COUNT": props.multiprocessor_count,
            "MAX_SHARED_MEMORY_PER_BLOCK": props.shared_mem_per_block,
            "CLOCK_RATE": props.clock_rate_khz,
            "COMPUTE_CAPABILITY_MAJOR": props.compute_capability[0],
            "COMPUTE_CAPABILITY_MINOR": props.compute_capability[1],
            "MAX_BLOCK_DIM_X": props.max_block_dim[0],
            "MAX_BLOCK_DIM_Y": props.max_block_dim[1],
            "MAX_BLOCK_DIM_Z": props.max_block_dim[2],
            "MAX_GRID_DIM_X": props.max_grid_dim[0],
            "MAX_GRID_DIM_Y": props.max_grid_dim[1],
            "MAX_GRID_DIM_Z": props.max_grid_dim[2],
        }
        try:
            return table[attrib]
        except KeyError:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_VALUE,
                            f"unknown attribute {attrib}") from None

    # -- contexts ----------------------------------------------------------------
    def cuDevicePrimaryCtxRetain(self, dev: int) -> int:
        self._check_init()
        self._fault("cuDevicePrimaryCtxRetain")
        if dev != 0:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_DEVICE)
        self._ctx_count += 1
        return 1  # the primary context handle

    def cuDevicePrimaryCtxReset(self, dev: int = 0) -> CUresult:
        """Destroy the primary context's state: all modules (with their
        globals) and all device allocations are gone, and a sticky
        (poisoned) error state is cleared — the one sanctioned way back
        from context poisoning on real CUDA."""
        self._check_init()
        self._fault("cuDevicePrimaryCtxReset")
        if dev != 0:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_DEVICE)
        for addr in list(self.gmem._allocated):
            self.gmem.free(addr)
        self._modules.clear()
        self._ctx_count = 0
        self._note_mem_usage("reset", 0, 0)
        if self.faults is not None:
            self.faults.reset_context()
        return CUresult.CUDA_SUCCESS

    def cuCtxSetCurrent(self, ctx: int) -> CUresult:
        self._check_init()
        self._fault("cuCtxSetCurrent")
        if ctx != 1:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_CONTEXT)
        return CUresult.CUDA_SUCCESS

    def cuCtxSynchronize(self) -> CUresult:
        self._check_init()
        self._fault("cuCtxSynchronize")
        # join every stream's enqueued (asynchronous) work
        t0 = self.clock.now()
        self.clock.advance_to(self.streams.all_done_at())
        if self.prof is not None:
            self.prof.emit(SyncActivity(op="ctx_sync", t_start=t0,
                                        t_end=self.clock.now(),
                                        waited_s=self.clock.now() - t0))
        return CUresult.CUDA_SUCCESS

    # -- streams & events ----------------------------------------------------------
    def _schedule(self, stream: int, kind: str, cost: float,
                  detail: str = "", nbytes: int = 0,
                  kernel: Optional[str] = None) -> tuple[float, float]:
        """Place one operation on a stream timeline and log it.  Work on
        the default stream is host-synchronous (the clock advances to its
        completion, as before streams existed); work on a created stream
        only moves the stream's timeline — the host observes it at a
        synchronisation point."""
        try:
            start, end = self.streams.schedule(stream, kind, cost)
        except StreamError as exc:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_HANDLE, str(exc)) from exc
        self.log.add(kind, cost, detail, nbytes=nbytes, kernel=kernel,
                     stream=stream, t_start=start, t_end=end)
        if stream == DEFAULT_STREAM:
            self.clock.advance_to(end)
        return start, end

    def cuStreamCreate(self, flags: int = 0) -> int:
        self._check_init()
        self._fault("cuStreamCreate")
        return self.streams.create(flags)

    def cuStreamDestroy(self, stream: int) -> CUresult:
        self._check_init()
        self._fault("cuStreamDestroy")
        try:
            self.streams.destroy(stream)
        except StreamError as exc:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_HANDLE, str(exc)) from exc
        return CUresult.CUDA_SUCCESS

    def cuStreamSynchronize(self, stream: int) -> float:
        """Block the host until the stream drains; returns the new host
        time (the simulated completion timestamp)."""
        self._check_init()
        self._fault("cuStreamSynchronize")
        try:
            done_at = self.streams.completion_time(stream)
        except StreamError as exc:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_HANDLE, str(exc)) from exc
        t0 = self.clock.now()
        now = self.clock.advance_to(done_at)
        if self.prof is not None:
            self.prof.emit(SyncActivity(op="stream_sync", handle=stream,
                                        stream=stream, t_start=t0, t_end=now,
                                        waited_s=now - t0))
        return now

    def cuStreamQuery(self, stream: int) -> CUresult:
        self._check_init()
        self._fault("cuStreamQuery")
        try:
            done_at = self.streams.completion_time(stream)
        except StreamError as exc:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_HANDLE, str(exc)) from exc
        if done_at > self.clock.now():
            return CUresult.CUDA_ERROR_NOT_READY
        return CUresult.CUDA_SUCCESS

    def cuStreamWaitEvent(self, stream: int, event: int,
                          flags: int = 0) -> CUresult:
        self._check_init()
        self._fault("cuStreamWaitEvent")
        try:
            self.streams.stream_wait_event(stream, event)
        except StreamError as exc:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_HANDLE, str(exc)) from exc
        return CUresult.CUDA_SUCCESS

    def cuEventCreate(self) -> int:
        self._check_init()
        self._fault("cuEventCreate")
        return self.streams.create_event()

    def cuEventDestroy(self, event: int) -> CUresult:
        self._check_init()
        self._fault("cuEventDestroy")
        try:
            self.streams.destroy_event(event)
        except StreamError as exc:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_HANDLE, str(exc)) from exc
        return CUresult.CUDA_SUCCESS

    def cuEventRecord(self, event: int, stream: int = DEFAULT_STREAM) -> CUresult:
        self._check_init()
        self._fault("cuEventRecord")
        try:
            ev = self.streams.record(event, stream)
        except StreamError as exc:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_HANDLE, str(exc)) from exc
        if self.prof is not None:
            now = self.clock.now()
            self.prof.emit(EventActivity(op="record", handle=event,
                                         stream=stream, t_start=now,
                                         t_end=now, timestamp=ev.timestamp))
        return CUresult.CUDA_SUCCESS

    def cuEventQuery(self, event: int) -> CUresult:
        self._check_init()
        self._fault("cuEventQuery")
        try:
            ev = self.streams.get_event(event)
        except StreamError as exc:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_HANDLE, str(exc)) from exc
        if not ev.recorded or ev.timestamp > self.clock.now():
            return CUresult.CUDA_ERROR_NOT_READY
        return CUresult.CUDA_SUCCESS

    def cuEventSynchronize(self, event: int) -> float:
        self._check_init()
        self._fault("cuEventSynchronize")
        try:
            ev = self.streams.get_event(event)
        except StreamError as exc:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_HANDLE, str(exc)) from exc
        t0 = self.clock.now()
        if ev.recorded:
            self.clock.advance_to(ev.timestamp)
        now = self.clock.now()
        if self.prof is not None:
            self.prof.emit(SyncActivity(op="event_sync", handle=event,
                                        t_start=t0, t_end=now,
                                        waited_s=now - t0))
        return now

    def cuEventElapsedTime(self, start: int, end: int) -> float:
        """Milliseconds between two recorded events (cuEventElapsedTime)."""
        self._check_init()
        self._fault("cuEventElapsedTime")
        try:
            return self.streams.elapsed_ms(start, end)
        except StreamError as exc:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_HANDLE, str(exc)) from exc

    # -- modules ----------------------------------------------------------------
    def cuModuleLoadData(self, image: Union[bytes, PtxImage, CubinImage]) -> int:
        self._check_init()
        self._fault("cuModuleLoadData")
        if isinstance(image, PtxImage):
            kind = "ptx"
        elif isinstance(image, CubinImage):
            kind = "cubin"
        else:
            kind = identify_image(image)
            image = (PtxImage.from_bytes(image) if kind == "ptx"
                     else CubinImage.from_bytes(image))
        jit_cached = False
        jit_s = 0.0
        if kind == "ptx":
            result = jit_compile(image, self.device_props, self.jit_cache,
                                 link_device_library=True)
            t0 = self.clock.now()
            self.clock.advance(result.compile_time_s)
            self.log.add("jit", result.compile_time_s,
                         "cache hit" if result.cached else "compiled",
                         t_start=t0, t_end=self.clock.now())
            jit_cached = result.cached
            jit_s = result.compile_time_s
            cubin = result.image
        else:
            cubin = image
            if cubin.arch != self.device_props.arch:
                raise CudaError(
                    CUresult.CUDA_ERROR_INVALID_IMAGE,
                    f"cubin targets {cubin.arch}, device is {self.device_props.arch}",
                )
        handle = next(self._handles)
        loaded = LoadedModule(handle, cubin.module, kind, cubin.linked,
                              cubin.resources)
        for name, size in cubin.module.globals_.items():
            addr = self.gmem.alloc(max(size, 1), align=8)
            self.gmem.view(addr, max(size, 1), np.uint8)[:] = 0
            loaded.global_addrs[name] = addr
            self._note_mem_usage("module_global", max(size, 1), addr)
        self._modules[handle] = loaded
        self.log.add("module_load", 0.0, f"{kind}:{cubin.module.name}")
        if self.prof is not None:
            now = self.clock.now()
            self.prof.emit(ModuleActivity(
                name=cubin.module.name, image_kind=kind, jit_cached=jit_cached,
                jit_s=jit_s, t_start=now - jit_s, t_end=now,
            ))
        return handle

    def cuModuleUnload(self, handle: int) -> CUresult:
        self._check_init()
        self._fault("cuModuleUnload")
        loaded = self._modules.pop(handle, None)
        if loaded is None:
            raise CudaError(CUresult.CUDA_ERROR_NOT_FOUND, f"module {handle}")
        for addr in loaded.global_addrs.values():
            size = self.gmem.allocated_size(addr) or 0
            self.gmem.free(addr)
            self._note_mem_usage("free", size, addr)
        return CUresult.CUDA_SUCCESS

    def cuModuleGetFunction(self, handle: int, name: str) -> CUfunction:
        self._check_init()
        self._fault("cuModuleGetFunction")
        loaded = self._modules.get(handle)
        if loaded is None:
            raise CudaError(CUresult.CUDA_ERROR_NOT_FOUND, f"module {handle}")
        if name not in loaded.module.kernels:
            raise CudaError(CUresult.CUDA_ERROR_NOT_FOUND,
                            f"kernel {name!r} not in module")
        return CUfunction(handle, name)

    def cuModuleGetGlobal(self, handle: int, name: str) -> tuple[int, int]:
        self._check_init()
        self._fault("cuModuleGetGlobal")
        loaded = self._modules.get(handle)
        if loaded is None or name not in loaded.global_addrs:
            raise CudaError(CUresult.CUDA_ERROR_NOT_FOUND, name)
        return loaded.global_addrs[name], loaded.module.globals_[name]

    # -- memory ------------------------------------------------------------------
    def _note_mem_usage(self, op: str, nbytes: int, addr: int,
                        t_start: float = 0.0, t_end: float = 0.0) -> None:
        """Update the peak-usage watermark and emit the memory-track
        activity.  Called after every allocation/free on device DRAM."""
        in_use = self.gmem.bytes_in_use
        if in_use > self.mem_peak:
            self.mem_peak = in_use
        if self.prof is not None:
            if t_end == 0.0:
                t_start = t_end = self.clock.now()
            self.prof.emit(MemoryActivity(op=op, nbytes=nbytes, addr=addr,
                                          in_use=in_use, peak=self.mem_peak,
                                          t_start=t_start, t_end=t_end))

    def cuMemGetInfo(self) -> tuple[int, int]:
        """``(free, total)`` device memory in bytes — ``total`` is the
        board's physical DRAM and ``free`` what a ``cuMemAlloc`` can still
        draw from (capacity minus the OS/display reservation and current
        allocations), mirroring the real API's semantics on the Nano."""
        self._check_init()
        self._fault("cuMemGetInfo")
        return self.gmem.capacity - self.gmem.bytes_in_use, \
            self.device_props.total_global_mem

    def cuMemAlloc(self, size: int) -> int:
        self._check_init()
        if size <= 0:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_VALUE, "size must be > 0")
        self._fault("cuMemAlloc", nbytes=size)
        try:
            addr = self.gmem.alloc(size, align=256)
        except Exception as exc:
            raise CudaError(CUresult.CUDA_ERROR_OUT_OF_MEMORY, str(exc)) from exc
        cost = self.host_model.alloc_time()
        t0 = self.clock.now()
        self.clock.advance(cost)
        self.log.add("alloc", cost, nbytes=size, t_start=t0,
                     t_end=self.clock.now())
        self._note_mem_usage("alloc", size, addr, t0, self.clock.now())
        return addr

    def cuMemFree(self, dptr: int) -> CUresult:
        self._check_init()
        self._fault("cuMemFree")
        size = self.gmem.allocated_size(dptr)
        if size is None:
            raise CudaError(
                CUresult.CUDA_ERROR_INVALID_VALUE,
                f"free of unknown or already-freed device pointer {dptr:#x}")
        self.gmem.free(dptr)
        self.log.add("free", 0.0)
        self._note_mem_usage("free", size, dptr)
        return CUresult.CUDA_SUCCESS

    def cuMemcpyHtoD(self, dptr: int, src) -> CUresult:
        return self.cuMemcpyHtoDAsync(dptr, src, DEFAULT_STREAM)

    def cuMemcpyHtoDAsync(self, dptr: int, src,
                          stream: int = DEFAULT_STREAM) -> CUresult:
        """H2D copy on a stream.  The bytes move immediately (functional
        execution follows program order); the *cost* lands on the stream's
        copy-engine timeline.  On the default stream this is the old
        synchronous cuMemcpyHtoD."""
        self._check_init()
        self._check_stream(stream)
        if isinstance(src, (bytes, bytearray)):
            data = np.frombuffer(bytes(src), dtype=np.uint8)
        else:
            # reinterpret the array's bytes (never value-convert)
            data = np.ascontiguousarray(src).reshape(-1).view(np.uint8)
        self._fault("cuMemcpyHtoDAsync", nbytes=int(data.size))
        self.gmem.copy_in(dptr, data)
        cost = self.host_model.memcpy_time(data.size)
        start, end = self._schedule(stream, "memcpy_h2d", cost,
                                    nbytes=int(data.size))
        self._note_memcpy("h2d", int(data.size), start, end, stream)
        return CUresult.CUDA_SUCCESS

    def cuMemcpyDtoH(self, dptr: int, nbytes: int) -> bytes:
        return self.cuMemcpyDtoHAsync(dptr, nbytes, DEFAULT_STREAM)

    def cuMemcpyDtoHAsync(self, dptr: int, nbytes: int,
                          stream: int = DEFAULT_STREAM) -> bytes:
        self._check_init()
        self._check_stream(stream)
        self._fault("cuMemcpyDtoHAsync", nbytes=nbytes)
        data = self.gmem.copy_out(dptr, nbytes)
        cost = self.host_model.memcpy_time(nbytes)
        start, end = self._schedule(stream, "memcpy_d2h", cost, nbytes=nbytes)
        self._note_memcpy("d2h", nbytes, start, end, stream)
        return data

    def cuMemsetD8(self, dptr: int, value: int, count: int,
                   stream: int = DEFAULT_STREAM) -> CUresult:
        self._check_init()
        self._check_stream(stream)
        self._fault("cuMemsetD8", nbytes=count)
        self.gmem.view(dptr, count, np.uint8)[:] = value & 0xFF
        cost = self.host_model.memcpy_time(count) / 2
        start, end = self._schedule(stream, "memcpy_h2d", cost, "memset",
                                    nbytes=count)
        self._note_memcpy("h2d", count, start, end, stream, detail="memset")
        return CUresult.CUDA_SUCCESS

    def cuMemcpyPeer(self, dst_dptr: int, dst_driver: "CudaDriver",
                     src_dptr: int, nbytes: int,
                     stream: int = DEFAULT_STREAM) -> CUresult:
        """Device-to-device transfer between two driver instances
        (``cuMemcpyPeer``-style: source and destination live in different
        contexts).  The bytes move immediately; the cost occupies the
        *source* device's copy engine on ``stream`` and the destination's
        copy-engine timeline is pushed to the same completion point, so
        neither device can overlap another transfer with it."""
        self._check_init()
        self._check_stream(stream)
        self._fault("cuMemcpyPeer", nbytes=nbytes)
        data = self.gmem.copy_out(src_dptr, nbytes)
        dst_driver.gmem.copy_in(dst_dptr, data)
        cost = self.host_model.memcpy_time(nbytes)
        start, end = self._schedule(stream, "memcpy_d2d", cost, "peer",
                                    nbytes=nbytes)
        if dst_driver is not self:
            dst_driver.streams.occupy_engine("copy", end)
        self._note_memcpy("d2d", nbytes, start, end, stream, detail="peer")
        return CUresult.CUDA_SUCCESS

    def _check_stream(self, stream: int) -> None:
        """Validate a stream handle *before* any functional side effect,
        so a bad handle is a clean CUDA_ERROR_INVALID_HANDLE instead of a
        copy that already mutated memory."""
        try:
            self.streams.get(stream)
        except StreamError as exc:
            raise CudaError(CUresult.CUDA_ERROR_INVALID_HANDLE, str(exc)) from exc

    def _note_memcpy(self, direction: str, nbytes: int, start: float,
                     end: float, stream: int, detail: str = "") -> None:
        if self.prof is None:
            return
        secs = end - start
        bw = (nbytes / secs / 1e9) if secs > 0 else 0.0
        self.prof.emit(MemcpyActivity(direction=direction, nbytes=nbytes,
                                      bandwidth_gbps=bw, detail=detail,
                                      stream=stream, t_start=start, t_end=end))

    # -- kernel launch -------------------------------------------------------------
    def _kernel_communicates(self, kernel: KernelIR) -> bool:
        key = (id(kernel),)
        cached = self._sample_cache.get(key)
        if cached is None:
            def block_local(ops) -> bool:
                for op in walk_ops(ops):
                    if isinstance(op, (BarOp, Atom)):
                        return False
                    if isinstance(op, CallOp) and not op.name.startswith("__ld") \
                            and op.name != "__local_base" \
                            and not op.name.startswith("omp_") \
                            and op.name not in (
                                "cudadev_target_init",
                                "cudadev_get_distribute_chunk",
                                "cudadev_get_static_chunk",
                                "cudadev_get_distribute_chunk_dim",
                                "cudadev_get_static_chunk_dim",
                            ):
                        return False
                return True
            cached = not (block_local(kernel.body) and all(
                block_local(sub.body) for sub in kernel.subfunctions.values()
            ))
            self._sample_cache[key] = cached
        return cached

    def _sample_blocks(self, grid: Dim3) -> list[tuple[int, int, int]]:
        import os
        want = int(os.environ.get("REPRO_SAMPLE_BLOCKS", "3"))
        mid = (grid.x // 2, grid.y // 2, grid.z // 2)
        if want <= 1:
            return [mid]
        first = (0, 0, 0)
        last = (grid.x - 1, grid.y - 1, grid.z - 1)
        if want == 2:
            return sorted({first, last})
        return sorted({first, mid, last})

    #: per-series sampling policy: functionally execute the first launches
    #: of a (kernel, grid, block) series, then exponentially back off —
    #: long launch series (gramschmidt's per-column kernels) have smoothly
    #: varying dynamic counts, interpolated between samples.
    @staticmethod
    def _should_sample_series(idx: int) -> bool:
        # Three consecutive early samples establish the slope; sparse
        # anchors re-calibrate long series.  (Early launches of k-indexed
        # kernel series carry the largest trip counts, so oversampling
        # them — e.g. at every power of two — is the expensive mistake.)
        if idx < 3:
            return True
        return idx % 199 == 0

    def _sampled_launch(self, engine, kernel, fn, grid, block, params,
                        total_blocks, total_warps,
                        communicates: bool = False) -> KernelStats:
        key = (fn.module_handle, fn.name, tuple(grid), tuple(block))
        series = self.__dict__.setdefault("_launch_series", {}).setdefault(
            key, {"count": 0, "samples": []}
        )
        idx = series["count"]
        series["count"] += 1
        if self._should_sample_series(idx):
            if communicates:
                sampled = engine.launch(kernel, grid, block, params)
            else:
                picks = self._sample_blocks(grid)
                # guard-skewed kernels (e.g. "if (j > k)", "if (tid == 0)")
                # concentrate work in a few warps, so a single-warp sample
                # extrapolates badly.  Blocks here have at most 8 warps
                # (256 threads), so running every warp of the 3 sampled
                # blocks is cheap and unbiased; huge blocks fall back to a
                # first/middle/last warp spread.
                wpb = (block.count + 31) // 32
                warp_picks = None if wpb <= 8 else {0, 1, wpb // 2, wpb - 1}
                sampled = engine.launch(kernel, grid, block, params,
                                        only_blocks=picks,
                                        only_warps=warp_picks)
            run_warps = max(sampled.warps_launched, 1)
            stats = KernelStats(grid=tuple(grid), block=tuple(block),
                                smem_per_block=sampled.smem_per_block)
            stats.merge_scaled(sampled, total_warps / run_warps)
            stats.blocks_launched = total_blocks
            stats.warps_launched = total_warps
            stats.threads_launched = block.count * total_blocks
            series["samples"].append((idx, sampled))
            return stats
        # extrapolate dynamic counts from the two nearest samples
        samples = series["samples"]
        (i0, s0) = samples[-1]
        (i1, s1) = samples[-2] if len(samples) > 1 else samples[-1]
        stats = KernelStats(grid=tuple(grid), block=tuple(block),
                            smem_per_block=s0.smem_per_block)
        if i0 != i1:
            slope = (idx - i0) / (i0 - i1)
        else:
            slope = 0.0
        run_warps = max(s0.warps_launched, 1)
        scale = total_warps / run_warps
        for name in ("instructions", "alu_f32", "alu_f64", "alu_int",
                     "special_ops", "load_instructions", "store_instructions",
                     "global_mem_instructions", "global_transactions",
                     "shared_accesses", "local_accesses",
                     "barriers", "atomics", "divergent_branches",
                     "loop_iterations", "spins"):
            v0 = getattr(s0, name)
            v1 = getattr(s1, name)
            est = v0 + (v0 - v1) * slope
            setattr(stats, name, max(0, int(est * scale)))
        stats.blocks_launched = total_blocks
        stats.warps_launched = total_warps
        stats.threads_launched = block.count * total_blocks
        return stats

    def cuLaunchKernel(
        self,
        fn: CUfunction,
        grid_x: int, grid_y: int, grid_z: int,
        block_x: int, block_y: int, block_z: int,
        shared_mem_bytes: int = 0,
        stream: int = 0,
        kernel_params: Optional[list] = None,
        block_range: Optional[tuple[int, int]] = None,
    ) -> KernelStats:
        self._check_init()
        # validate the stream up front: an unknown id is a loud error, not
        # a silently ignored argument
        self._check_stream(stream)
        self._fault("cuLaunchKernel")
        loaded = self._modules.get(fn.module_handle)
        if loaded is None:
            raise CudaError(CUresult.CUDA_ERROR_NOT_FOUND, "module unloaded")
        if not loaded.linked:
            raise CudaError(
                CUresult.CUDA_ERROR_INVALID_IMAGE,
                "cubin was built without the device runtime library "
                "(OMPi cubin-mode scripts link it at compile time)",
            )
        kernel = loaded.module.kernels[fn.name]
        grid = Dim3(grid_x, grid_y, grid_z)
        block = Dim3(block_x, block_y, block_z)
        params = self._prepare_params(kernel, kernel_params or [])
        engine = FunctionalEngine(self.device_props, self.gmem,
                                  self.intrinsics, loaded.global_addrs,
                                  fastpath=self.fastpath,
                                  compile_cache=self.kernel_cache,
                                  recorder=self.prof)
        # a sharded launch executes only a contiguous range of linear block
        # ids, with the *full* grid dims still visible to the device runtime
        # (cudadev_get_distribute_chunk derives each team's iteration chunk
        # from its global block id, so the subset covers exactly the global
        # sub-range the shard owns)
        shard_blocks = None
        if block_range is not None:
            blo, bhi = block_range
            if not (0 <= blo <= bhi <= grid.count):
                raise CudaError(
                    CUresult.CUDA_ERROR_INVALID_VALUE,
                    f"block_range {block_range} outside grid of {grid.count}")
            shard_blocks = [
                (b % grid.x, (b // grid.x) % grid.y, b // (grid.x * grid.y))
                for b in range(blo, bhi)
            ]
        total_blocks = grid.count if shard_blocks is None else len(shard_blocks)
        warps_per_block = (block.count + 31) // 32
        total_warps = total_blocks * warps_per_block
        communicates = self._kernel_communicates(kernel)
        sample = (
            self.launch_mode == "sample"
            or (self.launch_mode == "auto"
                and total_blocks * block.count > self.sample_threshold)
        )
        # never sample a shard: every retained block must actually run so
        # sharded output stays bit-identical to the single-device run
        if shard_blocks is not None:
            sample = False
        # In explicit sample mode even communicating kernels join a launch
        # *series*: sampled launches execute in full (their behaviour is not
        # block-local so no subsetting), unsampled ones are extrapolated.
        # In auto mode communicating kernels always run fully — they are
        # only auto-sampled when their grids are huge, which the paper's
        # master/worker kernels (one block of 128 threads) never are.
        if self.launch_mode == "auto" and communicates:
            sample = False
        wall0 = time.perf_counter()
        try:
            if sample:
                stats = self._sampled_launch(engine, kernel, fn, grid, block,
                                             params, total_blocks, total_warps,
                                             communicates)
            elif shard_blocks is not None:
                stats = engine.launch(kernel, grid, block, params,
                                      only_blocks=shard_blocks)
            else:
                stats = engine.launch(kernel, grid, block, params)
        except LaunchError as exc:
            raise CudaError(CUresult.CUDA_ERROR_LAUNCH_FAILED, str(exc)) from exc
        wall_s = time.perf_counter() - wall0
        self.stdout.extend(engine.stdout)
        resources = loaded.resources.get(fn.name, {})
        stats.registers_per_thread = resources.get("registers", 32)
        breakdown = self.gpu_model.kernel_time(stats)
        overhead = C.LAUNCH_LATENCY_S + C.PARAM_PREP_S * len(params)
        self._schedule(stream, "launch_overhead", overhead, kernel=fn.name)
        k_start, k_end = self._schedule(
            stream, "kernel", breakdown.total_s,
            detail=f"bound={breakdown.bound} warps={breakdown.occupancy_warps:.0f}",
            kernel=fn.name,
        )
        if self.prof is not None:
            self.prof.emit(KernelActivity(
                name=fn.name, grid=tuple(grid), block=tuple(block),
                stream=stream, t_start=k_start, t_end=k_end,
                modelled_s=breakdown.total_s, overhead_s=overhead,
                wall_s=wall_s, bound=breakdown.bound,
                occupancy_warps=breakdown.occupancy_warps,
                resident_blocks=breakdown.resident_blocks,
                registers_per_thread=stats.registers_per_thread,
                smem_per_block=stats.smem_per_block,
                instructions=stats.instructions,
                global_mem_instructions=stats.global_mem_instructions,
                global_transactions=stats.global_transactions,
                divergent_branches=stats.divergent_branches,
                barriers=stats.barriers, atomics=stats.atomics,
                shared_accesses=stats.shared_accesses,
                local_accesses=stats.local_accesses,
            ))
        self.last_kernel_stats = stats
        self.last_kernel_seconds = breakdown.total_s
        return stats

    def _prepare_params(self, kernel: KernelIR, raw: list) -> list:
        if len(raw) != len(kernel.params):
            raise CudaError(
                CUresult.CUDA_ERROR_INVALID_VALUE,
                f"kernel {kernel.name} takes {len(kernel.params)} parameters, "
                f"got {len(raw)}",
            )
        params = []
        for spec, value in zip(kernel.params, raw):
            dt = np_dtype(spec.dtype)
            if hasattr(value, "addr"):           # interp Ptr
                value = value.addr
            params.append(dt.type(value))
        return params
