"""Binary image containers: PTX (portable, JIT-able) and cubin (AOT).

Paper §3.3: OMPi can emit either *ptx* kernels — architecture-agnostic,
JIT-compiled at first launch and cached on disk — or *cubin* kernels —
fully compiled ahead of time for one architecture (the default, to avoid
JIT overhead at runtime).

A PTX image here carries the PTX-like text (inspection) plus the portable
ModuleIR; "JIT compilation" resolves the IR against a concrete device
(arch check, shared-memory budget check, device-library linking) and
produces a CubinImage, exactly mirroring where work happens in the real
tool-chain.
"""

from __future__ import annotations

import io
import pickle
import zlib
from dataclasses import dataclass, field

from repro.cuda.errors import CUresult, CudaError
from repro.cuda.ptx.ir import KernelIR, ModuleIR

_PTX_MAGIC = b"REPROPTX1\n"
_CUBIN_MAGIC = b"REPROCUBIN1\n"


@dataclass
class PtxImage:
    """Architecture-agnostic kernel image (one per kernel file)."""

    module: ModuleIR
    text: str

    def to_bytes(self) -> bytes:
        payload = pickle.dumps((self.module, self.text), protocol=pickle.HIGHEST_PROTOCOL)
        return _PTX_MAGIC + zlib.compress(payload)

    @staticmethod
    def from_bytes(data: bytes) -> "PtxImage":
        if not data.startswith(_PTX_MAGIC):
            raise CudaError(CUresult.CUDA_ERROR_INVALID_IMAGE, "not a PTX image")
        module, text = pickle.loads(zlib.decompress(data[len(_PTX_MAGIC):]))
        return PtxImage(module, text)

    def content_hash(self) -> str:
        import hashlib
        return hashlib.sha256(self.text.encode() + self.module.to_bytes()).hexdigest()


@dataclass
class CubinImage:
    """Architecture-specific image: resolved IR + launch metadata.

    ``linked`` records whether the device runtime library has been linked
    in (cubins produced by the OMPi cubin-mode scripts are pre-linked; a
    JIT-ed PTX must be linked at load time, paper §4.2.1)."""

    module: ModuleIR
    arch: str
    linked: bool = True
    #: per-kernel resource usage, filled by the "assembler"
    resources: dict[str, dict] = field(default_factory=dict)

    def to_bytes(self) -> bytes:
        payload = pickle.dumps(
            (self.module, self.arch, self.linked, self.resources),
            protocol=pickle.HIGHEST_PROTOCOL,
        )
        return _CUBIN_MAGIC + zlib.compress(payload)

    @staticmethod
    def from_bytes(data: bytes) -> "CubinImage":
        if not data.startswith(_CUBIN_MAGIC):
            raise CudaError(CUresult.CUDA_ERROR_INVALID_IMAGE, "not a cubin image")
        module, arch, linked, resources = pickle.loads(
            zlib.decompress(data[len(_CUBIN_MAGIC):])
        )
        return CubinImage(module, arch, linked, resources)


def estimate_resources(kernel: KernelIR) -> dict:
    """Static resource estimate recorded in cubins (register pressure is
    approximated by the number of distinct virtual registers, which the
    timing model uses for its occupancy term)."""
    from repro.cuda.ptx.ir import Reg, walk_ops

    regs: set[str] = set()
    ops = 0
    for op in walk_ops(kernel.body):
        ops += 1
        for attr in ("dst", "a", "b", "addr", "value", "cond", "pred"):
            v = getattr(op, attr, None)
            if isinstance(v, Reg):
                regs.add(v.name)
    # Virtual-register counts vastly overstate allocated registers (ptxas
    # reuses registers across disjoint live ranges); the divisor reflects
    # typical reuse on Maxwell-era ptxas output.
    return {
        "registers": max(16, min(255, len(regs) // 6 + 14)),
        "static_ops": ops,
        "smem_static": kernel.smem_static,
    }


def assemble_cubin(module: ModuleIR, arch: str, linked: bool = True) -> CubinImage:
    """'ptxas': resolve a portable module for one architecture."""
    image = CubinImage(module, arch, linked)
    for name, kernel in module.kernels.items():
        image.resources[name] = estimate_resources(kernel)
    return image


def identify_image(data: bytes) -> str:
    if data.startswith(_PTX_MAGIC):
        return "ptx"
    if data.startswith(_CUBIN_MAGIC):
        return "cubin"
    raise CudaError(CUresult.CUDA_ERROR_INVALID_IMAGE, "unrecognised image format")
