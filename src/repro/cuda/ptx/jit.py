"""Runtime JIT of PTX images, with the on-disk compilation cache.

Paper §3.3: in ptx mode "the final step of their compilation is handled at
runtime just before the actual offloading ... it utilizes disk caching, a
CUDA feature that aims to eliminate repetitive compilations of the same
kernels."  The cache below mirrors CUDA's ComputeCache: keyed by
(PTX content hash, target arch), storing finished cubins.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Optional

from repro.cuda.device import DeviceProperties
from repro.cuda.errors import CUresult, CudaError
from repro.cuda.ptx.images import CubinImage, PtxImage, assemble_cubin

#: model costs (virtual seconds) for JIT work; calibrated so that a first
#: ptx-mode launch pays a visible one-off cost relative to cubin mode,
#: matching the paper's motivation for defaulting to cubin.
JIT_BASE_COST_S = 35e-3
JIT_PER_OP_COST_S = 18e-6
LINK_COST_S = 6e-3
CACHE_HIT_COST_S = 1.2e-3


class JitCache:
    """On-disk cubin cache (the ComputeCache stand-in)."""

    def __init__(self, cache_dir: str | os.PathLike | None = None):
        if cache_dir is None:
            cache_dir = os.environ.get(
                "REPRO_CUDA_CACHE_DIR",
                os.path.join(os.path.expanduser("~"), ".repro_nv", "ComputeCache"),
            )
        self.dir = Path(cache_dir)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.dir / f"{key}.cubin"

    def lookup(self, key: str) -> Optional[CubinImage]:
        path = self._path(key)
        if path.is_file():
            try:
                image = CubinImage.from_bytes(path.read_bytes())
            except (CudaError, OSError, EOFError):
                return None
            self.hits += 1
            return image
        self.misses += 1
        return None

    def insert(self, key: str, image: CubinImage) -> None:
        self.dir.mkdir(parents=True, exist_ok=True)
        self._path(key).write_bytes(image.to_bytes())

    def clear(self) -> None:
        if self.dir.is_dir():
            for path in self.dir.glob("*.cubin"):
                path.unlink()


class JitResult:
    def __init__(self, image: CubinImage, compile_time_s: float, cached: bool):
        self.image = image
        self.compile_time_s = compile_time_s
        self.cached = cached


def jit_compile(
    ptx: PtxImage,
    device: DeviceProperties,
    cache: Optional[JitCache] = None,
    link_device_library: bool = True,
) -> JitResult:
    """Compile a PTX image for ``device`` (and link the device runtime
    library), consulting the disk cache first."""
    target_major = int(device.arch[3])
    ptx_major = int(ptx.module.arch[3]) if ptx.module.arch.startswith("sm_") else target_major
    if ptx_major > target_major:
        raise CudaError(
            CUresult.CUDA_ERROR_INVALID_IMAGE,
            f"PTX targets {ptx.module.arch}, device is {device.arch}",
        )
    key = f"{ptx.content_hash()}-{device.arch}"
    if cache is not None:
        hit = cache.lookup(key)
        if hit is not None:
            return JitResult(hit, CACHE_HIT_COST_S, cached=True)
    total_ops = sum(k.static_op_count() for k in ptx.module.kernels.values())
    compile_time = JIT_BASE_COST_S + JIT_PER_OP_COST_S * total_ops
    if link_device_library:
        compile_time += LINK_COST_S
    image = assemble_cubin(ptx.module, device.arch, linked=link_device_library)
    for name, res in image.resources.items():
        smem = res["smem_static"]
        if smem > device.shared_mem_per_block:
            raise CudaError(
                CUresult.CUDA_ERROR_LAUNCH_OUT_OF_RESOURCES,
                f"kernel {name} needs {smem} bytes of shared memory, "
                f"device has {device.shared_mem_per_block}",
            )
    if cache is not None:
        cache.insert(key, image)
    return JitResult(image, compile_time, cached=False)
