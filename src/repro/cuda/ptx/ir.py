"""Structured SIMT IR — the reproduction's PTX.

Unlike real PTX the control flow is *structured* (``IfOp``/``LoopOp``
instead of raw branches).  That choice keeps the warp-lockstep execution
engine simple while still modelling exactly the phenomena the paper's
runtime depends on: divergence (both arms of a divergent ``IfOp`` are
serialized under lane masks), warp-synchronous execution, named barriers
(``BarOp`` = ``bar.sync b, n``) and global-memory atomics.

All operands are typed with the dtype names below; registers are per-lane
(32-wide) values inside the engine.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

import numpy as np

#: IR dtypes -> numpy dtypes
DTYPES = {
    "s8": np.int8, "u8": np.uint8,
    "s16": np.int16, "u16": np.uint16,
    "s32": np.int32, "u32": np.uint32,
    "s64": np.int64, "u64": np.uint64,
    "f32": np.float32, "f64": np.float64,
    "pred": np.bool_,
}

SIZEOF = {name: np.dtype(dt).itemsize for name, dt in DTYPES.items()}
SIZEOF["pred"] = 1

MEMORY_SPACES = ("global", "shared", "local")


def np_dtype(name: str) -> np.dtype:
    return np.dtype(DTYPES[name])


@dataclass(frozen=True)
class Reg:
    name: str
    dtype: str

    def __str__(self) -> str:
        return f"%{self.name}"


@dataclass(frozen=True)
class Imm:
    value: Union[int, float, bool]
    dtype: str

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class GlobalAddr:
    """Address of a module-level ``__device__`` global, resolved at launch."""

    name: str
    dtype: str = "u64"

    def __str__(self) -> str:
        return f"&{self.name}"


Operand = Union[Reg, Imm, GlobalAddr]


class Op:
    """Base class of all IR operations."""

    def sub_blocks(self) -> Iterator[list["Op"]]:
        return iter(())


@dataclass
class BinOp(Op):
    dst: Reg
    op: str            # add sub mul div rem shl shr and or xor min max
                       # lt le gt ge eq ne (dst must be pred)
    a: Operand = None  # type: ignore[assignment]
    b: Operand = None  # type: ignore[assignment]


@dataclass
class UnOp(Op):
    dst: Reg
    op: str            # neg not lnot abs sqrt exp log sin cos floor ceil rcp
    a: Operand = None  # type: ignore[assignment]


@dataclass
class SelOp(Op):
    dst: Reg
    pred: Operand = None  # type: ignore[assignment]
    a: Operand = None     # type: ignore[assignment]
    b: Operand = None     # type: ignore[assignment]


@dataclass
class Cvt(Op):
    dst: Reg
    a: Operand = None  # type: ignore[assignment]


@dataclass
class Mov(Op):
    dst: Reg
    a: Operand = None  # type: ignore[assignment]


@dataclass
class Ld(Op):
    dst: Reg
    space: str = "global"
    addr: Operand = None  # type: ignore[assignment]


@dataclass
class St(Op):
    space: str = "global"
    addr: Operand = None   # type: ignore[assignment]
    value: Operand = None  # type: ignore[assignment]
    dtype: str = "f32"


@dataclass
class Atom(Op):
    """Atomic op on memory.  ``cas``: dst = old, stores b when old == a.
    ``add``/``exch``/``max``/``min``: dst = old, applies a."""

    dst: Optional[Reg]
    op: str = "add"
    space: str = "global"
    addr: Operand = None   # type: ignore[assignment]
    a: Operand = None      # type: ignore[assignment]
    b: Optional[Operand] = None
    dtype: str = "s32"


@dataclass
class Sreg(Op):
    """Read a special register: tid.{x,y,z}, ntid.*, ctaid.*, nctaid.*,
    laneid, warpid."""

    dst: Reg
    sreg: str = "tid.x"


@dataclass
class IfOp(Op):
    cond: Operand
    then_ops: list[Op] = field(default_factory=list)
    else_ops: list[Op] = field(default_factory=list)

    def sub_blocks(self):
        yield self.then_ops
        yield self.else_ops


@dataclass
class LoopOp(Op):
    """``while``: execute ``cond_ops``, lanes where ``cond`` holds run
    ``body_ops``; repeat until no lane is active.  The engine yields to the
    block scheduler between iterations so spin-wait loops (CAS locks) make
    progress."""

    cond_ops: list[Op] = field(default_factory=list)
    cond: Operand = None  # type: ignore[assignment]
    body_ops: list[Op] = field(default_factory=list)

    def sub_blocks(self):
        yield self.cond_ops
        yield self.body_ops


@dataclass
class BreakOp(Op):
    pass


@dataclass
class ContinueOp(Op):
    pass


@dataclass
class RetOp(Op):
    pass


@dataclass
class BarOp(Op):
    """``bar.sync barrier, count``; ``count`` is in *threads* and must be a
    multiple of the warp size (hardware restriction the paper works around
    with the W*ceil(N/W) rule).  ``count`` None = all threads in block."""

    barrier: Operand = None  # type: ignore[assignment]
    count: Optional[Operand] = None


@dataclass
class CallOp(Op):
    """Call into the device runtime library (an intrinsic registered with
    the engine) — e.g. ``cudadev_register_parallel``."""

    dst: Optional[Reg]
    name: str = ""
    args: list[Operand] = field(default_factory=list)


@dataclass
class PrintfOp(Op):
    fmt: str = ""
    args: list[Operand] = field(default_factory=list)


@dataclass
class KernelParam:
    name: str
    dtype: str           # pointers are u64
    is_pointer: bool = False


@dataclass
class KernelIR:
    name: str
    params: list[KernelParam] = field(default_factory=list)
    body: list[Op] = field(default_factory=list)
    #: shared-memory layout for __shared__ declarations: name -> (offset, size)
    shared_layout: dict[str, tuple[int, int]] = field(default_factory=dict)
    smem_static: int = 0
    #: per-thread local-memory bytes (local arrays)
    local_static: int = 0
    #: device functions referenced via function "pointers" (registered
    #: parallel-region bodies); name -> (params, body)
    subfunctions: dict[str, "KernelIR"] = field(default_factory=dict)

    def static_op_count(self) -> int:
        def count(ops: list[Op]) -> int:
            total = 0
            for op in ops:
                total += 1
                for blk in op.sub_blocks():
                    total += count(blk)
            return total
        return count(self.body)


@dataclass
class ModuleIR:
    """The device-side contents of one kernel file."""

    name: str
    kernels: dict[str, KernelIR] = field(default_factory=dict)
    #: module-scope __device__ globals: name -> size in bytes
    globals_: dict[str, int] = field(default_factory=dict)
    arch: str = "sm_53"

    def to_bytes(self) -> bytes:
        return pickle.dumps(self, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def from_bytes(data: bytes) -> "ModuleIR":
        module = pickle.loads(data)
        if not isinstance(module, ModuleIR):
            raise TypeError("not a ModuleIR image")
        return module

    def content_hash(self) -> str:
        return hashlib.sha256(self.to_bytes()).hexdigest()[:16]


def walk_ops(ops: list[Op]) -> Iterator[Op]:
    for op in ops:
        yield op
        for blk in op.sub_blocks():
            yield from walk_ops(blk)


class RegAllocator:
    """Generates uniquely named virtual registers."""

    def __init__(self, prefix: str = "r"):
        self.prefix = prefix
        self.counts: dict[str, int] = {}

    def new(self, dtype: str, hint: str = "") -> Reg:
        key = hint or self.prefix
        n = self.counts.get(key, 0)
        self.counts[key] = n + 1
        return Reg(f"{key}{n}", dtype)
