"""CUDA-C AST -> SIMT IR lowering (the compiling half of the nvcc stand-in).

Supported input is the CUDA C subset that the OMPi CUDA code generator
emits plus what hand-written Polybench CUDA kernels need:

* ``__global__`` kernels and ``__device__`` functions (inlined at their
  call sites, as nvcc aggressively does; recursion is rejected);
* scalar locals in registers, ``__shared__`` variables/structs/arrays in
  block shared memory, local arrays in per-thread local memory;
* ``threadIdx``/``blockIdx``/``blockDim``/``gridDim`` special registers;
* full expression set with C's usual arithmetic conversions;
* control flow (if/while/for/do, break/continue/return);
* calls to the device runtime library (``cudadev_*``, device-side
  ``omp_*``), math builtins, ``__syncthreads``, ``atomicCAS``/``atomicAdd``
  and ``asm`` named barriers via the ``__bar_sync(b, n)`` builtin;
* device ``printf``.

Addresses are *generic*: the engine routes loads/stores to global, shared
or local memory by address range, like CUDA's generic address space.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfront import astnodes as A
from repro.cfront.ctypes_ import (
    ArrayType, BasicType, CType, DOUBLE, FLOAT, FunctionType, INT,
    PointerType, StructType, promote, usual_arithmetic,
)
from repro.cfront.errors import CFrontError, SourceLoc
from repro.cuda.ptx.ir import (
    Atom, BarOp, BinOp, BreakOp, CallOp, ContinueOp, Cvt, GlobalAddr, IfOp,
    Imm, KernelIR, KernelParam, Ld, LoopOp, ModuleIR, Mov, Op, Operand,
    PrintfOp, Reg, RegAllocator, RetOp, SelOp, Sreg, St, UnOp,
)

#: Virtual base of each block's shared-memory window (generic addressing).
SHARED_WINDOW_BASE = 0x7000_0000_0000
#: Virtual base of per-thread local-memory windows.
LOCAL_WINDOW_BASE = 0x7800_0000_0000


class LowerError(CFrontError):
    """Unsupported construct in device code."""


def ctype_to_ir(ctype: CType) -> str:
    if isinstance(ctype, (PointerType, ArrayType)):
        return "u64"
    if isinstance(ctype, BasicType):
        table = {
            ("char", True): "s8", ("char", False): "u8",
            ("short", True): "s16", ("short", False): "u16",
            ("int", True): "s32", ("int", False): "u32",
            ("long", True): "s64", ("long", False): "u64",
        }
        if ctype.kind == "float":
            return "f32"
        if ctype.kind == "double":
            return "f64"
        if ctype.kind == "void":
            raise LowerError("void has no IR type")
        return table[(ctype.kind, ctype.signed)]
    raise LowerError(f"no IR type for {ctype}")


_MATH_UNOPS = {
    "sqrtf": "sqrt", "sqrt": "sqrt", "fabsf": "abs", "fabs": "abs",
    "expf": "exp", "exp": "exp", "logf": "log", "log": "log",
    "sinf": "sin", "sin": "sin", "cosf": "cos", "cos": "cos",
    "floorf": "floor", "floor": "floor", "ceilf": "ceil", "ceil": "ceil",
}

_SREGS = {"threadIdx": "tid", "blockIdx": "ctaid", "blockDim": "ntid",
          "gridDim": "nctaid"}

_CMP_OPS = {"<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne"}
_ARITH_OPS = {"+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
              "<<": "shl", ">>": "shr", "&": "and", "|": "or", "^": "xor"}


@dataclass
class _Var:
    """A device-code variable: either a register (scalar) or memory."""

    ctype: CType
    reg: Optional[Reg] = None
    #: for memory-homed variables: operand holding the byte address
    addr: Optional[Operand] = None
    space: str = "shared"


class KernelLowerer:
    """Compiles one ``__global__`` function (plus reachable ``__device__``
    functions, inlined) to :class:`KernelIR`."""

    def __init__(
        self,
        unit: A.TranslationUnit,
        intrinsic_sigs: dict[str, tuple[tuple[str, ...], Optional[str]]],
        module_globals: dict[str, int] | None = None,
        smem_reserved: int = 0,
    ):
        self.unit = unit
        self.intrinsics = intrinsic_sigs
        self.module_globals = module_globals or {}
        #: declared C types of module-scope __device__ globals
        self.module_global_types: dict[str, CType] = {}
        for d in unit.decls:
            if isinstance(d, A.GlobalDecl):
                for v in d.decls:
                    if v.name in self.module_globals:
                        self.module_global_types[v.name] = v.type
        self.regs = RegAllocator()
        #: static shared-memory layout; the device runtime reserves a
        #: control area at offset 0 (smem_reserved bytes).
        self.smem_offset = smem_reserved
        self.shared_layout: dict[str, tuple[int, int]] = {}
        self.local_offset = 0              # per-thread local memory usage
        self.subfunctions: dict[str, KernelIR] = {}
        self._subfn_ids: dict[str, int] = {}
        self._inline_stack: list[str] = []
        self._device_fns = {
            d.name: d for d in unit.decls
            if isinstance(d, A.FuncDef) and "__device__" in d.quals
        }

    # ------------------------------------------------------------------ entry
    @staticmethod
    def _address_taken_names(fn: A.FuncDef) -> frozenset[str]:
        """Names of scalar locals whose address is taken (``&i``): these are
        demoted from registers to per-thread local memory, as real compilers
        do — OMPi's generated master/worker code relies on it
        (``cudadev_push_shmem(&i, sizeof(i))``)."""
        names: set[str] = set()
        for node in fn.body.walk():
            if isinstance(node, A.Unary) and node.op == "&" \
                    and isinstance(node.operand, A.Ident):
                names.add(node.operand.name)
        return frozenset(names)

    def lower_kernel(self, fn: A.FuncDef) -> KernelIR:
        self._addr_taken = self._address_taken_names(fn)
        scopes: list[dict[str, _Var]] = [{}]
        params: list[KernelParam] = []
        body: list[Op] = []  # type: ignore[name-defined]
        for p in fn.params:
            ctype = p.type.decay()
            dtype = ctype_to_ir(ctype)
            reg = self.regs.new(dtype, p.name + "_")
            params.append(KernelParam(p.name, dtype, isinstance(ctype, PointerType)))
            scopes[0][p.name] = _Var(ctype, reg=reg)
            body.append(CallOp(reg, "__ldparam", [Imm(len(params) - 1, "s32")]))
        ops = self.lower_block(fn.body, scopes)
        body.extend(ops)
        kernel = KernelIR(
            name=fn.name,
            params=params,
            body=body,
            shared_layout=dict(self.shared_layout),
            smem_static=self.smem_offset,
            local_static=self.local_offset,
            subfunctions=dict(self.subfunctions),
        )
        return kernel

    def lower_subfunction(self, fn: A.FuncDef) -> int:
        """Lower a ``__device__`` function to a callable subfunction (used
        for registered parallel-region bodies) and return its id."""
        if fn.name in self._subfn_ids:
            return self._subfn_ids[fn.name]
        self._addr_taken = getattr(self, "_addr_taken", frozenset()) | \
            self._address_taken_names(fn)
        scopes: list[dict[str, _Var]] = [{}]
        params: list[KernelParam] = []
        body: list = []
        for p in fn.params:
            ctype = p.type.decay()
            dtype = ctype_to_ir(ctype)
            reg = self.regs.new(dtype, p.name + "_")
            params.append(KernelParam(p.name, dtype, isinstance(ctype, PointerType)))
            scopes[0][p.name] = _Var(ctype, reg=reg)
            body.append(CallOp(reg, "__ldarg", [Imm(len(params) - 1, "s32")]))
        body.extend(self.lower_block(fn.body, scopes))
        sub = KernelIR(name=fn.name, params=params, body=body)
        fid = len(self.subfunctions)
        self.subfunctions[fn.name] = sub
        self._subfn_ids[fn.name] = fid
        return fid

    # -------------------------------------------------------------- statements
    def lower_block(self, stmt: A.Stmt, scopes: list[dict[str, _Var]]) -> list:
        ops: list = []
        if isinstance(stmt, A.Compound):
            scopes.append({})
            for inner in stmt.body:
                ops.extend(self.lower_stmt(inner, scopes))
            scopes.pop()
        else:
            ops.extend(self.lower_stmt(stmt, scopes))
        return ops

    def lower_stmt(self, stmt: A.Stmt, scopes: list[dict[str, _Var]]) -> list:
        if isinstance(stmt, A.Compound):
            return self.lower_block(stmt, scopes)
        if isinstance(stmt, A.ExprStmt):
            if stmt.expr is None:
                return []
            ops: list = []
            self.lower_expr_effects(stmt.expr, scopes, ops)
            return ops
        if isinstance(stmt, A.DeclStmt):
            return self._lower_decl(stmt, scopes)
        if isinstance(stmt, A.If):
            ops = []
            cond, _ = self.lower_rvalue(stmt.cond, scopes, ops)
            pred = self._to_pred(cond, ops)
            then_ops = self.lower_block(stmt.then, scopes)
            else_ops = self.lower_block(stmt.other, scopes) if stmt.other else []
            ops.append(IfOp(pred, then_ops, else_ops))
            return ops
        if isinstance(stmt, A.While):
            cond_ops: list = []
            cond, _ = self.lower_rvalue(stmt.cond, scopes, cond_ops)
            pred = self._to_pred(cond, cond_ops)
            body_ops = self.lower_block(stmt.body, scopes)
            return [LoopOp(cond_ops, pred, body_ops)]
        if isinstance(stmt, A.DoWhile):
            # do { B } while (c)  ==  first = 1; while (first || c) { B; first = 0 }
            first = self.regs.new("pred", "dofirst")
            cond_ops: list = []
            cond, _ = self.lower_rvalue(stmt.cond, scopes, cond_ops)
            cpred = self._to_pred(cond, cond_ops)
            merged = self.regs.new("pred", "docond")
            cond_ops.append(BinOp(merged, "or", first, cpred))
            body_ops = self.lower_block(stmt.body, scopes)
            body_ops.append(Mov(first, Imm(False, "pred")))
            return [Mov(first, Imm(True, "pred")), LoopOp(cond_ops, merged, body_ops)]
        if isinstance(stmt, A.For):
            ops = []
            scopes.append({})
            if stmt.init is not None:
                ops.extend(self.lower_stmt(stmt.init, scopes))
            cond_ops: list = []
            if stmt.cond is not None:
                cond, _ = self.lower_rvalue(stmt.cond, scopes, cond_ops)
                pred = self._to_pred(cond, cond_ops)
            else:
                pred = Imm(True, "pred")
            body_ops = self.lower_block(stmt.body, scopes)
            step_ops: list = []
            if stmt.step is not None:
                self.lower_expr_effects(stmt.step, scopes, step_ops)
            loop = LoopOp(cond_ops, pred, body_ops)
            loop.step_ops = step_ops  # type: ignore[attr-defined]
            ops.append(loop)
            scopes.pop()
            return ops
        if isinstance(stmt, A.Return):
            ops = []
            if stmt.value is not None:
                # value returns only occur in inlined __device__ functions,
                # which are handled by _inline_call; in a kernel body a value
                # return is ignored (CUDA kernels are void).
                self.lower_rvalue(stmt.value, scopes, ops)
            ops.append(RetOp())
            return ops
        if isinstance(stmt, A.Break):
            return [BreakOp()]
        if isinstance(stmt, A.Continue):
            return [ContinueOp()]
        if isinstance(stmt, A.PragmaStmt):
            raise LowerError(
                f"unlowered pragma in device code: #pragma {stmt.text}", stmt.loc
            )
        raise LowerError(f"unsupported device statement {type(stmt).__name__}",
                         getattr(stmt, "loc", None))

    def _lower_decl(self, stmt: A.DeclStmt, scopes: list[dict[str, _Var]]) -> list:
        ops: list = []
        for d in stmt.decls:
            shared = "__shared__" in d.quals
            ctype = d.type
            addr_taken = d.name in getattr(self, "_addr_taken", frozenset())
            if addr_taken and not shared and not isinstance(ctype, (ArrayType, StructType)):
                # demote to per-thread local memory so '&name' is meaningful
                size = ctype.sizeof()
                align = max(ctype.alignof(), 4)
                self.local_offset = (self.local_offset + align - 1) // align * align
                offset = self.local_offset
                self.local_offset += size
                addr_reg = self.regs.new("u64", d.name + "_laddr")
                ops.append(CallOp(addr_reg, "__local_base", [Imm(offset, "s64")]))
                scopes[-1][d.name] = _Var(ctype, addr=addr_reg, space="local")
                if d.init is not None:
                    value, vtype = self.lower_rvalue(d.init, scopes, ops)
                    self._store(addr_reg, ctype, "local", value, vtype, ops)
                continue
            if shared or isinstance(ctype, (ArrayType, StructType)):
                size = ctype.sizeof()
                align = max(ctype.alignof(), 4)
                if shared:
                    self.smem_offset = (self.smem_offset + align - 1) // align * align
                    offset = self.smem_offset
                    self.smem_offset += size
                    self.shared_layout[d.name] = (offset, size)
                    addr = Imm(SHARED_WINDOW_BASE + offset, "u64")
                    space = "shared"
                else:
                    self.local_offset = (self.local_offset + align - 1) // align * align
                    offset = self.local_offset
                    self.local_offset += size
                    addr_reg = self.regs.new("u64", d.name + "_laddr")
                    ops.append(CallOp(addr_reg, "__local_base", [Imm(offset, "s64")]))
                    addr = addr_reg
                    space = "local"
                scopes[-1][d.name] = _Var(ctype, addr=addr, space=space)
                if d.init is not None:
                    raise LowerError(
                        f"initializer on memory-homed device variable {d.name!r}", d.loc
                    )
                continue
            dtype = ctype_to_ir(ctype)
            reg = self.regs.new(dtype, d.name + "_")
            scopes[-1][d.name] = _Var(ctype, reg=reg)
            if d.init is not None:
                value, vtype = self.lower_rvalue(d.init, scopes, ops)
                value = self._convert(value, vtype, ctype, ops)
                ops.append(Mov(reg, value))
        return ops

    # -------------------------------------------------------------- expressions
    def lower_expr_effects(self, expr: A.Expr, scopes, ops: list) -> None:
        """Lower an expression evaluated for side effects."""
        self.lower_rvalue(expr, scopes, ops, want_value=False)

    def lower_rvalue(
        self, expr: A.Expr, scopes, ops: list, want_value: bool = True
    ) -> tuple[Operand, CType]:
        if isinstance(expr, A.IntLit):
            return Imm(expr.value, "s32" if -(2**31) <= expr.value < 2**31 else "s64"), INT
        if isinstance(expr, A.FloatLit):
            if expr.single:
                return Imm(float(expr.value), "f32"), FLOAT
            return Imm(float(expr.value), "f64"), DOUBLE
        if isinstance(expr, A.CharLit):
            return Imm(expr.value, "s32"), INT
        if isinstance(expr, A.StringLit):
            raise LowerError("string values only allowed as printf formats", expr.loc)
        if isinstance(expr, A.Ident):
            return self._lower_ident(expr, scopes, ops)
        if isinstance(expr, A.Member):
            return self._lower_member_rvalue(expr, scopes, ops)
        if isinstance(expr, A.Index):
            addr, ctype, space = self.lower_address(expr, scopes, ops)
            return self._load(addr, ctype, space, ops)
        if isinstance(expr, A.Unary):
            return self._lower_unary(expr, scopes, ops)
        if isinstance(expr, A.Binary):
            return self._lower_binary(expr, scopes, ops)
        if isinstance(expr, A.Assign):
            return self._lower_assign(expr, scopes, ops)
        if isinstance(expr, A.Cond):
            return self._lower_cond(expr, scopes, ops)
        if isinstance(expr, A.Comma):
            result: tuple[Operand, CType] = (Imm(0, "s32"), INT)
            for part in expr.parts:
                result = self.lower_rvalue(part, scopes, ops)
            return result
        if isinstance(expr, A.Call):
            return self._lower_call(expr, scopes, ops, want_value)
        if isinstance(expr, A.Cast):
            value, vtype = self.lower_rvalue(expr.operand, scopes, ops)
            if isinstance(expr.type, BasicType) and expr.type.is_void:
                return Imm(0, "s32"), INT
            return self._convert(value, vtype, expr.type, ops), expr.type
        if isinstance(expr, A.SizeofType):
            return Imm(expr.type.sizeof(), "s64"), BasicType("long", False)
        if isinstance(expr, A.SizeofExpr):
            ctype = self._static_type(expr.operand, scopes)
            return Imm(ctype.sizeof(), "s64"), BasicType("long", False)
        raise LowerError(f"unsupported device expression {type(expr).__name__}",
                         getattr(expr, "loc", None))

    # -- identifiers / special registers --------------------------------------
    def _find_var(self, name: str, scopes) -> Optional[_Var]:
        for scope in reversed(scopes):
            if name in scope:
                return scope[name]
        return None

    def _lower_ident(self, expr: A.Ident, scopes, ops) -> tuple[Operand, CType]:
        var = self._find_var(expr.name, scopes)
        if var is not None:
            if var.reg is not None:
                return var.reg, var.ctype
            # memory-homed: arrays decay, structs yield their address
            if isinstance(var.ctype, ArrayType):
                return var.addr, PointerType(var.ctype.elem)
            if isinstance(var.ctype, StructType):
                return var.addr, PointerType(var.ctype)
            addr = var.addr
            return self._load(addr, var.ctype, var.space, ops)
        if expr.name in self.module_globals:
            gtype = self.module_global_types.get(expr.name)
            if gtype is None:
                return GlobalAddr(expr.name), PointerType(BasicType("char"))
            if isinstance(gtype, ArrayType):
                return GlobalAddr(expr.name), PointerType(gtype.elem)
            if isinstance(gtype, StructType):
                return GlobalAddr(expr.name), PointerType(gtype)
            # scalar device global: load its value
            return self._load(GlobalAddr(expr.name), gtype, "global", ops)
        raise LowerError(f"undeclared identifier {expr.name!r} in device code", expr.loc)

    def _lower_member_rvalue(self, expr: A.Member, scopes, ops) -> tuple[Operand, CType]:
        if isinstance(expr.base, A.Ident) and expr.base.name in _SREGS:
            reg = self.regs.new("u32", "sr")
            ops.append(Sreg(reg, f"{_SREGS[expr.base.name]}.{expr.name}"))
            return reg, BasicType("int", signed=False)
        addr, ctype, space = self.lower_address(expr, scopes, ops)
        return self._load(addr, ctype, space, ops)

    # -- addresses (lvalues) ------------------------------------------------------
    def lower_address(self, expr: A.Expr, scopes, ops) -> tuple[Operand, CType, str]:
        """Compute the byte address of an lvalue; returns (addr, type, space)."""
        if isinstance(expr, A.Ident):
            var = self._find_var(expr.name, scopes)
            if var is None:
                if expr.name in self.module_globals:
                    gtype = self.module_global_types.get(
                        expr.name, BasicType("char"))
                    return GlobalAddr(expr.name), gtype, "global"
                raise LowerError(f"undeclared identifier {expr.name!r}", expr.loc)
            if var.addr is None:
                raise LowerError(
                    f"cannot take the address of register variable {expr.name!r}"
                    " (device registers have no address)", expr.loc
                )
            return var.addr, var.ctype, var.space
        if isinstance(expr, A.Index):
            base, btype = self.lower_rvalue(expr.base, scopes, ops)
            space = self._space_of(expr.base, scopes)
            if isinstance(btype, ArrayType):
                btype = PointerType(btype.elem)
            if not isinstance(btype, PointerType):
                raise LowerError("subscript of non-pointer in device code", expr.loc)
            elem = btype.pointee
            idx, itype = self.lower_rvalue(expr.index, scopes, ops)
            idx64 = self._convert(idx, itype, BasicType("long"), ops)
            scaled = self.regs.new("s64", "off")
            ops.append(BinOp(scaled, "mul", idx64, Imm(elem.sizeof(), "s64")))
            addr = self.regs.new("u64", "addr")
            ops.append(BinOp(addr, "add", base, scaled))
            return addr, elem, space
        if isinstance(expr, A.Unary) and expr.op == "*":
            ptr, ptype = self.lower_rvalue(expr.operand, scopes, ops)
            if isinstance(ptype, ArrayType):
                ptype = PointerType(ptype.elem)
            if not isinstance(ptype, PointerType):
                raise LowerError("dereference of non-pointer", expr.loc)
            return ptr, ptype.pointee, self._space_of(expr.operand, scopes)
        if isinstance(expr, A.Member):
            if expr.arrow:
                base, btype = self.lower_rvalue(expr.base, scopes, ops)
                if isinstance(btype, PointerType):
                    stype = btype.pointee
                else:
                    raise LowerError("-> on non-pointer", expr.loc)
                space = self._space_of(expr.base, scopes)
            else:
                base, stype, space = self.lower_address(expr.base, scopes, ops)
            if isinstance(stype, PointerType) and isinstance(stype.pointee, StructType):
                stype = stype.pointee
            if not isinstance(stype, StructType):
                raise LowerError("member access on non-struct", expr.loc)
            offsets, _, _ = stype.layout()
            addr = self.regs.new("u64", "faddr")
            ops.append(BinOp(addr, "add", base, Imm(offsets[expr.name], "s64")))
            return addr, stype.field_type(expr.name), space
        raise LowerError(f"expression is not a device lvalue: {type(expr).__name__}",
                         getattr(expr, "loc", None))

    def _space_of(self, expr: A.Expr, scopes) -> str:
        """Best-effort static space classification (stats/ptx text only;
        execution uses generic addressing)."""
        if isinstance(expr, A.Ident):
            var = self._find_var(expr.name, scopes)
            if var is not None and var.addr is not None:
                return var.space
            return "global"
        if isinstance(expr, (A.Index, A.Member)) and not (
            isinstance(expr, A.Member) and expr.arrow
        ):
            base = expr.base
            return self._space_of(base, scopes)
        return "global"

    # -- loads/stores ---------------------------------------------------------
    def _load(self, addr: Operand, ctype: CType, space: str, ops) -> tuple[Operand, CType]:
        if isinstance(ctype, ArrayType):
            return addr, PointerType(ctype.elem)
        if isinstance(ctype, StructType):
            return addr, PointerType(ctype)
        dtype = ctype_to_ir(ctype)
        dst = self.regs.new(dtype, "ld")
        ops.append(Ld(dst, space, addr))
        if isinstance(ctype, PointerType):
            return dst, ctype
        return dst, ctype

    def _store(self, addr: Operand, ctype: CType, space: str, value: Operand,
               vtype: CType, ops) -> Operand:
        value = self._convert(value, vtype, ctype, ops)
        ops.append(St(space, addr, value, ctype_to_ir(ctype)))
        return value

    # -- operators ---------------------------------------------------------------
    def _lower_unary(self, expr: A.Unary, scopes, ops) -> tuple[Operand, CType]:
        op = expr.op
        if op == "&":
            addr, ctype, _space = self.lower_address(expr.operand, scopes, ops)
            return addr, PointerType(ctype)
        if op == "*":
            addr, ctype, space = self.lower_address(expr, scopes, ops)
            return self._load(addr, ctype, space, ops)
        if op in ("++", "--", "p++", "p--"):
            return self._lower_incdec(expr, scopes, ops)
        value, vtype = self.lower_rvalue(expr.operand, scopes, ops)
        if op == "+":
            return value, vtype
        if op == "-":
            vtype2 = promote(vtype)
            value = self._convert(value, vtype, vtype2, ops)
            dst = self.regs.new(ctype_to_ir(vtype2), "neg")
            ops.append(UnOp(dst, "neg", value))
            return dst, vtype2
        if op == "~":
            vtype2 = promote(vtype)
            value = self._convert(value, vtype, vtype2, ops)
            dst = self.regs.new(ctype_to_ir(vtype2), "not")
            ops.append(UnOp(dst, "not", value))
            return dst, vtype2
        if op == "!":
            pred = self._to_pred(value, ops)
            dst = self.regs.new("pred", "ln")
            ops.append(UnOp(dst, "lnot", pred))
            result = self.regs.new("s32", "lnot32")
            ops.append(Cvt(result, dst))
            return result, INT
        raise LowerError(f"unsupported unary {op}", expr.loc)

    def _lower_incdec(self, expr: A.Unary, scopes, ops) -> tuple[Operand, CType]:
        delta = 1 if "+" in expr.op else -1
        target = expr.operand
        old, otype = self.lower_rvalue(target, scopes, ops)
        if isinstance(otype, PointerType):
            step = Imm(delta * otype.pointee.sizeof(), "s64")
        else:
            step = Imm(delta, ctype_to_ir(promote(otype)))
        new_t = otype if isinstance(otype, PointerType) else promote(otype)
        oldc = self._convert(old, otype, new_t, ops) if not isinstance(otype, PointerType) else old
        new = self.regs.new(ctype_to_ir(new_t), "inc")
        ops.append(BinOp(new, "add", oldc, step))
        self._assign_to(target, new, new_t, scopes, ops)
        if expr.op.startswith("p"):
            return old, otype
        return self.lower_rvalue(target, scopes, ops)

    def _lower_binary(self, expr: A.Binary, scopes, ops) -> tuple[Operand, CType]:
        op = expr.op
        if op in ("&&", "||"):
            self._require_pure(expr.right)
            lhs, _ = self.lower_rvalue(expr.left, scopes, ops)
            rhs, _ = self.lower_rvalue(expr.right, scopes, ops)
            lp = self._to_pred(lhs, ops)
            rp = self._to_pred(rhs, ops)
            dst = self.regs.new("pred", "lg")
            ops.append(BinOp(dst, "and" if op == "&&" else "or", lp, rp))
            result = self.regs.new("s32", "lg32")
            ops.append(Cvt(result, dst))
            return result, INT
        lhs, ltype = self.lower_rvalue(expr.left, scopes, ops)
        rhs, rtype = self.lower_rvalue(expr.right, scopes, ops)
        return self._binop(op, lhs, ltype, rhs, rtype, ops, expr.loc)

    def _binop(self, op, lhs, ltype, rhs, rtype, ops, loc) -> tuple[Operand, CType]:
        # pointer arithmetic
        lptr = isinstance(ltype, (PointerType, ArrayType))
        rptr = isinstance(rtype, (PointerType, ArrayType))
        if lptr or rptr:
            lt = ltype.decay() if lptr else ltype
            rt = rtype.decay() if rptr else rtype
            if op == "+" or op == "-":
                if lptr and rptr and op == "-":
                    diff = self.regs.new("s64", "pd")
                    ops.append(BinOp(diff, "sub", lhs, rhs))
                    out = self.regs.new("s64", "pdiv")
                    ops.append(BinOp(out, "div", diff, Imm(lt.pointee.sizeof(), "s64")))
                    return out, BasicType("long")
                ptr, ptype = (lhs, lt) if lptr else (rhs, rt)
                idx, itype = (rhs, rtype) if lptr else (lhs, ltype)
                idx64 = self._convert(idx, itype, BasicType("long"), ops)
                scaled = self.regs.new("s64", "ps")
                ops.append(BinOp(scaled, "mul", idx64, Imm(ptype.pointee.sizeof(), "s64")))
                out = self.regs.new("u64", "pa")
                ops.append(BinOp(out, "add" if op == "+" else "sub", ptr, scaled))
                return out, ptype
            if op in _CMP_OPS:
                dst = self.regs.new("pred", "pc")
                ops.append(BinOp(dst, _CMP_OPS[op], lhs, rhs))
                out = self.regs.new("s32", "pc32")
                ops.append(Cvt(out, dst))
                return out, INT
            raise LowerError(f"invalid pointer operation {op}", loc)
        common = usual_arithmetic(ltype, rtype)
        lhs = self._convert(lhs, ltype, common, ops)
        rhs = self._convert(rhs, rtype, common, ops)
        if op in _CMP_OPS:
            dst = self.regs.new("pred", "cmp")
            ops.append(BinOp(dst, _CMP_OPS[op], lhs, rhs))
            out = self.regs.new("s32", "cmp32")
            ops.append(Cvt(out, dst))
            return out, INT
        if op in _ARITH_OPS:
            if op in ("%", "<<", ">>", "&", "|", "^") and common.is_floating:
                raise LowerError(f"operator {op} requires integer operands", loc)
            dst = self.regs.new(ctype_to_ir(common), "t")
            ops.append(BinOp(dst, _ARITH_OPS[op], lhs, rhs))
            return dst, common
        raise LowerError(f"unsupported binary {op}", loc)

    def _lower_assign(self, expr: A.Assign, scopes, ops) -> tuple[Operand, CType]:
        value, vtype = self.lower_rvalue(expr.value, scopes, ops)
        if expr.op is not None:
            old, otype = self.lower_rvalue(expr.target, scopes, ops)
            value, vtype = self._binop(expr.op, old, otype, value, vtype, ops, expr.loc)
        return self._assign_to(expr.target, value, vtype, scopes, ops)

    def _assign_to(self, target: A.Expr, value: Operand, vtype: CType,
                   scopes, ops) -> tuple[Operand, CType]:
        if isinstance(target, A.Ident):
            var = self._find_var(target.name, scopes)
            if var is not None and var.reg is not None:
                converted = self._convert(value, vtype, var.ctype, ops)
                ops.append(Mov(var.reg, converted))
                return var.reg, var.ctype
        addr, ctype, space = self.lower_address(target, scopes, ops)
        stored = self._store(addr, ctype, space, value, vtype, ops)
        return stored, ctype

    def _lower_cond(self, expr: A.Cond, scopes, ops) -> tuple[Operand, CType]:
        cond, _ = self.lower_rvalue(expr.cond, scopes, ops)
        pred = self._to_pred(cond, ops)
        if self._is_pure(expr.then) and self._is_pure(expr.other):
            a, at = self.lower_rvalue(expr.then, scopes, ops)
            b, bt = self.lower_rvalue(expr.other, scopes, ops)
            common = at if isinstance(at, (PointerType, ArrayType)) else (
                bt if isinstance(bt, (PointerType, ArrayType)) else usual_arithmetic(at, bt)
            )
            a = self._convert(a, at, common, ops) if not isinstance(common, (PointerType, ArrayType)) else a
            b = self._convert(b, bt, common, ops) if not isinstance(common, (PointerType, ArrayType)) else b
            dtype = "u64" if isinstance(common, (PointerType, ArrayType)) else ctype_to_ir(common)
            dst = self.regs.new(dtype, "sel")
            ops.append(SelOp(dst, pred, a, b))
            return dst, common
        # side effects: lower via IfOp writing a temp
        then_ops: list = []
        a, at = self.lower_rvalue(expr.then, scopes, then_ops)
        else_ops: list = []
        b, bt = self.lower_rvalue(expr.other, scopes, else_ops)
        common = usual_arithmetic(at, bt) if at.is_arithmetic and bt.is_arithmetic else at
        dst = self.regs.new(ctype_to_ir(common), "condv")
        then_ops.append(Mov(dst, self._convert(a, at, common, then_ops)))
        else_ops.append(Mov(dst, self._convert(b, bt, common, else_ops)))
        ops.append(IfOp(pred, then_ops, else_ops))
        return dst, common

    # -- calls ---------------------------------------------------------------------
    def _lower_call(self, expr: A.Call, scopes, ops, want_value) -> tuple[Operand, CType]:
        if not isinstance(expr.func, A.Ident):
            raise LowerError("indirect calls unsupported in device code", expr.loc)
        name = expr.func.name
        if name == "printf":
            if not expr.args or not isinstance(expr.args[0], A.StringLit):
                raise LowerError("device printf requires a literal format", expr.loc)
            args = [self.lower_rvalue(a, scopes, ops)[0] for a in expr.args[1:]]
            ops.append(PrintfOp(expr.args[0].value, args))
            return Imm(0, "s32"), INT
        if name == "__syncthreads":
            ops.append(BarOp(Imm(0, "s32"), None))
            return Imm(0, "s32"), INT
        if name == "__bar_sync":
            b, _ = self.lower_rvalue(expr.args[0], scopes, ops)
            count = None
            if len(expr.args) > 1:
                count, _ = self.lower_rvalue(expr.args[1], scopes, ops)
            ops.append(BarOp(b, count))
            return Imm(0, "s32"), INT
        if name in ("atomicCAS", "atomicAdd", "atomicExch", "atomicMax", "atomicMin"):
            return self._lower_atomic(name, expr, scopes, ops)
        if name in ("__shfl_sync", "__shfl_down_sync", "__shfl_up_sync",
                    "__shfl_xor_sync"):
            # warp shuffles are value-polymorphic: the result has the
            # value operand's type, so the fixed-signature intrinsic path
            # does not fit — lower the call directly
            member, _mt = self.lower_rvalue(expr.args[0], scopes, ops)
            value, vtype = self.lower_rvalue(expr.args[1], scopes, ops)
            sel, st = self.lower_rvalue(expr.args[2], scopes, ops)
            sel = self._convert(sel, st, INT, ops)
            dst = self.regs.new(ctype_to_ir(vtype), "shfl")
            ops.append(CallOp(dst, name, [member, value, sel]))
            return dst, vtype
        if name.startswith("cudadev_atomic_red_"):
            # type-generic atomic RMW: like the hardware atomics, the
            # pointee type drives both the value conversion and the
            # returned-old-value type
            addr, ptype = self.lower_rvalue(expr.args[0], scopes, ops)
            if isinstance(ptype, ArrayType):
                ptype = ptype.decay()
            if not isinstance(ptype, PointerType):
                raise LowerError(
                    f"{name}: first argument must be a pointer", expr.loc)
            elem = ptype.pointee
            value, vtype = self.lower_rvalue(expr.args[1], scopes, ops)
            value = self._convert(value, vtype, elem, ops)
            dst = self.regs.new(ctype_to_ir(elem), "ared")
            ops.append(CallOp(dst, name, [addr, value]))
            return dst, elem
        if name in _MATH_UNOPS:
            value, vtype = self.lower_rvalue(expr.args[0], scopes, ops)
            single = name.endswith("f") or name in ("sqrtf",)
            ftype = FLOAT if name.endswith("f") else DOUBLE
            value = self._convert(value, vtype, ftype, ops)
            dst = self.regs.new(ctype_to_ir(ftype), "m")
            ops.append(UnOp(dst, _MATH_UNOPS[name], value))
            return dst, ftype
        if name in ("pow", "powf", "fmin", "fminf", "fmax", "fmaxf", "fmod", "fmodf"):
            ftype = FLOAT if name.endswith("f") else DOUBLE
            a, at = self.lower_rvalue(expr.args[0], scopes, ops)
            b, bt = self.lower_rvalue(expr.args[1], scopes, ops)
            a = self._convert(a, at, ftype, ops)
            b = self._convert(b, bt, ftype, ops)
            dst = self.regs.new(ctype_to_ir(ftype), "m2")
            base = name.rstrip("f") if name not in ("fmodf",) else "fmod"
            op_map = {"pow": "pow", "fmin": "min", "fmax": "max", "fmod": "rem"}
            ops.append(BinOp(dst, op_map[base], a, b))
            return dst, ftype
        if name in self.intrinsics:
            return self._lower_intrinsic(name, expr, scopes, ops)
        if name in self._device_fns:
            return self._inline_call(self._device_fns[name], expr, scopes, ops)
        raise LowerError(f"call to unknown device function {name!r}", expr.loc)

    def _lower_atomic(self, name, expr: A.Call, scopes, ops) -> tuple[Operand, CType]:
        addr, ptype = self.lower_rvalue(expr.args[0], scopes, ops)
        if isinstance(ptype, ArrayType):
            ptype = ptype.decay()
        if not isinstance(ptype, PointerType):
            raise LowerError(f"{name}: first argument must be a pointer", expr.loc)
        elem = ptype.pointee
        dtype = ctype_to_ir(elem)
        a, at = self.lower_rvalue(expr.args[1], scopes, ops)
        a = self._convert(a, at, elem, ops)
        b = None
        if name == "atomicCAS":
            b_val, bt = self.lower_rvalue(expr.args[2], scopes, ops)
            b = self._convert(b_val, bt, elem, ops)
        dst = self.regs.new(dtype, "atom")
        op = {"atomicCAS": "cas", "atomicAdd": "add", "atomicExch": "exch",
              "atomicMax": "max", "atomicMin": "min"}[name]
        ops.append(Atom(dst, op, "global", addr, a, b, dtype))
        return dst, elem

    def _lower_intrinsic(self, name, expr: A.Call, scopes, ops) -> tuple[Operand, CType]:
        param_dtypes, ret_dtype = self.intrinsics[name]
        args: list[Operand] = []
        for i, arg in enumerate(expr.args):
            # function name used as a "function pointer": register-parallel
            if isinstance(arg, A.Ident) and arg.name in self._device_fns:
                fid = self.lower_subfunction(self._device_fns[arg.name])
                args.append(Imm(fid, "s32"))
                continue
            value, vtype = self.lower_rvalue(arg, scopes, ops)
            if i < len(param_dtypes) and param_dtypes[i] != "any":
                want = param_dtypes[i]
                have = value.dtype if isinstance(value, (Reg, Imm)) else "u64"
                if have != want:
                    conv = self.regs.new(want, "cv")
                    ops.append(Cvt(conv, value))
                    value = conv
            args.append(value)
        dst = None
        rtype: CType = INT
        if ret_dtype is not None:
            dst = self.regs.new(ret_dtype, "call")
            rtype = _IR_TO_CTYPE.get(ret_dtype, INT)
        ops.append(CallOp(dst, name, args))
        return (dst if dst is not None else Imm(0, "s32")), rtype

    def _inline_call(self, fn: A.FuncDef, expr: A.Call, scopes, ops) -> tuple[Operand, CType]:
        if fn.name in self._inline_stack:
            raise LowerError(f"recursive device function {fn.name!r} unsupported",
                             expr.loc)
        if len(expr.args) != len(fn.params):
            raise LowerError(f"{fn.name}: wrong argument count", expr.loc)
        self._inline_stack.append(fn.name)
        try:
            frame: dict[str, _Var] = {}
            for p, arg in zip(fn.params, expr.args):
                ctype = p.type.decay()
                value, vtype = self.lower_rvalue(arg, scopes, ops)
                value = self._convert(value, vtype, ctype, ops)
                reg = self.regs.new(ctype_to_ir(ctype), p.name + "_i")
                ops.append(Mov(reg, value))
                frame[p.name] = _Var(ctype, reg=reg)
            ret_type = fn.return_type
            has_value = not (isinstance(ret_type, BasicType) and ret_type.is_void)
            ret_reg = self.regs.new(ctype_to_ir(ret_type), "ret") if has_value else None
            body = self._inline_body(fn.body, [frame], ret_reg, ret_type)
            # single-iteration loop so early returns (lowered to Break) work
            once = self.regs.new("pred", "once")
            ops.append(Mov(once, Imm(True, "pred")))
            body.insert(0, Mov(once, Imm(False, "pred")))
            cond_reg = self.regs.new("pred", "oncec")
            loop = LoopOp([Mov(cond_reg, once)], cond_reg, body)
            ops.append(loop)
            if ret_reg is not None:
                return ret_reg, ret_type
            return Imm(0, "s32"), INT
        finally:
            self._inline_stack.pop()

    def _inline_body(self, stmt: A.Stmt, scopes, ret_reg, ret_type) -> list:
        """Lower an inlined function body with Return -> (set ret; Break)."""
        marker = _ReturnRewriter(self, ret_reg, ret_type)
        return marker.lower(stmt, scopes)

    # -- conversions / predicates -----------------------------------------------
    def _convert(self, value: Operand, from_t: CType, to_t: CType, ops) -> Operand:
        if isinstance(to_t, (PointerType, ArrayType)):
            return value  # addresses are u64 already
        if isinstance(from_t, (PointerType, ArrayType)):
            if isinstance(to_t, BasicType) and to_t.is_integer:
                pass  # fall through to dtype conversion
            else:
                return value
        want = ctype_to_ir(to_t)
        have = value.dtype if isinstance(value, (Reg, Imm, GlobalAddr)) else None
        if have == want:
            return value
        if isinstance(value, Imm):
            import numpy as np
            from repro.cuda.ptx.ir import np_dtype
            return Imm(np_dtype(want).type(value.value).item(), want)
        dst = self.regs.new(want, "cvt")
        ops.append(Cvt(dst, value))
        return dst

    def _to_pred(self, value: Operand, ops) -> Operand:
        if isinstance(value, (Reg, Imm)) and value.dtype == "pred":
            return value
        dst = self.regs.new("pred", "p")
        ops.append(BinOp(dst, "ne", value, Imm(0, value.dtype if isinstance(value, (Reg, Imm)) else "s64")))
        return dst

    # -- purity / typing helpers -----------------------------------------------
    #: calls safe to evaluate eagerly under a wider mask (&&/|| lowering)
    _PURE_CALLS = frozenset(
        {"omp_get_thread_num", "omp_get_num_threads", "omp_get_team_num",
         "omp_get_num_teams", "omp_get_max_threads", "omp_is_initial_device",
         "cudadev_in_masterwarp", "cudadev_is_masterthr"}
        | set(_MATH_UNOPS)
        | {"pow", "powf", "fmin", "fminf", "fmax", "fmaxf", "fmod", "fmodf"}
    )

    @classmethod
    def _is_pure(cls, expr: A.Expr) -> bool:
        for node in expr.walk():
            if isinstance(node, A.Call):
                if not (isinstance(node.func, A.Ident)
                        and node.func.name in cls._PURE_CALLS):
                    return False
            elif isinstance(node, (A.Assign, A.CudaKernelCall)):
                return False
            elif isinstance(node, A.Unary) and node.op in ("++", "--", "p++", "p--"):
                return False
        return True

    def _require_pure(self, expr: A.Expr) -> None:
        if not self._is_pure(expr):
            raise LowerError(
                "side effects in the right operand of &&/|| are unsupported "
                "in device code (SIMT eager evaluation)", expr.loc
            )

    def _static_type(self, expr: A.Expr, scopes) -> CType:
        if isinstance(expr, A.Ident):
            var = self._find_var(expr.name, scopes)
            if var is not None:
                return var.ctype
        ops_scratch: list = []
        _, ctype = self.lower_rvalue(expr, scopes, ops_scratch)
        return ctype


class _ReturnRewriter:
    """Lowers an inlined function body, turning ``return`` into
    (optional value mov; BreakOp) inside the single-iteration loop."""

    def __init__(self, lowerer: KernelLowerer, ret_reg, ret_type):
        self.lowerer = lowerer
        self.ret_reg = ret_reg
        self.ret_type = ret_type

    def lower(self, stmt: A.Stmt, scopes) -> list:
        original = self.lowerer.lower_stmt
        rewriter = self

        def patched(s, sc):
            if isinstance(s, A.Return):
                ops: list = []
                if s.value is not None and rewriter.ret_reg is not None:
                    value, vtype = rewriter.lowerer.lower_rvalue(s.value, sc, ops)
                    value = rewriter.lowerer._convert(value, vtype, rewriter.ret_type, ops)
                    ops.append(Mov(rewriter.ret_reg, value))
                ops.append(BreakOp())
                return ops
            return original(s, sc)

        self.lowerer.lower_stmt = patched  # type: ignore[method-assign]
        try:
            return self.lowerer.lower_block(stmt, scopes)
        finally:
            self.lowerer.lower_stmt = original  # type: ignore[method-assign]


_IR_TO_CTYPE = {
    "s32": INT, "u32": BasicType("int", False), "s64": BasicType("long"),
    "u64": BasicType("long", False), "f32": FLOAT, "f64": DOUBLE,
    "s8": BasicType("char"), "u8": BasicType("char", False),
}


def lower_translation_unit(
    unit: A.TranslationUnit,
    intrinsic_sigs: dict[str, tuple[tuple[str, ...], Optional[str]]],
    module_name: str = "module",
    smem_reserved: int = 0,
    arch: str = "sm_53",
) -> ModuleIR:
    """Compile all ``__global__`` functions in ``unit`` into a ModuleIR."""
    module_globals: dict[str, int] = {}
    for decl in unit.decls:
        if isinstance(decl, A.GlobalDecl):
            for d in decl.decls:
                if "__device__" in d.quals or "__constant__" in d.quals:
                    module_globals[d.name] = d.type.sizeof()
    module = ModuleIR(module_name, arch=arch, globals_=module_globals)
    for decl in unit.decls:
        if isinstance(decl, A.FuncDef) and "__global__" in decl.quals:
            lowerer = KernelLowerer(unit, intrinsic_sigs, module_globals,
                                    smem_reserved=smem_reserved)
            module.kernels[decl.name] = lowerer.lower_kernel(decl)
    return module
