"""PTX layer: structured SIMT IR, lowering, PTX/cubin images, JIT + cache.

Real nvcc lowers CUDA C to PTX (a portable virtual ISA) and optionally to
architecture-specific SASS inside a *cubin*.  The reproduction mirrors the
pipeline shape:

* :mod:`repro.cuda.ptx.ir` — a structured SIMT IR (typed ops, divergence-
  masked ``if``/``loop``, named barriers, atomics).  This plays the role
  PTX plays in the paper: the portable kernel representation.
* :mod:`repro.cuda.ptx.lower` — CUDA-C AST -> IR compilation.
* :mod:`repro.cuda.ptx.ptxwriter` — renders IR as readable PTX-like text
  (carried inside PTX images for inspection; see DESIGN.md).
* :mod:`repro.cuda.ptx.images` — PTX and cubin container formats.
* :mod:`repro.cuda.ptx.jit` — runtime "JIT" of PTX images with the on-disk
  compilation cache the paper describes (§3.3).
"""

from repro.cuda.ptx.ir import (
    Atom, BarOp, BinOp, BreakOp, CallOp, ContinueOp, Cvt, GlobalAddr, Imm,
    IfOp, KernelIR, KernelParam, Ld, LoopOp, ModuleIR, Mov, PrintfOp, Reg,
    RetOp, SelOp, Sreg, St, UnOp,
)

__all__ = [
    "Atom", "BarOp", "BinOp", "BreakOp", "CallOp", "ContinueOp", "Cvt",
    "GlobalAddr", "IfOp", "Imm", "KernelIR", "KernelParam", "Ld", "LoopOp",
    "ModuleIR", "Mov", "PrintfOp", "Reg", "RetOp", "SelOp", "Sreg", "St",
    "UnOp",
]
