"""Render the structured IR as readable PTX-like text.

The text rides inside PTX images for inspection (``ompicc --keep`` style
workflows and the codegen tests); execution always uses the structured IR
itself.  Structured control flow is linearised with labels so the output
looks like the PTX a reader of the paper would expect.
"""

from __future__ import annotations

from repro.cuda.ptx.ir import (
    Atom, BarOp, BinOp, BreakOp, CallOp, ContinueOp, Cvt, GlobalAddr, IfOp,
    Imm, KernelIR, Ld, LoopOp, ModuleIR, Mov, PrintfOp, Reg, RetOp, SelOp,
    Sreg, St, UnOp,
)


def _operand(op) -> str:
    if isinstance(op, Reg):
        return f"%{op.name}"
    if isinstance(op, Imm):
        return repr(op.value) if not isinstance(op.value, bool) else ("1" if op.value else "0")
    if isinstance(op, GlobalAddr):
        return f"module::{op.name}"
    return "?"


class _Writer:
    def __init__(self):
        self.lines: list[str] = []
        self.indent = 1
        self.label_count = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def label(self, prefix: str) -> str:
        self.label_count += 1
        return f"${prefix}_{self.label_count}"

    def block(self, ops, break_label=None, cont_label=None) -> None:
        for op in ops:
            self.op(op, break_label, cont_label)

    def op(self, op, break_label, cont_label) -> None:
        if isinstance(op, BinOp):
            if op.op in ("lt", "le", "gt", "ge", "eq", "ne"):
                self.emit(f"setp.{op.op}.{_dt(op.a)}  %{op.dst.name}, "
                          f"{_operand(op.a)}, {_operand(op.b)};")
            else:
                self.emit(f"{op.op}.{op.dst.dtype}  %{op.dst.name}, "
                          f"{_operand(op.a)}, {_operand(op.b)};")
        elif isinstance(op, UnOp):
            self.emit(f"{op.op}.{op.dst.dtype}  %{op.dst.name}, {_operand(op.a)};")
        elif isinstance(op, SelOp):
            self.emit(f"selp.{op.dst.dtype}  %{op.dst.name}, {_operand(op.a)}, "
                      f"{_operand(op.b)}, {_operand(op.pred)};")
        elif isinstance(op, Cvt):
            self.emit(f"cvt.{op.dst.dtype}.{_dt(op.a)}  %{op.dst.name}, {_operand(op.a)};")
        elif isinstance(op, Mov):
            self.emit(f"mov.{op.dst.dtype}  %{op.dst.name}, {_operand(op.a)};")
        elif isinstance(op, Ld):
            self.emit(f"ld.{op.space}.{op.dst.dtype}  %{op.dst.name}, "
                      f"[{_operand(op.addr)}];")
        elif isinstance(op, St):
            self.emit(f"st.{op.space}.{op.dtype}  [{_operand(op.addr)}], "
                      f"{_operand(op.value)};")
        elif isinstance(op, Atom):
            args = _operand(op.a) + (f", {_operand(op.b)}" if op.b is not None else "")
            dst = f"%{op.dst.name}, " if op.dst else ""
            self.emit(f"atom.{op.space}.{op.op}.{op.dtype}  {dst}[{_operand(op.addr)}], {args};")
        elif isinstance(op, Sreg):
            self.emit(f"mov.u32  %{op.dst.name}, %{op.sreg};")
        elif isinstance(op, BarOp):
            count = f", {_operand(op.count)}" if op.count is not None else ""
            self.emit(f"bar.sync  {_operand(op.barrier)}{count};")
        elif isinstance(op, IfOp):
            else_l = self.label("else")
            end_l = self.label("endif")
            self.emit(f"@!{_operand(op.cond)} bra  {else_l};")
            self.indent += 1
            self.block(op.then_ops, break_label, cont_label)
            self.indent -= 1
            if op.else_ops:
                self.emit(f"bra  {end_l};")
                self.emit(f"{else_l}:")
                self.indent += 1
                self.block(op.else_ops, break_label, cont_label)
                self.indent -= 1
                self.emit(f"{end_l}:")
            else:
                self.emit(f"{else_l}:")
        elif isinstance(op, LoopOp):
            head = self.label("loop")
            end = self.label("endloop")
            step = self.label("step")
            self.emit(f"{head}:")
            self.indent += 1
            self.block(op.cond_ops, None, None)
            self.emit(f"@!{_operand(op.cond)} bra  {end};")
            self.block(op.body_ops, end, step)
            self.emit(f"{step}:")
            for s in getattr(op, "step_ops", []) or []:
                self.op(s, end, step)
            self.emit(f"bra  {head};")
            self.indent -= 1
            self.emit(f"{end}:")
        elif isinstance(op, BreakOp):
            self.emit(f"bra  {break_label or '$exit'};")
        elif isinstance(op, ContinueOp):
            self.emit(f"bra  {cont_label or '$exit'};")
        elif isinstance(op, RetOp):
            self.emit("ret;")
        elif isinstance(op, CallOp):
            args = ", ".join(_operand(a) for a in op.args)
            dst = f"%{op.dst.name}, " if op.dst else ""
            self.emit(f"call.uni  {dst}{op.name}, ({args});")
        elif isinstance(op, PrintfOp):
            self.emit(f'call.uni  vprintf, ("{op.fmt}", ...);')
        else:
            self.emit(f"// <unknown op {type(op).__name__}>")


def _dt(op) -> str:
    return op.dtype if isinstance(op, (Reg, Imm)) else "u64"


def kernel_to_ptx(kernel: KernelIR) -> str:
    writer = _Writer()
    params = ", ".join(f".param .{p.dtype} {p.name}" for p in kernel.params)
    writer.lines.append(f".visible .entry {kernel.name}({params})")
    writer.lines.append("{")
    if kernel.smem_static:
        writer.lines.append(f"    .shared .align 8 .b8 __smem[{kernel.smem_static}];")
    writer.block(kernel.body)
    writer.emit("ret;")
    writer.lines.append("}")
    for sub in kernel.subfunctions.values():
        writer.lines.append("")
        sparams = ", ".join(f".param .{p.dtype} {p.name}" for p in sub.params)
        writer.lines.append(f".func {sub.name}({sparams})")
        writer.lines.append("{")
        writer.indent = 1
        writer.block(sub.body)
        writer.lines.append("}")
    return "\n".join(writer.lines) + "\n"


def module_to_ptx(module: ModuleIR) -> str:
    header = [
        "//",
        "// Generated by repro-nvcc (simulated NVIDIA NVCC)",
        f"// Target: {module.arch}",
        "//",
        ".version 6.5",
        f".target {module.arch}",
        ".address_size 64",
        "",
    ]
    for name, size in module.globals_.items():
        header.append(f".global .align 8 .b8 {name}[{size}];")
    parts = ["\n".join(header)]
    for kernel in module.kernels.values():
        parts.append(kernel_to_ptx(kernel))
    return "\n".join(parts)
