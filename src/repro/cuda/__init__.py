"""Simulated CUDA stack for the Jetson Nano reproduction.

The paper targets the Maxwell GPU of the Jetson Nano 2GB through the CUDA
*driver API* plus the ``nvcc`` compiler.  Neither is available in this
environment, so this package provides functional equivalents:

* :mod:`repro.cuda.device` — the Maxwell/Jetson-Nano device model
  (1 SM, 128 cores, warp size 32, sm_53, 16 named barriers per block).
* :mod:`repro.cuda.nvcc` — compiles a CUDA C subset (what OMPi generates,
  plus hand-written benchmark kernels) into a structured SIMT IR, packaged
  as PTX (JIT-able, cached) or cubin (ahead-of-time) images.
* :mod:`repro.cuda.driver` — the ``cu*`` driver API surface the cudadev
  host module is written against.
* :mod:`repro.cuda.sim` — the warp-lockstep functional engine with
  divergence masks, named barriers and coalescing/timing accounting.
"""

from repro.cuda.errors import CUresult, CudaError
from repro.cuda.device import JETSON_NANO_GPU, DeviceProperties

__all__ = ["CUresult", "CudaError", "DeviceProperties", "JETSON_NANO_GPU"]
