"""Device model: the Maxwell GPU of the Jetson Nano 2GB.

Numbers below are the board's published specifications (paper §4 and the
Jetson Linux Developer Guide): one streaming multiprocessor with 128 CUDA
cores, compute capability 5.3, 921.6 MHz max GPU clock, LPDDR4 memory
physically shared with the quad-core ARM A57 host (25.6 GB/s theoretical
peak; ~14 GB/s sustained is what memcpy-style benchmarks observe).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass(frozen=True)
class DeviceProperties:
    name: str
    compute_capability: tuple[int, int]
    multiprocessor_count: int
    cores_per_mp: int
    warp_size: int
    max_threads_per_block: int
    max_block_dim: tuple[int, int, int]
    max_grid_dim: tuple[int, int, int]
    shared_mem_per_block: int           # bytes
    named_barriers_per_block: int
    total_global_mem: int               # bytes
    clock_rate_khz: int
    memory_bandwidth_gbps: float        # sustained, GB/s
    l2_cache_size: int                  # bytes
    #: kernels the hardware can execute concurrently (Jetson boards: 1 —
    #: a single compute engine, so kernels serialise; HW queues on larger
    #: parts let independent streams' kernels overlap)
    concurrent_kernels: int = 1
    #: independent DMA paths (copy engines); discrete boards have 2+
    copy_engines: int = 1
    #: sustained host<->device copy bandwidth, GB/s.  Shared-memory Tegra
    #: boards copy through one LPDDR4 (read + write the same DRAM ≈ half
    #: the raw rate); discrete boards are bounded by the PCIe link.
    copy_bandwidth_gbps: float = 6.8
    #: simulated global-memory arena bound, bytes (None: total memory
    #: minus the OS reservation).  Large-HBM parts cap the arena so the
    #: simulator never backs tens of GB and per-device address windows
    #: (DEVICE_MEM_STRIDE) stay disjoint; the full total_global_mem is
    #: still what cuDeviceTotalMem reports.
    arena_bytes: Optional[int] = None

    @property
    def cores(self) -> int:
        return self.multiprocessor_count * self.cores_per_mp

    @property
    def arch(self) -> str:
        major, minor = self.compute_capability
        return f"sm_{major}{minor}"


#: The Jetson Nano 2GB developer kit GPU (paper §4).
JETSON_NANO_GPU = DeviceProperties(
    name="NVIDIA Tegra X1 (Jetson Nano 2GB)",
    compute_capability=(5, 3),
    multiprocessor_count=1,
    cores_per_mp=128,
    warp_size=32,
    max_threads_per_block=1024,
    max_block_dim=(1024, 1024, 64),
    max_grid_dim=(2147483647, 65535, 65535),
    shared_mem_per_block=48 * 1024,
    named_barriers_per_block=16,
    total_global_mem=2 * 1024 * 1024 * 1024,
    clock_rate_khz=921600,
    memory_bandwidth_gbps=14.4,
    l2_cache_size=256 * 1024,
)

#: The original 4GB Jetson Nano (same GPU, more DRAM) — used in tests to
#: show the cudadev module generalises across boards, as the paper claims.
JETSON_NANO_4GB_GPU = DeviceProperties(
    name="NVIDIA Tegra X1 (Jetson Nano 4GB)",
    compute_capability=(5, 3),
    multiprocessor_count=1,
    cores_per_mp=128,
    warp_size=32,
    max_threads_per_block=1024,
    max_block_dim=(1024, 1024, 64),
    max_grid_dim=(2147483647, 65535, 65535),
    shared_mem_per_block=48 * 1024,
    named_barriers_per_block=16,
    total_global_mem=4 * 1024 * 1024 * 1024,
    clock_rate_khz=921600,
    memory_bandwidth_gbps=14.4,
    l2_cache_size=256 * 1024,
)

#: Jetson TX2-like device (cc 6.2), for the generalisation tests.
JETSON_TX2_GPU = DeviceProperties(
    name="NVIDIA Tegra X2 (Jetson TX2)",
    compute_capability=(6, 2),
    multiprocessor_count=2,
    cores_per_mp=128,
    warp_size=32,
    max_threads_per_block=1024,
    max_block_dim=(1024, 1024, 64),
    max_grid_dim=(2147483647, 65535, 65535),
    shared_mem_per_block=48 * 1024,
    named_barriers_per_block=16,
    total_global_mem=8 * 1024 * 1024 * 1024,
    clock_rate_khz=1300000,
    memory_bandwidth_gbps=40.0,
    l2_cache_size=512 * 1024,
)


#: Tesla V100 (SXM2 16GB) — the differently shaped target of the
#: heterogeneous device-backend subsystem: 80 Volta SMs against the
#: Nano's single Maxwell SM, HBM2 instead of shared LPDDR4, real
#: concurrent-kernel capacity, PCIe-bounded host copies.  Numbers from
#: the V100 datasheet / Davis et al.'s OpenMP-on-V100 assessment.
TESLA_V100_GPU = DeviceProperties(
    name="Tesla V100-SXM2-16GB",
    compute_capability=(7, 0),
    multiprocessor_count=80,
    cores_per_mp=64,
    warp_size=32,
    max_threads_per_block=1024,
    max_block_dim=(1024, 1024, 64),
    max_grid_dim=(2147483647, 65535, 65535),
    shared_mem_per_block=48 * 1024,
    named_barriers_per_block=16,
    total_global_mem=16 * 1024 * 1024 * 1024,
    clock_rate_khz=1380000,
    memory_bandwidth_gbps=810.0,        # ~90% of the 900 GB/s HBM2 peak
    l2_cache_size=6 * 1024 * 1024,
    concurrent_kernels=32,              # HW queue depth (128 in CUDA caps)
    copy_engines=2,
    copy_bandwidth_gbps=12.0,           # PCIe gen3 x16 sustained
    arena_bytes=3 * 1024 * 1024 * 1024, # sim arena; fits DEVICE_MEM_STRIDE
)


@dataclass
class Dim3:
    """Grid/block dimensions."""

    x: int = 1
    y: int = 1
    z: int = 1

    @property
    def count(self) -> int:
        return self.x * self.y * self.z

    @classmethod
    def of(cls, value) -> "Dim3":
        """Coerce ints, tuples, Dim3 or dim3-struct-like values."""
        if isinstance(value, Dim3):
            return value
        if isinstance(value, int):
            return cls(value)
        if isinstance(value, (tuple, list)):
            vals = list(value) + [1] * (3 - len(value))
            return cls(*vals[:3])
        if hasattr(value, "get"):  # PyStruct / StructInstance dim3
            return cls(int(value.get("x")), int(value.get("y")), int(value.get("z")))
        raise TypeError(f"cannot interpret {value!r} as dim3")

    def __iter__(self):
        yield self.x
        yield self.y
        yield self.z
