"""Global-memory coalescing model.

Maxwell services a warp's global access in 32-byte sectors: the number of
DRAM transactions for one warp-wide load/store equals the number of
distinct 32-byte segments spanned by the active lanes.  A fully coalesced
float32 access by 32 lanes touches 4 segments; a fully scattered one
touches 32.  This count feeds the timing model's memory term.
"""

from __future__ import annotations

import numpy as np

SEGMENT_BYTES = 32


def transactions(addrs: np.ndarray, itemsize: int, mask: np.ndarray) -> int:
    """Number of 32-byte segments touched by the active lanes."""
    if itemsize <= SEGMENT_BYTES:
        # an element can span at most two segments: count the distinct
        # values of first∪last.  At warp width (32 lanes) plain Python
        # integers beat numpy's per-call dispatch by a wide margin.  When
        # the active addresses are nondecreasing (every warp-linear access
        # pattern), both sequences are sorted and a running high-water
        # count needs no set at all.
        span = itemsize - 1
        count = 0
        prev_a = -1
        prev_seg = -1
        for a, on in zip(addrs.tolist(), mask.tolist()):
            if not on:
                continue
            if a < prev_a:
                break  # non-monotonic: fall through to the set-based count
            prev_a = a
            f = a // SEGMENT_BYTES
            l = (a + span) // SEGMENT_BYTES
            if f > prev_seg:
                count += 2 if l > f else 1
            elif l > prev_seg:
                count += 1
            prev_seg = l
        else:
            return count
        segs = set()
        add = segs.add
        for a, on in zip(addrs.tolist(), mask.tolist()):
            if on:
                add(a // SEGMENT_BYTES)
                add((a + span) // SEGMENT_BYTES)
        return len(segs)
    if not mask.any():  # pragma: no cover - no >32B elements in this repro
        return 0
    active = addrs[mask].astype(np.int64)
    first = active // SEGMENT_BYTES
    last = (active + itemsize - 1) // SEGMENT_BYTES
    segs = np.concatenate(
        [np.arange(f, l + 1) for f, l in zip(first, last)]
    )  # pragma: no cover
    return int(np.unique(segs).size)  # pragma: no cover
