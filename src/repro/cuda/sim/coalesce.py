"""Global-memory coalescing model.

Maxwell services a warp's global access in 32-byte sectors: the number of
DRAM transactions for one warp-wide load/store equals the number of
distinct 32-byte segments spanned by the active lanes.  A fully coalesced
float32 access by 32 lanes touches 4 segments; a fully scattered one
touches 32.  This count feeds the timing model's memory term.
"""

from __future__ import annotations

import numpy as np

SEGMENT_BYTES = 32


def transactions(addrs: np.ndarray, itemsize: int, mask: np.ndarray) -> int:
    """Number of 32-byte segments touched by the active lanes."""
    if not mask.any():
        return 0
    active = addrs[mask].astype(np.int64)
    first = active // SEGMENT_BYTES
    last = (active + itemsize - 1) // SEGMENT_BYTES
    if itemsize <= SEGMENT_BYTES:
        # an element can span at most two segments
        segs = np.concatenate([first, last])
    else:  # pragma: no cover - no >32B elements in this reproduction
        segs = np.concatenate(
            [np.arange(f, l + 1) for f, l in zip(first, last)]
        )
    return int(np.unique(segs).size)
