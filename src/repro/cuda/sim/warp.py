"""Warp executor: structured IR over 32 numpy lanes, lockstep with masks.

Execution is generator-based: a warp *yields* control events —
``('bar', id, count)`` when it arrives at a named barrier and ``('spin',)``
between iterations of loops that may block (atomics / barriers / runtime
calls inside) — and the block scheduler resumes it when appropriate.  This
is what lets the paper's master/worker scheme run: worker warps block on
barrier B1 inside ``cudadev_workerfunc`` while the master warp proceeds.

Divergence follows the classic SIMT model: both arms of a divergent branch
execute serially under complementary lane masks; loops keep a live-lane
mask that shrinks as lanes exit.
"""

from __future__ import annotations

import re
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.cuda.ptx.ir import (
    Atom, BarOp, BinOp, BreakOp, CallOp, ContinueOp, Cvt, GlobalAddr, IfOp,
    Imm, KernelIR, Ld, LoopOp, Mov, Op, PrintfOp, Reg, RetOp, SelOp, Sreg,
    St, UnOp, np_dtype, walk_ops,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.cuda.sim.engine import BlockCtx, FunctionalEngine

WARP_SIZE = 32

_FMT_RE = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?(?:hh|h|ll|l|z)?[diouxXeEfgGcsp%]")


class WarpExec:
    """One warp's execution state."""

    def __init__(
        self,
        engine: "FunctionalEngine",
        block: "BlockCtx",
        warp_index: int,
        lane_linear: np.ndarray,      # linear thread ids within the block (32,)
        valid: np.ndarray,            # lanes that correspond to real threads
        kernel: KernelIR,
        params: list,
    ):
        self.engine = engine
        self.block = block
        self.warp_index = warp_index
        self.lane_linear = lane_linear
        self.valid = valid
        self.kernel = kernel
        self.params = params
        self.regs: dict[str, np.ndarray] = {}
        self._ret_stack: list[np.ndarray] = []
        self._loop_stack: list[dict[str, np.ndarray]] = []
        self._arg_stack: list[list] = []
        self._subfn_by_id = list(kernel.subfunctions.values())
        # precomputed special registers
        bx, by, _bz = block.block_dim
        self.tid_x = (lane_linear % bx).astype(np.uint32)
        self.tid_y = ((lane_linear // bx) % by).astype(np.uint32)
        self.tid_z = (lane_linear // (bx * by)).astype(np.uint32)
        self.done = False

    # -- operand access ---------------------------------------------------------
    def val(self, operand) -> np.ndarray:
        if isinstance(operand, Reg):
            arr = self.regs.get(operand.name)
            if arr is None:
                arr = np.zeros(WARP_SIZE, dtype=np_dtype(operand.dtype))
                self.regs[operand.name] = arr
            return arr
        if isinstance(operand, Imm):
            return np_dtype(operand.dtype).type(operand.value)
        if isinstance(operand, GlobalAddr):
            return np.uint64(self.engine.global_addr(operand.name))
        raise TypeError(f"bad operand {operand!r}")

    def setreg(self, reg: Reg, value, mask: np.ndarray) -> None:
        arr = self.regs.get(reg.name)
        dtype = np_dtype(reg.dtype)
        if arr is None:
            arr = np.zeros(WARP_SIZE, dtype=dtype)
            self.regs[reg.name] = arr
        value = np.asarray(value)
        if value.ndim == 0:
            arr[mask] = _cast_scalar(value, dtype)
        else:
            arr[mask] = _cast_vec(value[mask], dtype)

    # -- activations -----------------------------------------------------------
    def run_kernel(self) -> Iterator:
        mask = self.valid.copy()
        yield from self.run_activation(self.kernel.body, mask)
        self.done = True

    def run_activation(self, ops: list[Op], mask: np.ndarray) -> Iterator:
        """Execute a function activation (kernel body or subfunction)."""
        self._ret_stack.append(np.zeros(WARP_SIZE, dtype=bool))
        try:
            yield from self._exec(ops, mask.copy())
        finally:
            self._ret_stack.pop()

    def call_subfunction(self, fid: int, args: list, mask: np.ndarray) -> Iterator:
        """Execute a registered device subfunction (parallel-region body)."""
        sub = self._subfn_by_id[fid]
        self._arg_stack.append(args)
        try:
            yield from self.run_activation(sub.body, mask)
        finally:
            self._arg_stack.pop()

    # -- the interpreter loop ------------------------------------------------------
    def _exec(self, ops: list[Op], mask: np.ndarray):
        """Generator executing ``ops`` under ``mask``; returns the
        fall-through mask (lanes that reach the end of the block)."""
        stats = self.engine.stats
        for op in ops:
            if not mask.any():
                return mask
            cls = type(op)
            if cls is BinOp:
                stats.note_alu(op.dst.dtype, int(mask.sum()))
                self.setreg(op.dst, _binop(op.op, self.val(op.a), self.val(op.b)), mask)
            elif cls is Mov:
                stats.instructions += 1
                self.setreg(op.dst, self.val(op.a), mask)
            elif cls is UnOp:
                stats.note_alu(op.dst.dtype, int(mask.sum()), special=op.op in _SPECIAL)
                self.setreg(op.dst, _unop(op.op, self.val(op.a)), mask)
            elif cls is SelOp:
                stats.instructions += 1
                pred = self.val(op.pred).astype(bool)
                self.setreg(op.dst, np.where(pred, self.val(op.a), self.val(op.b)), mask)
            elif cls is Cvt:
                stats.instructions += 1
                self.setreg(op.dst, _convert(self.val(op.a), np_dtype(op.dst.dtype)), mask)
            elif cls is Ld:
                value = self.engine.mem_load(self, self.val(op.addr), np_dtype(op.dst.dtype), mask)
                self.setreg(op.dst, value, mask)
            elif cls is St:
                self.engine.mem_store(self, self.val(op.addr), np_dtype(op.dtype), self.val(op.value), mask)
            elif cls is Sreg:
                stats.instructions += 1
                self.setreg(op.dst, self._sreg(op.sreg), mask)
            elif cls is IfOp:
                cond = np.broadcast_to(self.val(op.cond).astype(bool), (WARP_SIZE,))
                t_mask = mask & cond
                e_mask = mask & ~cond
                if t_mask.any() and e_mask.any():
                    stats.divergent_branches += 1
                stats.instructions += 1
                m1 = t_mask
                m2 = e_mask
                if t_mask.any():
                    m1 = yield from self._exec(op.then_ops, t_mask)
                if e_mask.any():
                    m2 = yield from self._exec(op.else_ops, e_mask)
                mask = m1 | m2
            elif cls is LoopOp:
                mask = yield from self._exec_loop(op, mask)
            elif cls is BreakOp:
                self._loop_stack[-1]["break"] |= mask
                mask = np.zeros(WARP_SIZE, dtype=bool)
            elif cls is ContinueOp:
                self._loop_stack[-1]["cont"] |= mask
                mask = np.zeros(WARP_SIZE, dtype=bool)
            elif cls is RetOp:
                stats.instructions += 1
                self._ret_stack[-1] |= mask
                mask = np.zeros(WARP_SIZE, dtype=bool)
            elif cls is BarOp:
                bar_id = int(np.asarray(self.val(op.barrier)).reshape(-1)[0]) \
                    if not np.isscalar(self.val(op.barrier)) else int(self.val(op.barrier))
                count = None
                if op.count is not None:
                    cval = np.asarray(self.val(op.count))
                    count = int(cval.reshape(-1)[0] if cval.ndim else cval)
                yield ("bar", bar_id, count)
            elif cls is CallOp:
                mask = yield from self._call(op, mask)
            elif cls is PrintfOp:
                self._printf(op, mask)
            elif cls is Atom:
                self._atomic(op, mask)
            else:  # pragma: no cover - IR is closed
                raise TypeError(f"unknown op {cls.__name__}")
        return mask

    def _exec_loop(self, op: LoopOp, mask: np.ndarray):
        stats = self.engine.stats
        may_block = self.engine.loop_may_block(op)
        live = mask.copy()
        exited = np.zeros(WARP_SIZE, dtype=bool)
        step_ops = getattr(op, "step_ops", None) or []
        while True:
            live &= ~self._ret_stack[-1]
            if not live.any():
                break
            live = yield from self._exec(op.cond_ops, live)
            cond = np.broadcast_to(self.val(op.cond).astype(bool), (WARP_SIZE,))
            active = live & cond
            exited |= live & ~cond
            if not active.any():
                break
            stats.loop_iterations += 1
            self._loop_stack.append({
                "break": np.zeros(WARP_SIZE, dtype=bool),
                "cont": np.zeros(WARP_SIZE, dtype=bool),
            })
            fall = yield from self._exec(op.body_ops, active)
            frame = self._loop_stack.pop()
            runner = fall | frame["cont"]
            if step_ops and runner.any():
                self._loop_stack.append({
                    "break": np.zeros(WARP_SIZE, dtype=bool),
                    "cont": np.zeros(WARP_SIZE, dtype=bool),
                })
                runner = yield from self._exec(step_ops, runner)
                self._loop_stack.pop()
            exited |= frame["break"]
            live = runner
            if may_block:
                yield ("spin",)
        return (exited | live) & ~self._ret_stack[-1]

    # -- specific ops ------------------------------------------------------------
    def _sreg(self, name: str) -> np.ndarray:
        bx, by, bz = self.block.block_dim
        gx, gy, gz = self.block.grid_dim
        cx, cy, cz = self.block.block_idx
        table = {
            "tid.x": self.tid_x, "tid.y": self.tid_y, "tid.z": self.tid_z,
            "ntid.x": np.uint32(bx), "ntid.y": np.uint32(by), "ntid.z": np.uint32(bz),
            "ctaid.x": np.uint32(cx), "ctaid.y": np.uint32(cy), "ctaid.z": np.uint32(cz),
            "nctaid.x": np.uint32(gx), "nctaid.y": np.uint32(gy), "nctaid.z": np.uint32(gz),
            "laneid": np.arange(WARP_SIZE, dtype=np.uint32),
            "warpid": np.uint32(self.warp_index),
        }
        return table[name]

    def _call(self, op: CallOp, mask: np.ndarray):
        name = op.name
        stats = self.engine.stats
        stats.instructions += 1
        if name == "__ldparam":
            idx = int(op.args[0].value)
            value = self.params[idx]
            self.setreg(op.dst, np.full(WARP_SIZE, value,
                                        dtype=np_dtype(op.dst.dtype)), mask)
            return mask
        if name == "__ldarg":
            idx = int(op.args[0].value)
            value = self._arg_stack[-1][idx]
            self.setreg(op.dst, value, mask)
            return mask
        if name == "__local_base":
            offset = int(op.args[0].value)
            base = self.block.local_base(self.lane_linear)
            self.setreg(op.dst, base + np.uint64(offset), mask)
            return mask
        intrinsic = self.engine.intrinsics.get(name)
        if intrinsic is None:
            raise KeyError(
                f"kernel calls unknown device-library function {name!r}; "
                "was the device runtime linked? (ptx mode links at JIT time)"
            )
        args = [self.val(a) for a in op.args]
        result = yield from intrinsic(self, mask, args)
        if op.dst is not None:
            if result is None:
                result = np.zeros(WARP_SIZE, dtype=np_dtype(op.dst.dtype))
            self.setreg(op.dst, result, mask)
        return mask & ~self._ret_stack[-1]

    def _printf(self, op: PrintfOp, mask: np.ndarray) -> None:
        args = [np.broadcast_to(np.asarray(self.val(a)), (WARP_SIZE,)) for a in op.args]
        for lane in np.flatnonzero(mask):
            out: list[str] = []
            pos = 0
            argi = 0
            for m in _FMT_RE.finditer(op.fmt):
                out.append(op.fmt[pos:m.start()])
                pos = m.end()
                spec = m.group(0)
                conv = spec[-1]
                if conv == "%":
                    out.append("%")
                    continue
                value = args[argi][lane]
                argi += 1
                pyspec = re.sub(r"hh|h|ll|l|z", "", spec)
                if conv in "diu":
                    out.append((pyspec[:-1] + "d") % int(value))
                elif conv in "oxX":
                    out.append(pyspec % int(value))
                elif conv in "eEfgG":
                    out.append(pyspec % float(value))
                elif conv == "c":
                    out.append(chr(int(value)))
                else:
                    out.append(str(value))
            out.append(op.fmt[pos:])
            self.engine.stdout.append("".join(out))

    def _atomic(self, op: Atom, mask: np.ndarray) -> None:
        stats = self.engine.stats
        addrs = np.broadcast_to(np.asarray(self.val(op.addr), dtype=np.uint64), (WARP_SIZE,))
        a_vals = np.broadcast_to(np.asarray(self.val(op.a)), (WARP_SIZE,))
        b_vals = None
        if op.b is not None:
            b_vals = np.broadcast_to(np.asarray(self.val(op.b)), (WARP_SIZE,))
        dtype = np_dtype(op.dtype)
        olds = np.zeros(WARP_SIZE, dtype=dtype)
        for lane in np.flatnonzero(mask):
            stats.atomics += 1
            addr = int(addrs[lane])
            space = self.engine.resolve_space(self, addr)
            old = space.load(addr, dtype)
            olds[lane] = old
            if op.op == "cas":
                if old == dtype.type(a_vals[lane]):
                    space.store(addr, dtype, b_vals[lane])
            elif op.op == "add":
                space.store(addr, dtype, dtype.type(old + a_vals[lane]))
            elif op.op == "exch":
                space.store(addr, dtype, a_vals[lane])
            elif op.op == "max":
                space.store(addr, dtype, max(old, dtype.type(a_vals[lane])))
            elif op.op == "min":
                space.store(addr, dtype, min(old, dtype.type(a_vals[lane])))
            else:  # pragma: no cover
                raise ValueError(f"unknown atomic {op.op}")
        if op.dst is not None:
            self.setreg(op.dst, olds, mask)


_SPECIAL = frozenset({"sqrt", "exp", "log", "sin", "cos", "rcp"})


def _cast_scalar(value: np.ndarray, dtype: np.dtype):
    if dtype.kind in "iu" and value.dtype.kind == "f":
        return dtype.type(np.trunc(value))
    with np.errstate(over="ignore", invalid="ignore"):
        return dtype.type(value.item()) if value.dtype.kind != "b" else dtype.type(bool(value))


def _cast_vec(values: np.ndarray, dtype: np.dtype) -> np.ndarray:
    if dtype.kind in "iu" and values.dtype.kind == "f":
        values = np.trunc(values)
    with np.errstate(over="ignore", invalid="ignore"):
        return values.astype(dtype, casting="unsafe")


def _convert(value, dtype: np.dtype):
    value = np.asarray(value)
    if dtype.kind in "iu" and value.dtype.kind == "f":
        value = np.trunc(value)
    with np.errstate(over="ignore", invalid="ignore"):
        return value.astype(dtype, casting="unsafe")


def _binop(op: str, a, b):
    a = np.asarray(a)
    b = np.asarray(b)
    with np.errstate(all="ignore"):
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op == "div":
            if a.dtype.kind in "iu" and b.dtype.kind in "iu":
                safe = np.where(b == 0, 1, b)
                q = np.abs(a.astype(np.int64)) // np.abs(safe.astype(np.int64))
                sign = np.sign(a.astype(np.int64)) * np.sign(safe.astype(np.int64))
                return (sign * q).astype(np.result_type(a, b))
            return a / b
        if op == "rem":
            if a.dtype.kind in "iu" and b.dtype.kind in "iu":
                safe = np.where(b == 0, 1, b).astype(np.int64)
                r = np.abs(a.astype(np.int64)) % np.abs(safe)
                return np.where(a.astype(np.int64) >= 0, r, -r).astype(np.result_type(a, b))
            return np.fmod(a, b)
        if op == "shl":
            return a << b.astype(a.dtype)
        if op == "shr":
            return a >> b.astype(a.dtype)
        if op == "and":
            return (a.astype(bool) & b.astype(bool)) if a.dtype.kind == "b" else a & b
        if op == "or":
            return (a.astype(bool) | b.astype(bool)) if a.dtype.kind == "b" else a | b
        if op == "xor":
            return a ^ b
        if op == "min":
            return np.minimum(a, b)
        if op == "max":
            return np.maximum(a, b)
        if op == "pow":
            return np.power(a, b)
        if op == "lt":
            return a < b
        if op == "le":
            return a <= b
        if op == "gt":
            return a > b
        if op == "ge":
            return a >= b
        if op == "eq":
            return a == b
        if op == "ne":
            return a != b
    raise ValueError(f"unknown binop {op}")


def _unop(op: str, a):
    a = np.asarray(a)
    with np.errstate(all="ignore"):
        if op == "neg":
            return -a
        if op == "not":
            return ~a
        if op == "lnot":
            return ~a.astype(bool)
        if op == "abs":
            return np.abs(a)
        if op == "sqrt":
            return np.sqrt(a)
        if op == "exp":
            return np.exp(a)
        if op == "log":
            return np.log(a)
        if op == "sin":
            return np.sin(a)
        if op == "cos":
            return np.cos(a)
        if op == "floor":
            return np.floor(a)
        if op == "ceil":
            return np.ceil(a)
        if op == "rcp":
            return 1.0 / a
    raise ValueError(f"unknown unop {op}")
