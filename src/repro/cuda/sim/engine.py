"""Functional engine: block scheduling, named barriers, memory routing.

The Jetson Nano GPU has a single streaming multiprocessor, so thread
blocks execute one at a time; within a block, warps are scheduled
cooperatively (each warp is a generator that yields at barriers and in
spin loops).  Named barriers implement PTX ``bar.sync b, n`` semantics:
an arriving warp contributes 32 threads towards the count; release happens
when ``ceil(n / 32)`` warps have arrived (counts must be multiples of the
warp size — enforced, since the paper's runtime rounds N up to W*ceil(N/W)).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

import numpy as np

from repro.cuda.device import DeviceProperties, Dim3
from repro.cuda.ptx.ir import Atom, BarOp, CallOp, KernelIR, LoopOp, walk_ops
from repro.cuda.ptx.lower import LOCAL_WINDOW_BASE, SHARED_WINDOW_BASE
from repro.cuda.sim.coalesce import transactions
from repro.cuda.sim.compile import (
    CompiledKernelCache, CompiledWarpExec, compile_kernel,
)
from repro.cuda.sim.warp import WARP_SIZE, WarpExec
from repro.mem import LinearMemory
from repro.prof.activity import KernelExecActivity


class LaunchError(Exception):
    """Kernel execution failed (deadlock, bad barrier, resource limits)."""


# -- memoized coalescing ------------------------------------------------------
# A kernel's warps repeat a handful of address *shapes*: the same relative
# stride pattern at different bases (each loop iteration, each block).  The
# transaction count is invariant under translating every address by a
# multiple of 32 (all segment indices shift uniformly), so the count is
# fully determined by (base offset within a segment, per-lane deltas from
# lane 0, itemsize, active mask) — uint64 wraparound in the deltas is
# harmless because subtraction mod 2^64 is itself translation-invariant.
# Keying on that shape turns the per-warp Python segment walk into one dict
# probe.  REPRO_TXN_MEMO=off restores the direct computation (the bench
# artifact records the before/after wall time).
_TXN_MEMO: dict = {}
_TXN_MEMO_CAP = 1 << 16
_TXN_MEMO_STATS = {"hits": 0, "misses": 0}


def _txn_memo_enabled() -> bool:
    import os
    return os.environ.get("REPRO_TXN_MEMO", "on").lower() not in (
        "off", "0", "false")


_TXN_MEMO_ENABLED = _txn_memo_enabled()


def transactions_memo(addrs: np.ndarray, itemsize: int,
                      mask: np.ndarray) -> int:
    """Memoized :func:`~repro.cuda.sim.coalesce.transactions`."""
    if not _TXN_MEMO_ENABLED:
        return transactions(addrs, itemsize, mask)
    key = (int(addrs[0]) & 31, int(itemsize),
           (addrs - addrs[0]).tobytes(), mask.tobytes())
    n = _TXN_MEMO.get(key)
    if n is None:
        if len(_TXN_MEMO) >= _TXN_MEMO_CAP:
            _TXN_MEMO.clear()
        n = transactions(addrs, itemsize, mask)
        _TXN_MEMO[key] = n
        _TXN_MEMO_STATS["misses"] += 1
    else:
        _TXN_MEMO_STATS["hits"] += 1
    return n


@dataclass
class KernelStats:
    """Dynamic execution counters for one kernel launch.

    ``instructions`` counts warp-level dispatches (the unit the timing
    model prices); ALU counters additionally track active-lane work.
    """

    instructions: int = 0
    alu_f32: int = 0
    alu_f64: int = 0
    alu_int: int = 0
    special_ops: int = 0
    load_instructions: int = 0
    store_instructions: int = 0
    #: loads/stores that hit device DRAM (latency-relevant); the rest are
    #: shared/local (on-chip or L1-cached)
    global_mem_instructions: int = 0
    global_transactions: int = 0
    shared_accesses: int = 0
    local_accesses: int = 0
    barriers: int = 0
    atomics: int = 0
    divergent_branches: int = 0
    loop_iterations: int = 0
    spins: int = 0
    blocks_launched: int = 0
    warps_launched: int = 0
    threads_launched: int = 0
    #: filled by the launcher
    grid: tuple[int, int, int] = (1, 1, 1)
    block: tuple[int, int, int] = (1, 1, 1)
    smem_per_block: int = 0
    registers_per_thread: int = 32

    def note_alu(self, dtype: str, active: int, special: bool = False) -> None:
        self.instructions += 1
        if special:
            self.special_ops += active
        elif dtype == "f32":
            self.alu_f32 += active
        elif dtype == "f64":
            self.alu_f64 += active
        else:
            self.alu_int += active

    def merge_scaled(self, other: "KernelStats", factor: float) -> None:
        """Accumulate ``other`` scaled by ``factor`` (representative-block
        extrapolation in the timing engine)."""
        for name in (
            "instructions", "alu_f32", "alu_f64", "alu_int", "special_ops",
            "load_instructions", "store_instructions",
            "global_mem_instructions", "global_transactions",
            "shared_accesses", "local_accesses", "barriers", "atomics",
            "divergent_branches", "loop_iterations", "spins",
        ):
            setattr(self, name, getattr(self, name) + int(getattr(other, name) * factor))


class BlockCtx:
    """Per-block execution context: shared memory, local memory, and a
    scratch area for the device runtime's per-block state."""

    def __init__(self, block_idx, block_dim, grid_dim, smem_size: int,
                 local_per_thread: int):
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.smem = LinearMemory(max(smem_size, 16), base=SHARED_WINDOW_BASE,
                                 name="shared")
        nthreads = block_dim[0] * block_dim[1] * block_dim[2]
        self.local_per_thread = local_per_thread
        if local_per_thread:
            self.lmem = LinearMemory(local_per_thread * nthreads,
                                     base=LOCAL_WINDOW_BASE, name="local")
        else:
            self.lmem = None
        #: device-runtime per-block state (shared-memory stack pointer,
        #: registered parallel region, section counters, ...)
        self.devrt: dict = {}

    def local_base(self, lane_linear: np.ndarray) -> np.ndarray:
        return (LOCAL_WINDOW_BASE
                + lane_linear.astype(np.uint64) * np.uint64(self.local_per_thread))


class FunctionalEngine:
    """Executes kernels functionally on the simulated device."""

    def __init__(
        self,
        device: DeviceProperties,
        gmem: LinearMemory,
        intrinsics: Optional[dict[str, Callable]] = None,
        module_globals: Optional[dict[str, int]] = None,
        fastpath: str = "off",
        compile_cache: Optional[CompiledKernelCache] = None,
        recorder=None,
    ):
        if fastpath not in ("on", "off", "verify"):
            raise ValueError(f"bad fastpath mode {fastpath!r}")
        self.device = device
        self.gmem = gmem
        self.intrinsics = intrinsics or {}
        self.module_globals = module_globals or {}
        self.fastpath = fastpath
        self.compile_cache = compile_cache
        #: optional repro.prof.activity.ActivityRecorder: every functional
        #: execution emits one kernel_exec record with the dynamic counters
        #: of what actually ran.  The record is produced here — above the
        #: tree-walk/compiled split — so both execution paths emit
        #: byte-identical records (asserted by tests/test_prof.py).
        self.recorder = recorder
        self._local_compiled: dict[int, tuple] = {}
        self.stdout: list[str] = []
        self.stats = KernelStats()
        self._loop_block_cache: dict[int, bool] = {}

    # -- memory routing ------------------------------------------------------
    def global_addr(self, name: str) -> int:
        try:
            return self.module_globals[name]
        except KeyError:
            raise LaunchError(f"unresolved device global {name!r}") from None

    def resolve_space(self, warp: WarpExec, addr: int) -> LinearMemory:
        if self.gmem.base <= addr < self.gmem.base + self.gmem.capacity:
            return self.gmem
        block = warp.block
        if SHARED_WINDOW_BASE <= addr < SHARED_WINDOW_BASE + block.smem.capacity:
            return block.smem
        if block.lmem is not None and \
                LOCAL_WINDOW_BASE <= addr < LOCAL_WINDOW_BASE + block.lmem.capacity:
            return block.lmem
        raise LaunchError(f"kernel accessed unmapped address {addr:#x}")

    def mem_load(self, warp: WarpExec, addrs, dtype: np.dtype, mask: np.ndarray):
        if not mask.any():
            # fully predicated-off access (divergent warp): no instruction
            # issues, no transaction is counted — and addrs may be garbage,
            # so resolve_space must not look at them
            return np.zeros(WARP_SIZE, dtype=dtype)
        self.stats.load_instructions += 1
        self.stats.instructions += 1
        addrs = np.broadcast_to(np.asarray(addrs, dtype=np.uint64), (WARP_SIZE,))
        space = self.resolve_space(warp, int(addrs[np.argmax(mask)]))
        self._note_mem(space, addrs, dtype.itemsize, mask)
        out = np.zeros(WARP_SIZE, dtype=dtype)
        out[mask] = space.gather(addrs[mask], dtype)
        return out

    def mem_store(self, warp: WarpExec, addrs, dtype: np.dtype, values,
                  mask: np.ndarray) -> None:
        if not mask.any():
            return  # predicated off: no instruction, no transaction
        self.stats.store_instructions += 1
        self.stats.instructions += 1
        addrs = np.broadcast_to(np.asarray(addrs, dtype=np.uint64), (WARP_SIZE,))
        values = np.broadcast_to(np.asarray(values), (WARP_SIZE,))
        space = self.resolve_space(warp, int(addrs[np.argmax(mask)]))
        self._note_mem(space, addrs, dtype.itemsize, mask)
        if values.dtype.kind == "f" and dtype.kind in "iu":
            values = np.trunc(values)
        with np.errstate(over="ignore", invalid="ignore"):
            space.scatter(addrs[mask], dtype, values[mask].astype(dtype, casting="unsafe"))

    def _note_mem(self, space: LinearMemory, addrs, itemsize, mask) -> None:
        if space is self.gmem:
            self.stats.global_mem_instructions += 1
            self.stats.global_transactions += transactions_memo(
                addrs, itemsize, mask)
        elif space.name == "shared":
            self.stats.shared_accesses += int(mask.sum())
        else:
            self.stats.local_accesses += int(mask.sum())

    # -- loop classification -----------------------------------------------------
    def loop_may_block(self, loop: LoopOp) -> bool:
        cached = self._loop_block_cache.get(id(loop))
        if cached is None:
            cached = any(
                isinstance(op, (BarOp, Atom, CallOp))
                for op in walk_ops(loop.body_ops)
            ) or any(
                isinstance(op, (BarOp, Atom, CallOp))
                for op in walk_ops(loop.cond_ops)
            )
            self._loop_block_cache[id(loop)] = cached
        return cached

    # -- launch ----------------------------------------------------------------
    def launch(
        self,
        kernel: KernelIR,
        grid,
        block,
        params: list,
        only_blocks: Optional[Iterable[tuple[int, int, int]]] = None,
        only_warps: Optional[set[int]] = None,
        fresh_stats: bool = True,
    ) -> KernelStats:
        compiled = None
        if self.fastpath != "off":
            compiled = self._compiled_for(kernel)
        if compiled is not None and self.fastpath == "verify" and fresh_stats:
            stats = self._launch_verified(kernel, grid, block, params,
                                          only_blocks, only_warps, compiled)
        else:
            stats = self._launch(kernel, grid, block, params, only_blocks,
                                 only_warps, fresh_stats, compiled)
        if self.recorder is not None:
            self.recorder.emit(KernelExecActivity(
                name=kernel.name, grid=stats.grid, block=stats.block,
                blocks_run=stats.blocks_launched,
                warps_run=stats.warps_launched,
                instructions=stats.instructions,
                global_transactions=stats.global_transactions,
                divergent_branches=stats.divergent_branches,
                barriers=stats.barriers,
                shared_accesses=stats.shared_accesses,
                local_accesses=stats.local_accesses,
                spins=stats.spins,
            ))
        return stats

    def _compiled_for(self, kernel: KernelIR):
        if self.compile_cache is not None:
            return self.compile_cache.get(kernel)
        entry = self._local_compiled.get(id(kernel))
        if entry is None:
            try:
                entry = (kernel, compile_kernel(kernel))
            except Exception:
                entry = (kernel, None)
            self._local_compiled[id(kernel)] = entry
        return entry[1]

    def _launch_verified(self, kernel, grid, block, params, only_blocks,
                         only_warps, compiled) -> KernelStats:
        """Differential execution: run the compiled fast path, roll global
        memory back, run the tree-walker, and require bit-identical global
        memory, stdout and ``KernelStats``."""
        import dataclasses

        buf_snap = self.gmem.buf.copy()
        free_snap = list(self.gmem._free)
        alloc_snap = dict(self.gmem._allocated)
        out_mark = len(self.stdout)
        fast = self._launch(kernel, grid, block, params, only_blocks,
                            only_warps, True, compiled)
        fast_buf = self.gmem.buf.copy()
        fast_out = self.stdout[out_mark:]
        self.gmem.buf[:] = buf_snap
        self.gmem._free = free_snap
        self.gmem._allocated = alloc_snap
        del self.stdout[out_mark:]
        ref = self._launch(kernel, grid, block, params, only_blocks,
                           only_warps, True, None)
        problems = []
        if not np.array_equal(self.gmem.buf, fast_buf):
            problems.append("global memory")
        if self.stdout[out_mark:] != fast_out:
            problems.append("stdout")
        for fld in dataclasses.fields(KernelStats):
            if getattr(fast, fld.name) != getattr(ref, fld.name):
                problems.append(f"stats.{fld.name}")
        if problems:
            raise LaunchError(
                f"fast path diverged from tree-walk on kernel "
                f"{kernel.name!r}: {', '.join(problems)}"
            )
        return ref

    def _launch(
        self,
        kernel: KernelIR,
        grid,
        block,
        params: list,
        only_blocks: Optional[Iterable[tuple[int, int, int]]] = None,
        only_warps: Optional[set[int]] = None,
        fresh_stats: bool = True,
        compiled=None,
    ) -> KernelStats:
        grid = Dim3.of(grid)
        block = Dim3.of(block)
        self._validate_launch(kernel, grid, block)
        if fresh_stats:
            self.stats = KernelStats()
        stats = self.stats
        stats.grid = (grid.x, grid.y, grid.z)
        stats.block = (block.x, block.y, block.z)
        stats.smem_per_block = kernel.smem_static
        nthreads = block.count
        nwarps = (nthreads + WARP_SIZE - 1) // WARP_SIZE
        if only_blocks is None:
            blocks = (
                (bx, by, bz)
                for bz in range(grid.z)
                for by in range(grid.y)
                for bx in range(grid.x)
            )
        else:
            blocks = iter(only_blocks)
        for block_idx in blocks:
            ctx = BlockCtx(
                block_idx,
                (block.x, block.y, block.z),
                (grid.x, grid.y, grid.z),
                self.device.shared_mem_per_block,
                kernel.local_static,
            )
            warps = []
            for w in range(nwarps):
                if only_warps is not None and w not in only_warps:
                    # representative-warp sampling: valid only for kernels
                    # with no inter-warp communication (the caller checks)
                    continue
                lane_linear = np.arange(w * WARP_SIZE, (w + 1) * WARP_SIZE,
                                        dtype=np.int64)
                valid = lane_linear < nthreads
                if compiled is not None:
                    warps.append(CompiledWarpExec(compiled, self, ctx, w,
                                                  lane_linear, valid,
                                                  kernel, params))
                else:
                    warps.append(WarpExec(self, ctx, w, lane_linear, valid,
                                          kernel, params))
            self._run_block(warps)
            stats.blocks_launched += 1
            stats.warps_launched += len(warps)
            stats.threads_launched += nthreads
        return stats

    def _validate_launch(self, kernel: KernelIR, grid: Dim3, block: Dim3) -> None:
        dev = self.device
        if block.count == 0 or grid.count == 0:
            raise LaunchError("empty grid or block")
        if block.count > dev.max_threads_per_block:
            raise LaunchError(
                f"block of {block.count} threads exceeds device limit "
                f"{dev.max_threads_per_block}"
            )
        for dim, limit in zip((block.x, block.y, block.z), dev.max_block_dim):
            if dim > limit:
                raise LaunchError(f"block dimension {dim} exceeds limit {limit}")
        for dim, limit in zip((grid.x, grid.y, grid.z), dev.max_grid_dim):
            if dim > limit:
                raise LaunchError(f"grid dimension {dim} exceeds limit {limit}")
        if kernel.smem_static > dev.shared_mem_per_block:
            raise LaunchError(
                f"kernel needs {kernel.smem_static}B shared memory; device "
                f"has {dev.shared_mem_per_block}B"
            )

    def _run_block(self, warps: list[WarpExec]) -> None:
        gens = [w.run_kernel() for w in warps]
        n = len(warps)
        READY, WAITING, DONE = 0, 1, 2
        status = [READY] * n
        # bar_id -> {"arrived": set[int], "count": Optional[int]}
        bars: dict[int, dict] = {}
        max_barriers = self.device.named_barriers_per_block

        def try_release(bar_id: int) -> None:
            state = bars.get(bar_id)
            if state is None:
                return
            count = state["count"]
            arrived = state["arrived"]
            if count is None:
                expected = {i for i in range(n) if status[i] != DONE}
                if arrived >= expected:
                    release = arrived
                else:
                    return
            else:
                needed = (count + WARP_SIZE - 1) // WARP_SIZE
                if len(arrived) >= needed:
                    release = arrived
                else:
                    return
            for i in release:
                status[i] = READY
            del bars[bar_id]

        queue = deque(range(n))
        idle_rounds = 0
        while any(s != DONE for s in status):
            progressed = False
            for _ in range(n):
                i = queue[0]
                queue.rotate(-1)
                if status[i] != READY:
                    continue
                progressed = True
                try:
                    event = next(gens[i])
                except StopIteration:
                    status[i] = DONE
                    # a finishing warp may satisfy a full-block barrier
                    for bar_id in list(bars):
                        try_release(bar_id)
                    continue
                if event[0] == "bar":
                    _tag, bar_id, count = event
                    self.stats.barriers += 1
                    if bar_id >= max_barriers or bar_id < 0:
                        raise LaunchError(
                            f"barrier id {bar_id} out of range (device has "
                            f"{max_barriers} named barriers per block)"
                        )
                    if count is not None and count % WARP_SIZE != 0:
                        raise LaunchError(
                            f"bar.sync count {count} is not a multiple of the "
                            f"warp size {WARP_SIZE}"
                        )
                    state = bars.setdefault(bar_id, {"arrived": set(), "count": count})
                    if state["count"] != count:
                        raise LaunchError(
                            f"inconsistent thread counts at barrier {bar_id}: "
                            f"{state['count']} vs {count}"
                        )
                    state["arrived"].add(i)
                    status[i] = WAITING
                    try_release(bar_id)
                elif event[0] == "spin":
                    self.stats.spins += 1
                else:  # pragma: no cover
                    raise LaunchError(f"unknown scheduler event {event!r}")
            if not progressed:
                idle_rounds += 1
            else:
                idle_rounds = 0
            if idle_rounds > 2:
                waiting = {
                    bar_id: sorted(state["arrived"])
                    for bar_id, state in bars.items()
                }
                raise LaunchError(
                    f"deadlock in block: warps waiting on barriers {waiting}, "
                    f"statuses={status}"
                )
