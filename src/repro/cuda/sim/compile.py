"""Closure compilation of kernel IR — the simulator's JIT back end.

The tree-walking :class:`~repro.cuda.sim.warp.WarpExec` re-dispatches on
every IR node of every iteration of every warp.  For the steady-state
benchmark launches (same kernel image, thousands of warps) that dispatch
dominates wall-clock.  This pass lowers a kernel's IR **once** into
generated Python source — one closure per function activation (kernel
body + registered subfunctions) — operating on whole-warp numpy lane
vectors:

* straight-line runs of ALU/move/load/store ops become a single code
  block guarded by one ``mask.any()`` check, with their ``KernelStats``
  contributions aggregated into constant increments;
* single-use pure values are fused textually into their consumer, so a
  chain like ``mul/add/ld/add/st`` becomes one composed numpy expression;
* predicated control flow (``IfOp``/``LoopOp``) keeps the exact
  mask-algebra of the interpreter, bit for bit, including divergence and
  loop-iteration counters;
* anything stateful or rare (intrinsic calls, atomics, printf, barriers)
  delegates to the original ``WarpExec`` methods so the semantics cannot
  drift.

The generated closures are still generators (they ``yield`` the same
``('bar', id, count)`` / ``('spin',)`` scheduler events), so block
scheduling, named barriers and the master/worker scheme are untouched.

Compilation is conservative: any construct outside the supported set
raises :class:`UnsupportedKernel` and the caller silently falls back to
the tree-walker.  ``CompiledKernelCache`` memoizes per (kernel image id,
param dtypes) so repeated ``cuLaunchKernel`` calls skip re-lowering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.cuda.ptx.ir import (
    Atom, BarOp, BinOp, BreakOp, CallOp, ContinueOp, Cvt, GlobalAddr, IfOp,
    Imm, KernelIR, Ld, LoopOp, Mov, PrintfOp, Reg, RetOp, SelOp, Sreg, St,
    UnOp, np_dtype, walk_ops,
)
from repro.cuda.sim.warp import (
    WARP_SIZE, WarpExec, _SPECIAL, _binop, _cast_scalar, _cast_vec, _convert,
    _unop,
)


class UnsupportedKernel(Exception):
    """Kernel uses a construct the closure compiler does not handle."""


_PSEUDO = ("__ldparam", "__ldarg", "__local_base")
_SEG_TYPES = (BinOp, UnOp, Mov, SelOp, Cvt, Sreg, Ld, St)

_BOOL_DT = np.dtype(np.bool_)
_LANEID = np.arange(WARP_SIZE, dtype=np.uint32)
_LANEID.setflags(write=False)
_Z = np.zeros(WARP_SIZE, dtype=bool)
_Z.setflags(write=False)


def _is_seg_op(op) -> bool:
    if isinstance(op, _SEG_TYPES):
        return True
    return type(op) is CallOp and op.name in _PSEUDO


# --------------------------------------------------------------------------
# runtime helpers referenced by generated code
# --------------------------------------------------------------------------

def _scan_bc(ops) -> tuple[bool, bool]:
    """Whether ``ops`` contains a break / continue binding to the enclosing
    loop (recurses into if-arms but not into nested loops, whose breaks
    bind to themselves)."""
    has_b = has_c = False
    for o in ops:
        t = type(o)
        if t is BreakOp:
            has_b = True
        elif t is ContinueOp:
            has_c = True
        elif t is IfOp:
            b, c = _scan_bc(o.then_ops)
            has_b |= b
            has_c |= c
            b, c = _scan_bc(o.else_ops)
            has_b |= b
            has_c |= c
    return has_b, has_c


def _reg(regs: dict, name: str, dtype: np.dtype) -> np.ndarray:
    arr = regs.get(name)
    if arr is None:
        arr = np.zeros(WARP_SIZE, dtype=dtype)
        regs[name] = arr
    return arr


def _fload(engine, warp, addrs, dtype, mask):
    """Streamlined ``FunctionalEngine.mem_load`` (identical semantics)."""
    if not mask.any():
        # predicated off: mirrors mem_load's early return exactly (no
        # stats, no space resolution) so verify mode stays bit-identical
        return np.zeros(WARP_SIZE, dtype=dtype)
    stats = engine.stats
    stats.load_instructions += 1
    stats.instructions += 1
    a = np.asarray(addrs, dtype=np.uint64)
    if a.shape != (WARP_SIZE,):
        a = np.broadcast_to(a, (WARP_SIZE,))
    full = mask.all()
    space = engine.resolve_space(
        warp, int(a[0]) if full else int(a[np.argmax(mask)]))
    engine._note_mem(space, a, dtype.itemsize, mask)
    if full:
        return space.gather(a, dtype)
    out = np.zeros(WARP_SIZE, dtype=dtype)
    out[mask] = space.gather(a[mask], dtype)
    return out


def _fstore(engine, warp, addrs, dtype, values, mask):
    """Streamlined ``FunctionalEngine.mem_store`` (identical semantics)."""
    if not mask.any():
        return  # predicated off: mirrors mem_store's early return
    stats = engine.stats
    stats.store_instructions += 1
    stats.instructions += 1
    a = np.asarray(addrs, dtype=np.uint64)
    if a.shape != (WARP_SIZE,):
        a = np.broadcast_to(a, (WARP_SIZE,))
    v = np.asarray(values)
    if v.shape != (WARP_SIZE,):
        v = np.broadcast_to(v, (WARP_SIZE,))
    full = mask.all()
    space = engine.resolve_space(
        warp, int(a[0]) if full else int(a[np.argmax(mask)]))
    engine._note_mem(space, a, dtype.itemsize, mask)
    if v.dtype.kind == "f" and dtype.kind in "iu":
        v = np.trunc(v)
    if full:
        with np.errstate(over="ignore", invalid="ignore"):
            space.scatter(a, dtype, v.astype(dtype, casting="unsafe"))
        return
    with np.errstate(over="ignore", invalid="ignore"):
        space.scatter(a[mask], dtype, v[mask].astype(dtype, casting="unsafe"))


def _ldargv(warp, idx: int, dtype: np.dtype) -> np.ndarray:
    """Full-width, dtype-cast view of subfunction argument ``idx``
    (elementwise identical to what ``setreg`` would write)."""
    value = np.asarray(warp._arg_stack[-1][idx])
    if value.ndim == 0:
        return np.full(WARP_SIZE, _cast_scalar(value, dtype))
    out = np.empty(WARP_SIZE, dtype=dtype)
    out[:] = _cast_vec(np.broadcast_to(value, (WARP_SIZE,)), dtype)
    return out


def _barid(v) -> int:
    if np.isscalar(v):
        return int(v)
    return int(np.asarray(v).reshape(-1)[0])


def _barcnt(v) -> int:
    c = np.asarray(v)
    return int(c.reshape(-1)[0] if c.ndim else c)


_GLOBALS = {
    "np": np, "_SHP": (WARP_SIZE,), "_Z": _Z, "_LANEID": _LANEID,
    "_reg": _reg, "_cs": _cast_scalar, "_cv": _cast_vec, "_cvt": _convert,
    "_bop": _binop, "_fload": _fload, "_fstore": _fstore,
    "_ldargv": _ldargv, "_barid": _barid, "_barcnt": _barcnt,
}


# --------------------------------------------------------------------------
# register analysis: which registers can live as fused SSA temporaries
# --------------------------------------------------------------------------

@dataclass
class _RegInfo:
    dtype: Optional[str] = None
    conflict: bool = False
    ndefs: int = 0
    def_fn: int = -1
    def_bid: int = -1
    def_idx: int = -1
    def_op: object = None
    uses: list = field(default_factory=list)
    pinned: bool = False
    temp: bool = False


class _Analysis:
    """Def/use scan over all function bodies of a kernel.

    A register is a *temp* (kept as a generated local / fused expression
    instead of a 32-wide entry in ``warp.regs``) iff it has exactly one
    def, that def is a plain data op, it is never touched by a delegated
    op (intrinsic call, atomic, printf, barrier operand), and every use
    appears strictly after the def inside the def's block (at any
    nesting depth) within the same function.  Everything else stays in
    the register dict with interpreter-identical lazy-zeros semantics.
    """

    def __init__(self, kernel: KernelIR):
        self.regs: dict[str, _RegInfo] = {}
        self.parent: dict[int, tuple] = {}
        self._nb = 0
        fns = [kernel.body] + [s.body for s in kernel.subfunctions.values()]
        for fi, ops in enumerate(fns):
            self._scan(ops, fi, None, None)
        self._classify()

    def _info(self, name: str) -> _RegInfo:
        info = self.regs.get(name)
        if info is None:
            info = _RegInfo()
            self.regs[name] = info
        return info

    def _dt(self, info: _RegInfo, dtype: str) -> None:
        if info.dtype is None:
            info.dtype = dtype
        elif info.dtype != dtype:
            info.conflict = True

    def _use(self, o, fi, bid, idx) -> None:
        if type(o) is Reg:
            info = self._info(o.name)
            self._dt(info, o.dtype)
            info.uses.append((fi, bid, idx))

    def _pin(self, o) -> None:
        if type(o) is Reg:
            info = self._info(o.name)
            self._dt(info, o.dtype)
            info.pinned = True

    def _def(self, reg: Reg, fi, bid, idx, op) -> None:
        info = self._info(reg.name)
        self._dt(info, reg.dtype)
        info.ndefs += 1
        info.def_fn, info.def_bid, info.def_idx = fi, bid, idx
        info.def_op = op

    def _scan(self, ops, fi, pbid, pidx) -> int:
        bid = self._nb
        self._nb += 1
        self.parent[bid] = (pbid, pidx)
        for i, op in enumerate(ops):
            cls = type(op)
            if cls is BinOp:
                self._use(op.a, fi, bid, i)
                self._use(op.b, fi, bid, i)
                self._def(op.dst, fi, bid, i, op)
            elif cls in (UnOp, Mov, Cvt):
                self._use(op.a, fi, bid, i)
                self._def(op.dst, fi, bid, i, op)
            elif cls is SelOp:
                self._use(op.pred, fi, bid, i)
                self._use(op.a, fi, bid, i)
                self._use(op.b, fi, bid, i)
                self._def(op.dst, fi, bid, i, op)
            elif cls is Sreg:
                self._def(op.dst, fi, bid, i, op)
            elif cls is Ld:
                self._use(op.addr, fi, bid, i)
                self._def(op.dst, fi, bid, i, op)
            elif cls is St:
                self._use(op.addr, fi, bid, i)
                self._use(op.value, fi, bid, i)
            elif cls is IfOp:
                self._use(op.cond, fi, bid, i)
                self._scan(op.then_ops, fi, bid, i)
                self._scan(op.else_ops, fi, bid, i)
            elif cls is LoopOp:
                cbid = self._scan(op.cond_ops, fi, bid, i)
                # the loop condition is read after cond_ops runs
                self._use(op.cond, fi, cbid, len(op.cond_ops))
                self._scan(op.body_ops, fi, bid, i)
                step = getattr(op, "step_ops", None) or []
                if step:
                    self._scan(step, fi, bid, i)
            elif cls is BarOp:
                self._pin(op.barrier)
                if op.count is not None:
                    self._pin(op.count)
            elif cls is CallOp:
                if op.name in _PSEUDO:
                    if op.dst is None:
                        raise UnsupportedKernel(f"{op.name} without dst")
                    for a in op.args:
                        self._pin(a)
                    self._def(op.dst, fi, bid, i, op)
                else:
                    if op.dst is not None:
                        self._pin(op.dst)
                    for a in op.args:
                        self._pin(a)
            elif cls is PrintfOp:
                for a in op.args:
                    self._pin(a)
            elif cls is Atom:
                if op.dst is not None:
                    self._pin(op.dst)
                self._pin(op.addr)
                self._pin(op.a)
                if op.b is not None:
                    self._pin(op.b)
            elif cls in (BreakOp, ContinueOp, RetOp):
                pass
            else:
                raise UnsupportedKernel(f"unknown op {cls.__name__}")
        return bid

    def _classify(self) -> None:
        for info in self.regs.values():
            if info.conflict:
                # same virtual register used at two dtypes: the lazy
                # creation dtype would depend on runtime touch order
                raise UnsupportedKernel("register dtype conflict")
            if info.pinned or info.ndefs != 1 or info.def_op is None:
                continue
            op = info.def_op
            if type(op) is CallOp and op.name not in _PSEUDO:
                continue
            ok = True
            for (ufi, ubid, uidx) in info.uses:
                if ufi != info.def_fn:
                    ok = False
                    break
                b, j = ubid, uidx
                while b is not None and b != info.def_bid:
                    b, j = self.parent[b]
                if b != info.def_bid or j is None or j <= info.def_idx:
                    ok = False
                    break
            info.temp = ok

# --------------------------------------------------------------------------
# expression values
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class _Val:
    """A generated expression plus the metadata codegen decisions need:
    result dtype/scalarness (derived by evaluating the *reference*
    operator on dummy operands, so numpy promotion is exact), purity
    (safe to defer), and which register locals it reads (so deferred
    expressions are flushed before those registers are overwritten)."""

    text: str
    dtype: np.dtype
    scalar: bool
    const: object = None
    has_const: bool = False
    pure: bool = True
    bare_reg: bool = False
    refs: frozenset = frozenset()


def _dummy(v: _Val):
    """Representative operand for dtype/scalarness inference."""
    if v.has_const:
        return v.const
    if v.scalar:
        return v.dtype.type(1)
    return np.ones(2, dtype=v.dtype)


class _KernelCompiler:
    """Drives per-function codegen and owns the exec() namespace pools
    (immediates, dtypes, delegated-op objects, folded constants)."""

    def __init__(self, kernel: KernelIR):
        self.kernel = kernel
        self.an = _Analysis(kernel)
        self.ns: dict[str, object] = {}
        self._pool_n = 0
        self._imm_pool: dict = {}
        self._dt_pool: dict[str, str] = {}

    def _name(self, prefix: str) -> str:
        self._pool_n += 1
        return f"_{prefix}{self._pool_n}"

    def dt(self, dtype: np.dtype) -> str:
        key = dtype.str
        n = self._dt_pool.get(key)
        if n is None:
            n = self._name("D")
            self._dt_pool[key] = n
            self.ns[n] = dtype
        return n

    def imm(self, imm: Imm) -> _Val:
        key = (imm.dtype, type(imm.value), imm.value)
        try:
            ent = self._imm_pool.get(key)
        except TypeError:  # unhashable (never for IR immediates)
            ent = None
            key = None
        if ent is None:
            v = np_dtype(imm.dtype).type(imm.value)
            n = self._name("K")
            self.ns[n] = v
            ent = _Val(n, np_dtype(imm.dtype), True, const=v, has_const=True)
            if key is not None:
                self._imm_pool[key] = ent
        return ent

    def fold(self, value) -> _Val:
        n = self._name("K")
        self.ns[n] = value
        va = np.asarray(value)
        return _Val(n, va.dtype, va.ndim == 0, const=value, has_const=True)

    def op_ref(self, op) -> str:
        n = self._name("O")
        self.ns[n] = op
        return n

    def compile(self) -> "CompiledKernel":
        fns = [("f0", self.kernel.body)]
        for i, sub in enumerate(self.kernel.subfunctions.values()):
            fns.append((f"f{i + 1}", sub.body))
        srcs: list[Optional[str]] = []
        for fi, (fname, ops) in enumerate(fns):
            try:
                srcs.append(_FnGen(self, fi, ops).generate(fname))
            except UnsupportedKernel:
                srcs.append(None)
        if all(s is None for s in srcs):
            raise UnsupportedKernel("no function compiled")
        module_src = "\n\n".join(s for s in srcs if s is not None)
        glb = dict(_GLOBALS)
        glb.update(self.ns)
        code = compile(module_src, f"<fastpath:{self.kernel.name}>", "exec")
        exec(code, glb)
        body_fn = glb["f0"] if srcs[0] is not None else None
        sub_fns = [glb[f"f{i + 1}"] if srcs[i + 1] is not None else None
                   for i in range(len(fns) - 1)]
        return CompiledKernel(self.kernel, body_fn, sub_fns, module_src)


# --------------------------------------------------------------------------
# per-function code generation
# --------------------------------------------------------------------------

_INLINE_BIN = {
    "add": "+", "sub": "-", "mul": "*", "xor": "^",
    "lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!=",
}


class _FnGen:
    def __init__(self, kc: _KernelCompiler, fi: int, ops: list):
        self.kc = kc
        self.an = kc.an
        self.fi = fi
        self.ops = ops
        self.lines: list[tuple[int, str]] = []
        self.ind = 0
        self.uid_n = 0
        self.reg_locals: dict[str, tuple[str, str]] = {}  # name -> (local, dt)
        self.sreg_locals: dict[str, tuple[str, str]] = {}  # sreg -> (local, expr)
        self.glob_locals: dict[str, str] = {}
        self.temp_state: dict[str, tuple[str, _Val]] = {}
        self.temp_names: dict[str, str] = {}
        self.pend_order: list[str] = []
        self.loop_ctx: list[tuple[str, str]] = []

    # -- emission plumbing -------------------------------------------------
    def w(self, text: str) -> None:
        self.lines.append((self.ind, text))

    def uid(self) -> str:
        self.uid_n += 1
        return str(self.uid_n)

    def guard_open(self, cond: bool) -> None:
        if cond:
            self.w("if m.any():")
            self.ind += 1

    def guard_close(self, cond: bool) -> None:
        if cond:
            self.ind -= 1

    def generate(self, fname: str) -> str:
        self.has_ret = any(type(o) is RetOp for o in walk_ops(self.ops))
        self.block_ops(self.ops, True)
        out = [f"def {fname}(warp, m):"]

        def put(ind, text):
            out.append("    " * ind + text)

        put(1, "engine = warp.engine")
        put(1, "stats = engine.stats")
        put(1, "regs = warp.regs")
        put(1, "m = m.copy()")
        for name, (local, dtstr) in self.reg_locals.items():
            put(1, f"{local} = _reg(regs, {name!r}, "
                   f"{self.kc.dt(np_dtype(dtstr))})")
        for local, expr in self.sreg_locals.values():
            put(1, f"{local} = {expr}")
        for gname, local in self.glob_locals.items():
            put(1, f"{local} = np.uint64(engine.global_addr({gname!r}))")
        put(1, "ret = np.zeros(32, np.bool_)")
        put(1, "warp._ret_stack.append(ret)")
        put(1, "try:")
        if self.lines:
            for ind, text in self.lines:
                put(2 + ind, text)
        else:
            put(2, "pass")
        put(1, "finally:")
        put(2, "warp._ret_stack.pop()")
        put(1, "if False:")
        put(2, "yield None")
        return "\n".join(out)

    # -- operand handling --------------------------------------------------
    def reg_local(self, name: str, dtstr: str) -> str:
        ent = self.reg_locals.get(name)
        if ent is None:
            ent = (f"r{len(self.reg_locals)}", dtstr)
            self.reg_locals[name] = ent
        return ent[0]

    def operand(self, o) -> _Val:
        cls = type(o)
        if cls is Reg:
            info = self.an.regs[o.name]
            if info.temp:
                st = self.temp_state.get(o.name)
                if st is None:
                    raise UnsupportedKernel(f"temp {o.name} read before def")
                kind, val = st
                if kind == "pend":
                    self.pend_order.remove(o.name)
                    self.temp_state[o.name] = ("used", val)
                return val
            local = self.reg_local(o.name, o.dtype)
            return _Val(local, np_dtype(o.dtype), False, bare_reg=True,
                        refs=frozenset((local,)))
        if cls is Imm:
            return self.kc.imm(o)
        if cls is GlobalAddr:
            local = self.glob_locals.get(o.name)
            if local is None:
                local = f"g{len(self.glob_locals)}"
                self.glob_locals[o.name] = local
            return _Val(local, np.dtype(np.uint64), True)
        raise UnsupportedKernel(f"operand {o!r}")

    def sreg_val(self, name: str) -> _Val:
        u32 = np.dtype(np.uint32)
        if name == "tid.x":
            return _Val("warp.tid_x", u32, False)
        if name == "tid.y":
            return _Val("warp.tid_y", u32, False)
        if name == "tid.z":
            return _Val("warp.tid_z", u32, False)
        if name == "laneid":
            return _Val("_LANEID", u32, False)
        exprs = {
            "ntid.x": "np.uint32(warp.block.block_dim[0])",
            "ntid.y": "np.uint32(warp.block.block_dim[1])",
            "ntid.z": "np.uint32(warp.block.block_dim[2])",
            "ctaid.x": "np.uint32(warp.block.block_idx[0])",
            "ctaid.y": "np.uint32(warp.block.block_idx[1])",
            "ctaid.z": "np.uint32(warp.block.block_idx[2])",
            "nctaid.x": "np.uint32(warp.block.grid_dim[0])",
            "nctaid.y": "np.uint32(warp.block.grid_dim[1])",
            "nctaid.z": "np.uint32(warp.block.grid_dim[2])",
            "warpid": "np.uint32(warp.warp_index)",
        }
        expr = exprs.get(name)
        if expr is None:
            raise UnsupportedKernel(f"sreg {name}")
        ent = self.sreg_locals.get(name)
        if ent is None:
            ent = (f"s{len(self.sreg_locals)}", expr)
            self.sreg_locals[name] = ent
        return _Val(ent[0], u32, True)

    # -- temp bookkeeping --------------------------------------------------
    def vcast_text(self, text: str, src: np.dtype, dt: np.dtype) -> str:
        """``_cast_vec``/``_convert`` specialised at compile time: the
        trunc-before-narrow rule depends only on the static dtypes, and the
        surrounding segment already suppresses fp warnings."""
        dd = self.kc.dt(dt)
        if dt.kind in "iu" and src.kind == "f":
            return f"np.trunc({text}).astype({dd}, casting='unsafe')"
        return f"{text}.astype({dd}, casting='unsafe')"

    def scast_text(self, text: str, src: np.dtype, dt: np.dtype) -> str:
        """``_cast_scalar`` specialised at compile time (same rules)."""
        dd = self.kc.dt(dt)
        if dt.kind in "iu" and src.kind == "f":
            return f"{dd}.type(np.trunc({text}))"
        if src.kind == "b":
            return f"{dd}.type(bool({text}))"
        return f"{dd}.type(({text}).item())"

    def cast_val(self, v: _Val, dt: np.dtype) -> _Val:
        if v.dtype == dt:
            return v
        if v.has_const:
            with np.errstate(all="ignore"):
                c = _cast_scalar(np.asarray(v.const), dt)
            return self.kc.fold(c)
        if v.scalar:
            return _Val(self.scast_text(v.text, v.dtype, dt), dt, True,
                        pure=v.pure, refs=v.refs)
        return _Val(self.vcast_text(v.text, v.dtype, dt), dt, False,
                    pure=v.pure, refs=v.refs)

    def materialize(self, name: str, cv: _Val) -> None:
        t = self.temp_names.get(name)
        if t is None:
            t = f"t{len(self.temp_names)}"
            self.temp_names[name] = t
        text = cv.text + (".copy()" if cv.bare_reg else "")
        self.w(f"{t} = {text}")
        self.temp_state[name] = ("local", _Val(
            t, cv.dtype, cv.scalar, const=cv.const, has_const=cv.has_const))

    def flush_refs(self, local: str) -> None:
        if not self.pend_order:
            return
        for name in list(self.pend_order):
            _kind, val = self.temp_state[name]
            if local in val.refs:
                self.pend_order.remove(name)
                self.materialize(name, val)

    def flush_all(self) -> None:
        for name in self.pend_order:
            self.materialize(name, self.temp_state[name][1])
        self.pend_order = []

    def write_dst(self, reg: Reg, v: _Val, impure: bool = False) -> None:
        name = reg.name
        dt = np_dtype(reg.dtype)
        info = self.an.regs[name]
        if info.temp:
            if not info.uses:
                if impure:
                    self.w(v.text)
                return
            cv = self.cast_val(v, dt)
            if len(info.uses) == 1 and cv.pure and not impure:
                self.temp_state[name] = ("pend", cv)
                self.pend_order.append(name)
                return
            self.materialize(name, cv)
            return
        local = self.reg_local(name, reg.dtype)
        self.flush_refs(local)
        if v.has_const:
            with np.errstate(all="ignore"):
                c = _cast_scalar(np.asarray(v.const), dt)
            self.w(f"{local}[m] = {self.kc.fold(c).text}")
        elif v.scalar:
            if v.dtype == dt:
                self.w(f"{local}[m] = {v.text}")
            else:
                self.w(f"{local}[m] = {self.scast_text(v.text, v.dtype, dt)}")
        elif v.dtype == dt:
            self.w(f"np.copyto({local}, {v.text}, where=m)")
        else:
            self.w(f"np.copyto({local}, "
                   f"{self.vcast_text(v.text, v.dtype, dt)}, where=m)")

    # -- structured emission ----------------------------------------------
    def block_ops(self, ops: list, maybe_empty: bool) -> None:
        i, n = 0, len(ops)
        while i < n:
            op = ops[i]
            if _is_seg_op(op):
                j = i + 1
                while j < n and _is_seg_op(ops[j]):
                    j += 1
                self.emit_segment(ops[i:j], maybe_empty)
                i = j
                continue
            cls = type(op)
            if cls is IfOp:
                self.emit_if(op, maybe_empty)
                maybe_empty = True
            elif cls is LoopOp:
                self.emit_loop(op, maybe_empty)
                maybe_empty = True
            elif cls is BarOp:
                self.emit_bar(op, maybe_empty)
            elif cls is CallOp:
                ref = self.kc.op_ref(op)
                self.guard_open(maybe_empty)
                self.w(f"m = yield from warp._call({ref}, m)")
                self.guard_close(maybe_empty)
                maybe_empty = True
            elif cls is PrintfOp:
                ref = self.kc.op_ref(op)
                self.guard_open(maybe_empty)
                self.w(f"warp._printf({ref}, m)")
                self.guard_close(maybe_empty)
            elif cls is Atom:
                ref = self.kc.op_ref(op)
                self.guard_open(maybe_empty)
                self.w(f"warp._atomic({ref}, m)")
                self.guard_close(maybe_empty)
            elif cls is RetOp:
                self.guard_open(maybe_empty)
                self.w("stats.instructions += 1")
                self.w("ret |= m")
                self.w("m = _Z")
                self.guard_close(maybe_empty)
                return
            elif cls is BreakOp:
                if not self.loop_ctx:
                    raise UnsupportedKernel("break outside loop")
                bk, _cn = self.loop_ctx[-1]
                self.guard_open(maybe_empty)
                self.w(f"{bk} |= m")
                self.w("m = _Z")
                self.guard_close(maybe_empty)
                return
            elif cls is ContinueOp:
                if not self.loop_ctx:
                    raise UnsupportedKernel("continue outside loop")
                _bk, cn = self.loop_ctx[-1]
                self.guard_open(maybe_empty)
                self.w(f"{cn} |= m")
                self.w("m = _Z")
                self.guard_close(maybe_empty)
                return
            else:
                raise UnsupportedKernel(f"op {cls.__name__}")
            i += 1

    def emit_segment(self, seg: list, maybe_empty: bool) -> None:
        instr = 0
        alu = {"alu_f32": 0, "alu_f64": 0, "alu_int": 0, "special_ops": 0}

        def bucket(dtype: str, special: bool) -> str:
            if special:
                return "special_ops"
            if dtype == "f32":
                return "alu_f32"
            if dtype == "f64":
                return "alu_f64"
            return "alu_int"

        for op in seg:
            cls = type(op)
            if cls is BinOp:
                instr += 1
                alu[bucket(op.dst.dtype, False)] += 1
            elif cls is UnOp:
                instr += 1
                alu[bucket(op.dst.dtype, op.op in _SPECIAL)] += 1
            elif cls in (Mov, SelOp, Cvt, Sreg, CallOp):
                instr += 1
            # Ld/St stats are bumped inside _fload/_fstore
        self.guard_open(maybe_empty)
        if instr:
            self.w(f"stats.instructions += {instr}")
        if any(alu.values()):
            self.w("_a = int(m.sum())")
            for key, count in alu.items():
                if count == 1:
                    self.w(f"stats.{key} += _a")
                elif count:
                    self.w(f"stats.{key} += {count} * _a")
        self.w("with np.errstate(all='ignore'):")
        self.ind += 1
        mark = len(self.lines)
        for op in seg:
            self.emit_seg_op(op)
        self.flush_all()
        if len(self.lines) == mark:
            self.w("pass")
        self.ind -= 1
        self.guard_close(maybe_empty)

    def emit_seg_op(self, op) -> None:
        cls = type(op)
        if cls is BinOp:
            self.write_dst(op.dst, self.bin_val(op))
        elif cls is UnOp:
            self.write_dst(op.dst, self.un_val(op))
        elif cls is Mov:
            self.write_dst(op.dst, self.operand(op.a))
        elif cls is SelOp:
            self.write_dst(op.dst, self.sel_val(op))
        elif cls is Cvt:
            self.write_dst(op.dst, self.cvt_val(op))
        elif cls is Sreg:
            self.write_dst(op.dst, self.sreg_val(op.sreg))
        elif cls is Ld:
            a = self.operand(op.addr)
            dt = np_dtype(op.dst.dtype)
            v = _Val(f"_fload(engine, warp, {a.text}, {self.kc.dt(dt)}, m)",
                     dt, False, pure=False, refs=a.refs)
            self.write_dst(op.dst, v, impure=True)
        elif cls is St:
            a = self.operand(op.addr)
            val = self.operand(op.value)
            dt = np_dtype(op.dtype)
            self.w(f"_fstore(engine, warp, {a.text}, {self.kc.dt(dt)}, "
                   f"{val.text}, m)")
        elif cls is CallOp:
            self.emit_pseudo(op)
        else:  # pragma: no cover - block_ops only sends seg ops here
            raise UnsupportedKernel(f"seg op {cls.__name__}")

    def emit_pseudo(self, op: CallOp) -> None:
        dt = np_dtype(op.dst.dtype)
        if not op.args or type(op.args[0]) is not Imm:
            raise UnsupportedKernel(f"{op.name} with non-immediate arg")
        idx = int(op.args[0].value)
        if op.name == "__ldparam":
            v = _Val(f"np.full(32, warp.params[{idx}], "
                     f"dtype={self.kc.dt(dt)})", dt, False)
        elif op.name == "__ldarg":
            v = _Val(f"_ldargv(warp, {idx}, {self.kc.dt(dt)})", dt, False)
        elif op.name == "__local_base":
            v = _Val(f"(warp.block.local_base(warp.lane_linear) "
                     f"+ np.uint64({idx}))", np.dtype(np.uint64), False)
        else:  # pragma: no cover - _PSEUDO is closed
            raise UnsupportedKernel(op.name)
        self.write_dst(op.dst, v)

    # -- expression builders ----------------------------------------------
    def _meta(self, fn, *dummies):
        try:
            with np.errstate(all="ignore"):
                return fn(*dummies)
        except Exception as exc:
            raise UnsupportedKernel(f"meta eval failed: {exc}") from None

    def bin_val(self, op: BinOp) -> _Val:
        a = self.operand(op.a)
        b = self.operand(op.b)
        if a.has_const and b.has_const:
            r = self._meta(_binop, op.op, a.const, b.const)
            return self.kc.fold(r)
        r = np.asarray(self._meta(_binop, op.op, _dummy(a), _dummy(b)))
        text = self._bin_text(op.op, a, b)
        return _Val(text, r.dtype, r.ndim == 0,
                    pure=a.pure and b.pure, refs=a.refs | b.refs)

    def _bin_text(self, o: str, a: _Val, b: _Val) -> str:
        sym = _INLINE_BIN.get(o)
        if sym is not None:
            return f"({a.text} {sym} {b.text})"
        int_int = a.dtype.kind in "iu" and b.dtype.kind in "iu"
        if o == "div" and not int_int:
            return f"({a.text} / {b.text})"
        if o == "rem" and not int_int:
            return f"np.fmod({a.text}, {b.text})"
        if o in ("and", "or") and a.dtype.kind != "b":
            return f"({a.text} {'&' if o == 'and' else '|'} {b.text})"
        if o == "min":
            return f"np.minimum({a.text}, {b.text})"
        if o == "max":
            return f"np.maximum({a.text}, {b.text})"
        if o == "pow":
            return f"np.power({a.text}, {b.text})"
        # int div/rem, shifts, bool and/or: keep the reference helper
        return f"_bop({o!r}, {a.text}, {b.text})"

    def un_val(self, op: UnOp) -> _Val:
        a = self.operand(op.a)
        if a.has_const:
            return self.kc.fold(self._meta(_unop, op.op, a.const))
        r = np.asarray(self._meta(_unop, op.op, _dummy(a)))
        o = op.op
        if o == "neg":
            text = f"(-{a.text})"
        elif o == "not":
            text = f"(~{a.text})"
        elif o == "lnot":
            text = f"(~{a.text}.astype(bool))"
        elif o == "rcp":
            text = f"(1.0 / {a.text})"
        elif o in ("abs", "sqrt", "exp", "log", "sin", "cos", "floor",
                   "ceil"):
            text = f"np.{'abs' if o == 'abs' else o}({a.text})"
        else:
            raise UnsupportedKernel(f"unop {o}")
        return _Val(text, r.dtype, r.ndim == 0, pure=a.pure, refs=a.refs)

    def sel_val(self, op: SelOp) -> _Val:
        p = self.operand(op.pred)
        a = self.operand(op.a)
        b = self.operand(op.b)

        def ref(pv, av, bv):
            return np.where(np.asarray(pv).astype(bool), av, bv)

        if p.has_const and a.has_const and b.has_const:
            return self.kc.fold(self._meta(ref, p.const, a.const, b.const))
        r = np.asarray(self._meta(ref, _dummy(p), _dummy(a), _dummy(b)))
        text = f"np.where({p.text}.astype(bool), {a.text}, {b.text})"
        return _Val(text, r.dtype, r.ndim == 0,
                    pure=p.pure and a.pure and b.pure,
                    refs=p.refs | a.refs | b.refs)

    def cvt_val(self, op: Cvt) -> _Val:
        a = self.operand(op.a)
        dt = np_dtype(op.dst.dtype)
        if a.has_const:
            return self.kc.fold(self._meta(_convert, a.const, dt))
        r = np.asarray(self._meta(_convert, _dummy(a), dt))
        if a.scalar:
            # _convert wraps out-of-range values via astype (unlike the
            # OverflowError-raising _cast_scalar), so stay on the 0-d path
            text = self.vcast_text(f"np.asarray({a.text})", a.dtype, dt)
        else:
            text = self.vcast_text(a.text, a.dtype, dt)
        return _Val(text, r.dtype, a.scalar, pure=a.pure, refs=a.refs)

    # -- control flow ------------------------------------------------------
    def cond_text(self, cond: _Val) -> str:
        """Lane-mask text for a branch/loop condition; the broadcast and
        bool cast are elided when the static type already guarantees them
        (cc is consumed before anything it may alias can be mutated)."""
        if cond.scalar:
            return f"np.broadcast_to(np.asarray({cond.text}).astype(bool), _SHP)"
        if cond.dtype == _BOOL_DT:
            return cond.text
        return f"{cond.text}.astype(bool)"

    def emit_if(self, op: IfOp, maybe_empty: bool) -> None:
        k = self.uid()
        cond = self.operand(op.cond)
        self.guard_open(maybe_empty)
        self.w(f"cc{k} = {self.cond_text(cond)}")
        self.w(f"tm{k} = m & cc{k}")
        self.w(f"em{k} = m & ~cc{k}")
        self.w(f"ta{k} = tm{k}.any()")
        self.w(f"ea{k} = em{k}.any()")
        self.w(f"if ta{k} and ea{k}:")
        self.ind += 1
        self.w("stats.divergent_branches += 1")
        self.ind -= 1
        self.w("stats.instructions += 1")
        if op.then_ops:
            self.w(f"if ta{k}:")
            self.ind += 1
            self.w(f"m = tm{k}")
            self.block_ops(op.then_ops, False)
            self.w(f"tm{k} = m")
            self.ind -= 1
        if op.else_ops:
            self.w(f"if ea{k}:")
            self.ind += 1
            self.w(f"m = em{k}")
            self.block_ops(op.else_ops, False)
            self.w(f"em{k} = m")
            self.ind -= 1
        self.w(f"m = tm{k} | em{k}")
        self.guard_close(maybe_empty)

    def emit_loop(self, op: LoopOp, maybe_empty: bool) -> None:
        k = self.uid()
        may_block = any(
            isinstance(o, (BarOp, Atom, CallOp))
            for o in walk_ops(op.body_ops)
        ) or any(
            isinstance(o, (BarOp, Atom, CallOp))
            for o in walk_ops(op.cond_ops)
        )
        step_ops = getattr(op, "step_ops", None) or []
        # break/continue/return trackers are emitted only when the loop can
        # actually produce them — the common counted loop carries none
        has_b, has_c = _scan_bc(op.body_ops)
        has_ret = self.has_ret
        self.guard_open(maybe_empty)
        self.w(f"lv{k} = m")
        self.w(f"ex{k} = np.zeros(32, np.bool_)")
        self.w("while True:")
        self.ind += 1
        if has_ret:
            self.w(f"lv{k} = lv{k} & ~ret")
        self.w(f"if not lv{k}.any(): break")
        self.w(f"m = lv{k}")
        self.block_ops(op.cond_ops, False)
        self.w(f"lv{k} = m")
        self.w(f"if not lv{k}.any(): break")
        cond = self.operand(op.cond)
        self.w(f"cc{k} = {self.cond_text(cond)}")
        self.w(f"ac{k} = lv{k} & cc{k}")
        self.w(f"ex{k} |= lv{k} & ~cc{k}")
        self.w(f"if not ac{k}.any(): break")
        self.w("stats.loop_iterations += 1")
        if has_b:
            self.w(f"bk{k} = np.zeros(32, np.bool_)")
        if has_c:
            self.w(f"cn{k} = np.zeros(32, np.bool_)")
        self.w(f"m = ac{k}")
        self.loop_ctx.append((f"bk{k}", f"cn{k}"))
        self.block_ops(op.body_ops, False)
        self.loop_ctx.pop()
        self.w(f"rn{k} = m | cn{k}" if has_c else f"rn{k} = m")
        if step_ops:
            self.w(f"if rn{k}.any():")
            self.ind += 1
            self.w(f"sb{k} = np.zeros(32, np.bool_)")
            self.w(f"sc{k} = np.zeros(32, np.bool_)")
            self.w(f"m = rn{k}")
            self.loop_ctx.append((f"sb{k}", f"sc{k}"))
            self.block_ops(step_ops, False)
            self.loop_ctx.pop()
            self.w(f"rn{k} = m")
            self.ind -= 1
        if has_b:
            self.w(f"ex{k} |= bk{k}")
        self.w(f"lv{k} = rn{k}")
        if may_block:
            self.w("yield ('spin',)")
        self.ind -= 1
        if has_ret:
            self.w(f"m = (ex{k} | lv{k}) & ~ret")
        else:
            self.w(f"m = ex{k} | lv{k}")
        self.guard_close(maybe_empty)

    def emit_bar(self, op: BarOp, maybe_empty: bool) -> None:
        b = self.operand(op.barrier)
        bid_t = str(int(b.const)) if b.has_const else f"_barid({b.text})"
        if op.count is None:
            cnt_t = "None"
        else:
            c = self.operand(op.count)
            cnt_t = str(int(c.const)) if c.has_const else f"_barcnt({c.text})"
        self.guard_open(maybe_empty)
        self.w(f"yield ('bar', {bid_t}, {cnt_t})")
        self.guard_close(maybe_empty)


# --------------------------------------------------------------------------
# public objects
# --------------------------------------------------------------------------

@dataclass
class CompiledKernel:
    """A kernel lowered to generated Python closures.

    ``sub_fns`` is indexed like ``WarpExec._subfn_by_id``; a ``None``
    entry means that subfunction fell back to the tree-walker.
    """

    kernel: KernelIR
    body_fn: Optional[Callable]
    sub_fns: list
    source: str


def compile_kernel(kernel: KernelIR) -> CompiledKernel:
    """Lower ``kernel`` to closures; raises :class:`UnsupportedKernel`."""
    return _KernelCompiler(kernel).compile()


class CompiledKernelCache:
    """Launch-level memoization keyed on (kernel image id, param dtypes).

    Shared by every engine a driver creates, so the benchmark steady
    state (same image, thousands of launches) compiles exactly once.
    Kernels the compiler rejects are cached as ``None`` (permanent
    tree-walk fallback, counted in ``fallbacks``).

    ``max_entries`` bounds the cache with LRU eviction.  A standalone run
    launches a handful of kernels, so the default is unbounded; a
    long-lived driver (the serving runtime) sets a bound matched to its
    program population, and an evicted kernel simply recompiles on its
    next launch.
    """

    def __init__(self, max_entries: Optional[int] = None):
        self._cache: dict = {}
        self.max_entries = max_entries
        self.compiled = 0
        self.fallbacks = 0
        self.hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._cache)

    def get(self, kernel: KernelIR) -> Optional[CompiledKernel]:
        key = (id(kernel), tuple(p.dtype for p in kernel.params))
        try:
            entry = self._cache.pop(key)
        except KeyError:
            pass
        else:
            self.hits += 1
            self._cache[key] = entry        # LRU touch (re-insertion order)
            return entry[1]
        try:
            ck = compile_kernel(kernel)
            self.compiled += 1
        except Exception:
            ck = None
            self.fallbacks += 1
        if (self.max_entries is not None
                and len(self._cache) >= self.max_entries):
            self._cache.pop(next(iter(self._cache)))
            self.evictions += 1
        # keep a reference to the kernel so its id() cannot be recycled
        self._cache[key] = (kernel, ck)
        return ck


class CompiledWarpExec(WarpExec):
    """WarpExec that runs compiled closures, with per-function fallback
    to the inherited tree-walker."""

    def __init__(self, compiled: CompiledKernel, *args):
        super().__init__(*args)
        self._compiled = compiled

    def run_kernel(self):
        fn = self._compiled.body_fn
        if fn is None:
            yield from self.run_activation(self.kernel.body, self.valid.copy())
        else:
            yield from fn(self, self.valid)
        self.done = True

    def call_subfunction(self, fid: int, args: list, mask: np.ndarray):
        sub_fns = self._compiled.sub_fns
        fn = sub_fns[fid] if 0 <= fid < len(sub_fns) else None
        if fn is None:
            yield from WarpExec.call_subfunction(self, fid, args, mask)
            return
        self._arg_stack.append(args)
        try:
            yield from fn(self, mask)
        finally:
            self._arg_stack.pop()
