"""Warp-lockstep functional engine for the simulated Maxwell GPU.

* :mod:`repro.cuda.sim.coalesce` — memory-transaction model (32-byte
  segments per warp access, Maxwell-style).
* :mod:`repro.cuda.sim.warp` — executes structured IR over 32 numpy lanes
  with divergence masks; generator-based so warps can suspend at named
  barriers and spin loops.
* :mod:`repro.cuda.sim.engine` — block scheduler (named barriers, shared
  memory, deadlock detection) and the kernel-launch entry point.
"""

from repro.cuda.sim.engine import FunctionalEngine, KernelStats, LaunchError

__all__ = ["FunctionalEngine", "KernelStats", "LaunchError"]
