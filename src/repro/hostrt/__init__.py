"""OMPi host runtime (``ort``).

The translated host program is plain C with calls into this runtime:

* data-environment management per device (``ort_map``/``ort_unmap``/
  ``ort_update_*`` — OpenMP ``map`` semantics with reference counting,
  :mod:`repro.hostrt.mapping`);
* kernel offloading (argument marshalling + the cudadev host module's
  three-phase launch, :mod:`repro.hostrt.cudadev_host`);
* host-side thread teams for ``parallel`` outside target regions
  (:mod:`repro.hostrt.team`);
* the host ``omp_*`` API (:mod:`repro.hostrt.api`), including
  ``omp_get_wtime`` on the virtual clock.

Devices are plugin modules behind a fixed interface
(:mod:`repro.hostrt.devices`), exactly as the paper describes: the host
part of a module is loaded on demand and fully initialises its device
lazily, at the first kernel offload.
"""

from repro.hostrt.ort import Ort

__all__ = ["Ort"]
