"""Host-side reduction combine: opcodes, typecodes and the fixed-order fold.

The deterministic reduction pipeline splits the combine across the
offload boundary: each team reduces its threads with a warp-shuffle +
shared-memory tree and writes one partial into its global-team-id slot of
a per-launch partials buffer; the *cross-team* combine happens here, on
copy-back, folding the slots in ascending team order starting from the
variable's incoming host value.  Because the fold order is a pure
function of the iteration space — never of warp scheduling, device count
or shard layout — the result is bit-identical to the sequential loop and
stable across ``shard(n)`` splits.

The generated host code communicates a reduction to the runtime as
``ort_red_scalar(dev, &x, opcode, typecode)``; both small-integer tables
live here so the compiler (``repro.ompi.xform_host``) and the runtime
(``repro.hostrt.ort``) agree by construction.
"""

from __future__ import annotations

import numpy as np

#: reduction operator -> opcode carried in the generated ort_red_scalar call
RED_OPS: dict[str, int] = {
    "+": 0, "-": 1, "*": 2, "max": 3, "min": 4, "&": 5, "|": 6, "^": 7,
}

#: opcode -> operator spelling (diagnostics)
RED_OP_NAMES = {code: op for op, code in RED_OPS.items()}

#: typecode table: index -> numpy dtype of the reduction scalar
_TYPECODE_DTYPES = tuple(np.dtype(n) for n in (
    "int8", "uint8", "int16", "uint16", "int32", "uint32",
    "int64", "uint64", "float32", "float64",
))
_DTYPE_TYPECODES = {dt: i for i, dt in enumerate(_TYPECODE_DTYPES)}


def typecode_of(dtype: np.dtype) -> int:
    """The wire typecode for a reduction scalar's dtype."""
    try:
        return _DTYPE_TYPECODES[np.dtype(dtype)]
    except KeyError:
        raise ValueError(
            f"no reduction typecode for dtype {dtype!r}") from None


def dtype_of(typecode: int) -> np.dtype:
    """The numpy dtype a wire typecode denotes."""
    if not 0 <= typecode < len(_TYPECODE_DTYPES):
        raise ValueError(f"unknown reduction typecode {typecode}")
    return _TYPECODE_DTYPES[typecode]


def combine(opcode: int, acc, val, dtype: np.dtype):
    """One fold step ``acc OP val`` in the scalar's own dtype.

    ``-`` merges additively: the device accumulators start at 0 and the
    loop body subtracts, so each partial already carries the negated
    contribution (OpenMP's subtraction-reduction rule)."""
    t = dtype.type
    with np.errstate(over="ignore", invalid="ignore"):
        if opcode in (0, 1):            # + and -
            return t(acc + val)
        if opcode == 2:                 # *
            return t(acc * val)
        if opcode == 3:                 # max — mirrors the device ternary
            return acc if acc > t(val) else t(val)   # (a > b) ? a : b
        if opcode == 4:                 # min
            return acc if acc < t(val) else t(val)   # (a < b) ? a : b
        if opcode == 5:                 # &
            return t(acc & t(val))
        if opcode == 6:                 # |
            return t(acc | t(val))
        if opcode == 7:                 # ^
            return t(acc ^ t(val))
    raise ValueError(f"unknown reduction opcode {opcode}")


def fold_partials(opcode: int, initial, partials: np.ndarray,
                  dtype: np.dtype):
    """Fold a partials vector in index (== global team) order onto the
    variable's incoming value — THE fixed combine order of the pipeline."""
    acc = dtype.type(initial)
    for val in partials:
        acc = combine(opcode, acc, val, dtype)
    return acc
