"""Host-side thread teams (parallel regions executing on the ARM A57).

The reproduction's host "threads" are simulated: a parallel region's
outlined function runs once per team member, sequentially, each run
seeing its own ``omp_get_thread_num``.  For the data-parallel regions the
benchmarks use (independent iterations, worksharing loops) this is
semantically exact; mid-region cross-thread synchronisation (``barrier``
inside a host parallel region) cannot be honoured under sequential
simulation and raises, so misuse is loud rather than silently wrong.
Device-side regions are unaffected (the GPU engine schedules real
concurrent warps).
"""

from __future__ import annotations

from dataclasses import dataclass, field


class HostTeamError(Exception):
    pass


@dataclass
class TeamCtx:
    nthreads: int
    tid: int = 0


class TeamStack:
    def __init__(self, default_nthreads: int = 4):
        self.default_nthreads = default_nthreads
        self.stack: list[TeamCtx] = []

    @property
    def current(self) -> TeamCtx | None:
        return self.stack[-1] if self.stack else None

    def thread_num(self) -> int:
        ctx = self.current
        return ctx.tid if ctx else 0

    def num_threads(self) -> int:
        ctx = self.current
        return ctx.nthreads if ctx else 1

    def run_parallel(self, machine, fn_name: str, args: list,
                     nthreads: int | None) -> None:
        n = nthreads if nthreads and nthreads > 0 else self.default_nthreads
        for tid in range(n):
            self.stack.append(TeamCtx(n, tid))
            try:
                machine.call(fn_name, *args)
            finally:
                self.stack.pop()

    def static_bounds(self, lo: int, hi: int) -> tuple[int, int]:
        """Contiguous static split of [lo, hi) for the calling thread."""
        ctx = self.current
        if ctx is None:
            return lo, hi
        n = max(hi - lo, 0)
        chunk = (n + ctx.nthreads - 1) // ctx.nthreads
        tlo = lo + ctx.tid * chunk
        return tlo, min(tlo + chunk, hi)
