"""Host part of the cudadev module (paper §4.2.1).

Discovery happens at application startup; *full* initialisation is lazy —
"a device is fully initialized only when the first kernel is about to be
offloaded to this particular device": cuInit, hardware attribute capture,
primary context creation.

Kernel launch is the paper's three phases:

1. **loading** — locate the kernel's image (OMPi emits one kernel file
   per target region); a PTX image is JIT-compiled and linked with the
   device library (disk cache consulted), a cubin loads directly;
2. **parameter preparation** — arguments arriving from the data
   environment are host addresses already translated to device addresses,
   scalars pass by value; the module builds the final parameter set;
3. **launch** — grid/block dimensions are set and ``cuLaunchKernel`` runs.

The module is also where the runtime's **fault recovery** lives (see
DESIGN.md §"Fault model and recovery"): every driver call the module
issues runs under its :class:`~repro.faults.recovery.RecoveryPolicy` —
transient transfer/launch failures retry with exponential backoff (on the
virtual clock, so chaos runs stay deterministic), allocation failures
evict cached modules and idle pool blocks before one more attempt, and a
lost device (unavailable at init, or a sticky poisoned context) marks the
module ``lost`` so the owning Ort reroutes every later operation to the
initial (host) device.
"""

from __future__ import annotations

from typing import Optional

from repro.cuda.device import DeviceProperties, JETSON_NANO_GPU
from repro.cuda.driver import CudaDriver, CUfunction
from repro.cuda.errors import CudaError, CUresult
from repro.cuda.ptx.jit import JitCache
from repro.devices.throughput import ThroughputTracker
from repro.faults.injector import resolve_faults
from repro.faults.recovery import (
    DeviceLost, OffloadFailure, is_lost, is_transient, resolve_recovery,
)
from repro.hostrt.devices import DeviceModule
from repro.mem import LinearMemory
from repro.prof.ompt import OmptRegistry


class CudadevModule(DeviceModule):
    name = "cudadev"

    def __init__(
        self,
        host_mem: Optional[LinearMemory],
        device: DeviceProperties = JETSON_NANO_GPU,
        clock=None,
        jit_cache: Optional[JitCache] = None,
        launch_mode: str = "auto",
        fastpath: Optional[str] = None,
        profile=None,
        faults=None,
        recovery=None,
        ordinal: int = 0,
        ompt=None,
        gmem_base: Optional[int] = None,
        intrinsics=None,
        backend=None,
    ):
        self.host_mem = host_mem
        #: this module's position in the owning Ort's device registry
        self.ordinal = int(ordinal)
        #: the DeviceBackend this module realises (None on the legacy
        #: homogeneous path, where every module is the same Nano)
        self.backend = backend
        #: observed blocks/modelled-second, seeding the shard planner;
        #: calibrated hint first, refined after every launch
        hint = (backend.calibrated_throughput() if backend is not None
                else 0.0)
        self.throughput = ThroughputTracker(hint=hint)
        self.recovery = resolve_recovery(recovery)
        # The module — not the raw driver — resolves the fault spec (and
        # the REPRO_FAULTS environment variable): faults model *hardware*
        # misbehaving under a runtime that recovers, so they only make
        # sense on driver calls that run under this module's policy.
        driver_kwargs = {}
        if gmem_base is not None:
            driver_kwargs["gmem_base"] = gmem_base
        self.driver = CudaDriver(device, clock=clock, jit_cache=jit_cache,
                                 launch_mode=launch_mode, fastpath=fastpath,
                                 profile=profile, intrinsics=intrinsics,
                                 faults=resolve_faults(faults),
                                 **driver_kwargs)
        #: OMPT-style tool callbacks (target-begin/end, data-op, submit);
        #: shared with the owning Ort so tools can hook either layer
        self.ompt = ompt if ompt is not None else OmptRegistry()
        self._initialized = False
        #: permanent device loss: every later operation must go to the host
        self.lost = False
        self.lost_cause: Optional[Exception] = None
        #: kernel name -> image (bytes/PtxImage/CubinImage), the "kernel
        #: files" OMPi locates at runtime
        self._images: dict[str, object] = {}
        #: kernel name -> (module handle, CUfunction) after loading phase
        self._loaded: dict[str, CUfunction] = {}
        #: module handles exempt from OOM eviction (declare-target globals
        #: hold permanent device addresses into them)
        self._pinned: set[int] = set()
        self.attributes: dict[str, int] = {}
        self.stdout: list[str] = []
        #: stream all module operations route through while a deferred
        #: (``target nowait``) task body is executing; None = default
        #: stream, i.e. the host-synchronous path
        self.current_stream: Optional[int] = None
        #: fallback stream when no task stream is active: a serving
        #: runtime points this at the executing request's stream so
        #: concurrent sessions overlap instead of serialising on the
        #: default stream; None = the classic host-synchronous path
        self.base_stream: Optional[int] = None
        #: last-resort allocation-pressure callback ``hook(nbytes) ->
        #: freed``: after module-level eviction still leaves an OOM, the
        #: owner (the serving runtime) may release state it manages
        #: elsewhere — idle sessions' parked device buffers — before the
        #: final retry.  None: no owner-level pressure valve.
        self.evict_hook = None
        #: lazily-created stream sharded launches run on, so shards on
        #: different devices overlap instead of serialising on stream 0
        self._shard_stream: Optional[int] = None
        # -- small-mapping pool state (see mem_alloc) --------------------
        self._arena_free: list[int] = []
        self._arena_live: set[int] = set()
        self._arena_addrs: set[int] = set()
        self._arena_blocks: list[int] = []

    # -- lifecycle ----------------------------------------------------------------
    def lease_host(self, host_mem: Optional[LinearMemory]) -> None:
        """Rebind the host memory this module's transfers read and write.

        A long-lived serving runtime owns the module and leases it to one
        client machine at a time; execution is cooperative (single host
        thread), so every functional host access of a request completes
        before the lease moves on.  Standalone runs bind once at
        construction and never call this."""
        self.host_mem = host_mem

    def _route_stream(self) -> Optional[int]:
        """The stream module operations ride on: an active nowait-task
        stream wins, else the leased session/base stream, else None (the
        host-synchronous default-stream path)."""
        if self.current_stream is not None:
            return self.current_stream
        return self.base_stream

    def initialize(self) -> None:
        if self._initialized:
            return
        if self.lost:
            raise DeviceLost(str(self.lost_cause))
        drv = self.driver
        try:
            drv.cuInit(0)
            ndev = drv.cuDeviceGetCount()
            if ndev < 1:  # pragma: no cover - simulator always has one
                raise CudaError(CUresult.CUDA_ERROR_NO_DEVICE,
                                "no CUDA device")
            dev = drv.cuDeviceGet(0)
            # capture hardware characteristics into module data structures
            for attr in ("MAX_THREADS_PER_BLOCK", "WARP_SIZE",
                         "MULTIPROCESSOR_COUNT", "MAX_SHARED_MEMORY_PER_BLOCK",
                         "CLOCK_RATE", "COMPUTE_CAPABILITY_MAJOR",
                         "COMPUTE_CAPABILITY_MINOR"):
                self.attributes[attr] = drv.cuDeviceGetAttribute(attr, dev)
            ctx = drv.cuDevicePrimaryCtxRetain(dev)
            drv.cuCtxSetCurrent(ctx)
        except CudaError as exc:
            if is_lost(exc):
                self._mark_lost(exc)
                raise DeviceLost(str(exc)) from exc
            raise
        self._initialized = True

    @property
    def initialized(self) -> bool:
        return self._initialized

    def _ensure_init(self) -> None:
        if self.lost:
            raise DeviceLost(str(self.lost_cause))
        if not self._initialized:
            self.initialize()

    # -- fault recovery -----------------------------------------------------------
    @property
    def faultlog(self):
        """The driver's fault log: injections *and* recovery actions."""
        return self.driver.faultlog

    @property
    def fault_stats(self) -> dict:
        """Counters by lifecycle op (inject/retry/evict/fallback/...)."""
        return dict(self.driver.faultlog.counters)

    def _mark_lost(self, exc: Exception) -> None:
        if not self.lost:
            self.lost = True
            self.lost_cause = exc
            self.faultlog.note("device_lost", detail=str(exc))

    def _with_retries(self, api: str, op):
        """Run one driver operation under the recovery policy.

        Transient failures (transfer/launch/timeout, non-sticky) retry up
        to ``max_retries`` times with exponential backoff; the backoff is
        simulated time, so recovery is visible on the modelled timeline
        and chaos runs stay deterministic.  Lost-device failures mark the
        module lost and raise :class:`DeviceLost` — the injector raises
        *before* any driver side effect, so a retry replays cleanly."""
        delay = self.recovery.backoff_s
        attempt = 0
        while True:
            try:
                return op()
            except CudaError as exc:
                if is_lost(exc):
                    self._mark_lost(exc)
                    raise DeviceLost(str(exc)) from exc
                if not is_transient(exc) or attempt >= self.recovery.max_retries:
                    raise
                attempt += 1
                self.faultlog.note("retry", api=api, fault=exc.result.name,
                                   attempt=attempt,
                                   detail=f"backoff {delay:g}s")
                self.driver.clock.advance(delay)
                delay *= self.recovery.backoff_factor

    def _evict(self) -> int:
        """Drop recreatable device memory under OOM pressure: cached
        (non-pinned) kernel modules — they reload from their registered
        images on the next launch — and pool blocks with no live slot.
        Returns the number of bytes released."""
        before = self.driver.gmem.bytes_in_use
        handles: dict[int, list[str]] = {}
        for kname, fn in self._loaded.items():
            if fn.module_handle not in self._pinned:
                handles.setdefault(fn.module_handle, []).append(kname)
        for handle, knames in handles.items():
            self.driver.cuModuleUnload(handle)
            for kname in knames:
                del self._loaded[kname]
        if not self._arena_live and self._arena_blocks:
            for base in self._arena_blocks:
                self.driver.cuMemFree(base)
            self._arena_blocks.clear()
            self._arena_free.clear()
            self._arena_addrs.clear()
        return before - self.driver.gmem.bytes_in_use

    def _cu_alloc(self, size: int) -> int:
        """cuMemAlloc under the recovery policy: on OOM, evict and try
        once more (matching the real runtime's behaviour of flushing its
        caches before reporting allocation failure to the program)."""
        try:
            return self._with_retries(
                "cuMemAlloc", lambda: self.driver.cuMemAlloc(size))
        except CudaError as exc:
            if (exc.result != CUresult.CUDA_ERROR_OUT_OF_MEMORY
                    or not self.recovery.oom_evict):
                raise
            freed = self._evict()
            self.faultlog.note(
                "evict", api="cuMemAlloc", nbytes=freed,
                detail=f"OOM on {size}-byte alloc: evicted {freed} bytes")
            try:
                return self._with_retries(
                    "cuMemAlloc", lambda: self.driver.cuMemAlloc(size))
            except CudaError as exc2:
                if (exc2.result != CUresult.CUDA_ERROR_OUT_OF_MEMORY
                        or self.evict_hook is None):
                    raise
                # module-level eviction was not enough: let the owner
                # (the serving runtime) shed idle-session device state
                freed = int(self.evict_hook(size))
                if freed <= 0:
                    raise
                self.faultlog.note(
                    "evict", api="cuMemAlloc", nbytes=freed,
                    detail=f"OOM on {size}-byte alloc: owner evicted "
                           f"{freed} bytes of idle session state")
                return self._with_retries(
                    "cuMemAlloc", lambda: self.driver.cuMemAlloc(size))

    def pin_module(self, kernel_name: str) -> None:
        """Exempt a loaded kernel's module from OOM eviction (used for
        modules that own ``declare target`` globals: the data environment
        holds permanent device addresses into them)."""
        fn = self._loaded.get(kernel_name)
        if fn is not None:
            self._pinned.add(fn.module_handle)

    # -- memory + transfers ----------------------------------------------------------
    #: small mappings (scalars) come from a pooled arena so launch-heavy
    #: programs don't pay a cuMemAlloc per mapped scalar (the real runtime
    #: pools small device allocations the same way)
    _ARENA_THRESHOLD = 64
    _ARENA_SLOT = 64
    _ARENA_BLOCK = 4096

    def mem_alloc(self, size: int) -> int:
        self._ensure_init()
        if size <= self._ARENA_THRESHOLD:
            if not self._arena_free:
                base = self._cu_alloc(self._ARENA_BLOCK)
                slots = [base + i * self._ARENA_SLOT
                         for i in range(self._ARENA_BLOCK // self._ARENA_SLOT)]
                self._arena_blocks.append(base)
                self._arena_free.extend(slots)
                self._arena_addrs.update(slots)
            addr = self._arena_free.pop()
            self._arena_live.add(addr)
            return addr
        return self._cu_alloc(size)

    def trim_arena(self) -> int:
        """Return fully-idle arena blocks to the driver; returns the
        bytes released.  A long-lived serving process calls this at
        session teardown / eviction so pooled scalar slots don't pin
        driver memory forever; standalone runs never need it (the pool
        dies with the process)."""
        if self.lost or not self._arena_blocks:
            return 0
        free_set = set(self._arena_free)
        per_block = self._ARENA_BLOCK // self._ARENA_SLOT
        keep: list[int] = []
        released = 0
        for base in self._arena_blocks:
            slots = [base + i * self._ARENA_SLOT for i in range(per_block)]
            if all(s in free_set for s in slots):
                for s in slots:
                    free_set.discard(s)
                    self._arena_addrs.discard(s)
                self._with_retries(
                    "cuMemFree", lambda b=base: self.driver.cuMemFree(b))
                released += self._ARENA_BLOCK
            else:
                keep.append(base)
        if released:
            self._arena_blocks = keep
            self._arena_free = [a for a in self._arena_free if a in free_set]
        return released

    def mem_free(self, addr: int) -> None:
        if addr in self._arena_addrs:
            if addr not in self._arena_live:
                raise CudaError(
                    CUresult.CUDA_ERROR_INVALID_VALUE,
                    f"double free of pooled device pointer {addr:#x}")
            self._arena_live.discard(addr)
            self._arena_free.append(addr)
            return
        if self.lost:
            raise DeviceLost(str(self.lost_cause))
        self._with_retries("cuMemFree", lambda: self.driver.cuMemFree(addr))

    def write(self, dev_addr: int, host_addr: int, size: int) -> None:
        self._ensure_init()
        if self.ompt.active:
            self.ompt.dispatch("data_op", optype="transfer_to",
                               device=self.ordinal,
                               addr=host_addr, nbytes=size)
        data = self.host_mem.copy_out(host_addr, size)
        stream = self._route_stream()
        if stream is not None:
            self._with_retries(
                "cuMemcpyHtoDAsync",
                lambda: self.driver.cuMemcpyHtoDAsync(dev_addr, data,
                                                      stream))
        else:
            self._with_retries(
                "cuMemcpyHtoD",
                lambda: self.driver.cuMemcpyHtoD(dev_addr, data))

    def read(self, host_addr: int, dev_addr: int, size: int) -> None:
        if self.ompt.active:
            self.ompt.dispatch("data_op", optype="transfer_from",
                               device=self.ordinal,
                               addr=host_addr, nbytes=size)
        stream = self._route_stream()
        if stream is not None:
            data = self._with_retries(
                "cuMemcpyDtoHAsync",
                lambda: self.driver.cuMemcpyDtoHAsync(dev_addr, size,
                                                      stream))
        else:
            data = self._with_retries(
                "cuMemcpyDtoH",
                lambda: self.driver.cuMemcpyDtoH(dev_addr, size))
        self.host_mem.copy_in(host_addr, data)

    def peer_copy(self, dst_module: "CudadevModule", dst_addr: int,
                  src_addr: int, size: int) -> None:
        """``cuMemcpyPeer`` under the recovery policy: move ``size`` bytes
        from this device's memory to ``dst_module``'s, without staging
        through the host data environment (``target update``-mediated
        device-to-device exchange)."""
        self._ensure_init()
        dst_module._ensure_init()
        if self.ompt.active:
            self.ompt.dispatch("data_op", optype="transfer_peer",
                               device=self.ordinal,
                               addr=dst_addr, nbytes=size)
        routed = self._route_stream()
        stream = routed if routed is not None else 0
        self._with_retries(
            "cuMemcpyPeer",
            lambda: self.driver.cuMemcpyPeer(dst_addr, dst_module.driver,
                                             src_addr, size, stream=stream))

    @property
    def shard_weight(self) -> float:
        """Relative throughput weight the shard planner uses for this
        device: observed kernel rate when available, else the backend's
        calibrated hint, else 1.0 (→ the uniform/legacy split)."""
        return self.throughput.weight

    @property
    def shard_stream(self) -> int:
        """The per-device stream sharded launches are placed on (created
        on first use; non-default so shards across devices overlap)."""
        if self._shard_stream is None:
            self._ensure_init()
            self._shard_stream = self._with_retries(
                "cuStreamCreate", lambda: self.driver.cuStreamCreate())
        return self._shard_stream

    # -- kernels -------------------------------------------------------------------
    def register_kernel_image(self, kernel_name: str, image) -> None:
        old = self._images.get(kernel_name)
        if old is not None and old is not image:
            # a long-lived registry re-registering a kernel name with a
            # different image (two programs sharing a name): drop the
            # stale loaded function so the next launch loads the new image
            fn = self._loaded.pop(kernel_name, None)
            if (fn is not None and not self.lost
                    and fn.module_handle not in self._pinned):
                try:
                    self.driver.cuModuleUnload(fn.module_handle)
                except CudaError:
                    pass
        self._images[kernel_name] = image

    def _loading_phase(self, kernel_name: str) -> CUfunction:
        fn = self._loaded.get(kernel_name)
        if fn is not None:
            return fn
        image = self._images.get(kernel_name)
        if image is None:
            raise CudaError(
                CUresult.CUDA_ERROR_NOT_FOUND,
                f"kernel file for {kernel_name!r} not found "
                "(was the kernel registered with the module?)"
            )
        handle = self._with_retries(
            "cuModuleLoadData",
            lambda: self.driver.cuModuleLoadData(image))
        fn = self.driver.cuModuleGetFunction(handle, kernel_name)
        self._loaded[kernel_name] = fn
        return fn

    def offload(self, kernel_name: str, args: list, teams, threads,
                block_range=None) -> None:
        self._ensure_init()
        try:
            fn = self._loading_phase(kernel_name)       # phase 1
        except DeviceLost as exc:
            raise OffloadFailure(kernel_name, exc, device_lost=True) from exc
        params = list(args)                             # phase 2 (translated
                                                        # by the data env)
        gx, gy, gz = teams
        bx, by, bz = threads                            # phase 3
        routed = self._route_stream()
        stream = routed if routed is not None else 0
        if self.ompt.active:
            self.ompt.dispatch("submit", kernel=kernel_name, teams=teams,
                               threads=threads, stream=stream)
        try:
            self._with_retries(
                "cuLaunchKernel",
                lambda: self.driver.cuLaunchKernel(
                    fn, gx, gy, gz, bx, by, bz, shared_mem_bytes=0,
                    stream=stream, kernel_params=params,
                    block_range=block_range,
                ))
        except DeviceLost as exc:
            raise OffloadFailure(kernel_name, exc, device_lost=True) from exc
        except CudaError as exc:
            # recovery budget exhausted (or an injected non-transient
            # failure): the owning Ort decides on host fallback.  Genuine
            # program errors (unknown kernel, bad image/handle) propagate —
            # fallback must not mask bugs.
            if exc.injected or is_transient(exc):
                raise OffloadFailure(kernel_name, exc) from exc
            raise
        if block_range is not None:
            blocks = max(0, int(block_range[1]) - int(block_range[0]))
        else:
            blocks = gx * gy * gz
        self.throughput.note(blocks, self.driver.last_kernel_seconds)
        if self.driver.stdout:
            self.stdout.extend(self.driver.stdout)
            self.driver.stdout.clear()
