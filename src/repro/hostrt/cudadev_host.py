"""Host part of the cudadev module (paper §4.2.1).

Discovery happens at application startup; *full* initialisation is lazy —
"a device is fully initialized only when the first kernel is about to be
offloaded to this particular device": cuInit, hardware attribute capture,
primary context creation.

Kernel launch is the paper's three phases:

1. **loading** — locate the kernel's image (OMPi emits one kernel file
   per target region); a PTX image is JIT-compiled and linked with the
   device library (disk cache consulted), a cubin loads directly;
2. **parameter preparation** — arguments arriving from the data
   environment are host addresses already translated to device addresses,
   scalars pass by value; the module builds the final parameter set;
3. **launch** — grid/block dimensions are set and ``cuLaunchKernel`` runs.
"""

from __future__ import annotations

from typing import Optional

from repro.cuda.device import DeviceProperties, JETSON_NANO_GPU
from repro.cuda.driver import CudaDriver, CUfunction
from repro.cuda.errors import CudaError
from repro.cuda.ptx.jit import JitCache
from repro.hostrt.devices import DeviceModule
from repro.mem import LinearMemory
from repro.prof.ompt import OmptRegistry


class CudadevModule(DeviceModule):
    name = "cudadev"

    def __init__(
        self,
        host_mem: LinearMemory,
        device: DeviceProperties = JETSON_NANO_GPU,
        clock=None,
        jit_cache: Optional[JitCache] = None,
        launch_mode: str = "auto",
        fastpath: Optional[str] = None,
        profile=None,
    ):
        self.host_mem = host_mem
        self.driver = CudaDriver(device, clock=clock, jit_cache=jit_cache,
                                 launch_mode=launch_mode, fastpath=fastpath,
                                 profile=profile)
        #: OMPT-style tool callbacks (target-begin/end, data-op, submit);
        #: shared with the owning Ort so tools can hook either layer
        self.ompt = OmptRegistry()
        self._initialized = False
        #: kernel name -> image (bytes/PtxImage/CubinImage), the "kernel
        #: files" OMPi locates at runtime
        self._images: dict[str, object] = {}
        #: kernel name -> (module handle, CUfunction) after loading phase
        self._loaded: dict[str, CUfunction] = {}
        self.attributes: dict[str, int] = {}
        self.stdout: list[str] = []
        #: stream all module operations route through while a deferred
        #: (``target nowait``) task body is executing; None = default
        #: stream, i.e. the host-synchronous path
        self.current_stream: Optional[int] = None

    # -- lifecycle ----------------------------------------------------------------
    def initialize(self) -> None:
        if self._initialized:
            return
        drv = self.driver
        drv.cuInit(0)
        ndev = drv.cuDeviceGetCount()
        if ndev < 1:
            raise CudaError(2, "no CUDA device")  # pragma: no cover
        dev = drv.cuDeviceGet(0)
        # capture hardware characteristics into module data structures
        for attr in ("MAX_THREADS_PER_BLOCK", "WARP_SIZE",
                     "MULTIPROCESSOR_COUNT", "MAX_SHARED_MEMORY_PER_BLOCK",
                     "CLOCK_RATE", "COMPUTE_CAPABILITY_MAJOR",
                     "COMPUTE_CAPABILITY_MINOR"):
            self.attributes[attr] = drv.cuDeviceGetAttribute(attr, dev)
        ctx = drv.cuDevicePrimaryCtxRetain(dev)
        drv.cuCtxSetCurrent(ctx)
        self._initialized = True

    @property
    def initialized(self) -> bool:
        return self._initialized

    def _ensure_init(self) -> None:
        if not self._initialized:
            self.initialize()

    # -- memory + transfers ----------------------------------------------------------
    #: small mappings (scalars) come from a pooled arena so launch-heavy
    #: programs don't pay a cuMemAlloc per mapped scalar (the real runtime
    #: pools small device allocations the same way)
    _ARENA_THRESHOLD = 64
    _ARENA_SLOT = 64
    _ARENA_BLOCK = 4096

    def mem_alloc(self, size: int) -> int:
        self._ensure_init()
        if size <= self._ARENA_THRESHOLD:
            free = self.__dict__.setdefault("_arena_free", [])
            if not free:
                base = self.driver.cuMemAlloc(self._ARENA_BLOCK)
                free.extend(base + i * self._ARENA_SLOT
                            for i in range(self._ARENA_BLOCK // self._ARENA_SLOT))
            addr = free.pop()
            self.__dict__.setdefault("_arena_addrs", set()).add(addr)
            return addr
        return self.driver.cuMemAlloc(size)

    def mem_free(self, addr: int) -> None:
        arena = self.__dict__.get("_arena_addrs")
        if arena and addr in arena:
            self.__dict__["_arena_free"].append(addr)
            return
        self.driver.cuMemFree(addr)

    def write(self, dev_addr: int, host_addr: int, size: int) -> None:
        self._ensure_init()
        if self.ompt.active:
            self.ompt.dispatch("data_op", optype="transfer_to", device=0,
                               addr=host_addr, nbytes=size)
        data = self.host_mem.copy_out(host_addr, size)
        if self.current_stream is not None:
            self.driver.cuMemcpyHtoDAsync(dev_addr, data, self.current_stream)
        else:
            self.driver.cuMemcpyHtoD(dev_addr, data)

    def read(self, host_addr: int, dev_addr: int, size: int) -> None:
        if self.ompt.active:
            self.ompt.dispatch("data_op", optype="transfer_from", device=0,
                               addr=host_addr, nbytes=size)
        if self.current_stream is not None:
            data = self.driver.cuMemcpyDtoHAsync(dev_addr, size,
                                                 self.current_stream)
        else:
            data = self.driver.cuMemcpyDtoH(dev_addr, size)
        self.host_mem.copy_in(host_addr, data)

    # -- kernels -------------------------------------------------------------------
    def register_kernel_image(self, kernel_name: str, image) -> None:
        self._images[kernel_name] = image

    def _loading_phase(self, kernel_name: str) -> CUfunction:
        fn = self._loaded.get(kernel_name)
        if fn is not None:
            return fn
        image = self._images.get(kernel_name)
        if image is None:
            raise CudaError(
                500, f"kernel file for {kernel_name!r} not found "
                "(was the kernel registered with the module?)"
            )
        handle = self.driver.cuModuleLoadData(image)
        fn = self.driver.cuModuleGetFunction(handle, kernel_name)
        self._loaded[kernel_name] = fn
        return fn

    def offload(self, kernel_name: str, args: list, teams, threads) -> None:
        self._ensure_init()
        fn = self._loading_phase(kernel_name)           # phase 1
        params = list(args)                             # phase 2 (translated
                                                        # by the data env)
        gx, gy, gz = teams
        bx, by, bz = threads                            # phase 3
        stream = (self.current_stream if self.current_stream is not None
                  else 0)
        if self.ompt.active:
            self.ompt.dispatch("submit", kernel=kernel_name, teams=teams,
                               threads=threads, stream=stream)
        self.driver.cuLaunchKernel(
            fn, gx, gy, gz, bx, by, bz, shared_mem_bytes=0,
            stream=stream, kernel_params=params,
        )
        if self.driver.stdout:
            self.stdout.extend(self.driver.stdout)
            self.driver.stdout.clear()
