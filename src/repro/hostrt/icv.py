"""Internal control variables (OpenMP 4.5 subset used by the runtime)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class ICVs:
    #: host threads (the Jetson Nano's quad-core A57)
    nthreads_var: int = 4
    dyn_var: bool = False
    nest_var: bool = False
    #: default target device (set to the GPU when a cudadev module exists)
    default_device_var: int = 1
    device_num_var: int = 0
    max_active_levels_var: int = 1
    run_sched_var: tuple[str, int] = ("static", 0)
    stacksize: int = 1 << 20
    cancel_var: bool = False
