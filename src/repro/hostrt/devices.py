"""Device-module interface and registry (paper §4.2).

"the runtime system of ompi is organized as a collection of modules, each
one implementing support for a particular device class ... Modules consist
of two parts: the host part and the device part.  The former enables the
host cpu to access any of the available module's devices through a fixed
interface and is loaded on demand as a plugin."

:class:`DeviceModule` is that fixed interface.  Two implementations ship:
the cudadev module (:mod:`repro.hostrt.cudadev_host`) and the initial
(host) device used for fallback execution.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional


class DeviceModule(ABC):
    """Fixed host-side interface every device module implements."""

    name: str = "device"

    @abstractmethod
    def initialize(self) -> None:
        """Full device initialisation (lazy: first offload only)."""

    @property
    @abstractmethod
    def initialized(self) -> bool: ...

    @abstractmethod
    def mem_alloc(self, size: int) -> int: ...

    @abstractmethod
    def mem_free(self, addr: int) -> None: ...

    @abstractmethod
    def write(self, dev_addr: int, host_addr: int, size: int) -> None:
        """Transfer host -> device."""

    @abstractmethod
    def read(self, host_addr: int, dev_addr: int, size: int) -> None:
        """Transfer device -> host."""

    @abstractmethod
    def offload(self, kernel_name: str, args: list, teams: tuple[int, int, int],
                threads: tuple[int, int, int]) -> None:
        """Launch an offloaded kernel with translated arguments."""

    @abstractmethod
    def register_kernel_image(self, kernel_name: str, image) -> None:
        """Make a compiled kernel file available to this device (OMPi keeps
        kernel binaries as separate files located at runtime, §3.3)."""

    def shutdown(self) -> None:  # pragma: no cover - optional
        pass


class HostDevice(DeviceModule):
    """The initial device.  ``target`` regions offloaded here execute the
    translator's host-fallback function directly on host memory: there is
    no separate address space, so mapping is the identity and transfers
    are no-ops (paper §2: "actual transfers may not be needed if the host
    and the device physically share memory")."""

    name = "host"

    def __init__(self, machine=None):
        self.machine = machine
        self._fallbacks: dict[str, str] = {}

    def initialize(self) -> None:
        pass

    @property
    def initialized(self) -> bool:
        return True

    def mem_alloc(self, size: int) -> int:
        # identity mapping: the "device address" is the host address; the
        # data env never sees this because Ort short-circuits host maps.
        raise NotImplementedError("host device uses the identity mapping")

    def mem_free(self, addr: int) -> None:
        raise NotImplementedError("host device uses the identity mapping")

    def write(self, dev_addr: int, host_addr: int, size: int) -> None:
        pass

    def read(self, host_addr: int, dev_addr: int, size: int) -> None:
        pass

    def register_kernel_image(self, kernel_name: str, image) -> None:
        pass

    def register_fallback(self, kernel_name: str, host_fn: str) -> None:
        self._fallbacks[kernel_name] = host_fn

    def offload(self, kernel_name: str, args: list, teams, threads) -> None:
        fn = self._fallbacks.get(kernel_name, kernel_name + "_hostfn")
        if self.machine is None:
            raise RuntimeError("host device has no interpreter attached")
        self.machine.call(fn, *args)
