"""Device data environments: OpenMP map semantics with reference counting.

Paper §2: ``map(to/from/tofrom/alloc)`` on ``target``-family constructs,
``target data`` enclosing multiple targets over one environment, the
stand-alone ``target enter/exit data`` and ``target update`` directives.

Entries are keyed by *host address* (the cudadev module "maintain[s] a
mapping of these parameters to their corresponding host addresses",
§4.2.1).  A lookup of any address inside a mapped range resolves to the
corresponding device address at the right offset, which is how array
sections and whole-array references interoperate.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional

MAP_ALLOC = 0
MAP_TO = 1
MAP_FROM = 2
MAP_TOFROM = 3
MAP_RELEASE = 4
MAP_DELETE = 5

MAP_TYPE_NAMES = {
    "alloc": MAP_ALLOC, "to": MAP_TO, "from": MAP_FROM,
    "tofrom": MAP_TOFROM, "release": MAP_RELEASE, "delete": MAP_DELETE,
}


class MappingError(Exception):
    pass


@dataclass
class MapEntry:
    host_addr: int
    size: int
    dev_addr: int
    refcount: int = 1
    #: insertion sequence number — interior lookups resolve overlapping
    #: ranges to the earliest-mapped entry, like the original linear scan
    seq: int = 0


class DataEnv:
    """One device's data environment, driven by a DeviceModule for the
    actual allocation/transfer operations."""

    def __init__(self, device_module):
        self.device = device_module
        self.entries: dict[int, MapEntry] = {}
        #: sorted start addresses of all live entries (an address-interval
        #: index: lookups bisect here instead of scanning every entry)
        self._starts: list[int] = []
        #: high-water mark of entry sizes — an upper bound that lets the
        #: leftward walk in find() stop as soon as no remaining entry could
        #: reach the queried address
        self._max_size = 0
        self._next_seq = 0

    # -- lookup ---------------------------------------------------------------
    def find(self, host_addr: int) -> Optional[MapEntry]:
        entry = self.entries.get(host_addr)
        if entry is not None:
            return entry
        # interior address: candidates are entries starting in
        # (host_addr - max_size, host_addr]; among overlapping matches the
        # earliest-mapped one wins (insertion order, as the scan had it)
        i = bisect.bisect_right(self._starts, host_addr) - 1
        lo = host_addr - self._max_size
        best: Optional[MapEntry] = None
        while i >= 0:
            start = self._starts[i]
            if start <= lo:
                break
            e = self.entries[start]
            if start + e.size > host_addr and (
                    best is None or e.seq < best.seq):
                best = e
            i -= 1
        return best

    def translate(self, host_addr: int) -> int:
        """Host address -> device address (must be mapped)."""
        entry = self.find(host_addr)
        if entry is None:
            raise MappingError(
                f"host address {host_addr:#x} is not present in the device "
                "data environment (missing map clause?)"
            )
        return entry.dev_addr + (host_addr - entry.host_addr)

    def is_present(self, host_addr: int) -> bool:
        return self.find(host_addr) is not None

    # -- map/unmap ---------------------------------------------------------------
    def map_enter(self, host_addr: int, size: int, map_type: int) -> MapEntry:
        if size <= 0:
            raise MappingError(f"mapping of non-positive size {size}")
        entry = self.find(host_addr)
        if entry is not None:
            # present: refcount++, no re-allocation or transfer (OpenMP 4.5)
            if host_addr + size > entry.host_addr + entry.size:
                raise MappingError(
                    "mapped section extends beyond an existing entry"
                )
            entry.refcount += 1
            return entry
        dev_addr = self.device.mem_alloc(size)
        entry = MapEntry(host_addr, size, dev_addr)
        if map_type in (MAP_TO, MAP_TOFROM):
            self.device.write(dev_addr, host_addr, size)
        # note: no copy-back state is kept on the entry — OpenMP 4.5 gives
        # the copy-back decision to the construct whose unmap drops the
        # refcount to zero (see map_exit), not to the entering map type
        self._install(entry)
        return entry

    def _install(self, entry: MapEntry) -> None:
        """Insert a fully-constructed entry into the address index.
        Subclasses (e.g. the serving runtime's session environment) call
        this to adopt entries whose device allocation/transfer they have
        satisfied themselves."""
        entry.seq = self._next_seq
        self._next_seq += 1
        self.entries[entry.host_addr] = entry
        bisect.insort(self._starts, entry.host_addr)
        if entry.size > self._max_size:
            self._max_size = entry.size

    def map_exit(self, host_addr: int, map_type: int) -> None:
        entry = self.find(host_addr)
        if entry is None:
            raise MappingError(
                f"unmap of address {host_addr:#x} that is not mapped"
            )
        entry.refcount -= 1
        if map_type == MAP_DELETE:
            entry.refcount = 0
        if entry.refcount > 0:
            return
        self._release_entry(entry, map_type)
        self._drop(entry)

    def _release_entry(self, entry: MapEntry, map_type: int) -> None:
        """Retire the device side of a dying entry: copy back if the
        closing construct asked for it, then free the device block.
        Subclasses override this to park the buffer for reuse instead of
        freeing it."""
        # OpenMP 4.5: the copy-back decision belongs to the construct whose
        # unmap drops the reference count to zero (an enclosing target data
        # with map(alloc:) does NOT copy back even if inner targets mapped
        # the same data tofrom)
        if map_type in (MAP_FROM, MAP_TOFROM):
            self.device.read(entry.host_addr, entry.dev_addr, entry.size)
        self.device.mem_free(entry.dev_addr)

    def _drop(self, entry: MapEntry) -> None:
        """Remove a dead entry from the address index."""
        del self.entries[entry.host_addr]
        del self._starts[bisect.bisect_left(self._starts, entry.host_addr)]
        # keep the walk bound tight: when the (sole) largest entry leaves,
        # recompute the high-water mark so interior lookups don't keep
        # scanning a window sized by an entry that no longer exists
        if entry.size >= self._max_size:
            self._max_size = max(
                (e.size for e in self.entries.values()), default=0)

    # -- target update ----------------------------------------------------------
    def update_to(self, host_addr: int, size: int) -> None:
        entry = self.find(host_addr)
        if entry is None:
            raise MappingError("target update to() of unmapped data")
        dev = entry.dev_addr + (host_addr - entry.host_addr)
        self.device.write(dev, host_addr, size)

    def update_from(self, host_addr: int, size: int) -> None:
        entry = self.find(host_addr)
        if entry is None:
            raise MappingError("target update from() of unmapped data")
        dev = entry.dev_addr + (host_addr - entry.host_addr)
        self.device.read(host_addr, dev, size)

    @property
    def live_entries(self) -> int:
        return len(self.entries)
