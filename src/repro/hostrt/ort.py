"""The ort runtime object: devices, data environments, natives.

A translated host program executes inside a cfront
:class:`~repro.cfront.interp.Machine` whose native-function table is
extended with the ``ort_*`` calls the OMPi code generator emits plus the
host ``omp_*`` API.  One :class:`Ort` instance corresponds to one running
program (like the real runtime's process-global state).

Device numbering follows OpenMP: devices ``0 .. omp_get_num_devices()-1``
are offload targets (each a cudadev GPU with its own driver state, data
environment, stream pool and fault domain) and the *initial device* (the
host itself) has id ``omp_get_num_devices()``.  The device count comes
from the ``num_devices`` argument / ``REPRO_NUM_DEVICES`` environment
variable (default 1, the single Jetson Nano of the paper).

A ``shard(n)`` clause on ``target teams distribute`` splits the team grid
contiguously across the first ``n`` healthy devices (``n <= 0``: all of
them): every map is replicated per device, each device executes only its
own block range of the *global* grid — the device runtime derives team
chunks from global block ids, so the per-device launches cover exactly
the global iteration space — and the join diffs each device's mapped
buffers against their launch-time baselines, merging the changed bytes
back into host memory.
"""

from __future__ import annotations

import os
from typing import Optional

import numpy as np

from repro.cfront.errors import InterpError
from repro.cfront.interp import Machine, Ptr
from repro.cuda.device import DeviceProperties, JETSON_NANO_GPU
from repro.cuda.driver import DEVICE_MEM_BASE
from repro.cuda.errors import CudaError
from repro.cuda.ptx.jit import JitCache
from repro.faults.recovery import DeviceLost, OffloadFailure
from repro.hostrt.cudadev_host import CudadevModule
from repro.hostrt.devices import HostDevice
from repro.hostrt.icv import ICVs
from repro.hostrt.mapping import (
    MAP_DELETE, MAP_FROM, MAP_RELEASE, MAP_TO, MAP_TOFROM, DataEnv,
    MappingError,
)
from repro.hostrt.reduction import dtype_of, fold_partials
from repro.hostrt.team import HostTeamError, TeamStack
from repro.prof.activity import DeviceRecorder, resolve_profile
from repro.prof.ompt import OmptRegistry
from repro.rt_async.taskgraph import (
    DEP_IN, DEP_INOUT, DEP_OUT, OffloadTaskError, StreamPoolScheduler,
)
from repro.timing.clock import VirtualClock

#: address-space stride between per-device memory arenas (4 GiB: well
#: above any single device's capacity, so device pointers never collide
#: and the interpreter can attribute a raw address to its device)
DEVICE_MEM_STRIDE = 0x1_0000_0000


class _ShardScope:
    """State of one active ``shard`` region: the participating device
    ordinals, per-device pending kernel arguments, and the launch-time
    device-content baselines the copy-back merge diffs against."""

    def __init__(self, devices: list[int]):
        self.devices = devices
        #: the region degraded to the host path (no healthy device, or a
        #: launch failed): remaining maps/launches take the host route
        self.failed = not devices
        #: device ordinal -> pending (translated) kernel arguments
        self.kargs: dict[int, list] = {k: [] for k in devices}
        self.hostargs: list = []
        #: (device ordinal, host addr) -> device bytes at map time
        self.baselines: dict[tuple[int, int], np.ndarray] = {}
        #: host_addr -> size, for the merge at unmap
        self.sizes: dict[int, int] = {}


class Ort:
    def __init__(
        self,
        machine: Machine,
        device: Optional[DeviceProperties] = None,
        clock: Optional[VirtualClock] = None,
        jit_cache: Optional[JitCache] = None,
        launch_mode: str = "auto",
        fastpath: Optional[str] = None,
        profile=None,
        faults=None,
        recovery=None,
        num_devices: Optional[int] = None,
        devices: Optional[list] = None,
        dataenvs: Optional[dict] = None,
        ompt: Optional[OmptRegistry] = None,
        default_device: int = 0,
        backends=None,
        healthy_fn=None,
    ):
        self.machine = machine
        #: optional predicate ``(ordinal) -> bool`` consulted when picking
        #: shard participants — the serving runtime wires its per-device
        #: circuit breakers here so an open (but not yet lost) device is
        #: not handed a shard of new work
        self.healthy_fn = healthy_fn
        if devices is not None:
            # -- leased registry (serving runtime) -----------------------
            # The caller owns the device modules, virtual clock, activity
            # ring and OMPT registry; this Ort only binds them to one
            # machine for one request's lifetime.  Host memory is leased:
            # execution is cooperative, so every functional host access
            # completes before the owner re-leases the modules.
            if not devices:
                raise ValueError("a leased device registry cannot be empty")
            self.clock = clock or devices[0].driver.clock
            self.prof, self.prof_path = resolve_profile(
                profile if profile is not None else False)
            self.ompt = ompt if ompt is not None else OmptRegistry()
            self.devices = list(devices)
            for mod in self.devices:
                mod.lease_host(machine.heap)
        else:
            self.clock = clock or VirtualClock()
            # Heterogeneous registry resolution (repro.devices): an
            # explicit ``backends`` list/spec wins; an explicit ``device``
            # profile or ``num_devices`` keeps the homogeneous path;
            # otherwise the REPRO_DEVICES environment variable may name a
            # mixed registry, and only then does REPRO_NUM_DEVICES apply.
            from repro.devices import parse_devices, resolve_backends
            if backends is not None:
                backs = parse_devices(backends)
            elif num_devices is None and device is None:
                backs = resolve_backends()
            else:
                backs = None
            if device is None:
                device = JETSON_NANO_GPU
            if backs is not None:
                num_devices = len(backs)
            elif num_devices is None:
                num_devices = int(os.environ.get("REPRO_NUM_DEVICES", "")
                                  or "1")
            num_devices = int(num_devices)
            if num_devices < 1:
                raise ValueError(
                    f"num_devices must be >= 1, got {num_devices}")
            #: one shared activity ring for the whole registry; each module
            #: gets a per-device stamping view so the merged stream stays in
            #: emission order while every record remains attributable
            self.prof, self.prof_path = resolve_profile(profile)
            #: OMPT-style tool callback registry, shared with every device
            #: module so callbacks see both runtime- and module-level events
            self.ompt = ompt if ompt is not None else OmptRegistry()
            from repro.devrt import build_intrinsics
            intrinsics = build_intrinsics()
            #: offload devices (0..n-1); the initial device is id n
            self.devices = [
                CudadevModule(
                    machine.heap,
                    backs[k].props if backs is not None else device,
                    clock=self.clock,
                    jit_cache=jit_cache,
                    launch_mode=launch_mode, fastpath=fastpath,
                    profile=(DeviceRecorder(self.prof, k)
                             if self.prof is not None else False),
                    faults=(faults.get(k) if isinstance(faults, dict)
                            else faults),
                    recovery=recovery, ordinal=k,
                    ompt=self.ompt,
                    gmem_base=DEVICE_MEM_BASE + k * DEVICE_MEM_STRIDE,
                    intrinsics=intrinsics,
                    backend=backs[k] if backs is not None else None,
                )
                for k in range(num_devices)
            ]
        self.icvs = ICVs(default_device_var=int(default_device))
        self.cudadev = self.devices[0]
        self.recovery = self.cudadev.recovery
        self.host_device = HostDevice(machine)
        self.dataenvs = (dict(dataenvs) if dataenvs is not None
                         else {k: DataEnv(mod)
                               for k, mod in enumerate(self.devices)})
        self.teams = TeamStack(self.icvs.nthreads_var)
        self._pending_kargs: list = []
        #: host-address twins of the pending kernel arguments — what the
        #: ``*_hostfn`` receives if the launch has to fall back to the host
        self._pending_hostargs: list = []
        self._pending_pargs: list = []
        # -- asynchronous offload (target nowait + depend) ---------------
        self._pending_deps: list[tuple[int, int]] = []
        #: innermost deferred task whose body is executing (None entries
        #: mark host-device tasks, which run synchronously)
        self._task_stack: list = []
        #: device ordinal -> stream-pool task scheduler (lazily created)
        self._schedulers: dict[int, StreamPoolScheduler] = {}
        self._task_count = 0
        #: active ``shard`` region, if any (no nesting)
        self._shard: Optional[_ShardScope] = None
        # -- deterministic reductions (tree mode) ------------------------
        #: reductions registered for the *next* offload:
        #: (kernel-arg index, host addr, opcode, typecode)
        self._pending_reds: list[tuple[int, int, int, int]] = []
        #: launched reductions awaiting the cross-team combine at
        #: ort_red_end (dicts: addr/opcode/dtype/nteams/chunks)
        self._active_reds: list[dict] = []
        machine.natives.update(self._natives())
        for mod in self.devices:
            machine.register_space(mod.driver.gmem)

    # -- helpers ------------------------------------------------------------------
    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def initial_device(self) -> int:
        return len(self.devices)

    def _resolve_device(self, dev: int, loc=None) -> int:
        if dev < 0:  # "default device" sentinel from the code generator
            dev = self.icvs.default_device_var
        dev = int(dev)
        if not 0 <= dev <= self.initial_device:
            raise InterpError(
                f"invalid device number {dev} (valid device ids are "
                f"0..{self.initial_device - 1}, or {self.initial_device} "
                "for the initial device)", loc)
        # a permanently lost device reroutes to the initial (host) device:
        # maps become the identity, launches run the *_hostfn — host memory
        # is authoritative from the moment of loss (OpenMP fallback rules)
        if (dev < self.initial_device
                and getattr(self.devices[dev], "lost", False)):
            return self.initial_device
        return dev

    def _env(self, dev: int, loc=None) -> Optional[DataEnv]:
        dev = self._resolve_device(dev, loc)
        return self.dataenvs.get(dev)

    @property
    def log(self):
        return self.cudadev.driver.log

    @property
    def fault_stats(self) -> dict:
        """Fault/recovery counters aggregated across every device's own
        fault domain (per-device breakdown: ``devices[k].fault_stats``)."""
        out: dict = {}
        for mod in self.devices:
            for op, count in mod.fault_stats.items():
                out[op] = out.get(op, 0) + count
        return out

    # -- native table ----------------------------------------------------------------
    def _natives(self) -> dict:
        n = {
            # data environment
            "ort_map": self._ort_map,
            "ort_unmap": self._ort_unmap,
            "ort_update_to": self._ort_update_to,
            "ort_update_from": self._ort_update_from,
            "ort_is_present": self._ort_is_present,
            # offload
            "ort_arg_ptr": self._ort_arg_ptr,
            "ort_arg_val": self._ort_arg_val,
            "ort_offload": self._ort_offload,
            # deterministic reductions (tree mode cross-team combine)
            "ort_red_scalar": self._ort_red_scalar,
            "ort_red_end": self._ort_red_end,
            # deferred offload tasks (target nowait / depend)
            "ort_task_dep": self._ort_task_dep,
            "ort_task_begin": self._ort_task_begin,
            "ort_task_end": self._ort_task_end,
            "ort_taskwait": self._ort_taskwait,
            # multi-device sharding (shard clause on target teams distribute)
            "ort_shard_begin": self._ort_shard_begin,
            "ort_shard_end": self._ort_shard_end,
            # host parallel
            "ort_parg": self._ort_parg,
            "ort_execute_parallel": self._ort_execute_parallel,
            "ort_for_bounds": self._ort_for_bounds,
            "ort_host_barrier": self._ort_host_barrier,
            # host omp API
            "omp_get_wtime": lambda m, a, l: self.clock.now(),
            "omp_get_num_devices": lambda m, a, l: len(self.devices),
            "omp_get_initial_device": lambda m, a, l: self.initial_device,
            "omp_get_default_device": lambda m, a, l: self.icvs.default_device_var,
            "omp_set_default_device": self._omp_set_default_device,
            "omp_is_initial_device": lambda m, a, l: 1,
            "omp_get_thread_num": lambda m, a, l: self.teams.thread_num(),
            "omp_get_num_threads": lambda m, a, l: self.teams.num_threads(),
            "omp_get_max_threads": lambda m, a, l: self.icvs.nthreads_var,
            "omp_set_num_threads": self._omp_set_num_threads,
            "omp_get_num_procs": lambda m, a, l: 4,
        }
        return n

    # -- data environment natives ----------------------------------------------------
    def _addr_of(self, value, loc) -> int:
        if isinstance(value, Ptr):
            return value.addr
        raise InterpError("runtime call expected a pointer argument", loc)

    def _ort_map(self, machine, args, loc):
        dev, ptr, size, map_type = args
        if self._shard is not None:
            return self._shard_map(ptr, int(size), int(map_type), loc)
        dev = self._resolve_device(int(dev), loc)
        if dev >= self.initial_device:
            return 0  # host device: identity mapping, nothing to do
        env = self.dataenvs[dev]
        addr = self._addr_of(ptr, loc)
        try:
            env.map_enter(addr, int(size), int(map_type))
        except MappingError as exc:
            raise InterpError(str(exc), loc) from exc
        except DeviceLost:
            return 0  # device gone mid-map: identity (host) route from here
        if self.ompt.active:
            self.ompt.dispatch("data_op", optype="alloc", device=dev,
                               addr=addr, nbytes=int(size))
        return 0

    def _ort_unmap(self, machine, args, loc):
        dev, ptr, map_type = args
        if self._shard is not None:
            return self._shard_unmap(ptr, int(map_type), loc)
        dev = self._resolve_device(int(dev), loc)
        if dev >= self.initial_device:
            return 0
        env = self.dataenvs[dev]
        addr = self._addr_of(ptr, loc)
        try:
            env.map_exit(addr, int(map_type))
        except MappingError as exc:
            raise InterpError(str(exc), loc) from exc
        except DeviceLost:
            return 0  # nothing to copy back: host memory is authoritative
        if self.ompt.active:
            self.ompt.dispatch("data_op", optype="delete", device=dev,
                               addr=addr, nbytes=0)
        return 0

    def _ort_update_to(self, machine, args, loc):
        dev, ptr, size = args
        dev = self._resolve_device(int(dev), loc)
        if dev >= self.initial_device:
            return 0
        try:
            self.dataenvs[dev].update_to(self._addr_of(ptr, loc), int(size))
        except DeviceLost:
            pass
        return 0

    def _ort_update_from(self, machine, args, loc):
        dev, ptr, size = args
        dev = self._resolve_device(int(dev), loc)
        if dev >= self.initial_device:
            return 0
        try:
            self.dataenvs[dev].update_from(self._addr_of(ptr, loc), int(size))
        except DeviceLost:
            pass
        return 0

    def _ort_is_present(self, machine, args, loc):
        dev, ptr = args
        env = self._env(int(dev), loc)
        if env is None:
            return 1
        return 1 if env.is_present(self._addr_of(ptr, loc)) else 0

    def peer_update(self, host_addr: int, size: int, src_dev: int,
                    dst_dev: int) -> None:
        """Device-to-device refresh of a host range mapped on both devices
        (the multi-device analogue of ``target update``): the bytes move
        over the simulated peer path, never staging through host memory."""
        src = self._resolve_device(int(src_dev))
        dst = self._resolve_device(int(dst_dev))
        for d in (src, dst):
            if d >= self.initial_device:
                raise MappingError(
                    "peer update endpoints must be offload devices")
        src_addr = self.dataenvs[src].translate(host_addr)
        dst_addr = self.dataenvs[dst].translate(host_addr)
        self.devices[src].peer_copy(self.devices[dst], dst_addr,
                                    src_addr, size)

    # -- offload natives ------------------------------------------------------------
    def _ort_arg_ptr(self, machine, args, loc):
        """Queue one kernel argument.  ``base`` is the pointer the kernel
        will index from; ``mapped`` is an address known to be inside the
        mapped section (they differ when a section has a nonzero lower
        bound: the kernel still receives a device pointer positioned so
        that kernel-side indices match host-side indices)."""
        dev, base, mapped = args
        scope = self._shard
        if scope is not None:
            base_addr = self._addr_of(base, loc)
            mapped_addr = self._addr_of(mapped, loc)
            if not scope.failed:
                try:
                    for k in scope.devices:
                        dev_mapped = self.dataenvs[k].translate(mapped_addr)
                        scope.kargs[k].append(
                            np.uint64(dev_mapped - (mapped_addr - base_addr)))
                except MappingError as exc:
                    raise InterpError(str(exc), loc) from exc
            scope.hostargs.append(base)
            return 0
        dev = self._resolve_device(int(dev), loc)
        if dev >= self.initial_device:
            self._pending_kargs.append(base)   # host fallback: host pointer
            self._pending_hostargs.append(base)
            return 0
        env = self.dataenvs[dev]
        base_addr = self._addr_of(base, loc)
        mapped_addr = self._addr_of(mapped, loc)
        try:
            dev_mapped = env.translate(mapped_addr)
        except MappingError as exc:
            raise InterpError(str(exc), loc) from exc
        self._pending_kargs.append(np.uint64(dev_mapped - (mapped_addr - base_addr)))
        self._pending_hostargs.append(base)
        return 0

    def _ort_arg_val(self, machine, args, loc):
        """Queue a by-value scalar kernel argument (firstprivate-style:
        never enters the device data environment)."""
        _dev, value = args
        scope = self._shard
        if scope is not None:
            for k in scope.devices:
                scope.kargs[k].append(value)
            scope.hostargs.append(value)
            return 0
        self._pending_kargs.append(value)
        self._pending_hostargs.append(value)
        return 0

    def _ort_red_scalar(self, machine, args, loc):
        """Register one tree-mode reduction scalar for the next offload.

        The generated code calls this after the regular argument natives,
        once per reduction variable in kernel-parameter order, so a
        placeholder queued here lands exactly where the kernel's trailing
        ``__redp_<name>`` parameter expects its partials buffer; the
        buffer itself is allocated at launch time (the grid size — and
        with it the slot count — is not known yet) and patched in.  The
        sequential ``*_hostfn`` twin computes the whole reduction itself,
        so the host-argument twin stays a null pointer."""
        _dev, ptr, opcode, typecode = args
        addr = self._addr_of(ptr, loc)
        scope = self._shard
        if scope is not None:
            index = -1
            if not scope.failed and scope.devices:
                for k in scope.devices:
                    scope.kargs[k].append(np.uint64(0))
                index = len(scope.kargs[scope.devices[0]]) - 1
            scope.hostargs.append(np.uint64(0))
        else:
            self._pending_kargs.append(np.uint64(0))
            self._pending_hostargs.append(np.uint64(0))
            index = len(self._pending_kargs) - 1
        self._pending_reds.append((index, addr, int(opcode), int(typecode)))
        return 0

    def _alloc_red_buffers(self, reds, nteams: int,
                           ranges: list[tuple[int, int, int]]) -> list[dict]:
        """One device partials buffer per (reduction, participating
        device): ``nteams`` slots indexed by *global* team id, of which a
        device owns only its ``[blo, bhi)`` block range.  Returns the
        combine records ``ort_red_end`` will fold; the caller patches the
        buffer addresses into the pending kernel arguments."""
        records: list[dict] = []
        for index, addr, opcode, typecode in reds:
            dtype = dtype_of(typecode)
            chunks: list[tuple[int, int, int, int]] = []
            for k, blo, bhi in ranges:
                buf = self.devices[k].mem_alloc(nteams * dtype.itemsize)
                chunks.append((k, blo, bhi, buf))
            records.append({"index": index, "addr": addr, "opcode": opcode,
                            "dtype": dtype, "nteams": nteams,
                            "chunks": chunks})
        return records

    def _cancel_reductions(self, records: list[dict]) -> None:
        """Drop launched-reduction state after a host fallback: the
        ``*_hostfn`` computed the full reduction into host memory, so the
        partials must not be folded on top of it."""
        for rec in records:
            for k, _blo, _bhi, buf in rec["chunks"]:
                try:
                    self.devices[k].mem_free(buf)
                except (DeviceLost, CudaError):
                    pass

    def _ort_red_end(self, machine, args, loc):
        """The cross-team combine, performed on copy-back: gather every
        launched reduction's partials (each global team slot read from the
        device that owned that block range), fold them in ascending team
        order onto the variable's incoming host value, and store the
        result.  The fold order is a pure function of the grid — never of
        warp scheduling, device count or shard boundaries — so the result
        is bit-identical to the sequential loop.  A device lost *after*
        its launch succeeded leaves the host value authoritative, exactly
        like the map copy-back path."""
        records = self._active_reds
        self._active_reds = []
        for rec in records:
            dtype = rec["dtype"]
            nbytes = rec["nteams"] * dtype.itemsize
            partials = np.zeros(rec["nteams"], dtype=dtype)
            ok = True
            for k, blo, bhi, buf in rec["chunks"]:
                module = self.devices[k]
                try:
                    data = module._with_retries(
                        "cuMemcpyDtoH",
                        lambda a=buf: module.driver.cuMemcpyDtoH(a, nbytes))
                    if ok and bhi > blo:
                        partials[blo:bhi] = np.frombuffer(
                            data, dtype=dtype)[blo:bhi]
                except (DeviceLost, CudaError) as exc:
                    ok = False
                    module.faultlog.note(
                        "fallback", api="ort_red_end",
                        detail="device lost before the cross-team combine: "
                               f"host value kept ({exc})")
                try:
                    module.mem_free(buf)
                except (DeviceLost, CudaError):
                    pass
            if not ok:
                continue
            view = machine.heap.view(rec["addr"], dtype.itemsize, np.uint8)
            initial = np.frombuffer(view.tobytes(), dtype=dtype)[0]
            result = fold_partials(rec["opcode"], initial, partials, dtype)
            view[:] = np.frombuffer(
                np.asarray([result], dtype=dtype).tobytes(), dtype=np.uint8)
        return 0

    def _ort_offload(self, machine, args, loc):
        dev, name_ptr, gx, gy, gz, bx, by, bz = args
        if self._shard is not None:
            return self._shard_offload(machine, args, loc)
        requested = int(dev)
        if requested < 0:
            requested = self.icvs.default_device_var
        dev = self._resolve_device(requested, loc)
        name = machine.read_cstring(name_ptr)
        kargs = self._pending_kargs
        hostargs = self._pending_hostargs
        reds = self._pending_reds
        self._pending_kargs = []
        self._pending_hostargs = []
        self._pending_reds = []
        teams = (max(int(gx), 1), max(int(gy), 1), max(int(gz), 1))
        threads = (max(int(bx), 1), max(int(by), 1), max(int(bz), 1))
        if dev >= self.initial_device:
            if 0 <= requested < self.initial_device:
                # region targeted a lost device: record the reroute so the
                # degradation is visible in the profile/fault log
                self.devices[requested].faultlog.note(
                    "fallback", api=name,
                    detail=f"device lost: target region {name!r} -> host")
            # the hostfn computes any reductions in full: reds dropped
            self.host_device.offload(name, hostargs, teams, threads)
            return 0
        module = self.devices[dev]
        task = self._task_stack[-1] if self._task_stack else None
        if task is not None and task.dead:
            return 0  # cancelled/failed deferred task: the body launches nothing
        red_records: list[dict] = []
        if reds:
            nteams_total = teams[0] * teams[1] * teams[2]
            try:
                red_records = self._alloc_red_buffers(
                    reds, nteams_total, [(dev, 0, nteams_total)])
            except (DeviceLost, CudaError) as exc:
                self._offload_failed(machine, exc, dev, name, hostargs,
                                     teams, threads, task, loc)
                return 0
            for rec in red_records:
                kargs[rec["index"]] = np.uint64(rec["chunks"][0][3])
        if self.ompt.active:
            self.ompt.dispatch("target_begin", device=dev, kernel=name,
                               teams=teams, threads=threads)
        try:
            module.offload(name, kargs, teams, threads)
        except (OffloadFailure, DeviceLost) as exc:
            self._cancel_reductions(red_records)
            self._offload_failed(machine, exc, dev, name, hostargs,
                                 teams, threads, task, loc)
        else:
            self._active_reds.extend(red_records)
        if self.ompt.active:
            self.ompt.dispatch("target_end", device=dev, kernel=name,
                               teams=teams, threads=threads)
        if isinstance(module, CudadevModule) and module.stdout:
            machine.stdout.extend(module.stdout)
            module.stdout.clear()
        return 0

    def _offload_failed(self, machine, exc, dev: int, name: str,
                        hostargs: list, teams, threads, task, loc) -> None:
        """A kernel offload failed beyond the module's recovery budget.

        Inside a deferred (``nowait``) task there is no inline fallback:
        the task is marked failed, its dependents cancel, and the error
        surfaces at the joining ``taskwait``.  Synchronous regions fall
        back to the registered ``*_hostfn`` on the initial device; when
        the device itself is still healthy (a launch-only failure) the
        mapped data is then resynced host -> device so later regions and
        the eventual copy-back observe the host-computed values."""
        module = self.devices[dev]
        if task is not None:
            self.scheduler_for(task.device).fail_task(task, exc)
            return
        if not self.recovery.host_fallback:
            raise InterpError(str(exc), loc) from exc
        lost = getattr(exc, "device_lost", False) or isinstance(exc, DeviceLost)
        cause = getattr(exc, "cause", exc)
        module.faultlog.note(
            "fallback", api=name,
            fault=getattr(getattr(cause, "result", None), "name", ""),
            detail=f"target region {name!r} -> host ({cause})")
        self.host_device.offload(name, hostargs, teams, threads)
        if not lost:
            self._resync_device(dev, hostargs)

    def _resync_device(self, dev: int, hostargs: list) -> None:
        """After a host-fallback on a *healthy* device, push the host
        values of every mapped argument back to the device copy, keeping
        the data environment coherent (the later ``map_exit`` copy-back
        must return exactly what the fallback computed).

        Buffers whose device copy already holds the host bytes (read-only
        inputs of the fallen-back region, typically the big ``to`` maps)
        are skipped via the same sha256 digest gate the serving runtime
        uses for warm remaps — the simulator reads the device bytes back
        at zero modelled cost, so the digest only spends host wall-clock,
        and a skipped buffer elides the whole modelled HtoD transfer."""
        from repro.mem import content_digest

        module = self.devices[dev]
        env = self.dataenvs[dev]
        synced: set[int] = set()
        try:
            for arg in hostargs:
                if not isinstance(arg, Ptr):
                    continue
                entry = env.find(arg.addr)
                if entry is None or entry.host_addr in synced:
                    continue
                synced.add(entry.host_addr)
                host_bytes = module.host_mem.copy_out(entry.host_addr,
                                                      entry.size)
                dev_bytes = module.driver.gmem.copy_out(entry.dev_addr,
                                                        entry.size)
                if content_digest(host_bytes) == content_digest(dev_bytes):
                    module.faultlog.note(
                        "resync_skip", api="resync", nbytes=entry.size,
                        detail=f"device copy of {entry.size} bytes at "
                               f"{entry.host_addr:#x} unchanged")
                    continue
                module.write(entry.dev_addr, entry.host_addr, entry.size)
        except (DeviceLost, CudaError) as exc:
            # resync impossible: treat the device as lost so no later
            # operation trusts the (now stale) device copies
            module._mark_lost(exc)

    # -- deferred offload tasks (target nowait / depend) -------------------------
    def scheduler_for(self, dev: int) -> StreamPoolScheduler:
        """Device ``dev``'s stream-pool task scheduler, created on first
        deferred task targeting that device (each device has its own
        stream pool; tasks on different devices run on disjoint pools)."""
        sched = self._schedulers.get(dev)
        if sched is None:
            module = self.devices[dev]
            module.initialize()
            sched = StreamPoolScheduler(module.driver)
            self._schedulers[dev] = sched
        return sched

    @property
    def scheduler(self) -> StreamPoolScheduler:
        """Device 0's task scheduler (single-device programs)."""
        return self.scheduler_for(0)

    def _ort_task_dep(self, machine, args, loc):
        _dev, ptr, code = args
        code = int(code)
        if code not in (DEP_IN, DEP_OUT, DEP_INOUT):
            raise InterpError(f"unknown dependence type code {code}", loc)
        addr = ptr.addr if isinstance(ptr, Ptr) else int(ptr)
        self._pending_deps.append((code, addr))
        return 0

    def _ort_task_begin(self, machine, args, loc):
        dev = self._resolve_device(int(args[0]), loc)
        deps = self._pending_deps
        self._pending_deps = []
        if dev < self.initial_device:
            try:
                scheduler = self.scheduler_for(dev)
            except DeviceLost:
                dev = self.initial_device  # device died at first task: host route
        if dev >= self.initial_device:
            # host-device fallback: the "task" runs synchronously inline
            self._task_stack.append(None)
            return 0
        self._task_count += 1
        task = scheduler.begin_task(f"offload_task{self._task_count}", deps)
        task.device = dev
        self._task_stack.append(task)
        # a task cancelled at creation (failed predecessor) has no stream;
        # its body still runs through the natives but launches nothing
        self.devices[dev].current_stream = task.stream
        return 0

    def _ort_task_end(self, machine, args, loc):
        _dev, blocking = args
        if not self._task_stack:
            raise InterpError("ort_task_end without a matching ort_task_begin",
                              loc)
        task = self._task_stack.pop()
        if task is None:
            return 0
        # restore the nearest enclosing deferred task *on the same device*
        # (tasks targeting different devices nest independently)
        enclosing = next(
            (t for t in reversed(self._task_stack)
             if t is not None and t.device == task.device), None)
        self.devices[task.device].current_stream = (
            enclosing.stream if enclosing is not None else None)
        scheduler = self.scheduler_for(task.device)
        scheduler.end_task(task)
        if int(blocking):
            # depend() without nowait: an undeferred task — the host blocks
            # on this task's completion but the graph edges still held
            scheduler.sync_task(task)
        return 0

    def _ort_taskwait(self, machine, args, loc):
        try:
            self.taskwait()
        except OffloadTaskError as exc:
            raise InterpError(str(exc), loc) from exc
        return 0

    def taskwait(self) -> None:
        """Join the offload task graph on *every* device (``taskwait``,
        barriers, and the implicit join at program exit).  Raises
        :class:`~repro.rt_async.taskgraph.OffloadTaskError` collecting the
        failures across all devices (their dependents were cancelled)."""
        failed: list = []
        cancelled = 0
        for sched in self._schedulers.values():
            try:
                sched.taskwait()
            except OffloadTaskError as exc:
                failed.extend(exc.failed)
                cancelled += exc.cancelled
        if failed:
            raise OffloadTaskError(failed, cancelled)

    def shutdown(self) -> None:
        """Deterministic teardown for a leased/long-lived registry: join
        the task graph, then destroy every pool stream and done-event this
        Ort created on the shared drivers.  A standalone one-shot run can
        skip this (the driver dies with the process); a serving runtime
        must call it per request or handles accumulate in the drivers'
        stream/event tables across thousands of requests."""
        try:
            self.taskwait()
        finally:
            for sched in self._schedulers.values():
                sched.shutdown()
            self._schedulers.clear()

    # -- multi-device sharding (shard clause) -------------------------------------
    def _ort_shard_begin(self, machine, args, loc):
        """Open a ``shard(n)`` region: pick the first ``n`` healthy devices
        (``n <= 0``: all of them), route each one's module operations onto
        its dedicated shard stream so per-device work overlaps, and start
        replicating maps.  An empty device set degrades the whole region to
        the host path (identity maps + host execution)."""
        if self._shard is not None:
            raise InterpError("nested shard regions are not supported", loc)
        if self._task_stack:
            raise InterpError(
                "shard cannot appear inside a deferred target task", loc)
        n = int(args[0])
        healthy = [k for k, m in enumerate(self.devices)
                   if not getattr(m, "lost", False)
                   and (self.healthy_fn is None or self.healthy_fn(k))]
        if not healthy and self.healthy_fn is not None:
            # every device is breaker-barred but not lost: better to run
            # the region on barred devices than to host-degrade it
            healthy = [k for k, m in enumerate(self.devices)
                       if not getattr(m, "lost", False)]
        if n > 0:
            healthy = healthy[:n]
        devs: list[int] = []
        for k in healthy:
            module = self.devices[k]
            try:
                module.initialize()
                module.current_stream = module.shard_stream
            except DeviceLost:
                continue
            devs.append(k)
        self._shard = _ShardScope(devs)
        return 0

    def _ort_shard_end(self, machine, args, loc):
        """Close the shard region: block until every participating
        device's shard stream drains (the host clock advances to the
        slowest shard — this is the join) and restore synchronous
        default-stream routing."""
        scope = self._shard
        if scope is None:
            raise InterpError(
                "ort_shard_end without a matching ort_shard_begin", loc)
        self._shard = None
        for k in scope.devices:
            module = self.devices[k]
            module.current_stream = None
            if module.lost:
                continue
            try:
                module.driver.cuStreamSynchronize(module.shard_stream)
            except CudaError:
                pass
        return 0

    def _shard_map(self, ptr, size: int, map_type: int, loc) -> int:
        """Replicate one map on every shard device, snapshotting each
        device's mapped bytes as the baseline the copy-back diff-merge
        compares against."""
        scope = self._shard
        addr = self._addr_of(ptr, loc)
        if scope.failed:
            return 0  # host route: identity mapping
        scope.sizes[addr] = size
        for k in scope.devices:
            module = self.devices[k]
            env = self.dataenvs[k]
            try:
                fresh = env.find(addr) is None
                entry = env.map_enter(addr, size, map_type)
                if fresh and map_type not in (MAP_TO, MAP_TOFROM):
                    # from/alloc: seed the device copy with the host bytes
                    # so the baseline is defined and positions the kernel
                    # leaves untouched merge back unchanged
                    module.write(entry.dev_addr + (addr - entry.host_addr),
                                 addr, size)
                scope.baselines[(k, addr)] = np.frombuffer(
                    module.driver.gmem.copy_out(env.translate(addr), size),
                    dtype=np.uint8)
            except MappingError as exc:
                raise InterpError(str(exc), loc) from exc
            except DeviceLost:
                scope.failed = True  # device died mid-setup: host route
                return 0
        return 0

    def _shard_unmap(self, ptr, map_type: int, loc) -> int:
        """Join one mapping across the shard devices.  For ``from`` /
        ``tofrom`` exits the merge reads each device's copy, diffs it
        against the launch-time baseline, and scatters only the changed
        bytes into host memory — shards write disjoint slices of the
        iteration space, so the diffs never conflict.  Every device then
        drops its reference without the single-device copy-back (the merge
        already produced the result), and a copy that survives under an
        enclosing ``target data`` is resynced from the merged host bytes."""
        scope = self._shard
        addr = self._addr_of(ptr, loc)
        size = scope.sizes.get(addr, 0)
        merge = (not scope.failed and size > 0
                 and map_type in (MAP_FROM, MAP_TOFROM))
        if merge:
            host_view = self.machine.heap.view(addr, size, np.uint8)
            for k in scope.devices:
                module = self.devices[k]
                env = self.dataenvs[k]
                if module.lost or env.find(addr) is None:
                    continue
                try:
                    dev_addr = env.translate(addr)
                    data = module._with_retries(
                        "cuMemcpyDtoHAsync",
                        lambda: module.driver.cuMemcpyDtoHAsync(
                            dev_addr, size, module.shard_stream))
                except (DeviceLost, CudaError):
                    continue  # lost shard: its slice keeps the host values
                dev_bytes = np.frombuffer(data, dtype=np.uint8)
                baseline = scope.baselines.get((k, addr))
                if baseline is None:
                    host_view[:] = dev_bytes
                else:
                    changed = dev_bytes != baseline
                    host_view[changed] = dev_bytes[changed]
        exit_type = MAP_DELETE if map_type == MAP_DELETE else MAP_RELEASE
        for k in scope.devices:
            module = self.devices[k]
            env = self.dataenvs[k]
            scope.baselines.pop((k, addr), None)
            if env.find(addr) is None:
                continue
            try:
                env.map_exit(addr, exit_type)
                survivor = env.find(addr)
                if survivor is not None and merge:
                    # an enclosing target data still holds this mapping:
                    # its device copy must observe the merged result
                    module.write(
                        survivor.dev_addr + (addr - survivor.host_addr),
                        addr, size)
            except (DeviceLost, CudaError):
                continue
            except MappingError as exc:
                raise InterpError(str(exc), loc) from exc
        return 0

    def _plan_shard_ranges(self, total_blocks: int,
                           devices: list[int]) -> list[tuple[int, int]]:
        """Contiguous per-device block ranges for one sharded launch.

        The default balance mode weighs each device by its measured
        throughput (calibrated hint until the first kernel completes,
        observed blocks/modelled-second after); ``REPRO_SHARD_BALANCE=
        equal`` forces the classic equal split.  On a homogeneous
        registry the weights are uniform and the planner reproduces the
        legacy ceil-split exactly, so shard boundaries — and therefore
        every byte of the merge — are unchanged."""
        from repro.devices.throughput import (
            equal_split, plan_shards, registry_weights,
        )
        mode = os.environ.get("REPRO_SHARD_BALANCE", "throughput").lower()
        names = {getattr(self.devices[k].backend, "name", None)
                 for k in devices}
        if mode == "equal" or len(names) < 2:
            # homogeneous registry (or balancing disabled): the classic
            # equal split, byte-for-byte — observed rates on identical
            # devices drift a little (fixed overheads amortise differently
            # across shard sizes) and must not move legacy boundaries
            return equal_split(total_blocks, len(devices))
        weights = registry_weights(
            [self.devices[k].throughput for k in devices])
        return plan_shards(total_blocks, weights)

    def _shard_offload(self, machine, args, loc) -> int:
        """Launch one ``target teams distribute`` region as per-device
        shards: the linear team-block range is split contiguously, each
        device launches its slice with the *global* grid dimensions (the
        device runtime computes team chunks from global block ids), on its
        own shard stream.  A failed shard degrades the whole region to the
        host fallback — partial device results are discarded by the merge."""
        _dev, name_ptr, gx, gy, gz, bx, by, bz = args
        scope = self._shard
        name = machine.read_cstring(name_ptr)
        kargs = scope.kargs
        hostargs = scope.hostargs
        reds = self._pending_reds
        scope.kargs = {k: [] for k in scope.devices}
        scope.hostargs = []
        self._pending_reds = []
        teams = (max(int(gx), 1), max(int(gy), 1), max(int(gz), 1))
        threads = (max(int(bx), 1), max(int(by), 1), max(int(bz), 1))
        red_records: list[dict] = []
        if not scope.failed:
            total_blocks = teams[0] * teams[1] * teams[2]
            ranges = self._plan_shard_ranges(total_blocks, scope.devices)
            if reds:
                # per-device partials buffers sized for the *global* grid:
                # each device fills only its own block range's slots, and
                # the combine gathers every slot from its owning device
                try:
                    red_records = self._alloc_red_buffers(
                        reds, total_blocks,
                        [(k, ranges[i][0], ranges[i][1])
                         for i, k in enumerate(scope.devices)])
                    for rec in red_records:
                        for k, _blo, _bhi, buf in rec["chunks"]:
                            kargs[k][rec["index"]] = np.uint64(buf)
                except (DeviceLost, CudaError) as exc:
                    scope.failed = True
                    self._cancel_reductions(red_records)
                    red_records = []
                    self.cudadev.faultlog.note(
                        "fallback", api=name,
                        detail=f"shard reduction setup failed: target "
                               f"region {name!r} -> host ({exc})")
        if not scope.failed:
            for i, k in enumerate(scope.devices):
                blo, bhi = ranges[i]
                if blo >= bhi:
                    continue
                module = self.devices[k]
                if self.ompt.active:
                    self.ompt.dispatch("target_begin", device=k, kernel=name,
                                       teams=teams, threads=threads)
                try:
                    module.offload(name, kargs[k], teams, threads,
                                   block_range=(blo, bhi))
                except (OffloadFailure, DeviceLost) as exc:
                    scope.failed = True
                    module.faultlog.note(
                        "fallback", api=name,
                        detail=f"shard launch failed: target region "
                               f"{name!r} -> host ({exc})")
                finally:
                    if self.ompt.active:
                        self.ompt.dispatch("target_end", device=k,
                                           kernel=name, teams=teams,
                                           threads=threads)
                if module.stdout:
                    machine.stdout.extend(module.stdout)
                    module.stdout.clear()
                if scope.failed:
                    break
        if scope.failed:
            # the hostfn computes any reductions in full — never fold
            # device partials on top of its result
            self._cancel_reductions(red_records)
            if not self.recovery.host_fallback:
                raise InterpError(
                    f"sharded target region {name!r} failed and host "
                    "fallback is disabled", loc)
            self.host_device.offload(name, hostargs, teams, threads)
        else:
            self._active_reds.extend(red_records)
        return 0

    # -- host parallel natives ----------------------------------------------------
    def _ort_parg(self, machine, args, loc):
        self._pending_pargs.append(args[0])
        return 0

    def _ort_execute_parallel(self, machine, args, loc):
        name_ptr, nthreads = args
        name = machine.read_cstring(name_ptr)
        pargs = self._pending_pargs
        self._pending_pargs = []
        self.teams.run_parallel(machine, name, pargs, int(nthreads))
        return 0

    def _ort_for_bounds(self, machine, args, loc):
        lo, hi, tlo_ptr, thi_ptr = args
        tlo, thi = self.teams.static_bounds(int(lo), int(hi))
        machine.store_value(tlo_ptr.mem, tlo_ptr.addr, tlo_ptr.ctype, tlo)
        machine.store_value(thi_ptr.mem, thi_ptr.addr, thi_ptr.ctype, thi)
        return 0

    def _ort_host_barrier(self, machine, args, loc):
        if self.teams.current is not None:
            raise HostTeamError(
                "barrier inside a host parallel region is not supported by "
                "the sequential host-team simulation (see hostrt.team)"
            )
        # a barrier is an implicit taskwait: deferred offloads must complete
        try:
            self.taskwait()
        except OffloadTaskError as exc:
            raise InterpError(str(exc), loc) from exc
        return 0

    # -- declare target globals ---------------------------------------------------
    def bind_declare_target(self, name: str, host_addr: int, size: int,
                            kernel_name: str) -> None:
        """Give a ``declare target`` variable its device residence: force
        the owning kernel module to load, register a permanent data-
        environment entry (host global <-> module device global) and copy
        the host initial value in.  One owning module per global — OMPi
        links kernel files separately, so a declare-target variable shared
        by several kernel files would need a cross-module linker step this
        reproduction does not model (documented limitation)."""
        try:
            self.cudadev.initialize()
            fn = self.cudadev._loading_phase(kernel_name)
            dev_addr, dev_size = self.cudadev.driver.cuModuleGetGlobal(
                fn.module_handle, name)
        except DeviceLost:
            # device gone: the host global is the only copy, and every
            # target region runs on the host anyway (identity mapping)
            return
        if dev_size < size:
            raise InterpError(
                f"device global {name!r} smaller than host object")
        # the entry holds a permanent device address into this module, so
        # OOM eviction must never unload it
        self.cudadev.pin_module(kernel_name)
        env = self.dataenvs[0]
        from repro.hostrt.mapping import MapEntry
        env.entries[host_addr] = MapEntry(host_addr, size, dev_addr,
                                          refcount=1 << 30)
        try:
            self.cudadev.write(dev_addr, host_addr, size)
        except DeviceLost:
            del env.entries[host_addr]  # host copy is the only copy now

    # -- host omp API ----------------------------------------------------------------
    def _omp_set_default_device(self, machine, args, loc):
        self.icvs.default_device_var = int(args[0])
        return 0

    def _omp_set_num_threads(self, machine, args, loc):
        self.icvs.nthreads_var = max(1, int(args[0]))
        self.teams.default_nthreads = self.icvs.nthreads_var
        return 0
