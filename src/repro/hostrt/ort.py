"""The ort runtime object: devices, data environments, natives.

A translated host program executes inside a cfront
:class:`~repro.cfront.interp.Machine` whose native-function table is
extended with the ``ort_*`` calls the OMPi code generator emits plus the
host ``omp_*`` API.  One :class:`Ort` instance corresponds to one running
program (like the real runtime's process-global state).

Device numbering follows OpenMP: devices ``0 .. omp_get_num_devices()-1``
are offload targets (device 0 is the cudadev GPU) and the *initial
device* (the host itself) has id ``omp_get_num_devices()``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.cfront.errors import InterpError
from repro.cfront.interp import Machine, Ptr
from repro.cuda.device import DeviceProperties, JETSON_NANO_GPU
from repro.cuda.errors import CudaError
from repro.cuda.ptx.jit import JitCache
from repro.faults.recovery import DeviceLost, OffloadFailure
from repro.hostrt.cudadev_host import CudadevModule
from repro.hostrt.devices import HostDevice
from repro.hostrt.icv import ICVs
from repro.hostrt.mapping import DataEnv, MappingError
from repro.hostrt.team import HostTeamError, TeamStack
from repro.rt_async.taskgraph import (
    DEP_IN, DEP_INOUT, DEP_OUT, OffloadTaskError, StreamPoolScheduler,
)
from repro.timing.clock import VirtualClock


class Ort:
    def __init__(
        self,
        machine: Machine,
        device: DeviceProperties = JETSON_NANO_GPU,
        clock: Optional[VirtualClock] = None,
        jit_cache: Optional[JitCache] = None,
        launch_mode: str = "auto",
        fastpath: Optional[str] = None,
        profile=None,
        faults=None,
        recovery=None,
    ):
        self.machine = machine
        self.clock = clock or VirtualClock()
        self.icvs = ICVs(default_device_var=0)
        self.cudadev = CudadevModule(machine.heap, device, clock=self.clock,
                                     jit_cache=jit_cache,
                                     launch_mode=launch_mode,
                                     fastpath=fastpath,
                                     profile=profile,
                                     faults=faults, recovery=recovery)
        self.recovery = self.cudadev.recovery
        #: OMPT-style tool callback registry, shared with the device module
        #: so callbacks see both runtime-level and module-level events
        self.ompt = self.cudadev.ompt
        self.host_device = HostDevice(machine)
        #: offload devices (0..n-1); the initial device is id n
        self.devices = [self.cudadev]
        self.dataenvs = {0: DataEnv(self.cudadev)}
        self.teams = TeamStack(self.icvs.nthreads_var)
        self._pending_kargs: list = []
        #: host-address twins of the pending kernel arguments — what the
        #: ``*_hostfn`` receives if the launch has to fall back to the host
        self._pending_hostargs: list = []
        self._pending_pargs: list = []
        # -- asynchronous offload (target nowait + depend) ---------------
        self._pending_deps: list[tuple[int, int]] = []
        #: innermost deferred task whose body is executing (None entries
        #: mark host-device tasks, which run synchronously)
        self._task_stack: list = []
        self._scheduler: Optional[StreamPoolScheduler] = None
        self._task_count = 0
        machine.natives.update(self._natives())
        machine.register_space(self.cudadev.driver.gmem)

    # -- helpers ------------------------------------------------------------------
    @property
    def initial_device(self) -> int:
        return len(self.devices)

    def _resolve_device(self, dev: int) -> int:
        if dev < 0:  # "default device" sentinel from the code generator
            dev = self.icvs.default_device_var
        dev = int(dev)
        # a permanently lost device reroutes to the initial (host) device:
        # maps become the identity, launches run the *_hostfn — host memory
        # is authoritative from the moment of loss (OpenMP fallback rules)
        if (0 <= dev < self.initial_device
                and getattr(self.devices[dev], "lost", False)):
            return self.initial_device
        return dev

    def _env(self, dev: int) -> Optional[DataEnv]:
        dev = self._resolve_device(dev)
        return self.dataenvs.get(dev)

    @property
    def log(self):
        return self.cudadev.driver.log

    # -- native table ----------------------------------------------------------------
    def _natives(self) -> dict:
        n = {
            # data environment
            "ort_map": self._ort_map,
            "ort_unmap": self._ort_unmap,
            "ort_update_to": self._ort_update_to,
            "ort_update_from": self._ort_update_from,
            "ort_is_present": self._ort_is_present,
            # offload
            "ort_arg_ptr": self._ort_arg_ptr,
            "ort_arg_val": self._ort_arg_val,
            "ort_offload": self._ort_offload,
            # deferred offload tasks (target nowait / depend)
            "ort_task_dep": self._ort_task_dep,
            "ort_task_begin": self._ort_task_begin,
            "ort_task_end": self._ort_task_end,
            "ort_taskwait": self._ort_taskwait,
            # host parallel
            "ort_parg": self._ort_parg,
            "ort_execute_parallel": self._ort_execute_parallel,
            "ort_for_bounds": self._ort_for_bounds,
            "ort_host_barrier": self._ort_host_barrier,
            # host omp API
            "omp_get_wtime": lambda m, a, l: self.clock.now(),
            "omp_get_num_devices": lambda m, a, l: len(self.devices),
            "omp_get_initial_device": lambda m, a, l: self.initial_device,
            "omp_get_default_device": lambda m, a, l: self.icvs.default_device_var,
            "omp_set_default_device": self._omp_set_default_device,
            "omp_is_initial_device": lambda m, a, l: 1,
            "omp_get_thread_num": lambda m, a, l: self.teams.thread_num(),
            "omp_get_num_threads": lambda m, a, l: self.teams.num_threads(),
            "omp_get_max_threads": lambda m, a, l: self.icvs.nthreads_var,
            "omp_set_num_threads": self._omp_set_num_threads,
            "omp_get_num_procs": lambda m, a, l: 4,
        }
        return n

    # -- data environment natives ----------------------------------------------------
    def _addr_of(self, value, loc) -> int:
        if isinstance(value, Ptr):
            return value.addr
        raise InterpError("runtime call expected a pointer argument", loc)

    def _ort_map(self, machine, args, loc):
        dev, ptr, size, map_type = args
        dev = self._resolve_device(int(dev))
        if dev >= self.initial_device:
            return 0  # host device: identity mapping, nothing to do
        env = self.dataenvs[dev]
        addr = self._addr_of(ptr, loc)
        try:
            env.map_enter(addr, int(size), int(map_type))
        except MappingError as exc:
            raise InterpError(str(exc), loc) from exc
        except DeviceLost:
            return 0  # device gone mid-map: identity (host) route from here
        if self.ompt.active:
            self.ompt.dispatch("data_op", optype="alloc", device=dev,
                               addr=addr, nbytes=int(size))
        return 0

    def _ort_unmap(self, machine, args, loc):
        dev, ptr, map_type = args
        dev = self._resolve_device(int(dev))
        if dev >= self.initial_device:
            return 0
        env = self.dataenvs[dev]
        addr = self._addr_of(ptr, loc)
        try:
            env.map_exit(addr, int(map_type))
        except MappingError as exc:
            raise InterpError(str(exc), loc) from exc
        except DeviceLost:
            return 0  # nothing to copy back: host memory is authoritative
        if self.ompt.active:
            self.ompt.dispatch("data_op", optype="delete", device=dev,
                               addr=addr, nbytes=0)
        return 0

    def _ort_update_to(self, machine, args, loc):
        dev, ptr, size = args
        dev = self._resolve_device(int(dev))
        if dev >= self.initial_device:
            return 0
        try:
            self.dataenvs[dev].update_to(self._addr_of(ptr, loc), int(size))
        except DeviceLost:
            pass
        return 0

    def _ort_update_from(self, machine, args, loc):
        dev, ptr, size = args
        dev = self._resolve_device(int(dev))
        if dev >= self.initial_device:
            return 0
        try:
            self.dataenvs[dev].update_from(self._addr_of(ptr, loc), int(size))
        except DeviceLost:
            pass
        return 0

    def _ort_is_present(self, machine, args, loc):
        dev, ptr = args
        env = self._env(int(dev))
        if env is None:
            return 1
        return 1 if env.is_present(self._addr_of(ptr, loc)) else 0

    # -- offload natives ------------------------------------------------------------
    def _ort_arg_ptr(self, machine, args, loc):
        """Queue one kernel argument.  ``base`` is the pointer the kernel
        will index from; ``mapped`` is an address known to be inside the
        mapped section (they differ when a section has a nonzero lower
        bound: the kernel still receives a device pointer positioned so
        that kernel-side indices match host-side indices)."""
        dev, base, mapped = args
        dev = self._resolve_device(int(dev))
        if dev >= self.initial_device:
            self._pending_kargs.append(base)   # host fallback: host pointer
            self._pending_hostargs.append(base)
            return 0
        env = self.dataenvs[dev]
        base_addr = self._addr_of(base, loc)
        mapped_addr = self._addr_of(mapped, loc)
        try:
            dev_mapped = env.translate(mapped_addr)
        except MappingError as exc:
            raise InterpError(str(exc), loc) from exc
        self._pending_kargs.append(np.uint64(dev_mapped - (mapped_addr - base_addr)))
        self._pending_hostargs.append(base)
        return 0

    def _ort_arg_val(self, machine, args, loc):
        """Queue a by-value scalar kernel argument (firstprivate-style:
        never enters the device data environment)."""
        _dev, value = args
        self._pending_kargs.append(value)
        self._pending_hostargs.append(value)
        return 0

    def _ort_offload(self, machine, args, loc):
        dev, name_ptr, gx, gy, gz, bx, by, bz = args
        requested = int(dev)
        if requested < 0:
            requested = self.icvs.default_device_var
        dev = self._resolve_device(requested)
        name = machine.read_cstring(name_ptr)
        kargs = self._pending_kargs
        hostargs = self._pending_hostargs
        self._pending_kargs = []
        self._pending_hostargs = []
        teams = (max(int(gx), 1), max(int(gy), 1), max(int(gz), 1))
        threads = (max(int(bx), 1), max(int(by), 1), max(int(bz), 1))
        if dev >= self.initial_device:
            if 0 <= requested < self.initial_device:
                # region targeted a lost device: record the reroute so the
                # degradation is visible in the profile/fault log
                self.devices[requested].faultlog.note(
                    "fallback", api=name,
                    detail=f"device lost: target region {name!r} -> host")
            self.host_device.offload(name, hostargs, teams, threads)
            return 0
        module = self.devices[dev]
        task = self._task_stack[-1] if self._task_stack else None
        if task is not None and task.dead:
            return 0  # cancelled/failed deferred task: the body launches nothing
        if self.ompt.active:
            self.ompt.dispatch("target_begin", device=dev, kernel=name,
                               teams=teams, threads=threads)
        try:
            module.offload(name, kargs, teams, threads)
        except (OffloadFailure, DeviceLost) as exc:
            self._offload_failed(machine, exc, dev, name, hostargs,
                                 teams, threads, task, loc)
        if self.ompt.active:
            self.ompt.dispatch("target_end", device=dev, kernel=name,
                               teams=teams, threads=threads)
        if isinstance(module, CudadevModule) and module.stdout:
            machine.stdout.extend(module.stdout)
            module.stdout.clear()
        return 0

    def _offload_failed(self, machine, exc, dev: int, name: str,
                        hostargs: list, teams, threads, task, loc) -> None:
        """A kernel offload failed beyond the module's recovery budget.

        Inside a deferred (``nowait``) task there is no inline fallback:
        the task is marked failed, its dependents cancel, and the error
        surfaces at the joining ``taskwait``.  Synchronous regions fall
        back to the registered ``*_hostfn`` on the initial device; when
        the device itself is still healthy (a launch-only failure) the
        mapped data is then resynced host -> device so later regions and
        the eventual copy-back observe the host-computed values."""
        module = self.devices[dev]
        if task is not None:
            self.scheduler.fail_task(task, exc)
            return
        if not self.recovery.host_fallback:
            raise InterpError(str(exc), loc) from exc
        lost = getattr(exc, "device_lost", False) or isinstance(exc, DeviceLost)
        cause = getattr(exc, "cause", exc)
        module.faultlog.note(
            "fallback", api=name,
            fault=getattr(getattr(cause, "result", None), "name", ""),
            detail=f"target region {name!r} -> host ({cause})")
        self.host_device.offload(name, hostargs, teams, threads)
        if not lost:
            self._resync_device(dev, hostargs)

    def _resync_device(self, dev: int, hostargs: list) -> None:
        """After a host-fallback on a *healthy* device, push the host
        values of every mapped argument back to the device copy, keeping
        the data environment coherent (the later ``map_exit`` copy-back
        must return exactly what the fallback computed)."""
        module = self.devices[dev]
        env = self.dataenvs[dev]
        synced: set[int] = set()
        try:
            for arg in hostargs:
                if not isinstance(arg, Ptr):
                    continue
                entry = env.find(arg.addr)
                if entry is None or entry.host_addr in synced:
                    continue
                synced.add(entry.host_addr)
                module.write(entry.dev_addr, entry.host_addr, entry.size)
        except (DeviceLost, CudaError) as exc:
            # resync impossible: treat the device as lost so no later
            # operation trusts the (now stale) device copies
            module._mark_lost(exc)

    # -- deferred offload tasks (target nowait / depend) -------------------------
    @property
    def scheduler(self) -> StreamPoolScheduler:
        """The stream-pool task scheduler, created on first deferred task."""
        if self._scheduler is None:
            self.cudadev.initialize()
            self._scheduler = StreamPoolScheduler(self.cudadev.driver)
        return self._scheduler

    def _ort_task_dep(self, machine, args, loc):
        _dev, ptr, code = args
        code = int(code)
        if code not in (DEP_IN, DEP_OUT, DEP_INOUT):
            raise InterpError(f"unknown dependence type code {code}", loc)
        addr = ptr.addr if isinstance(ptr, Ptr) else int(ptr)
        self._pending_deps.append((code, addr))
        return 0

    def _ort_task_begin(self, machine, args, loc):
        dev = self._resolve_device(int(args[0]))
        deps = self._pending_deps
        self._pending_deps = []
        if dev < self.initial_device:
            try:
                scheduler = self.scheduler
            except DeviceLost:
                dev = self.initial_device  # device died at first task: host route
        if dev >= self.initial_device:
            # host-device fallback: the "task" runs synchronously inline
            self._task_stack.append(None)
            return 0
        self._task_count += 1
        task = scheduler.begin_task(f"offload_task{self._task_count}", deps)
        self._task_stack.append(task)
        # a task cancelled at creation (failed predecessor) has no stream;
        # its body still runs through the natives but launches nothing
        self.cudadev.current_stream = task.stream
        return 0

    def _ort_task_end(self, machine, args, loc):
        _dev, blocking = args
        if not self._task_stack:
            raise InterpError("ort_task_end without a matching ort_task_begin",
                              loc)
        task = self._task_stack.pop()
        if task is None:
            return 0
        self.cudadev.current_stream = (
            self._task_stack[-1].stream
            if self._task_stack and self._task_stack[-1] is not None else None
        )
        self.scheduler.end_task(task)
        if int(blocking):
            # depend() without nowait: an undeferred task — the host blocks
            # on this task's completion but the graph edges still held
            self.scheduler.sync_task(task)
        return 0

    def _ort_taskwait(self, machine, args, loc):
        try:
            self.taskwait()
        except OffloadTaskError as exc:
            raise InterpError(str(exc), loc) from exc
        return 0

    def taskwait(self) -> None:
        """Join the offload task graph (``taskwait``, barriers, and the
        implicit join at program exit).  Raises
        :class:`~repro.rt_async.taskgraph.OffloadTaskError` if any joined
        task failed (its dependents were cancelled)."""
        if self._scheduler is not None:
            self._scheduler.taskwait()

    # -- host parallel natives ----------------------------------------------------
    def _ort_parg(self, machine, args, loc):
        self._pending_pargs.append(args[0])
        return 0

    def _ort_execute_parallel(self, machine, args, loc):
        name_ptr, nthreads = args
        name = machine.read_cstring(name_ptr)
        pargs = self._pending_pargs
        self._pending_pargs = []
        self.teams.run_parallel(machine, name, pargs, int(nthreads))
        return 0

    def _ort_for_bounds(self, machine, args, loc):
        lo, hi, tlo_ptr, thi_ptr = args
        tlo, thi = self.teams.static_bounds(int(lo), int(hi))
        machine.store_value(tlo_ptr.mem, tlo_ptr.addr, tlo_ptr.ctype, tlo)
        machine.store_value(thi_ptr.mem, thi_ptr.addr, thi_ptr.ctype, thi)
        return 0

    def _ort_host_barrier(self, machine, args, loc):
        if self.teams.current is not None:
            raise HostTeamError(
                "barrier inside a host parallel region is not supported by "
                "the sequential host-team simulation (see hostrt.team)"
            )
        # a barrier is an implicit taskwait: deferred offloads must complete
        try:
            self.taskwait()
        except OffloadTaskError as exc:
            raise InterpError(str(exc), loc) from exc
        return 0

    # -- declare target globals ---------------------------------------------------
    def bind_declare_target(self, name: str, host_addr: int, size: int,
                            kernel_name: str) -> None:
        """Give a ``declare target`` variable its device residence: force
        the owning kernel module to load, register a permanent data-
        environment entry (host global <-> module device global) and copy
        the host initial value in.  One owning module per global — OMPi
        links kernel files separately, so a declare-target variable shared
        by several kernel files would need a cross-module linker step this
        reproduction does not model (documented limitation)."""
        try:
            self.cudadev.initialize()
            fn = self.cudadev._loading_phase(kernel_name)
            dev_addr, dev_size = self.cudadev.driver.cuModuleGetGlobal(
                fn.module_handle, name)
        except DeviceLost:
            # device gone: the host global is the only copy, and every
            # target region runs on the host anyway (identity mapping)
            return
        if dev_size < size:
            raise InterpError(
                f"device global {name!r} smaller than host object")
        # the entry holds a permanent device address into this module, so
        # OOM eviction must never unload it
        self.cudadev.pin_module(kernel_name)
        env = self.dataenvs[0]
        from repro.hostrt.mapping import MapEntry
        env.entries[host_addr] = MapEntry(host_addr, size, dev_addr,
                                          refcount=1 << 30)
        try:
            self.cudadev.write(dev_addr, host_addr, size)
        except DeviceLost:
            del env.entries[host_addr]  # host copy is the only copy now

    # -- host omp API ----------------------------------------------------------------
    def _omp_set_default_device(self, machine, args, loc):
        self.icvs.default_device_var = int(args[0])
        return 0

    def _omp_set_num_threads(self, machine, args, loc):
        self.icvs.nthreads_var = max(1, int(args[0]))
        self.teams.default_nthreads = self.icvs.nthreads_var
        return 0
