"""OMPi configuration (the knobs of the real compiler's configure step)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional


@dataclass
class OmpiConfig:
    #: kernel binary mode (paper §3.3): 'cubin' (default: everything compiled
    #: and linked ahead of time) or 'ptx' (JIT at first launch + disk cache)
    binary_mode: str = "cubin"
    #: target architecture for cubins
    arch: str = "sm_53"
    #: threads per block for master/worker kernels (paper §4.2.2: fixed 128,
    #: matching the 128 cores of the Nano's single SM)
    mw_block_threads: int = 128
    #: default threads per block for combined constructs without num_threads
    default_num_threads: int = 128
    #: how a flat num_threads value maps to 2D block dimensions: OMPi "maps
    #: these values to two dimensions, so as to match the block and grid
    #: dimensions of the equivalent cuda applications" (§5).  None applies
    #: the default rule (x = min(n, 32), y = n/32); a tuple forces a shape.
    block_shape: Optional[tuple[int, int, int]] = None
    #: emit the generated sources into this dict for inspection (--keep)
    keep_generated: bool = True
    #: closure-compiled kernel execution ('on'/'off'/'verify'); None defers
    #: to the REPRO_KERNEL_FASTPATH environment variable, defaulting to 'on'.
    #: 'verify' runs both the compiled fast path and the tree-walk reference
    #: on every launch and fails if memory, stdout or stats diverge.
    kernel_fastpath: Optional[str] = None
    #: closure-compiled *host* execution ('on'/'off'/'verify'); None defers
    #: to the REPRO_HOST_FASTPATH environment variable, defaulting to 'on'.
    #: Loop nests and whole functions of the recognised C subset run as
    #: vectorized numpy plans (cfront/hostcompile.py); 'verify' runs every
    #: compiled region against the tree-walk interpreter and fails on any
    #: memory or result divergence.
    host_fastpath: Optional[str] = None
    #: activity profiling (repro.prof): None defers to REPRO_PROFILE;
    #: True/'on' enables recording; a string enables recording *and* names
    #: the Chrome-trace JSON written when the program finishes; an int sets
    #: the ring-buffer capacity; an ActivityRecorder instance is used as-is
    #: (lets callers inspect records directly); False/'off' disables.
    profile: object = None
    #: fault injection (repro.faults): None defers to REPRO_FAULTS; a spec
    #: string (preset name or 'kind@api:key=val,...;...' rules), FaultPlan
    #: or FaultInjector enables injection; False/'off' disables.
    faults: object = None
    #: recovery policy: None uses defaults; a RecoveryPolicy or a string
    #: like 'retries=5,backoff=1e-3,fallback=off' overrides.
    recovery: object = None
    #: number of simulated CUDA devices in the runtime's registry: None
    #: defers to REPRO_NUM_DEVICES (default 1).  Each device gets its own
    #: driver state, memory arena, stream pool, data environment and fault
    #: domain; device(k) routes to device k and shard(n) splits a target
    #: teams distribute across the first n healthy devices.
    num_devices: Optional[int] = None
    #: heterogeneous device registry: a spec ("nano,v100"), a sequence of
    #: backend names / DeviceBackend objects, or None (defer to
    #: REPRO_DEVICES, else the homogeneous num_devices path).  Overrides
    #: num_devices when set; device(k) then routes to the k-th named
    #: backend.  Runtime-only: the registry shape never changes generated
    #: code, so it stays out of the compile-cache fingerprint (the
    #: per-device *arch* enters via image retargeting at bind time).
    devices: object = None
    #: reduction lowering mode: 'tree' (default — deterministic warp-
    #: shuffle + shared-memory tree within each team, fixed-order
    #: cross-team combine on copy-back; bit-identical to the sequential
    #: loop and across device counts / shard(n)) or 'atomic' (legacy
    #: baseline — every thread merges straight into the mapped scalar
    #: with atomic RMWs; order-dependent for floats, not shard-safe).
    #: Changes generated code, so it enters the compile-cache fingerprint.
    reduction_mode: str = "tree"
    #: serving: default per-request deadline budget in modelled seconds
    #: (None defers to REPRO_SERVE_DEADLINE; ''/'off'/0 disables).  The
    #: offload server applies it as arrival + budget; requests past the
    #: bound are rejected with a typed DeadlineExceeded.  Runtime-only —
    #: stays out of the compile-cache fingerprint.
    serve_deadline: object = None
    #: serving: per-device circuit-breaker policy — None defers to
    #: REPRO_BREAKER (else defaults), a BreakerPolicy passes through,
    #: 'off' disables, or 'threshold=2,cooldown=1e-3' overrides knobs.
    #: Runtime-only — stays out of the compile-cache fingerprint.
    breaker: object = None

    def block_dims(self, num_threads: int) -> tuple[int, int, int]:
        if self.block_shape is not None:
            return self.block_shape
        n = max(1, num_threads)
        if n <= 32:
            return (n, 1, 1)
        x = 32
        y = max(1, n // 32)
        return (x, y, 1)
