"""Persistent on-disk tier for the ompicc compile cache.

The in-memory :class:`repro.ompi.cache.CompileCache` makes repeated
compilations free *within* one process; this module makes them free
*across* processes and sessions.  Entries are whole pickled
:class:`~repro.ompi.compiler.CompiledProgram` objects — the outlined
host translation unit plus every kernel plan and device image — keyed
by the same content-addressed :func:`repro.ompi.cache.source_key`, so
a warm cache turns ``ompicc`` into "deserialize and run": no cfront
parse, no outlining, no device codegen.

Layout and invariants
---------------------

* Store root: ``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro-ompi``
  (the CLI enables the disk tier by default; the library only uses it
  when the environment opts in, keeping tests hermetic).
* Entries live under ``<root>/v<SCHEMA_VERSION>/<key>.pkl``.  The
  schema version is part of the path *and* of each entry's header, so
  a format change simply stops finding old entries (recompile, never
  misparse) and a header mismatch inside a file is treated as a miss.
* Writes are atomic: serialize to a ``.tmp`` sibling, ``os.replace``
  into place.  Readers either see a complete entry or none.
* Any failure to read or unpickle an entry (truncation, corruption,
  incompatible pickles from another interpreter) deletes the entry and
  reports a miss — the cache can only ever cost a recompile, never an
  error.
* The store is bounded by ``max_bytes`` with LRU eviction: loads touch
  the entry's mtime, stores evict oldest-mtime entries until the total
  size fits.
* Cross-process safety: every load/store/evict holds an exclusive
  ``fcntl.flock`` on ``<root>/.lock``, so concurrent compilers see
  consistent entries and eviction never races a half-written file.
"""

from __future__ import annotations

import os
import pickle
import time
from pathlib import Path
from typing import Optional

try:  # POSIX; on platforms without fcntl the lock degrades to a no-op
    import fcntl
except ImportError:  # pragma: no cover
    fcntl = None

#: bump when the pickled entry format (or anything reachable from a
#: CompiledProgram pickle) changes incompatibly
SCHEMA_VERSION = 1

#: default size bound for the store (256 MiB is hundreds of programs)
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_MAGIC = "repro-ompi-cache"


def default_root() -> Path:
    """The store root the CLI uses: REPRO_CACHE_DIR or ~/.cache/repro-ompi."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-ompi"


class DiskCompileCache:
    """Content-addressed pickle store for compiled programs (module doc)."""

    def __init__(self, root: os.PathLike | str,
                 max_bytes: int = DEFAULT_MAX_BYTES):
        self.root = Path(root)
        self.max_bytes = int(max_bytes)
        self.dir = self.root / f"v{SCHEMA_VERSION}"
        # store-level counters (the owning CompileCache counts hits/misses)
        self.stores = 0
        self.evictions = 0
        self.corrupt_dropped = 0
        self.lock_degraded = 0

    @classmethod
    def from_env(cls) -> Optional["DiskCompileCache"]:
        """A store at ``$REPRO_CACHE_DIR``, or None when the environment
        does not opt in (library code stays filesystem-silent by default)."""
        env = os.environ.get("REPRO_CACHE_DIR")
        if not env:
            return None
        return cls(Path(env))

    # -- locking --------------------------------------------------------------
    def _locked(self):
        return _FileLock(self.root / ".lock", on_degraded=self._note_degraded)

    def _note_degraded(self) -> None:
        self.lock_degraded += 1

    # -- paths ----------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.dir / f"{key}.pkl"

    # -- load / store ---------------------------------------------------------
    def load(self, key: str):
        """The stored object for ``key``, or None (miss / dropped entry)."""
        path = self.path_for(key)
        with self._locked():
            try:
                data = path.read_bytes()
            except OSError:
                return None
            try:
                magic, version, entry_key, obj = pickle.loads(data)
                if (magic != _MAGIC or version != SCHEMA_VERSION
                        or entry_key != key):
                    raise ValueError("schema/key mismatch")
            except Exception:
                # corrupted, truncated or foreign entry: drop it so the
                # next store rewrites a clean one, report a miss
                self.corrupt_dropped += 1
                try:
                    path.unlink()
                except OSError:
                    pass
                return None
            _touch(path)  # LRU: loads refresh recency
            return obj

    def store(self, key: str, obj) -> None:
        """Atomically persist ``obj`` under ``key`` and enforce the bound."""
        path = self.path_for(key)
        data = pickle.dumps((_MAGIC, SCHEMA_VERSION, key, obj),
                            protocol=pickle.HIGHEST_PROTOCOL)
        with self._locked():
            self.dir.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(".tmp")
            tmp.write_bytes(data)
            os.replace(tmp, path)
            self.stores += 1
            self._evict_over_bound(keep=path)

    def _evict_over_bound(self, keep: Optional[Path] = None) -> None:
        """Delete oldest-mtime entries until total size <= max_bytes.

        ``keep`` (the entry just written) is never evicted — a single
        oversized program must not make the store thrash itself empty.
        """
        entries = []
        total = 0
        for p in self.dir.glob("*.pkl"):
            try:
                st = p.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, st.st_size, p))
            total += st.st_size
        entries.sort()
        for _mtime, size, p in entries:
            if total <= self.max_bytes:
                break
            if keep is not None and p == keep:
                continue
            try:
                p.unlink()
            except OSError:
                continue
            total -= size
            self.evictions += 1

    # -- introspection --------------------------------------------------------
    def __len__(self) -> int:
        try:
            return sum(1 for _ in self.dir.glob("*.pkl"))
        except OSError:
            return 0

    @property
    def size_bytes(self) -> int:
        total = 0
        try:
            for p in self.dir.glob("*.pkl"):
                try:
                    total += p.stat().st_size
                except OSError:
                    pass
        except OSError:
            pass
        return total

    @property
    def stats(self) -> dict:
        return {
            "root": str(self.root),
            "entries": len(self),
            "size_bytes": self.size_bytes,
            "max_bytes": self.max_bytes,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt_dropped": self.corrupt_dropped,
            "lock_degraded": self.lock_degraded,
        }

    def clear(self) -> None:
        with self._locked():
            try:
                for p in self.dir.glob("*.pkl"):
                    try:
                        p.unlink()
                    except OSError:
                        pass
            except OSError:
                pass


class _FileLock:
    """Exclusive advisory lock on a sentinel file (flock; no-op without
    fcntl).  Reentrant use is not needed — the cache never nests locks."""

    def __init__(self, path: Path, on_degraded=None):
        self.path = path
        self.on_degraded = on_degraded
        self._fh = None

    def __enter__(self):
        if fcntl is None:  # pragma: no cover
            return self
        try:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "a+")
            fcntl.flock(self._fh.fileno(), fcntl.LOCK_EX)
        except OSError:
            # degraded: proceed unlocked — but never silently; the store
            # counts these so `ompicc --cache-stats` surfaces a cache
            # running without cross-process exclusion
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:
                    pass
            self._fh = None
            if self.on_degraded is not None:
                self.on_degraded()
        return self

    def __exit__(self, *exc) -> None:
        if self._fh is not None:
            try:
                fcntl.flock(self._fh.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
            self._fh.close()
            self._fh = None


def _touch(path: Path) -> None:
    try:
        os.utime(path, (time.time(), time.time()))
    except OSError:
        pass
