"""``ompicc`` — command-line driver for the OMPi reproduction.

Mirrors the workflow of the real compiler::

    python3 -m repro.ompi.cli program.c                 # compile + run
    python3 -m repro.ompi.cli program.c --keep out/     # keep generated files
    python3 -m repro.ompi.cli program.c --ptx           # ptx binary mode
    python3 -m repro.ompi.cli program.c --no-run        # compile only
    python3 -m repro.ompi.cli program.c --device tx2    # another board
    python3 -m repro.ompi.cli program.c --time          # event breakdown

Generated artifacts written by ``--keep``: the transformed host program
(``<name>_ompi.c``), one ``<kernel>.cu`` per target region, the matching
``.ptx`` listings, and (in ptx mode) the image files.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.cuda.device import (
    JETSON_NANO_4GB_GPU, JETSON_NANO_GPU, JETSON_TX2_GPU,
)
from repro.cuda.nvcc import compile_device
from repro.cuda.ptx.jit import JitCache
from repro.cuda.ptx.ptxwriter import module_to_ptx
from repro.ompi.cache import CompileCache, GLOBAL_COMPILE_CACHE
from repro.ompi.config import OmpiConfig
from repro.ompi.diskcache import DiskCompileCache, default_root

DEVICES = {
    "nano2gb": JETSON_NANO_GPU,
    "nano4gb": JETSON_NANO_4GB_GPU,
    "tx2": JETSON_TX2_GPU,
}


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ompicc",
        description="OMPi source-to-source OpenMP compiler for the "
                    "(simulated) Jetson Nano platform",
    )
    parser.add_argument("source", help="OpenMP C source file")
    parser.add_argument("--name", default=None,
                        help="program name (default: source stem)")
    parser.add_argument("--ptx", action="store_true",
                        help="emit PTX kernel images (JIT at launch); "
                             "default is cubin mode")
    parser.add_argument("--arch", default=None,
                        help="cubin target architecture (default sm_53, or "
                             "the primary backend's arch with --devices)")
    parser.add_argument("--keep", metavar="DIR", default=None,
                        help="write generated host/kernel sources to DIR")
    parser.add_argument("--no-run", action="store_true",
                        help="compile only, do not execute")
    parser.add_argument("--device", choices=sorted(DEVICES), default=None,
                        help="board to run on (default nano2gb, or the "
                             "REPRO_DEVICES registry when that is set)")
    parser.add_argument("--cache", metavar="DIR", default=None,
                        help="JIT compilation cache directory (ptx mode)")
    parser.add_argument("--time", action="store_true",
                        help="print the modelled event breakdown after the run")
    parser.add_argument("--profile", nargs="?", const=True, default=None,
                        metavar="TRACE.json",
                        help="record device activity; with an argument, also "
                             "write a chrome://tracing JSON trace there "
                             "(see also REPRO_PROFILE)")
    parser.add_argument("--block-shape", default=None, metavar="X,Y,Z",
                        help="force thread-block shape for combined constructs")
    parser.add_argument("--faults", default=None, metavar="SPEC",
                        help="inject driver faults: a preset (transient, "
                             "devlost, oom) or 'kind@api:key=val,...' rules "
                             "(see also REPRO_FAULTS)")
    parser.add_argument("--recovery", default=None, metavar="OPTS",
                        help="recovery policy overrides, e.g. "
                             "'retries=5,backoff=1e-3,fallback=off'")
    parser.add_argument("--num-devices", type=int, default=None, metavar="N",
                        help="number of simulated CUDA devices in the "
                             "runtime's registry (default 1; see also "
                             "REPRO_NUM_DEVICES).  device(k) routes to "
                             "device k, shard(n) splits target teams "
                             "distribute across n devices")
    parser.add_argument("--devices", default=None, metavar="SPEC",
                        help="heterogeneous device registry: comma-separated "
                             "backend names, e.g. 'nano,v100' (see also "
                             "REPRO_DEVICES).  device(k) routes to the k-th "
                             "named backend; shard(n) load-balances by "
                             "per-device throughput.  Overrides "
                             "--num-devices; kernels compile for the first "
                             "backend's transformation set and retarget per "
                             "device at bind time")
    parser.add_argument("--host-fastpath", choices=("on", "off", "verify"),
                        default=None,
                        help="closure-compiled host execution: on (default), "
                             "off (pure tree-walk), or verify (run both and "
                             "fail on any divergence; see also "
                             "REPRO_HOST_FASTPATH)")
    parser.add_argument("--reduction-mode", choices=("tree", "atomic"),
                        default=None,
                        help="reduction lowering: tree (default — "
                             "deterministic warp-shuffle/shared-memory tree "
                             "with fixed-order cross-team combine, "
                             "bit-identical to the sequential loop) or "
                             "atomic (legacy atomic-merge baseline)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="disable the persistent compile cache "
                             "(REPRO_CACHE_DIR or ~/.cache/repro-ompi)")
    parser.add_argument("--cache-stats", action="store_true",
                        help="print compile-cache hit/miss/evict counters "
                             "(in-memory and on-disk tiers) after the run")
    return parser


def _print_cache_stats(cache: CompileCache) -> None:
    s = cache.stats
    print("ompicc: compile cache: "
          f"memory hits={s['hits']} misses={s['misses']} "
          f"evictions={s['evictions']} compiles={s['compiles']} "
          f"wall={s['compile_wall_s'] * 1e3:.1f}ms", file=sys.stderr)
    if cache.disk is not None:
        d = s["disk"]
        print("ompicc: disk cache: "
              f"hits={s['disk_hits']} misses={s['disk_misses']} "
              f"stores={d['stores']} evictions={d['evictions']} "
              f"corrupt_dropped={d['corrupt_dropped']} "
              f"lock_degraded={d['lock_degraded']} "
              f"entries={d['entries']} bytes={d['size_bytes']} "
              f"[{d['root']}]", file=sys.stderr)


def main(argv: list[str] | None = None) -> int:
    args = build_arg_parser().parse_args(argv)
    path = Path(args.source)
    try:
        source = path.read_text()
    except OSError as exc:
        print(f"ompicc: cannot read {path}: {exc}", file=sys.stderr)
        return 2
    name = args.name or path.stem.replace("-", "_")
    shape = None
    if args.block_shape:
        parts = [int(v) for v in args.block_shape.split(",")]
        shape = tuple(parts + [1] * (3 - len(parts)))[:3]
    backends = None
    if args.devices:
        from repro.devices import UnknownBackendError, parse_devices
        try:
            backends = parse_devices(args.devices)
        except UnknownBackendError as exc:
            print(f"ompicc: {exc}", file=sys.stderr)
            return 2
    config = OmpiConfig(binary_mode="ptx" if args.ptx else "cubin",
                        arch=args.arch or "sm_53", block_shape=shape,
                        profile=args.profile,
                        faults=args.faults, recovery=args.recovery,
                        num_devices=args.num_devices,
                        host_fastpath=args.host_fastpath,
                        devices=args.devices,
                        reduction_mode=args.reduction_mode or "tree")
    if backends is not None and args.arch is None:
        # compile for the primary (first) backend's transformation set;
        # bind retargets the images for the rest of the registry
        config = backends[0].specialize(config)
    # the process-wide compile cache: a repeated ompicc invocation in one
    # process (tests, embedders) reuses the compiled program, and the
    # serving runtime shares the same cache.  The CLI additionally attaches
    # the persistent tier so a second *process* skips codegen too.
    cache = GLOBAL_COMPILE_CACHE
    if not args.no_disk_cache:
        cache = CompileCache(disk=DiskCompileCache(default_root()))
        cache._cache = GLOBAL_COMPILE_CACHE._cache  # share the warm tier
    try:
        program = cache.get(source, name, config)
    except Exception as exc:
        print(f"ompicc: {exc}", file=sys.stderr)
        return 1

    if args.keep:
        out = Path(args.keep)
        out.mkdir(parents=True, exist_ok=True)
        (out / f"{name}_ompi.c").write_text(program.host_source)
        for kernel_name, text in program.kernel_sources.items():
            (out / f"{kernel_name}.cu").write_text(text)
            image = compile_device(text, kernel_name, mode="ptx")
            (out / f"{kernel_name}.ptx").write_text(module_to_ptx(image.module))
            if args.ptx:
                (out / f"{kernel_name}.img").write_bytes(
                    program.images[kernel_name].to_bytes())
        print(f"ompicc: generated sources written to {out}/", file=sys.stderr)

    how = ("  [from disk cache]" if cache.disk is not None and cache.disk_hits
           else "  [from memory cache]" if cache.hits else "")
    print(f"ompicc: compiled {len(program.plans)} kernel(s): "
          + ", ".join(f"{p.kernel_name} [{p.mode}]" for p in program.plans)
          + how, file=sys.stderr)
    if args.cache_stats:
        _print_cache_stats(cache)
    if args.no_run:
        return 0

    cache = JitCache(args.cache) if args.cache else None
    run = program.run(device=DEVICES[args.device] if args.device else None,
                      jit_cache=cache)
    sys.stdout.write(run.stdout)
    if args.time:
        print("--- modelled events ---", file=sys.stderr)
        for event in run.log.events:
            print(f"  {event.kind:16s} {event.seconds * 1e6:10.1f} us  "
                  f"{event.kernel or ''} {event.detail}", file=sys.stderr)
        print(f"  measured (kernel + memory ops): "
              f"{run.measured_time * 1e3:.3f} ms", file=sys.stderr)
    stats = run.ort.fault_stats
    if stats:
        print("ompicc: fault/recovery events: "
              + ", ".join(f"{k}={v}" for k, v in sorted(stats.items())),
              file=sys.stderr)
    if run.profile is not None:
        from repro.prof.report import summary
        print(summary(run.profile,
                      compile_cache=cache if args.cache_stats else None),
              file=sys.stderr)
        if isinstance(args.profile, str):
            print(f"ompicc: chrome trace written to {args.profile}",
                  file=sys.stderr)
    return run.exit_code


if __name__ == "__main__":
    sys.exit(main())
