"""Shared compile cache: source hash + config fingerprint -> program.

The ompicc pipeline is deterministic — the same source text under the
same codegen-relevant configuration always produces the same outlined
host program and kernel images — so compilation results can be shared
freely: between requests of a serving runtime, between the CLI and an
embedding application, between sessions of different tenants.

``compile_cached()`` is the single entry point.  The cache key is

* the SHA-256 of the source text,
* the program name (it prefixes every generated kernel symbol), and
* the *config fingerprint*: only the :class:`~repro.ompi.config.OmpiConfig`
  fields that change what the compiler emits (binary mode, target arch,
  block-geometry knobs).  Runtime-only fields (fastpath, profiling, fault
  injection, device count) deliberately stay out of the key — a cached
  program is re-bound to the caller's full config on every hit, so two
  callers differing only in runtime knobs share one compilation.

The cache is in-memory (one process); it is the first step toward the
ROADMAP's persistent on-disk compile cache — the key derivation is
already content-addressed, so an on-disk layer only has to serialise
:class:`~repro.ompi.compiler.CompiledProgram`.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import replace
from typing import Optional

from repro.ompi.compiler import CompiledProgram, OmpiCompiler
from repro.ompi.config import OmpiConfig


def config_fingerprint(config: OmpiConfig) -> str:
    """The codegen-relevant slice of a config, as a stable string."""
    return "|".join((
        config.binary_mode,
        config.arch,
        str(config.mw_block_threads),
        str(config.default_num_threads),
        str(config.block_shape),
    ))


def source_key(source: str, name: str = "prog",
               config: Optional[OmpiConfig] = None) -> str:
    """Content-addressed cache key (hex digest) for one compilation."""
    h = hashlib.sha256()
    h.update(source.encode())
    h.update(b"\x00")
    h.update(name.encode())
    h.update(b"\x00")
    h.update(config_fingerprint(config or OmpiConfig()).encode())
    return h.hexdigest()


class CompileCache:
    """Map of :func:`source_key` -> :class:`CompiledProgram`.

    ``max_entries`` bounds the cache with LRU eviction (None: unbounded —
    the CLI compiles one program per process; a serving runtime should
    set a bound matched to its program population).
    """

    def __init__(self, max_entries: Optional[int] = None):
        self.max_entries = max_entries
        self._cache: dict[str, CompiledProgram] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: host wall-clock spent inside OmpiCompiler.compile (misses only)
        self.compile_wall_s = 0.0

    def __len__(self) -> int:
        return len(self._cache)

    def get(self, source: str, name: str = "prog",
            config: Optional[OmpiConfig] = None) -> CompiledProgram:
        """The compiled program for ``source``, compiling on first use.

        The returned program carries the *caller's* config (runtime knobs
        like fastpath/profile/faults apply per run), sharing the host
        unit, kernel plans and images with every other hit on the key.
        """
        config = config or OmpiConfig()
        key = source_key(source, name, config)
        prog = self._cache.get(key)
        if prog is not None:
            self.hits += 1
            # LRU touch: re-insertion order is eviction order
            self._cache[key] = self._cache.pop(key)
        else:
            self.misses += 1
            t0 = time.perf_counter()
            prog = OmpiCompiler(config).compile(source, name)
            self.compile_wall_s += time.perf_counter() - t0
            if (self.max_entries is not None
                    and len(self._cache) >= self.max_entries):
                self._cache.pop(next(iter(self._cache)))
                self.evictions += 1
            self._cache[key] = prog
        return replace(prog, config=config)

    def clear(self) -> None:
        self._cache.clear()

    @property
    def stats(self) -> dict:
        return {
            "entries": len(self._cache),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "compile_wall_s": self.compile_wall_s,
        }


#: process-wide default cache (what ``compile_cached`` uses when the
#: caller does not bring its own): the CLI, the serving runtime and ad-hoc
#: embedders all share it, so a warm process never recompiles a program
GLOBAL_COMPILE_CACHE = CompileCache()


def compile_cached(source: str, name: str = "prog",
                   config: Optional[OmpiConfig] = None,
                   cache: Optional[CompileCache] = None) -> CompiledProgram:
    """Compile ``source`` through a shared cache (see module docstring)."""
    return (cache if cache is not None else GLOBAL_COMPILE_CACHE).get(
        source, name, config)
