"""Shared compile cache: source hash + config fingerprint -> program.

The ompicc pipeline is deterministic — the same source text under the
same codegen-relevant configuration always produces the same outlined
host program and kernel images — so compilation results can be shared
freely: between requests of a serving runtime, between the CLI and an
embedding application, between sessions of different tenants.

``compile_cached()`` is the single entry point.  The cache key is

* the SHA-256 of the source text,
* the program name (it prefixes every generated kernel symbol), and
* the *config fingerprint*: only the :class:`~repro.ompi.config.OmpiConfig`
  fields that change what the compiler emits (binary mode, target arch,
  block-geometry knobs).  Runtime-only fields (fastpath, profiling, fault
  injection, device count) deliberately stay out of the key — a cached
  program is re-bound to the caller's full config on every hit, so two
  callers differing only in runtime knobs share one compilation.

The in-memory map serves one process; an optional persistent tier
(:class:`repro.ompi.diskcache.DiskCompileCache`) extends the same keys
across processes and sessions: an in-memory miss consults the disk
store before compiling, and every fresh compilation is written back.
The entry pickled to disk carries a *canonical* config reduced to the
fingerprint fields — runtime knobs (fastpath, profiling, fault
injection, recorder objects) never reach the pickle, and every hit is
re-bound to the caller's full config exactly like an in-memory hit.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import replace
from typing import Optional

from repro.ompi.compiler import CompiledProgram, OmpiCompiler
from repro.ompi.config import OmpiConfig


def config_fingerprint(config: OmpiConfig) -> str:
    """The codegen-relevant slice of a config, as a stable string."""
    return "|".join((
        config.binary_mode,
        config.arch,
        str(config.mw_block_threads),
        str(config.default_num_threads),
        str(config.block_shape),
        config.reduction_mode,
    ))


def source_key(source: str, name: str = "prog",
               config: Optional[OmpiConfig] = None) -> str:
    """Content-addressed cache key (hex digest) for one compilation."""
    h = hashlib.sha256()
    h.update(source.encode())
    h.update(b"\x00")
    h.update(name.encode())
    h.update(b"\x00")
    h.update(config_fingerprint(config or OmpiConfig()).encode())
    return h.hexdigest()


class CompileCache:
    """Map of :func:`source_key` -> :class:`CompiledProgram`.

    ``max_entries`` bounds the cache with LRU eviction (None: unbounded —
    the CLI compiles one program per process; a serving runtime should
    set a bound matched to its program population).

    ``disk`` attaches a persistent tier
    (:class:`repro.ompi.diskcache.DiskCompileCache`): in-memory misses
    consult it before compiling, fresh compilations are written back.
    """

    def __init__(self, max_entries: Optional[int] = None, disk=None):
        self.max_entries = max_entries
        self.disk = disk
        self._cache: dict[str, CompiledProgram] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.disk_hits = 0
        self.disk_misses = 0
        #: actual OmpiCompiler.compile invocations (misses both tiers)
        self.compiles = 0
        #: host wall-clock spent inside OmpiCompiler.compile (compiles only)
        self.compile_wall_s = 0.0

    def __len__(self) -> int:
        return len(self._cache)

    def get(self, source: str, name: str = "prog",
            config: Optional[OmpiConfig] = None) -> CompiledProgram:
        """The compiled program for ``source``, compiling on first use.

        The returned program carries the *caller's* config (runtime knobs
        like fastpath/profile/faults apply per run), sharing the host
        unit, kernel plans and images with every other hit on the key.
        """
        config = config or OmpiConfig()
        key = source_key(source, name, config)
        prog = self._cache.get(key)
        if prog is not None:
            self.hits += 1
            # LRU touch: re-insertion order is eviction order
            self._cache[key] = self._cache.pop(key)
        else:
            self.misses += 1
            prog = self._load_disk(key) if self.disk is not None else None
            if prog is None:
                t0 = time.perf_counter()
                prog = OmpiCompiler(config).compile(source, name)
                self.compiles += 1
                self.compile_wall_s += time.perf_counter() - t0
                if self.disk is not None:
                    self._store_disk(key, prog)
            if (self.max_entries is not None
                    and len(self._cache) >= self.max_entries):
                self._cache.pop(next(iter(self._cache)))
                self.evictions += 1
            self._cache[key] = prog
        return replace(prog, config=config)

    def _load_disk(self, key: str) -> Optional[CompiledProgram]:
        prog = self.disk.load(key)
        if prog is None:
            self.disk_misses += 1
            return None
        if not isinstance(prog, CompiledProgram):
            # foreign object under our key: treat as a corrupt miss
            self.disk_misses += 1
            return None
        self.disk_hits += 1
        return prog

    def _store_disk(self, key: str, prog: CompiledProgram) -> None:
        # persist with a canonical codegen-only config so runtime objects
        # (recorders, fault injectors) never reach the pickle
        canon = OmpiConfig(binary_mode=prog.config.binary_mode,
                           arch=prog.config.arch,
                           mw_block_threads=prog.config.mw_block_threads,
                           default_num_threads=prog.config.default_num_threads,
                           block_shape=prog.config.block_shape,
                           reduction_mode=prog.config.reduction_mode)
        try:
            self.disk.store(key, replace(prog, config=canon))
        except Exception:
            # a full disk or unpicklable image must not fail compilation
            pass

    def clear(self) -> None:
        self._cache.clear()

    @property
    def stats(self) -> dict:
        out = {
            "entries": len(self._cache),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "compiles": self.compiles,
            "compile_wall_s": self.compile_wall_s,
        }
        if self.disk is not None:
            out["disk_hits"] = self.disk_hits
            out["disk_misses"] = self.disk_misses
            out["disk"] = self.disk.stats
        return out


#: process-wide default cache (what ``compile_cached`` uses when the
#: caller does not bring its own): the CLI, the serving runtime and ad-hoc
#: embedders all share it, so a warm process never recompiles a program
GLOBAL_COMPILE_CACHE = CompileCache()


def compile_cached(source: str, name: str = "prog",
                   config: Optional[OmpiConfig] = None,
                   cache: Optional[CompileCache] = None) -> CompiledProgram:
    """Compile ``source`` through a shared cache (see module docstring)."""
    return (cache if cache is not None else GLOBAL_COMPILE_CACHE).get(
        source, name, config)
