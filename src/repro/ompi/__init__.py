"""The OMPi translator extended for CUDA devices (the paper's §3).

Pipeline (paper Fig. 2)::

    OpenMP C source
      -> cfront parse + OpenMP validation        (Transformation & Analysis)
      -> per-device transformation sets          (xform_host / xform_cuda)
      -> host C + per-kernel CUDA C files        (Code Generation)
      -> nvcc simulation: PTX or cubin images    (Device Compilation)
      -> interpreted host program + ort runtime  (execution)

Public entry point: :class:`repro.ompi.compiler.OmpiCompiler`.
"""

from repro.ompi.cache import CompileCache, compile_cached
from repro.ompi.compiler import CompiledProgram, OmpiCompiler, ProgramRun
from repro.ompi.config import OmpiConfig

__all__ = ["CompileCache", "CompiledProgram", "OmpiCompiler", "OmpiConfig",
           "ProgramRun", "compile_cached"]
