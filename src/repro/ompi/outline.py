"""Target-region outlining: capture analysis and data environments.

"Similarly to parallel and task directives, outlining is used when a
target directive is encountered.  The relevant portion of the ast, i.e.
the body of the construct, is moved to a new function (kernel function)
and its ast node is replaced by necessary data movements and code
offloading runtime calls" (paper §3).

This module computes, for one target construct, the ordered list of
*captured* variables (every outer variable the region references) merged
with the ``map`` clauses, producing the kernel's parameter list and the
host-side mapping plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.cfront import astnodes as A
from repro.cfront.ctypes_ import ArrayType, BasicType, CType, PointerType
from repro.cfront.errors import CFrontError
from repro.openmp.clauses import DataSharingClause, MapClause, MapItem
from repro.openmp.directives import Directive


class OutlineError(CFrontError):
    pass


@dataclass
class CapturedVar:
    """One variable of the device data environment."""

    name: str
    ctype: CType                     # host-side declared type
    map_type: str                    # to | from | tofrom | alloc | private
    #: array section (lower, length) expression ASTs, or None for scalars /
    #: whole objects
    section: Optional[tuple[Optional[A.Expr], Optional[A.Expr]]] = None
    explicit: bool = False           # appeared in a map clause
    #: read-only scalars pass by value in the kernel parameter buffer
    #: (firstprivate-style, like real OMPi/LLVM offloading) instead of
    #: through the device data environment
    by_value: bool = False
    #: lastprivate scalars: private in the kernel, the logically-last
    #: iteration writes the value back through this (from-mapped) entry
    lastprivate: bool = False

    @property
    def is_pointerish(self) -> bool:
        return isinstance(self.ctype, (PointerType, ArrayType))

    def elem_type(self) -> CType:
        if isinstance(self.ctype, PointerType):
            return self.ctype.pointee
        if isinstance(self.ctype, ArrayType):
            return self.ctype.elem
        return self.ctype


@dataclass
class TargetRegion:
    """Analysis result for one target construct."""

    kernel_name: str
    directive: Directive
    body: A.Stmt
    captured: list[CapturedVar] = field(default_factory=list)
    #: functions called from inside the region (call-graph closure)
    called_functions: list[str] = field(default_factory=list)
    #: device globals (declare target variables) referenced
    device_globals: list[str] = field(default_factory=list)


def collect_identifiers(node: A.Node) -> set[str]:
    return {n.name for n in node.walk() if isinstance(n, A.Ident)}


def locally_declared(node: A.Stmt) -> set[str]:
    """Names declared anywhere inside the region body (block scoping is
    conservative here: any local declaration shadows capture)."""
    names: set[str] = set()
    for n in node.walk():
        if isinstance(n, A.VarDecl):
            names.add(n.name)
    return names


def called_names(node: A.Node) -> set[str]:
    out: set[str] = set()
    for n in node.walk():
        if isinstance(n, A.Call) and isinstance(n.func, A.Ident):
            out.add(n.func.name)
    return out


def _pragma_private_names(node: A.Stmt) -> set[str]:
    """Names made private by directives in/at the region, plus loop
    variables of worksharing loops (implicitly private, including all
    ``collapse(k)`` levels)."""
    priv: set[str] = set()
    for n in node.walk():
        if isinstance(n, A.PragmaStmt) and n.directive is not None:
            d: Directive = n.directive
            for clause in d.clauses_of(DataSharingClause):
                if clause.kind in ("private", "firstprivate", "lastprivate"):
                    priv.update(clause.names)
            if d.includes("for") or d.includes("distribute"):
                from repro.openmp.clauses import ExprClause
                depth = 1
                ccl = d.first(ExprClause, "collapse")
                if ccl is not None and isinstance(ccl.expr, A.IntLit):
                    depth = ccl.expr.value
                loop = n.body
                while isinstance(loop, A.PragmaStmt):
                    loop = loop.body
                for _level in range(depth):
                    if isinstance(loop, A.Compound) and len(loop.body) == 1:
                        loop = loop.body[0]
                    if not isinstance(loop, A.For):
                        break
                    var = _loop_var_name(loop)
                    if var:
                        priv.add(var)
                    loop = loop.body
    return priv


def sequential_loop_vars(node: A.Node) -> set[str]:
    """Iteration variables of every for loop in the region.  OpenMP
    predetermines loop iteration variables of sequential loops inside a
    construct as *private* (OpenMP 4.5 §2.15.1.1) — without this, an inner
    ``for (k = ...)`` whose index is declared outside the target region
    would be mapped tofrom and every ``k++`` would hit device memory."""
    out: set[str] = set()
    for n in node.walk():
        if isinstance(n, A.For):
            var = _loop_var_name(n)
            if var:
                out.add(var)
    return out


def _loop_var_name(loop: A.For) -> Optional[str]:
    init = loop.init
    if isinstance(init, A.ExprStmt) and isinstance(init.expr, A.Assign) \
            and isinstance(init.expr.target, A.Ident):
        return init.expr.target.name
    if isinstance(init, A.DeclStmt) and init.decls:
        return init.decls[0].name
    return None


def analyze_target(
    kernel_name: str,
    pragma: A.PragmaStmt,
    host_scope: dict[str, CType],
    declare_target_globals: set[str],
    known_functions: set[str],
) -> TargetRegion:
    """Build the data environment for one target construct.

    ``host_scope`` maps every variable name visible at the construct to its
    declared type (the translator walks scopes to build this).
    """
    directive: Directive = pragma.directive
    body = pragma.body
    if body is None:
        raise OutlineError("target construct with no body", pragma.loc)
    region = TargetRegion(kernel_name, directive, body)
    explicit: dict[str, CapturedVar] = {}
    order: list[str] = []
    for clause in directive.clauses_of(MapClause):
        for item in clause.items:
            if item.name not in host_scope:
                raise OutlineError(
                    f"map clause names unknown variable {item.name!r}", pragma.loc
                )
            if item.name in explicit:
                raise OutlineError(
                    f"variable {item.name!r} appears in multiple map clauses",
                    pragma.loc,
                )
            section = item.sections[0] if item.sections else None
            explicit[item.name] = CapturedVar(
                item.name, host_scope[item.name], clause.map_type,
                section, explicit=True,
            )
            order.append(item.name)
    # implicit captures: referenced, not local, not private, not global-on-device
    used = collect_identifiers(body)
    local = locally_declared(body)
    private = _pragma_private_names(pragma)   # includes this construct's own
                                              # loop variables (combined form)
    private |= sequential_loop_vars(body)     # predetermined private
    device_side = set(declare_target_globals)
    for name in sorted(used):
        if name in explicit or name in local or name in private:
            continue
        if name in device_side:
            region.device_globals.append(name)
            continue
        if name not in host_scope:
            continue  # function name, enum, runtime symbol...
        ctype = host_scope[name]
        if isinstance(ctype, (PointerType, ArrayType)):
            if isinstance(ctype, ArrayType) and ctype.length is not None:
                # whole fixed-size array: implicitly tofrom (OpenMP 4.0)
                explicit[name] = CapturedVar(name, ctype, "tofrom", None)
                order.append(name)
                continue
            raise OutlineError(
                f"pointer {name!r} is used in a target region without a map "
                "clause (the section size is unknowable)", pragma.loc
            )
        # implicitly-referenced scalars behave like firstprivate (OpenMP
        # 4.5): copied to the device, never back
        explicit[name] = CapturedVar(name, ctype, "to", None)
        order.append(name)
    # lastprivate scalars: mapped 'from' so the last iteration's value
    # reaches the host, but private inside the kernel
    for clause in directive.clauses_of(DataSharingClause):
        if clause.kind != "lastprivate":
            continue
        for lname in clause.names:
            if lname in explicit or lname not in host_scope:
                continue
            ctype = host_scope[lname]
            if isinstance(ctype, (PointerType, ArrayType)):
                raise OutlineError(
                    f"lastprivate on non-scalar {lname!r} is unsupported",
                    pragma.loc,
                )
            cv = CapturedVar(lname, ctype, "from", None, lastprivate=True)
            explicit[lname] = cv
            order.append(lname)
    # read-only mapped-to scalars pass by value (no data-environment entry)
    writes = None
    for cv in explicit.values():
        if not isinstance(cv.ctype, (PointerType, ArrayType)) \
                and cv.map_type == "to":
            if writes is None:
                from repro.ompi.astutil import written_names
                writes = written_names(body)
            if cv.name not in writes:
                cv.by_value = True
    region.captured = [explicit[name] for name in order]
    # call-graph seeds
    region.called_functions = sorted(
        n for n in called_names(body) if n in known_functions
    )
    # private loop variables that are captured nowhere must be declared in
    # the kernel; the transformation set handles that with the body rewrite.
    return region
