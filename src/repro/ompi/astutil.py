"""AST construction and rewriting helpers for the transformation sets."""

from __future__ import annotations

import copy
from typing import Optional, Sequence

from repro.cfront import astnodes as A
from repro.cfront.ctypes_ import CType, INT, LONG, PointerType


def clone(node):
    return copy.deepcopy(node)


def ident(name: str) -> A.Ident:
    return A.Ident(name)


def intlit(value: int) -> A.IntLit:
    return A.IntLit(int(value))


def call(name: str, *args: A.Expr) -> A.Call:
    return A.Call(ident(name), list(args))


def callstmt(name: str, *args: A.Expr) -> A.ExprStmt:
    return A.ExprStmt(call(name, *args))


def assign(target: A.Expr, value: A.Expr, op: Optional[str] = None) -> A.ExprStmt:
    return A.ExprStmt(A.Assign(target, value, op))


def binop(op: str, left: A.Expr, right: A.Expr) -> A.Binary:
    return A.Binary(op, left, right)


def addr_of(expr: A.Expr) -> A.Unary:
    return A.Unary("&", expr)


def deref(expr: A.Expr) -> A.Unary:
    return A.Unary("*", expr)


def cast(ctype: CType, expr: A.Expr) -> A.Cast:
    return A.Cast(ctype, expr)


def decl(name: str, ctype: CType, init: Optional[A.Expr] = None,
         quals: tuple[str, ...] = ()) -> A.DeclStmt:
    return A.DeclStmt([A.VarDecl(name, ctype, init, None, quals)])


def decl_long(name: str, init: Optional[A.Expr] = None) -> A.DeclStmt:
    return decl(name, LONG, init)


def block(*stmts) -> A.Compound:
    flat: list[A.Stmt] = []
    for s in stmts:
        if isinstance(s, (list, tuple)):
            flat.extend(s)
        elif s is not None:
            flat.append(s)
    return A.Compound(flat)


def string(value: str) -> A.StringLit:
    return A.StringLit(value)


def sizeof_expr(expr: A.Expr) -> A.SizeofExpr:
    return A.SizeofExpr(expr)


def sizeof_type(ctype: CType) -> A.SizeofType:
    return A.SizeofType(ctype)


def ceil_div(num: A.Expr, den: A.Expr) -> A.Expr:
    """(num + den - 1) / den as an expression."""
    return binop("/", binop("-", binop("+", num, clone(den)), intlit(1)), clone(den))


def product(exprs: Sequence[A.Expr]) -> A.Expr:
    out = clone(exprs[0])
    for e in exprs[1:]:
        out = binop("*", out, clone(e))
    return out


def rename_idents(node: A.Node, mapping: dict[str, A.Expr]) -> A.Node:
    """Deep-copy ``node`` replacing every Ident whose name is in ``mapping``
    (except call targets and declarations, which carry names, not Idents)."""
    node = clone(node)
    _rename_in_place(node, mapping)
    return node


def _rename_in_place(node: A.Node, mapping: dict[str, A.Expr]) -> None:
    import dataclasses
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, A.Ident):
            if value.name in mapping and not (
                isinstance(node, A.Call) and node.func is value
            ):
                setattr(node, f.name, clone(mapping[value.name]))
            continue
        if isinstance(value, A.Node):
            _rename_in_place(value, mapping)
        elif isinstance(value, list):
            for i, item in enumerate(value):
                if isinstance(item, A.Ident):
                    if item.name in mapping:
                        value[i] = clone(mapping[item.name])
                elif isinstance(item, A.Node):
                    _rename_in_place(item, mapping)


def strip_pragmas(stmt: A.Stmt) -> A.Stmt:
    """Deep-copy with every PragmaStmt replaced by its body (or dropped):
    used for sequential host-fallback code."""
    stmt = clone(stmt)
    _strip_in_place(stmt)
    return stmt


def _strip_in_place(node: A.Node) -> None:
    import dataclasses
    for f in dataclasses.fields(node):
        value = getattr(node, f.name)
        if isinstance(value, A.PragmaStmt):
            replacement = value.body if value.body is not None \
                else A.ExprStmt(None)
            _strip_in_place(replacement)
            setattr(node, f.name, replacement)
        elif isinstance(value, A.Node):
            _strip_in_place(value)
        elif isinstance(value, list):
            for i, item in enumerate(value):
                if isinstance(item, A.PragmaStmt):
                    replacement = item.body if item.body is not None \
                        else A.ExprStmt(None)
                    _strip_in_place(replacement)
                    value[i] = replacement
                elif isinstance(item, A.Node):
                    _strip_in_place(item)


def written_names(stmt: A.Stmt) -> set[str]:
    """Names of variables assigned/incremented anywhere in ``stmt``."""
    out: set[str] = set()
    for node in stmt.walk():
        target = None
        if isinstance(node, A.Assign):
            target = node.target
        elif isinstance(node, A.Unary) and node.op in ("++", "--", "p++", "p--"):
            target = node.operand
        if isinstance(target, A.Ident):
            out.add(target.name)
    return out
